//! Concurrent jobs on the [`Engine`]: submit several training requests at
//! once, stream their progress events, cancel one mid-flight, and watch a
//! repeated request hit the plan cache.
//!
//! ```text
//! cargo run --release --example engine_jobs
//! ```

use std::time::Duration;

use ml4all::{DataSource, Engine, GradientKind, JobEvent, SessionError, TrainRequest};
use ml4all_core::estimator::SpeculationConfig;

fn main() -> Result<(), SessionError> {
    let engine = Engine::new()
        .with_registry_cap(2000)
        .with_speculation(SpeculationConfig {
            sample_size: 300,
            budget: Duration::from_secs(5),
            max_iterations: 2000,
            ..SpeculationConfig::default()
        });

    // Two jobs in flight at once, on the shared worker pool.
    let adult = engine.submit(
        TrainRequest::new(
            GradientKind::LogisticRegression,
            DataSource::registry("adult"),
        )
        .epsilon(0.01)
        .max_iter(2000)
        .progress_every(250)
        .named("adult-model"),
    );
    let covtype = engine.submit(
        TrainRequest::new(
            GradientKind::LogisticRegression,
            DataSource::registry("covtype"),
        )
        .epsilon(0.01)
        .max_iter(2000)
        .named("covtype-model"),
    );

    // Stream the first job's events while both run.
    for event in adult.progress() {
        match event {
            JobEvent::SpeculationStarted => println!("[adult] speculating..."),
            JobEvent::PlanChosen {
                plan,
                total_s,
                cache_hit,
                ..
            } => println!(
                "[adult] plan {plan} (estimated {total_s:.2} simulated s, cache {})",
                if cache_hit { "hit" } else { "miss" }
            ),
            JobEvent::Progress {
                iteration, delta, ..
            } => println!("[adult] iter {iteration}: delta {delta:.5}"),
            JobEvent::Completed {
                name, iterations, ..
            } => println!("[adult] done: {name} after {iterations} iterations"),
            other => println!("[adult] {other:?}"),
        }
    }
    let adult = adult.join()?;
    let covtype = covtype.join()?;
    println!(
        "trained {} ({} iter) and {} ({} iter) concurrently",
        adult.name, adult.summary.iterations, covtype.name, covtype.summary.iterations
    );

    // A repeated request skips speculation: the plan cache serves it.
    let repeat = engine.submit(
        TrainRequest::new(
            GradientKind::LogisticRegression,
            DataSource::registry("adult"),
        )
        .epsilon(0.01)
        .max_iter(2000)
        .named("adult-again"),
    );
    let events: Vec<JobEvent> = repeat.progress().collect();
    let hit = events.iter().any(|e| {
        matches!(
            e,
            JobEvent::PlanChosen {
                cache_hit: true,
                ..
            }
        )
    });
    repeat.join()?;
    println!(
        "repeated request: plan cache {} ({} hits / {} misses so far)",
        if hit { "HIT" } else { "miss" },
        engine.plan_cache().hits(),
        engine.plan_cache().misses()
    );

    // Cooperative cancellation: the job stops at the next wave boundary.
    let doomed = engine.submit(
        TrainRequest::new(
            GradientKind::LogisticRegression,
            DataSource::registry("covtype"),
        )
        .epsilon(1e-12)
        .max_iter(5_000_000)
        .progress_every(1)
        .named("doomed"),
    );
    for event in doomed.progress() {
        if matches!(event, JobEvent::Progress { .. }) {
            doomed.cancel();
            break;
        }
    }
    match doomed.join() {
        Err(SessionError::Cancelled { iterations }) => {
            println!("cancelled the runaway job after {iterations} iterations");
        }
        other => println!("unexpected outcome: {other:?}"),
    }
    Ok(())
}
