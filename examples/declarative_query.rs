//! The declarative path end to end (Appendix A): write the ML task as a
//! query string, parse it, plan it, run it, persist the model, predict.
//!
//! ```text
//! cargo run --release -p ml4all-bench --example declarative_query
//! ```

use ml4all_core::lang::{parse_query, plan_query, Query};
use ml4all_dataflow::{ClusterSpec, PartitionScheme, PartitionedDataset, SimEnv};
use ml4all_datasets::libsvm;
use ml4all_datasets::{metrics::predict_all, registry, train_test_split};
use ml4all_gd::{execute_plan, Gradient};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::paper_testbed();
    let workdir = std::env::temp_dir().join("ml4all-declarative-example");
    std::fs::create_dir_all(&workdir)?;

    // Materialize a small LIBSVM training file so the query refers to a
    // real path, exactly as a user would.
    let spec = registry::adult();
    let points = spec.generate_points(3000, 42);
    let (train, test) = train_test_split(points, 0.8, 42);
    let train_path = workdir.join("training_data.txt");
    libsvm::write_libsvm(std::fs::File::create(&train_path)?, &train)?;
    println!(
        "wrote {} training points to {}",
        train.len(),
        train_path.display()
    );

    // --- The query of the paper's Section 3 (with the logistic()
    // gradient function spelled out, Appendix A's Table 3 form) ------
    let query_text = format!(
        "run logistic() on {} having epsilon 0.01, max iter 5000;",
        train_path.display()
    );
    println!("\nquery: {query_text}");
    let query = parse_query(&query_text)?;
    let Query::Run(run) = query else {
        unreachable!("this example issues a run query");
    };

    // Planner: query → optimizer configuration (task → hinge gradient,
    // constraints → tolerance/max iter).
    let config = plan_query(&run)?;
    println!(
        "planned task: {:?} gradient, tolerance {}, max {} iterations",
        config.gradient, config.tolerance, config.max_iter
    );

    // Load the dataset the query names and hand it to the optimizer.
    let loaded = libsvm::read_libsvm_file(&train_path, Some(spec.dims))?;
    let data = PartitionedDataset::from_points(
        "training_data.txt",
        loaded,
        PartitionScheme::RoundRobin,
        &cluster,
    )?;
    let report = ml4all_core::chooser::choose_plan(&data, &config, &cluster)?;
    println!("optimizer chose: {}", report.best().plan);

    let params = config.train_params();
    let mut env = SimEnv::new(cluster);
    let result = execute_plan(&report.best().plan, &data, &params, &mut env)?;
    println!(
        "trained: {} iterations, {:.1} simulated seconds",
        result.iterations, result.sim_time_s
    );

    // --- persist Q1 on my_model.txt ---------------------------------
    let model_path = workdir.join("my_model.txt");
    let persist = parse_query(&format!("persist Q1 on {};", model_path.display()))?;
    if let Query::Persist { path, .. } = persist {
        let body: Vec<String> = result
            .weights
            .as_slice()
            .iter()
            .map(f64::to_string)
            .collect();
        std::fs::write(&path, body.join("\n"))?;
        println!("\npersisted model to {path}");
    }

    // --- result = predict on test_data with my_model.txt ------------
    let test_path = workdir.join("test_data.txt");
    libsvm::write_libsvm(std::fs::File::create(&test_path)?, &test)?;
    let predict = parse_query(&format!(
        "result = predict on {} with {};",
        test_path.display(),
        model_path.display()
    ))?;
    if let Query::Predict { dataset, model } = predict {
        let weights: Vec<f64> = std::fs::read_to_string(model)?
            .lines()
            .map(|l| l.parse())
            .collect::<Result<_, _>>()?;
        let test_points = libsvm::read_libsvm_file(dataset, Some(spec.dims))?;
        let gradient = config.gradient;
        let predictions = predict_all(&test_points, |p| gradient.predict(&weights, p));
        let correct = predictions
            .iter()
            .zip(&test_points)
            .filter(|(pred, p)| (**pred >= 0.0) == (p.label >= 0.0))
            .count();
        println!(
            "prediction accuracy: {:.1}% over {} points",
            100.0 * correct as f64 / test_points.len() as f64,
            test_points.len()
        );
    }
    Ok(())
}
