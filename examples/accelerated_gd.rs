//! Accelerated GD algorithms expressed in the seven-operator abstraction
//! (Appendix C): SVRG and BGD with backtracking line search, compared
//! against plain BGD/SGD on the same regression task.
//!
//! ```text
//! cargo run --release -p ml4all-bench --example accelerated_gd
//! ```

use ml4all_dataflow::{ClusterSpec, PartitionScheme, PartitionedDataset, SamplingMethod, SimEnv};
use ml4all_datasets::synth::{dense_regression, RegressionConfig};
use ml4all_gd::linesearch::execute_line_search_bgd;
use ml4all_gd::svrg::execute_svrg;
use ml4all_gd::{
    dataset_loss, execute_plan, GdPlan, GradientKind, Regularizer, StepSize, TrainParams,
    TransformPolicy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::paper_testbed();
    let points = dense_regression(&RegressionConfig {
        n: 4000,
        dims: 20,
        noise: 0.01,
        seed: 17,
    });
    let data = PartitionedDataset::from_points(
        "regression",
        points.clone(),
        PartitionScheme::RoundRobin,
        &cluster,
    )?;
    let loss_of = |w: &ml4all_linalg::DenseVector| {
        dataset_loss(
            &GradientKind::LinearRegression,
            &Regularizer::None,
            w.as_slice(),
            &points,
        )
    };

    let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
    params.tolerance = 1e-7;
    params.max_iter = 2000;

    // Plain BGD with a fixed step.
    let mut bgd_params = params.clone();
    bgd_params.step = StepSize::Constant(0.5);
    let mut env = SimEnv::new(cluster.clone());
    let bgd = execute_plan(&GdPlan::bgd(), &data, &bgd_params, &mut env)?;
    println!(
        "BGD  (α=0.5)            : {:5} iterations, loss {:.2e}",
        bgd.iterations,
        loss_of(&bgd.weights)
    );

    // Plain SGD.
    let sgd_plan = GdPlan::sgd(TransformPolicy::Eager, SamplingMethod::ShuffledPartition)?;
    let mut sgd_params = params.clone();
    sgd_params.step = StepSize::Constant(0.05);
    let mut env = SimEnv::new(cluster.clone());
    let sgd = execute_plan(&sgd_plan, &data, &sgd_params, &mut env)?;
    println!(
        "SGD  (α=0.05)           : {:5} iterations, loss {:.2e}",
        sgd.iterations,
        loss_of(&sgd.weights)
    );

    // SVRG: anchor every 100 iterations (Algorithm 2 through the Sample/
    // Compute/Update if-else flattening of Listing 8).
    let mut env = SimEnv::new(cluster.clone());
    let svrg = execute_svrg(
        &data,
        SamplingMethod::ShuffledPartition,
        100,
        0.05,
        &params,
        &mut env,
    )?;
    println!(
        "SVRG (m=100, α=0.05)    : {:5} iterations, loss {:.2e}",
        svrg.iterations,
        loss_of(&svrg.weights)
    );

    // BGD + backtracking line search (Listings 9-10): no α tuning at all —
    // start from an absurd 64.0 and let Armijo shrink it.
    let mut env = SimEnv::new(cluster);
    let ls = execute_line_search_bgd(&data, 64.0, 0.5, &params, &mut env)?;
    println!(
        "BGD + line search (α₀=64): {:5} phases,    loss {:.2e}",
        ls.iterations,
        loss_of(&ls.weights)
    );

    println!(
        "\nSVRG reaches BGD-grade loss while touching ~1/{} of the data per \
         iteration between anchors.",
        data.physical_n()
    );
    Ok(())
}
