//! A tour of the optimizer's internals: the per-variant iteration
//! estimates (Algorithm 1), the full 11-plan cost table (Figure 5 ×
//! Equations 7–9), and how the choice flips as the dataset or tolerance
//! changes.
//!
//! ```text
//! cargo run --release -p ml4all-bench --example optimizer_tour
//! ```

use ml4all_core::chooser::{choose_plan, OptimizerConfig};
use ml4all_core::estimator::SpeculationConfig;
use ml4all_dataflow::ClusterSpec;
use ml4all_datasets::registry;
use ml4all_gd::GradientKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::paper_testbed();

    for (spec, gradient, tolerance) in [
        (registry::adult(), GradientKind::LogisticRegression, 1e-3),
        (registry::svm1(), GradientKind::Svm, 1e-3),
    ] {
        println!(
            "\n================= {} @ tolerance {tolerance} =================",
            spec.name
        );
        let data = spec.build(4000, 7, &cluster)?;

        let config = OptimizerConfig::new(gradient)
            .with_tolerance(tolerance)
            .with_max_iter(1000)
            .with_speculation(SpeculationConfig {
                budget: std::time::Duration::from_secs(3),
                ..SpeculationConfig::default()
            });
        let report = choose_plan(&data, &config, &cluster)?;

        println!("-- speculation (Algorithm 1) --");
        for est in &report.estimates {
            println!(
                "  {:>3}: fitted a = {:9.3} (R² {:.3}) → T({tolerance}) ≈ {} iterations \
                 [{} speculative iterations run]",
                est.variant.name(),
                est.estimate.fit.a,
                est.estimate.fit.r_squared,
                est.estimate.iterations,
                est.estimate.speculation_iterations,
            );
        }
        println!(
            "  speculation overhead: {:.1} simulated s, {:?} wall",
            report.speculation_sim_s, report.speculation_wall
        );

        println!("-- plan cost table (cheapest first) --");
        for (rank, c) in report.choices.iter().enumerate() {
            println!(
                "  {:>2}. {:24} prep {:8.2}s + {:>6} it × {:8.4}s = {:9.2}s{}",
                rank + 1,
                c.plan.name(),
                c.preparation_s,
                c.estimated_iterations,
                c.per_iteration_s,
                c.total_s,
                if rank == 0 { "   ← chosen" } else { "" }
            );
        }
        println!(
            "-- the optimizer avoided a {:.0}x slowdown ({} vs {})",
            report.worst().total_s / report.best().total_s,
            report.worst().plan,
            report.best().plan
        );
    }
    Ok(())
}
