//! Extending the abstraction with user-defined operators, the paper's UDF
//! story: "expert users could readily customize or override them".
//!
//! This example trains a **Huber-loss** regressor — a gradient the system
//! does not ship — with a custom `Compute`, and stops on an
//! objective-value delta instead of the weight delta with a custom
//! `Converge`. No executor changes needed: the same seven-operator plan
//! drives it.
//!
//! ```text
//! cargo run --release -p ml4all-bench --example custom_operators
//! ```

use ml4all_dataflow::{ClusterSpec, PartitionScheme, PartitionedDataset, SimEnv};
use ml4all_gd::executor::execute_with_operators;
use ml4all_gd::operators::{
    ComputeAcc, ComputeOp, ConvergeOp, FixedSample, GdOperators, IdentityTransform, SampleSize,
    StepUpdate, ToleranceLoop, ZeroStage,
};
use ml4all_gd::{Context, GdPlan, GradientKind, Regularizer, StepSize, TrainParams};
use ml4all_linalg::{DenseVector, FeatureVec, LabeledPoint, PointView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Huber loss: quadratic near zero, linear past `delta` — robust to the
/// outliers this example injects.
struct HuberCompute {
    delta: f64,
}

impl HuberCompute {
    fn loss_of_residual(&self, r: f64) -> f64 {
        if r.abs() <= self.delta {
            0.5 * r * r
        } else {
            self.delta * (r.abs() - 0.5 * self.delta)
        }
    }
}

impl ComputeOp for HuberCompute {
    fn compute(&self, point: PointView<'_>, ctx: &Context, acc: &mut ComputeAcc) {
        let r = point.features.dot(ctx.weights.as_slice()) - point.label;
        // ∇ huber = r·x (|r| ≤ δ) or δ·sign(r)·x (|r| > δ).
        let factor = if r.abs() <= self.delta {
            r
        } else {
            self.delta * r.signum()
        };
        point.features.axpy_into(acc.primary.as_mut_slice(), factor);
        // Carry the objective value through the scalar channel so the
        // custom Converge can use it.
        acc.scalar += self.loss_of_residual(r);
        acc.count += 1;
    }
}

/// Converge on the change of the (sampled) objective value rather than the
/// weight delta.
struct ObjectiveConverge;

impl ConvergeOp for ObjectiveConverge {
    fn converge(&self, _previous: &DenseVector, ctx: &Context) -> f64 {
        let current = ctx.scalar("objective_now").unwrap_or(f64::INFINITY);
        let previous = ctx.scalar("objective_prev").unwrap_or(f64::INFINITY);
        (previous - current).abs()
    }
}

/// Update wrapper that stashes the objective value for `ObjectiveConverge`.
struct TrackedUpdate {
    inner: StepUpdate,
}

impl ml4all_gd::operators::UpdateOp for TrackedUpdate {
    fn update(&self, acc: &ComputeAcc, ctx: &mut Context) -> ml4all_gd::operators::UpdateOutcome {
        let objective = if acc.count > 0 {
            acc.scalar / acc.count as f64
        } else {
            f64::INFINITY
        };
        let prev = ctx.scalar("objective_now").unwrap_or(f64::INFINITY);
        ctx.put("objective_prev", ml4all_gd::Extra::Scalar(prev));
        ctx.put("objective_now", ml4all_gd::Extra::Scalar(objective));
        self.inner.update(acc, ctx)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::paper_testbed();

    // y = 3x − 1 with 10% gross outliers.
    let mut rng = StdRng::seed_from_u64(99);
    let points: Vec<LabeledPoint> = (0..3000)
        .map(|_| {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let mut y = 3.0 * x - 1.0 + rng.gen_range(-0.05..0.05);
            if rng.gen::<f64>() < 0.10 {
                y += rng.gen_range(-20.0..20.0); // outlier
            }
            LabeledPoint::new(y, FeatureVec::dense(vec![x, 1.0]))
        })
        .collect();
    let data =
        PartitionedDataset::from_points("huber", points, PartitionScheme::RoundRobin, &cluster)?;

    let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
    params.tolerance = 1e-9;
    params.max_iter = 3000;
    params.step = StepSize::Constant(0.5);

    let ops = GdOperators {
        transform: Box::new(IdentityTransform),
        stage: Box::new(ZeroStage { dims: 2 }),
        compute: Box::new(HuberCompute { delta: 0.5 }),
        update: Box::new(TrackedUpdate {
            inner: StepUpdate {
                step: params.step,
                regularizer: Regularizer::None,
            },
        }),
        sample: Box::new(FixedSample {
            size: SampleSize::All,
        }),
        converge: Box::new(ObjectiveConverge),
        loop_op: Box::new(ToleranceLoop {
            tolerance: params.tolerance,
            max_iter: params.max_iter,
        }),
    };

    let mut env = SimEnv::new(cluster);
    let result = execute_with_operators(&GdPlan::bgd(), &data, &ops, &params, &mut env)?;
    println!(
        "huber regression: slope {:.3} (true 3.0), intercept {:.3} (true −1.0) — \
         {} iterations, objective-delta stop",
        result.weights[0], result.weights[1], result.iterations
    );
    assert!((result.weights[0] - 3.0).abs() < 0.15);
    assert!((result.weights[1] + 1.0).abs() < 0.15);
    println!("custom Compute + custom Converge ran through the unmodified executor.");
    Ok(())
}
