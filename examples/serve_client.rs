//! Talk to a serving front end over the wire: boot an in-process server,
//! submit a training job, stream its events, score the bound model, and
//! read the tenant's stats.
//!
//! ```sh
//! cargo run --example serve_client
//! ```

use ml4all::Engine;
use ml4all_serve::{Client, ServeConfig, Server, WireEvent, WireSource, WireTrain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // In production this would be `ml4all serve --addr …` in another
    // process; here the server runs in-process on an ephemeral port.
    let server = Server::start(Engine::new(), ServeConfig::default())?;
    println!("server on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr())?;
    let hello = client.hello("acme")?;
    println!(
        "connected to {} (protocol {}, rng stream {})",
        hello.server, hello.protocol, hello.rng_stream_version
    );

    // Submit: logistic regression on the adult registry analog.
    let mut train = WireTrain::new("logistic", WireSource::Registry("adult".into()));
    train.max_iter = Some(200);
    train.name = Some("census".into());
    train.progress_every = Some(50);
    let job = client.submit(&train)?;
    println!("submitted job {job}");

    // Stream its events as they happen.
    let status = client.observe(job, 0, |seq, event| match event {
        WireEvent::PlanChosen {
            plan, cache_hit, ..
        } => println!("  [{seq}] optimizer picked {plan} (cache hit: {cache_hit})"),
        WireEvent::Progress {
            iteration, delta, ..
        } => println!("  [{seq}] iter {iteration}: delta {delta:.6}"),
        WireEvent::Completed { iterations, .. } => {
            println!("  [{seq}] completed after {iterations} iterations")
        }
        other => println!("  [{seq}] {other:?}"),
    })?;
    println!("job finished: {status}");

    // Join returns the outcome with bit-exact weights.
    let outcome = client.join(job)?;
    let weights = outcome.weights.as_deref().unwrap_or(&[]);
    println!(
        "model `{}`: {} weights, first = {:?}",
        outcome.name.as_deref().unwrap_or("?"),
        weights.len(),
        weights.first()
    );

    // Score the training set with the bound model (by its wire name).
    let scores = client.predict("census", &WireSource::Registry("adult".into()))?;
    println!(
        "predictions: {} points, mse {:.3}, accuracy {:.1}%",
        scores.n,
        scores.mse,
        scores.accuracy.unwrap_or(0.0) * 100.0
    );

    // Tenant-scoped stats: quotas, in-flight counters, the job table.
    let stats = client.stats()?;
    println!(
        "tenant {}: {} job(s), plan cache {} hit(s) / {} miss(es)",
        stats.tenant,
        stats.jobs.len(),
        stats.plan_cache_hits,
        stats.plan_cache_misses
    );
    Ok(())
}
