//! Quickstart: train a classifier with the cost-based GD optimizer.
//!
//! ```text
//! cargo run --release -p ml4all-bench --example quickstart
//! ```
//!
//! Builds the covtype analog (Table 2), lets the optimizer speculate and
//! pick among the 11 GD plans of Figure 5, executes the winner, and
//! reports the model's test error.

use ml4all_core::chooser::{choose_plan, OptimizerConfig};
use ml4all_core::estimator::SpeculationConfig;
use ml4all_dataflow::{ClusterSpec, PartitionScheme, PartitionedDataset, SimEnv};
use ml4all_datasets::{mean_squared_error, metrics::predict_all, registry, train_test_split};
use ml4all_gd::{execute_plan, Gradient, GradientKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A cluster to run on — the paper's 4-node testbed, simulated.
    let cluster = ClusterSpec::paper_testbed();

    // 2. Data: a laptop-scale analog of covtype with Table 2's logical
    //    shape (581 012 × 54, 68 MB). Swap in a real LIBSVM file with
    //    `ml4all_datasets::libsvm::read_libsvm_file` if you have one.
    let spec = registry::covtype();
    let points = spec.generate_points(6000, 7);
    let (train, test) = train_test_split(points, 0.8, 7);
    let data = PartitionedDataset::with_descriptor(
        spec.descriptor(),
        train,
        PartitionScheme::RoundRobin,
        &cluster,
    )?;

    // 3. Ask the optimizer for the best plan at tolerance 0.01.
    let config = OptimizerConfig::new(GradientKind::LogisticRegression)
        .with_tolerance(0.01)
        .with_max_iter(5000)
        .with_speculation(SpeculationConfig::default());
    let report = choose_plan(&data, &config, &cluster)?;
    println!(
        "optimizer chose {} (estimated {:.1}s for {} iterations; speculation cost {:.1}s)",
        report.best().plan,
        report.best().total_s,
        report.best().estimated_iterations,
        report.speculation_sim_s,
    );
    println!(
        "it avoided {} (estimated {:.1}s — {:.0}x worse)",
        report.worst().plan,
        report.worst().total_s,
        report.worst().total_s / report.best().total_s
    );

    // 4. Execute the chosen plan.
    let params = config.train_params();
    let mut env = SimEnv::new(cluster);
    let result = execute_plan(&report.best().plan, &data, &params, &mut env)?;
    println!(
        "trained in {} iterations — {:.1} simulated seconds (converged: {})",
        result.iterations,
        result.sim_time_s,
        result.converged()
    );

    // 5. Evaluate.
    let gradient = GradientKind::LogisticRegression;
    let predictions = predict_all(&test, |p| gradient.predict(result.weights.as_slice(), p));
    println!(
        "test MSE: {:.3} over {} held-out points",
        mean_squared_error(&predictions, &test),
        test.len()
    );
    Ok(())
}
