//! Failure-injection integration tests: the error paths the paper's
//! evaluation observes are values, not panics.

use ml4all_baselines::{BaselineError, BismarckRunner, SystemmlRunner};
use ml4all_core::chooser::{choose_plan, OptimizerConfig};
use ml4all_dataflow::{ClusterSpec, SimEnv};
use ml4all_datasets::registry;
use ml4all_gd::{GdVariant, GradientKind, StepSize, TrainParams};

#[test]
fn systemml_ooms_on_all_three_dense_synthetics() {
    // "for all the dense synthetic datasets SystemML failed with out of
    // memory exceptions" (Section 8.4.1).
    let cluster = ClusterSpec::paper_testbed();
    let runner = SystemmlRunner::default();
    for spec in [registry::svm1(), registry::svm2(), registry::svm3()] {
        let data = spec.build(500, 1, &cluster).expect("builds");
        let params = TrainParams::paper_defaults(GradientKind::Svm);
        let mut env = SimEnv::new(cluster.clone());
        let err = runner
            .run(GdVariant::Batch, &data, &params, &mut env)
            .expect_err("dense synthetic must OOM");
        assert!(
            matches!(err, BaselineError::OutOfMemory { .. }),
            "{}: {err}",
            spec.name
        );
    }
}

#[test]
fn systemml_survives_the_real_datasets() {
    let cluster = ClusterSpec::paper_testbed();
    let runner = SystemmlRunner::default();
    for spec in [registry::adult(), registry::rcv1()] {
        let data = spec.build(500, 1, &cluster).expect("builds");
        let mut params = TrainParams::paper_defaults(GradientKind::LogisticRegression);
        params.max_iter = 5;
        params.tolerance = 0.0;
        let mut env = SimEnv::new(cluster.clone());
        runner
            .run(
                GdVariant::MiniBatch { batch: 100 },
                &data,
                &params,
                &mut env,
            )
            .unwrap_or_else(|e| panic!("{} should run: {e}", spec.name));
    }
}

#[test]
fn bismarck_failure_matrix_matches_figure_11() {
    let cluster = ClusterSpec::paper_testbed();
    let runner = BismarckRunner::default();
    // (dataset, variant, expect_failure)
    let cases = [
        (registry::adult(), GdVariant::Batch, false),
        (
            registry::adult(),
            GdVariant::MiniBatch { batch: 10_000 },
            false,
        ),
        (
            registry::rcv1(),
            GdVariant::MiniBatch { batch: 1_000 },
            false,
        ),
        (
            registry::rcv1(),
            GdVariant::MiniBatch { batch: 10_000 },
            true,
        ),
        (registry::rcv1(), GdVariant::Batch, true),
        (registry::svm1(), GdVariant::Batch, true),
        (
            registry::svm1(),
            GdVariant::MiniBatch { batch: 10_000 },
            false,
        ),
    ];
    for (spec, variant, expect_failure) in cases {
        let data = spec.build(400, 2, &cluster).expect("builds");
        let mut params = TrainParams::paper_defaults(ml4all_bench::task_gradient(spec.task));
        params.max_iter = 3;
        params.tolerance = 0.0;
        let mut env = SimEnv::new(cluster.clone());
        let outcome = runner.run(variant, &data, &params, &mut env);
        match (outcome, expect_failure) {
            (Err(BaselineError::DriverOverflow { .. }), true) => {}
            (Ok(_), false) => {}
            (Err(e), false) => panic!("{} {variant:?} unexpectedly failed: {e}", spec.name),
            (Ok(_), true) => panic!("{} {variant:?} should have overflowed", spec.name),
            (Err(e), true) => {
                panic!("{} {variant:?} failed with the wrong error: {e}", spec.name)
            }
        }
    }
}

#[test]
fn divergent_step_reports_diverged_not_panic() {
    let cluster = ClusterSpec::paper_testbed();
    let spec = registry::yearpred();
    let data = spec.build(500, 4, &cluster).expect("builds");
    let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
    params.step = StepSize::Constant(1e9);
    let err = ml4all_bench::runs::run_plan(&ml4all_gd::GdPlan::bgd(), &data, &params, &cluster)
        .expect_err("absurd step must diverge");
    assert!(matches!(err, ml4all_gd::GdError::Diverged { .. }));
}

#[test]
fn impossible_time_budget_names_the_constraint() {
    // "If the system cannot satisfy any of these constraints, it informs
    // the user which constraint she has to revisit" (Appendix A).
    let cluster = ClusterSpec::paper_testbed();
    let data = registry::svm1().build(400, 9, &cluster).expect("builds");
    let config = OptimizerConfig::new(GradientKind::Svm)
        .with_fixed_iterations(1000)
        .with_time_budget(std::time::Duration::from_millis(10));
    let err = choose_plan(&data, &config, &cluster).expect_err("budget unsatisfiable");
    let message = err.to_string();
    assert!(message.contains("time"), "{message}");
}

#[test]
fn empty_and_malformed_queries_error_cleanly() {
    use ml4all_core::lang::parse_query;
    for bad in [
        "",
        ";",
        "run",
        "run classification",
        "launch classification on x;",
        "run classification on data.txt having epsilon;",
    ] {
        assert!(parse_query(bad).is_err(), "{bad:?} should not parse");
    }
}
