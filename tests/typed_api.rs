//! The typed-API lowering property: executing a declarative statement and
//! executing the typed request it lowers onto are the *same computation* —
//! same chosen plan, same iteration count, and bit-identical weights for
//! the same seed.

use ml4all::{DataSource, GradientKind, Session, SessionOutput, TrainRequest, Trained};
use ml4all_core::estimator::SpeculationConfig;
use ml4all_core::lang::AlgorithmPin;
use ml4all_dataflow::{ClusterSpec, PartitionScheme, PartitionedDataset, SamplingMethod};
use ml4all_datasets::synth::{dense_classification, DenseClassConfig};
use proptest::prelude::*;

fn dataset() -> PartitionedDataset {
    let points = dense_classification(&DenseClassConfig {
        n: 350,
        dims: 4,
        noise: 0.1,
        seed: 11,
    });
    PartitionedDataset::from_points(
        "propdata",
        points,
        PartitionScheme::RoundRobin,
        &ClusterSpec::paper_testbed(),
    )
    .unwrap()
}

fn quick_session() -> Session {
    let session = Session::new().with_speculation(SpeculationConfig {
        sample_size: 150,
        budget: std::time::Duration::from_secs(1),
        max_iterations: 400,
        ..SpeculationConfig::default()
    });
    session.register_dataset("propdata", dataset());
    session
}

/// Format the generated constraint set as an Appendix A statement.
#[allow(clippy::too_many_arguments)]
fn statement(
    epsilon: Option<f64>,
    max_iter: u64,
    algorithm: Option<&str>,
    sampler: Option<&str>,
    step: Option<f64>,
    batch: Option<u64>,
) -> String {
    let mut having = Vec::new();
    if let Some(e) = epsilon {
        having.push(format!("epsilon {e}"));
    }
    having.push(format!("max iter {max_iter}"));
    let mut using = Vec::new();
    if let Some(a) = algorithm {
        using.push(format!("algorithm {a}"));
    }
    if let Some(s) = sampler {
        using.push(format!("sampler {s}"));
    }
    if let Some(s) = step {
        using.push(format!("step {s}"));
    }
    if let Some(b) = batch {
        using.push(format!("batch {b}"));
    }
    let mut stmt = format!(
        "M = run logistic() on propdata having {}",
        having.join(", ")
    );
    if !using.is_empty() {
        stmt.push_str(&format!(" using {}", using.join(", ")));
    }
    stmt.push(';');
    stmt
}

/// Build the typed request the statement should lower onto.
fn typed_request(
    epsilon: Option<f64>,
    max_iter: u64,
    algorithm: Option<&str>,
    sampler: Option<&str>,
    step: Option<f64>,
    batch: Option<u64>,
) -> TrainRequest {
    let mut req = TrainRequest::new(
        GradientKind::LogisticRegression,
        DataSource::registered("propdata"),
    )
    .named("M");
    req.spec.epsilon = epsilon;
    req.spec.max_iter = Some(max_iter);
    req.spec.step = step;
    req.spec.batch = batch;
    req.spec.algorithm = algorithm.map(|a| match a {
        "BGD" => AlgorithmPin::Batch,
        "SGD" => AlgorithmPin::Stochastic,
        _ => AlgorithmPin::MiniBatch { batch: None },
    });
    req.spec.sampler = sampler.map(|s| match s {
        "bernoulli" => SamplingMethod::Bernoulli,
        "random" => SamplingMethod::RandomPartition,
        _ => SamplingMethod::ShuffledPartition,
    });
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parsed_statement_and_typed_request_train_identically(
        epsilon in prop_oneof![Just(None), Just(Some(0.05)), Just(Some(0.02))],
        max_iter in 5u64..60,
        algorithm in prop_oneof![Just(None), Just(Some("BGD")), Just(Some("SGD")), Just(Some("MGD"))],
        sampler in prop_oneof![Just(None), Just(Some("bernoulli")), Just(Some("random")), Just(Some("shuffled"))],
        step in prop_oneof![Just(None), Just(Some(0.5)), Just(Some(2.0))],
        batch in prop_oneof![Just(None), Just(Some(25u64)), Just(Some(100u64))],
    ) {
        let stmt = statement(epsilon, max_iter, algorithm, sampler, step, batch);

        let parsed_session = quick_session();
        let out = parsed_session
            .execute(&stmt)
            .unwrap_or_else(|e| panic!("{stmt}: {e}"));
        let SessionOutput::Trained { name, summary: parsed } = out else {
            panic!("{stmt}: expected Trained");
        };
        prop_assert_eq!(&name, "M");

        let typed_session = quick_session();
        let Trained { summary: typed, .. } = typed_session
            .train(typed_request(epsilon, max_iter, algorithm, sampler, step, batch))
            .unwrap_or_else(|e| panic!("typed twin of {stmt}: {e}"));

        prop_assert_eq!(parsed.plan, typed.plan, "{}: plan", stmt);
        prop_assert_eq!(parsed.iterations, typed.iterations, "{}: iterations", stmt);
        prop_assert_eq!(parsed.converged, typed.converged, "{}: converged", stmt);
        prop_assert_eq!(
            parsed.sim_time_s.to_bits(),
            typed.sim_time_s.to_bits(),
            "{}: sim time", stmt
        );
        prop_assert_eq!(
            parsed.speculation_s.to_bits(),
            typed.speculation_s.to_bits(),
            "{}: speculation overhead", stmt
        );

        // Same seed ⇒ bit-identical weights.
        let parsed_weights = parsed_session.model("M").unwrap().weights.clone();
        let typed_weights = typed_session.model("M").unwrap().weights.clone();
        prop_assert_eq!(parsed_weights, typed_weights, "{}: weights", stmt);
    }
}

/// The explain twin of the property: for any constraint set, the best row
/// of the explain report is the plan `run` executes.
#[test]
fn explain_best_row_matches_run_across_constraint_space() {
    for (epsilon, algorithm) in [
        (None, None),
        (Some(0.05), None),
        (Some(0.05), Some("SGD")),
        (None, Some("MGD")),
    ] {
        let stmt_body = statement(epsilon, 40, algorithm, None, None, None);
        let explain_stmt = format!("explain {}", stmt_body.trim_start_matches("M = run "));

        let session = quick_session();
        let SessionOutput::Explained { report } = session.execute(&explain_stmt).unwrap() else {
            panic!("{explain_stmt}: expected Explained");
        };
        let SessionOutput::Trained { summary, .. } = session.execute(&stmt_body).unwrap() else {
            panic!("{stmt_body}: expected Trained");
        };
        assert_eq!(summary.plan, report.best().plan, "{stmt_body}");
    }
}
