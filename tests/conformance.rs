//! Cost-model conformance tier: every plan-space point executes through
//! its mapped backend (local or simulated cluster) and the ledger-measured
//! cost must track the model's prediction — the in-repo analog of the
//! paper's cluster validation (Sections 5–8, Table 4).
//!
//! The sweep runs BGD/SGD/MGD × samplers × transform policies on registry
//! datasets scaled to test size with a fixed iteration count, then asserts
//! (a) measured/predicted inside each plan's stated band and (b) the
//! chooser's argmin is unchanged when measured costs are substituted.
//! Set `CONFORMANCE_JSON=<path>` to persist the predicted-vs-measured
//! report (the CI artifact), and `UPDATE_GOLDEN=1` to regenerate the
//! golden chosen-plan table.

use std::sync::OnceLock;

use ml4all_bench::conformance::{sweep_dataset, ConformanceReport, DatasetConformance};
use ml4all_bench::golden::assert_golden;
use ml4all_dataflow::ClusterSpec;
use ml4all_datasets::registry;

/// Physical row cap: large enough that Bernoulli draw-count noise
/// averages out, small enough to keep the tier fast.
const MAX_PHYSICAL: usize = 1500;
/// Fixed iteration count every plan is costed and executed with.
const ITERATIONS: u64 = 25;
const SEED: u64 = 17;

/// The sweep datasets: a driver-resident dataset (adult, 7 MB), a
/// mid-size one (covtype, 68 MB), and a cluster-mapped one (svm1, 10 GB)
/// — one sweep per Appendix D placement regime.
fn sweeps() -> &'static [DatasetConformance] {
    static SWEEPS: OnceLock<Vec<DatasetConformance>> = OnceLock::new();
    SWEEPS.get_or_init(|| {
        let cluster = ClusterSpec::paper_testbed();
        [registry::adult(), registry::covtype(), registry::svm1()]
            .iter()
            .map(|spec| sweep_dataset(spec, MAX_PHYSICAL, ITERATIONS, SEED, &cluster))
            .collect()
    })
}

#[test]
fn measured_cost_tracks_prediction_within_stated_bands() {
    for sweep in sweeps() {
        for row in &sweep.rows {
            assert!(
                row.within_band,
                "{}/{} on {}: measured {:.4}s vs predicted {:.4}s (ratio {:.4}, band {:?})",
                sweep.dataset,
                row.plan,
                row.backend,
                row.measured_s,
                row.predicted_s,
                row.ratio,
                row.band
            );
        }
    }
}

#[test]
fn chooser_argmin_is_stable_under_measured_costs() {
    for sweep in sweeps() {
        assert!(
            sweep.argmin_stable(),
            "{}: predicted argmin {} but measured argmin {}",
            sweep.dataset,
            sweep.predicted_argmin,
            sweep.measured_argmin
        );
    }
}

#[test]
fn cluster_mapped_plans_execute_through_the_simulated_cluster() {
    let svm1 = sweeps().iter().find(|s| s.dataset == "svm1").unwrap();
    for row in &svm1.rows {
        assert_eq!(
            row.backend, "simulated-cluster",
            "{}: every svm1 plan maps onto the cluster",
            row.plan
        );
        assert!(
            row.tuples_scanned > 0,
            "{}: cluster executions are metered",
            row.plan
        );
    }
    let adult = sweeps().iter().find(|s| s.dataset == "adult").unwrap();
    assert!(
        adult.rows.iter().all(|r| r.backend == "local"),
        "adult fits one partition and stays at the driver"
    );
}

/// Table 4 as an executable golden: the chosen plan per dataset, pinned.
/// The conformance sweep proves the choice survives measured costs; this
/// test pins *which* plan that is.
#[test]
fn chosen_plans_match_the_golden_table() {
    let mut table = String::from("dataset  chosen-plan  backend-of-chosen\n");
    for sweep in sweeps() {
        let best = &sweep.rows[0];
        table.push_str(&format!(
            "{}  {}  {}\n",
            sweep.dataset, sweep.predicted_argmin, best.backend
        ));
    }
    assert_golden("table4_chosen_plans.txt", &table);
}

/// Persist the predicted-vs-measured report when CI asks for it.
#[test]
fn conformance_report_artifact() {
    let report = ConformanceReport::new(sweeps().to_vec());
    let json = report.to_json();
    assert!(json.contains("\"datasets\""));
    if let Some(path) = report.write_if_requested() {
        eprintln!("wrote conformance report to {}", path.display());
    }
}
