//! Cost-model conformance tier: every plan-space point executes through
//! its mapped backend (local or simulated cluster) and the ledger-measured
//! cost must track the model's prediction — the in-repo analog of the
//! paper's cluster validation (Sections 5–8, Table 4).
//!
//! The sweep runs BGD/SGD/MGD × samplers × transform policies on registry
//! datasets scaled to test size with a fixed iteration count, then asserts
//! (a) measured/predicted inside each plan's stated band and (b) the
//! chooser's argmin is unchanged when measured costs are substituted.
//! Set `CONFORMANCE_JSON=<path>` to persist the predicted-vs-measured
//! report (the CI artifact), and `UPDATE_GOLDEN=1` to regenerate the
//! golden chosen-plan table.

use std::sync::OnceLock;

use ml4all_bench::conformance::{
    calibration_sweep, sweep_dataset, CalibrationReport, ConformanceReport, DatasetConformance,
};
use ml4all_bench::golden::assert_golden;
use ml4all_dataflow::ClusterSpec;
use ml4all_datasets::registry;

/// Physical row cap: large enough that Bernoulli draw-count noise
/// averages out, small enough to keep the tier fast.
const MAX_PHYSICAL: usize = 1500;
/// Fixed iteration count every plan is costed and executed with.
const ITERATIONS: u64 = 25;
const SEED: u64 = 17;

/// The sweep datasets: a driver-resident dataset (adult, 7 MB), a
/// mid-size one (covtype, 68 MB), and a cluster-mapped one (svm1, 10 GB)
/// — one sweep per Appendix D placement regime.
fn sweeps() -> &'static [DatasetConformance] {
    static SWEEPS: OnceLock<Vec<DatasetConformance>> = OnceLock::new();
    SWEEPS.get_or_init(|| {
        let cluster = ClusterSpec::paper_testbed();
        [registry::adult(), registry::covtype(), registry::svm1()]
            .iter()
            .map(|spec| sweep_dataset(spec, MAX_PHYSICAL, ITERATIONS, SEED, &cluster))
            .collect()
    })
}

#[test]
fn measured_cost_tracks_prediction_within_stated_bands() {
    for sweep in sweeps() {
        for row in &sweep.rows {
            assert!(
                row.within_band,
                "{}/{} on {}: measured {:.4}s vs predicted {:.4}s (ratio {:.4}, band {:?})",
                sweep.dataset,
                row.plan,
                row.backend,
                row.measured_s,
                row.predicted_s,
                row.ratio,
                row.band
            );
        }
    }
}

#[test]
fn chooser_argmin_is_stable_under_measured_costs() {
    for sweep in sweeps() {
        assert!(
            sweep.argmin_stable(),
            "{}: predicted argmin {} but measured argmin {}",
            sweep.dataset,
            sweep.predicted_argmin,
            sweep.measured_argmin
        );
    }
}

#[test]
fn cluster_mapped_plans_execute_through_the_simulated_cluster() {
    let svm1 = sweeps().iter().find(|s| s.dataset == "svm1").unwrap();
    for row in &svm1.rows {
        assert_eq!(
            row.backend, "simulated-cluster",
            "{}: every svm1 plan maps onto the cluster",
            row.plan
        );
        assert!(
            row.tuples_scanned > 0,
            "{}: cluster executions are metered",
            row.plan
        );
    }
    let adult = sweeps().iter().find(|s| s.dataset == "adult").unwrap();
    assert!(
        adult.rows.iter().all(|r| r.backend == "local"),
        "adult fits one partition and stays at the driver"
    );
}

/// Table 4 as an executable golden: the chosen plan per dataset, pinned.
/// The conformance sweep proves the choice survives measured costs; this
/// test pins *which* plan that is.
#[test]
fn chosen_plans_match_the_golden_table() {
    let mut table = String::from("dataset  chosen-plan  backend-of-chosen\n");
    for sweep in sweeps() {
        let best = &sweep.rows[0];
        table.push_str(&format!(
            "{}  {}  {}\n",
            sweep.dataset, sweep.predicted_argmin, best.backend
        ));
    }
    assert_golden("table4_chosen_plans.txt", &table);
}

/// Fault injection is an accounting overlay, the in-repo analog of the
/// paper's recovery-cost discussion: a scripted node loss plus a straggler
/// must leave the trajectory, the cost clock, and the final model
/// bit-identical to the fault-free run, while the usage meter bills the
/// recovery. Set `FAULT_CONFORMANCE_JSON=<path>` to persist the evidence
/// (the CI artifact).
#[test]
fn node_loss_recovery_is_metered_without_perturbing_the_model() {
    use ml4all_dataflow::{Backend, FaultSchedule, SimEnv};
    use ml4all_gd::{execute_plan, GdPlan, GradientKind, TrainParams};

    let cluster = ClusterSpec::paper_testbed();
    let data = registry::svm1()
        .build(MAX_PHYSICAL, SEED, &cluster)
        .unwrap();
    // BGD sweeps every partition each iteration, so every node computes
    // every wave — the schedule below is guaranteed to hit live work.
    let plan = GdPlan::bgd();
    let mut params = TrainParams::paper_defaults(GradientKind::LogisticRegression);
    params.max_iter = ITERATIONS;
    params.tolerance = 0.0;
    params.seed = SEED;
    let run = |backend: Backend| {
        let mut env = SimEnv::new(cluster.clone()).with_backend(backend);
        execute_plan(&plan, &data, &params, &mut env).unwrap()
    };

    let clean = run(Backend::simulated_cluster(&cluster));
    assert!(!clean.usage.saw_faults());
    let faults = FaultSchedule::new().lose_node(3, 1).straggler(2, 4);
    let faulty = run(Backend::simulated_cluster_with_faults(&cluster, faults));

    // The math and the simulated clock are untouched …
    assert_eq!(
        clean.weights, faulty.weights,
        "faults must not move weights"
    );
    assert_eq!(clean.iterations, faulty.iterations);
    assert_eq!(clean.error_seq, faulty.error_seq);
    assert_eq!(clean.cost, faulty.cost, "the cost clock ignores faults");
    assert_eq!(
        clean.sim_time_s.to_bits(),
        faulty.sim_time_s.to_bits(),
        "simulated time ignores faults"
    );

    // … but the recovery cost lands in the usage meter.
    let usage = &faulty.usage;
    assert!(usage.saw_faults());
    assert_eq!(usage.nodes_lost, 1, "one scripted node loss");
    assert!(usage.recovery_tuples > 0, "lost units are re-processed");
    assert!(usage.recovery_bytes > 0, "recovery re-shuffles the model");
    assert!(usage.recovery_compute_s > 0.0, "lost attempts are billed");
    assert!(
        usage.straggler_delay_s > 0.0,
        "the straggler stretches waves"
    );
    assert!(
        usage.total_node_compute_s() > clean.usage.total_node_compute_s(),
        "recovery and straggling add busy seconds"
    );

    if let Ok(path) = std::env::var("FAULT_CONFORMANCE_JSON") {
        let report = format!(
            "{{\n  \"dataset\": \"svm1\",\n  \"plan\": \"{}\",\n  \"iterations\": {},\n  \
             \"weights_identical\": true,\n  \"sim_time_identical\": true,\n  \
             \"clean_usage\": {},\n  \"faulty_usage\": {}\n}}\n",
            plan,
            faulty.iterations,
            serde_json::to_string(&clean.usage).unwrap(),
            serde_json::to_string(&faulty.usage).unwrap()
        );
        std::fs::write(&path, report).unwrap();
        eprintln!("wrote fault conformance report to {path}");
    }
}

/// The calibration double sweep (the CI "cold, then calibrated" pass):
/// sweep every dataset cold while fitting a calibrator from the executed
/// plans, sweep again under the fitted snapshot, and require the
/// calibrated estimator to be no worse on **every** plan and strictly
/// tighter in aggregate. Set `CALIBRATION_JSON=<path>` to persist the
/// comparison (the CI artifact).
#[test]
fn calibration_strictly_tightens_conformance_error() {
    let cluster = ClusterSpec::paper_testbed();
    let mut datasets = Vec::new();
    for spec in [registry::adult(), registry::covtype(), registry::svm1()] {
        let cal = calibration_sweep(&spec, MAX_PHYSICAL, ITERATIONS, SEED, &cluster);
        assert_eq!(cal.rows.len(), 11, "{}: full plan space", cal.dataset);
        for row in &cal.rows {
            assert!(
                row.calibrated_error <= row.cold_error + 1e-6,
                "{}/{}: calibrated error {:.3e} worse than cold {:.3e}",
                cal.dataset,
                row.plan,
                row.calibrated_error,
                row.cold_error
            );
        }
        assert!(
            cal.strictly_tighter(),
            "{}: calibrated aggregate {:.3e} !< cold {:.3e}",
            cal.dataset,
            cal.calibrated_aggregate_error,
            cal.cold_aggregate_error
        );
        datasets.push(cal);
    }

    let report = CalibrationReport::new(datasets);
    assert!(
        report.calibrated_total_error < report.cold_total_error,
        "whole-suite aggregate must tighten: {:.3e} !< {:.3e}",
        report.calibrated_total_error,
        report.cold_total_error
    );
    if let Some(path) = report.write_if_requested() {
        eprintln!("wrote calibration report to {}", path.display());
    }
}

/// Persist the predicted-vs-measured report when CI asks for it.
#[test]
fn conformance_report_artifact() {
    let report = ConformanceReport::new(sweeps().to_vec());
    let json = report.to_json();
    assert!(json.contains("\"datasets\""));
    if let Some(path) = report.write_if_requested() {
        eprintln!("wrote conformance report to {}", path.display());
    }
}
