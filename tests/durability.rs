//! Durability tier: jobs killed mid-run resume bit-identically to the
//! uninterrupted run — across backends, worker counts, and repeated
//! interruptions — and corrupted persisted artifacts (checkpoints, slabs)
//! are rejected typed, never resumed from and never a panic.
//!
//! The "kill" here is a wall-budget stop plus engine teardown: the engine
//! is dropped and a fresh one is pointed at the same state directory, so
//! every resumed segment exercises the full cold path — plan cache from
//! `plancache.json`, checkpoint from `checkpoints/`, model registry from
//! `models/` — exactly as after a process death.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ml4all::{
    CheckpointError, DataSource, Engine, ExplainRequest, GradientKind, JobEvent, ReplanPolicy,
    Runtime, SessionError, TrainRequest,
};
use ml4all_core::estimator::SpeculationConfig;
use ml4all_core::plancache::PlanCacheKey;
use ml4all_dataflow::CostBreakdown;

/// Iteration cap: every run's trajectory has exactly this length because
/// the tolerance is far out of reach.
const MAX_ITER: u64 = 400;
const SEED: u64 = 41;

fn speculation() -> SpeculationConfig {
    SpeculationConfig {
        sample_size: 300,
        budget: Duration::from_secs(1),
        max_iterations: 2000,
        ..SpeculationConfig::default()
    }
}

fn engine(workers: usize) -> Engine {
    Engine::new()
        .with_registry_cap(1000)
        .with_speculation(speculation())
        .with_runtime(Arc::new(Runtime::new(workers)))
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ml4all-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The job under test: a tolerance below reach keeps the loop running to
/// the iteration cap, so interrupted and uninterrupted runs share one
/// fixed-length trajectory to compare bit for bit.
fn request(dataset: &str) -> TrainRequest {
    TrainRequest::new(
        GradientKind::LogisticRegression,
        DataSource::registry(dataset),
    )
    .epsilon(1e-12)
    .max_iter(MAX_ITER)
    .seed(SEED)
}

/// One progress tick, captured bit-exactly.
#[derive(Debug, PartialEq)]
struct Tick {
    delta: u64,
    sim_time: u64,
    cost: CostBreakdown,
}

/// The uninterrupted run: final state plus the full per-iteration
/// trajectory, the yardstick every resumed run is held against.
struct Reference {
    trained: ml4all::Trained,
    model: ml4all::Model,
    ticks: HashMap<u64, Tick>,
}

fn run_reference(dataset: &str) -> Reference {
    let eng = engine(1);
    let handle = eng.submit(request(dataset).progress_every(1).named("ref"));
    let mut ticks = HashMap::new();
    for event in handle.progress() {
        if let JobEvent::Progress {
            iteration,
            delta,
            sim_time_s,
            cost,
        } = event
        {
            ticks.insert(
                iteration,
                Tick {
                    delta: delta.to_bits(),
                    sim_time: sim_time_s.to_bits(),
                    cost,
                },
            );
        }
    }
    let trained = handle.join().unwrap();
    let model = eng.model("ref").unwrap();
    Reference {
        trained,
        model,
        ticks,
    }
}

/// The tentpole acceptance sweep: a job interrupted twice — each time the
/// engine is torn down and rebuilt on the state directory — finishes
/// bit-identical to the uninterrupted run, on the driver-resident dataset
/// (local backend) and the cluster-mapped one (simulated cluster), at 1,
/// 2, and 8 workers.
#[test]
fn killed_jobs_resume_bit_identically_across_backends_and_workers() {
    for dataset in ["adult", "svm1"] {
        let reference = run_reference(dataset);
        let expected_backend = if dataset == "svm1" {
            "simulated-cluster"
        } else {
            "local"
        };
        assert_eq!(reference.trained.summary.iterations, MAX_ITER);
        assert_eq!(reference.trained.summary.backend, expected_backend);

        for workers in [1usize, 2, 8] {
            let label = format!("{dataset} at {workers} workers");
            let dir = state_dir(&format!("sweep-{dataset}-{workers}"));

            // Segment 1: a tiny wall budget interrupts the job after a
            // few iterations; `checkpoint_every(1)` guarantees the last
            // completed boundary survives the "crash".
            let eng1 = engine(workers).with_state_dir(&dir);
            let seg1 = eng1
                .train(
                    request(dataset)
                        .checkpoint_every(1)
                        .wall_limit(Duration::from_millis(2))
                        .named("seg1"),
                )
                .unwrap();
            assert!(!seg1.summary.converged, "{label}");
            let it1 = seg1.summary.iterations;
            assert!(
                (1..MAX_ITER).contains(&it1),
                "{label}: segment 1 must stop on its wall budget mid-run, stopped at {it1}"
            );
            drop(eng1);

            // Segment 2: a fresh engine resumes and is interrupted again.
            // Its wall budget covers this segment only — progress past
            // `it1` proves the limit is not charged against the time the
            // checkpointed prefix already consumed.
            let eng2 = engine(workers).with_state_dir(&dir);
            let seg2 = eng2
                .train(
                    request(dataset)
                        .resume(true)
                        .checkpoint_every(1)
                        .wall_limit(Duration::from_millis(6))
                        .named("seg2"),
                )
                .unwrap();
            assert_eq!(eng2.jobs_resumed(), 1, "{label}");
            let it2 = seg2.summary.iterations;
            assert!(
                it2 > it1,
                "{label}: a resumed wall budget covers the new segment only ({it1} -> {it2})"
            );
            assert!(
                it2 < MAX_ITER,
                "{label}: segment 2 must stop on its wall budget mid-run"
            );
            drop(eng2);

            // Segment 3: resume once more and run to completion, replaying
            // the plan decision from disk and streaming every tick.
            let eng3 = engine(workers).with_state_dir(&dir);
            let handle = eng3.submit(request(dataset).resume(true).progress_every(1).named("fin"));
            let mut resumed_at = None;
            let mut cache_hit = false;
            let mut ticks = HashMap::new();
            for event in handle.progress() {
                match event {
                    JobEvent::PlanChosen { cache_hit: hit, .. } => cache_hit = hit,
                    JobEvent::Resumed { iteration } => resumed_at = Some(iteration),
                    JobEvent::Progress {
                        iteration,
                        delta,
                        sim_time_s,
                        cost,
                    } => {
                        ticks.insert(
                            iteration,
                            Tick {
                                delta: delta.to_bits(),
                                sim_time: sim_time_s.to_bits(),
                                cost,
                            },
                        );
                    }
                    _ => {}
                }
            }
            let fin = handle.join().unwrap();
            assert!(
                cache_hit,
                "{label}: the persisted plan decision replays from disk"
            );
            assert_eq!(
                resumed_at,
                Some(it2),
                "{label}: segment 3 resumes at segment 2's last boundary"
            );
            assert_eq!(eng3.jobs_resumed(), 1, "{label}");

            // The resumed tail retraces the uninterrupted trajectory tick
            // for tick, bit for bit.
            assert_eq!(ticks.len() as u64, MAX_ITER - it2, "{label}");
            for (iteration, tick) in &ticks {
                assert_eq!(
                    Some(tick),
                    reference.ticks.get(iteration),
                    "{label}: tick {iteration} diverged from the uninterrupted run"
                );
            }

            // Terminal state: identical to the uninterrupted run — model,
            // simulated clock, and cumulative usage across all segments.
            assert_eq!(fin.summary.iterations, MAX_ITER, "{label}");
            assert_eq!(fin.summary.plan, reference.trained.summary.plan, "{label}");
            assert_eq!(fin.summary.backend, expected_backend, "{label}");
            assert_eq!(
                fin.summary.sim_time_s.to_bits(),
                reference.trained.summary.sim_time_s.to_bits(),
                "{label}: simulated clock"
            );
            assert_eq!(
                fin.summary.usage, reference.trained.summary.usage,
                "{label}: usage metered across segments must sum to the uninterrupted run's"
            );
            assert_eq!(
                eng3.model("fin").unwrap().weights,
                reference.model.weights,
                "{label}: final weights"
            );

            // Completion spends the checkpoint.
            assert_eq!(
                std::fs::read_dir(dir.join("checkpoints")).unwrap().count(),
                0,
                "{label}: a finished job leaves no checkpoint behind"
            );
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn replan_engine(workers: usize) -> Engine {
    engine(workers).with_replanning(ReplanPolicy::default())
}

/// Plant a doctored plan decision in `eng`'s cache: the *worst* plan is
/// served as the winner and its variant's curve fit is inflated 1000×, so
/// the executed deltas fall far outside the divergence band and the job
/// must replan mid-flight.
fn plant_misprediction(eng: &Engine, dataset: &str) -> ml4all::GdPlan {
    let cluster = eng.cluster().clone();
    let req = request(dataset);
    let mut doctored = eng.explain(ExplainRequest::new(request(dataset))).unwrap();
    doctored.choices.rotate_right(1);
    let bad = doctored.choices[0].plan;
    for est in &mut doctored.estimates {
        if std::mem::discriminant(&est.variant) == std::mem::discriminant(&bad.variant) {
            est.estimate.fit.a *= 1e3;
        }
    }
    // The cache key the engine will look this up under: same registry
    // analog (cap 1000, seed 7 — the engine's materialization inputs),
    // same spec/seed/speculation/cluster, calibration generation 0.
    let spec = match dataset {
        "adult" => ml4all_datasets::registry::adult(),
        _ => ml4all_datasets::registry::svm1(),
    };
    let data = spec.build(1000, 7, &cluster).unwrap();
    let key = PlanCacheKey::new(
        data.fingerprint(),
        &req.spec,
        req.seed,
        &speculation(),
        &cluster,
        0,
    );
    eng.plan_cache().insert(key, &doctored);
    bad
}

/// A replanned run's observables, captured bit-exactly.
struct ReplannedRun {
    trained: ml4all::Trained,
    model: ml4all::Model,
    /// `(iteration, to-plan)` of the mid-flight switch.
    switch: (u64, ml4all::GdPlan),
    ticks: HashMap<u64, Tick>,
}

fn run_replanned(dataset: &str, workers: usize) -> ReplannedRun {
    let eng = replan_engine(workers);
    let bad = plant_misprediction(&eng, dataset);
    let handle = eng.submit(request(dataset).progress_every(1).named("rp"));
    let mut switch = None;
    let mut ticks = HashMap::new();
    for event in handle.progress() {
        match event {
            JobEvent::Replanned {
                iteration,
                from,
                to,
                cost_delta,
            } => {
                assert_eq!(from, bad, "the switch abandons the planted plan");
                assert_ne!(to, bad);
                assert!(cost_delta.is_finite());
                switch = Some((iteration, to));
            }
            JobEvent::Progress {
                iteration,
                delta,
                sim_time_s,
                cost,
            } => {
                ticks.insert(
                    iteration,
                    Tick {
                        delta: delta.to_bits(),
                        sim_time: sim_time_s.to_bits(),
                        cost,
                    },
                );
            }
            _ => {}
        }
    }
    let trained = handle.join().unwrap();
    assert_eq!(eng.replans(), 1);
    let switch = switch.expect("the misprediction must trigger a replan");
    assert_eq!(
        trained.summary.plan, switch.1,
        "the job finishes under the new plan"
    );
    let model = eng.model("rp").unwrap();
    ReplannedRun {
        trained,
        model,
        switch,
        ticks,
    }
}

/// Mid-flight replanning is deterministic: a planted misprediction makes
/// the job switch plans mid-run, and the switch iteration, every tick,
/// and the final weights are bit-identical at 1, 2, and 8 workers, on the
/// driver-resident dataset (local backend) and the cluster-mapped one —
/// and across a kill-and-resume whose segments straddle the switch point.
#[test]
fn induced_replans_are_bit_identical_across_workers_backends_and_resume() {
    for dataset in ["adult", "svm1"] {
        let reference = run_replanned(dataset, 1);
        assert_eq!(reference.trained.summary.iterations, MAX_ITER);

        for workers in [2usize, 8] {
            let label = format!("{dataset} at {workers} workers");
            let run = run_replanned(dataset, workers);
            assert_eq!(run.switch, reference.switch, "{label}: switch point");
            assert_eq!(run.ticks, reference.ticks, "{label}: trajectory");
            assert_eq!(
                run.trained.summary.sim_time_s.to_bits(),
                reference.trained.summary.sim_time_s.to_bits(),
                "{label}: simulated clock"
            );
            assert_eq!(
                run.model.weights, reference.model.weights,
                "{label}: final weights"
            );
        }

        // Kill and resume: wherever the wall budget lands relative to the
        // switch, the combined segments replay exactly one switch and
        // finish bit-identical to the uninterrupted replanned run.
        let label = format!("{dataset} killed and resumed");
        let dir = state_dir(&format!("replan-{dataset}"));
        let eng1 = replan_engine(2).with_state_dir(&dir);
        plant_misprediction(&eng1, dataset);
        // The divergence trigger rides the tick stream, so every segment
        // must tick at the reference cadence for the switch to land on
        // the same iteration.
        let seg1 = eng1
            .train(
                request(dataset)
                    .progress_every(1)
                    .checkpoint_every(1)
                    .wall_limit(Duration::from_millis(2))
                    .named("seg1"),
            )
            .unwrap();
        assert!(
            (1..MAX_ITER).contains(&seg1.summary.iterations),
            "{label}: segment 1 must stop on its wall budget mid-run"
        );
        let replans1 = eng1.replans();
        drop(eng1);

        let eng2 = replan_engine(2).with_state_dir(&dir);
        plant_misprediction(&eng2, dataset);
        let fin = eng2
            .train(request(dataset).resume(true).progress_every(1).named("fin"))
            .unwrap();
        assert_eq!(eng2.jobs_resumed(), 1, "{label}");
        assert_eq!(
            replans1 + eng2.replans(),
            1,
            "{label}: exactly one switch across segments"
        );
        assert_eq!(fin.summary.iterations, MAX_ITER, "{label}");
        assert_eq!(fin.summary.plan, reference.trained.summary.plan, "{label}");
        assert_eq!(
            fin.summary.sim_time_s.to_bits(),
            reference.trained.summary.sim_time_s.to_bits(),
            "{label}: simulated clock across segments"
        );
        assert_eq!(
            fin.summary.usage, reference.trained.summary.usage,
            "{label}: cumulative usage across segments"
        );
        assert_eq!(
            eng2.model("fin").unwrap().weights,
            reference.model.weights,
            "{label}: final weights"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// A corrupted or truncated checkpoint is rejected with a typed error —
/// never resumed from, never a panic — and leaves the engine healthy: once
/// the artifact is restored, the same request resumes and completes.
#[test]
fn damaged_checkpoints_are_rejected_typed_and_never_resumed() {
    let dir = state_dir("damaged-ckpt");
    let eng = engine(2).with_state_dir(&dir);
    eng.train(
        request("adult")
            .checkpoint_every(1)
            .wall_limit(Duration::from_millis(2))
            .named("seg1"),
    )
    .unwrap();
    let ckpt = std::fs::read_dir(dir.join("checkpoints"))
        .unwrap()
        .next()
        .expect("the interrupted job left a checkpoint")
        .unwrap()
        .path();
    let original = std::fs::read(&ckpt).unwrap();

    let resume = || eng.train(request("adult").resume(true).named("fin"));
    for damaged in [
        &original[..original.len() - 5], // truncated mid-payload
        &original[..12],                 // truncated inside the header
        b"garbage, not a checkpoint\n".as_slice(),
        b"".as_slice(),
    ] {
        std::fs::write(&ckpt, damaged).unwrap();
        let err = resume().unwrap_err();
        assert!(
            matches!(
                &err,
                SessionError::Checkpoint(
                    CheckpointError::Format(_) | CheckpointError::Checksum { .. }
                )
            ),
            "{} damaged bytes: expected a typed rejection, got {err:?}",
            damaged.len()
        );
    }

    // Restoring the artifact restores the job: it resumes and completes.
    std::fs::write(&ckpt, &original).unwrap();
    let fin = resume().unwrap();
    assert_eq!(fin.summary.iterations, MAX_ITER);
    assert_eq!(eng.jobs_resumed(), 1);
    let _ = std::fs::remove_dir_all(dir);
}

/// Truncating a persisted slab — any amount, down to an empty file — is a
/// typed `SlabError::Format`, caught by header validation before anything
/// is mapped.
#[test]
fn truncated_slabs_are_rejected_typed() {
    use ml4all_dataflow::{open_slab, write_slab, ColumnStore, SlabError};
    use ml4all_datasets::synth::{dense_classification, DenseClassConfig};

    let dir = state_dir("damaged-slab");
    std::fs::create_dir_all(&dir).unwrap();
    let points = dense_classification(&DenseClassConfig {
        n: 200,
        dims: 4,
        noise: 0.05,
        seed: 11,
    });
    let store: ColumnStore = points.into_iter().collect();
    let slab = dir.join("data.slab");
    write_slab(&slab, &store).unwrap();
    let intact = open_slab(&slab).unwrap();
    assert_eq!(intact.len(), 200);

    let bytes = std::fs::read(&slab).unwrap();
    for keep in [bytes.len() - 1, bytes.len() / 2, 16, 0] {
        std::fs::write(&slab, &bytes[..keep]).unwrap();
        assert!(
            matches!(open_slab(&slab), Err(SlabError::Format(_))),
            "a slab truncated to {keep} bytes must fail header validation"
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}
