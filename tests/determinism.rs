//! Determinism: identical seeds must give identical models, iteration
//! counts, and simulated costs across the executor, the optimizer, and
//! the baselines — the experiments are reproducible bit for bit.

use std::sync::Arc;

use ml4all_baselines::MllibRunner;
use ml4all_core::chooser::{choose_plan, OptimizerConfig};
use ml4all_core::estimator::SpeculationConfig;
use ml4all_dataflow::{Backend, ClusterSpec, Runtime, SamplingMethod, SimEnv, RNG_STREAM_VERSION};
use ml4all_datasets::registry;
use ml4all_gd::{execute_plan, GdPlan, GdVariant, GradientKind, TrainParams, TransformPolicy};

fn params() -> TrainParams {
    let mut p = TrainParams::paper_defaults(GradientKind::LogisticRegression);
    p.max_iter = 100;
    p.tolerance = 0.0;
    p.seed = 1234;
    p
}

#[test]
fn executor_is_deterministic_per_seed() {
    let cluster = ClusterSpec::paper_testbed();
    let data = registry::adult().build(1000, 77, &cluster).unwrap();
    let plan = GdPlan::mgd(
        100,
        TransformPolicy::Lazy,
        SamplingMethod::ShuffledPartition,
    )
    .unwrap();

    let a = ml4all_bench::runs::run_plan(&plan, &data, &params(), &cluster).unwrap();
    let b = ml4all_bench::runs::run_plan(&plan, &data, &params(), &cluster).unwrap();
    assert_eq!(a.weights, b.weights);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.sim_time_s, b.sim_time_s);
    assert_eq!(a.error_seq, b.error_seq);

    // A different seed must actually change the sampled trajectory.
    let mut p2 = params();
    p2.seed = 4321;
    let c = ml4all_bench::runs::run_plan(&plan, &data, &p2, &cluster).unwrap();
    assert_ne!(a.weights, c.weights);
}

#[test]
fn dataset_generation_is_deterministic_per_seed() {
    let cluster = ClusterSpec::paper_testbed();
    let a = registry::rcv1().build(500, 9, &cluster).unwrap();
    let b = registry::rcv1().build(500, 9, &cluster).unwrap();
    let pa = a.to_points();
    let pb = b.to_points();
    assert_eq!(pa, pb);
}

#[test]
fn optimizer_choice_is_deterministic() {
    let cluster = ClusterSpec::paper_testbed();
    let data = registry::covtype().build(1500, 5, &cluster).unwrap();
    let config = || {
        OptimizerConfig::new(GradientKind::LogisticRegression)
            .with_tolerance(0.01)
            .with_max_iter(300)
            .with_speculation(SpeculationConfig {
                sample_size: 300,
                budget: std::time::Duration::from_secs(30),
                max_iterations: 3000,
                ..SpeculationConfig::default()
            })
    };
    let a = choose_plan(&data, &config(), &cluster).unwrap();
    let b = choose_plan(&data, &config(), &cluster).unwrap();
    assert_eq!(a.best().plan, b.best().plan);
    assert_eq!(a.best().estimated_iterations, b.best().estimated_iterations);
    assert_eq!(a.speculation_sim_s, b.speculation_sim_s);
}

/// The runtime acceptance bar: the same seed and plan must produce an
/// identical `TrainResult` — weights, iterations, stop reason, cost
/// breakdown, and error sequence — whether the worker pool has 1, 2, or
/// 8 workers. Covers the wave-parallel batch path, the parallel eager
/// transform, and the per-partition-seeded Bernoulli sampler.
#[test]
fn train_result_is_identical_across_worker_counts() {
    let cluster = ClusterSpec::paper_testbed();
    let data = registry::adult().build(1200, 77, &cluster).unwrap();
    let plans = [
        GdPlan::bgd(),
        GdPlan::mgd(100, TransformPolicy::Eager, SamplingMethod::Bernoulli).unwrap(),
        GdPlan::sgd(TransformPolicy::Lazy, SamplingMethod::ShuffledPartition).unwrap(),
    ];
    for plan in plans {
        let run = |workers: usize| {
            let runtime = Arc::new(Runtime::new(workers));
            let mut env = SimEnv::with_runtime(cluster.clone(), runtime);
            execute_plan(&plan, &data, &params(), &mut env).unwrap()
        };
        let r1 = run(1);
        for (workers, r) in [(2, run(2)), (8, run(8))] {
            assert_eq!(
                r1.weights, r.weights,
                "{plan}: weights at {workers} workers"
            );
            assert_eq!(r1.iterations, r.iterations, "{plan}: iterations");
            assert_eq!(r1.stop, r.stop, "{plan}: stop reason");
            assert_eq!(
                r1.final_delta.to_bits(),
                r.final_delta.to_bits(),
                "{plan}: final delta"
            );
            assert_eq!(r1.cost, r.cost, "{plan}: cost breakdown");
            assert_eq!(
                r1.sim_time_s.to_bits(),
                r.sim_time_s.to_bits(),
                "{plan}: simulated time"
            );
            assert_eq!(r1.error_seq, r.error_seq, "{plan}: error sequence");
            assert_eq!(
                r1.sampler_shuffles, r.sampler_shuffles,
                "{plan}: sampler shuffles"
            );
        }
    }
}

/// The chooser's speculative runs dispatch through the same pool; the full
/// costed plan table must not depend on the worker count either.
#[test]
fn optimizer_choice_is_identical_across_worker_counts() {
    let cluster = ClusterSpec::paper_testbed();
    let data = registry::covtype().build(1500, 5, &cluster).unwrap();
    let report_for = |workers: usize| {
        let config = OptimizerConfig::new(GradientKind::LogisticRegression)
            .with_tolerance(0.01)
            .with_max_iter(300)
            .with_speculation(SpeculationConfig {
                sample_size: 300,
                max_iterations: 3000,
                ..SpeculationConfig::default()
            })
            .with_runtime(Arc::new(Runtime::new(workers)));
        choose_plan(&data, &config, &cluster).unwrap()
    };
    let r1 = report_for(1);
    for workers in [2, 8] {
        let r = report_for(workers);
        // PlanChoice carries no wall-clock fields, so the whole costed
        // table can be compared structurally via its JSON form.
        assert_eq!(
            serde_json::to_string(&r1.choices).unwrap(),
            serde_json::to_string(&r.choices).unwrap(),
            "costed plan table at {workers} workers"
        );
        assert_eq!(r1.speculation_sim_s, r.speculation_sim_s);
        for (a, b) in r1.estimates.iter().zip(&r.estimates) {
            assert_eq!(a.estimate.iterations, b.estimate.iterations);
            assert_eq!(a.estimate.pairs, b.estimate.pairs);
        }
    }
}

/// The PR-4 acceptance bar: a 16-seed sweep across worker counts {1, 2, 8}
/// and backends {local, simulated-cluster} produces bit-identical weights
/// and rendered plan tables. The backend is an accounting overlay — it
/// must never perturb the math, the RNG streams, or the costed table.
#[test]
fn seed_sweep_is_bit_identical_across_workers_and_backends() {
    let cluster = ClusterSpec::paper_testbed();
    // Bernoulli sampling on svm1's 64 physical partitions exercises the
    // per-partition-seeded RNG streams — the part of execution most
    // sensitive to worker count and placement.
    let data = registry::svm1().build(400, 21, &cluster).unwrap();
    let plan = GdPlan::mgd(50, TransformPolicy::Eager, SamplingMethod::Bernoulli).unwrap();
    for seed in 0..16u64 {
        let mut params = params();
        params.seed = seed;
        params.max_iter = 25;
        let train = |runtime: &Arc<Runtime>, backend: Backend| {
            let mut env =
                SimEnv::with_runtime(cluster.clone(), Arc::clone(runtime)).with_backend(backend);
            execute_plan(&plan, &data, &params, &mut env).unwrap()
        };
        // A *speculative* chooser config: the three variant estimates
        // genuinely dispatch through the given pool, so the rendered
        // table actually depends on the runtime under test (a fixed-
        // iteration config would compute the same table everywhere).
        // The chooser never executes on a backend, so the table is
        // compared per worker count only.
        let table = |runtime: &Arc<Runtime>| {
            let mut config = OptimizerConfig::new(GradientKind::LogisticRegression)
                .with_tolerance(0.01)
                .with_max_iter(300)
                .with_speculation(SpeculationConfig {
                    sample_size: 200,
                    max_iterations: 1000,
                    ..SpeculationConfig::default()
                })
                .with_runtime(Arc::clone(runtime));
            config.seed = seed;
            ml4all::render_report(&choose_plan(&data, &config, &cluster).unwrap())
        };
        let reference_runtime = Arc::new(Runtime::new(1));
        let reference = train(&reference_runtime, Backend::Local);
        let reference_table = table(&reference_runtime);
        assert_eq!(reference.rng_stream_version, RNG_STREAM_VERSION);
        for workers in [1usize, 2, 8] {
            let runtime = Arc::new(Runtime::new(workers));
            if workers > 1 {
                assert_eq!(
                    reference_table,
                    table(&runtime),
                    "plan table: seed {seed}, {workers} workers"
                );
            }
            for backend in [Backend::Local, Backend::simulated_cluster(&cluster)] {
                if workers == 1 && backend == Backend::Local {
                    continue; // the reference itself
                }
                let label = format!("seed {seed}, {workers} workers, {backend} backend");
                let r = train(&runtime, backend);
                assert_eq!(reference.weights, r.weights, "weights: {label}");
                assert_eq!(reference.iterations, r.iterations, "iterations: {label}");
                assert_eq!(reference.cost, r.cost, "cost breakdown: {label}");
                assert_eq!(
                    reference.sim_time_s.to_bits(),
                    r.sim_time_s.to_bits(),
                    "simulated time: {label}"
                );
            }
        }
    }
}

#[test]
fn baselines_are_deterministic_per_seed() {
    let cluster = ClusterSpec::paper_testbed();
    let data = registry::adult().build(800, 3, &cluster).unwrap();
    let mut env_a = SimEnv::new(cluster.clone());
    let a = MllibRunner::default()
        .run(
            GdVariant::MiniBatch { batch: 50 },
            &data,
            &params(),
            &mut env_a,
        )
        .unwrap();
    let mut env_b = SimEnv::new(cluster);
    let b = MllibRunner::default()
        .run(
            GdVariant::MiniBatch { batch: 50 },
            &data,
            &params(),
            &mut env_b,
        )
        .unwrap();
    assert_eq!(a.weights, b.weights);
    assert_eq!(a.sim_time_s, b.sim_time_s);
}
