//! Golden-file snapshots of the rendered `explain` plan table, with and
//! without the measured column — the `EXPLAIN` surface is a contract, so
//! its exact rendering (column set, cost formatting, platform mappings,
//! RNG-stream footer) is pinned — plus the rendered `JobEvent` progress
//! trace of a cold-then-cached engine job pair. Regenerate with
//! `UPDATE_GOLDEN=1` after an intended change.

use ml4all::{
    render_report, render_trace, DataSource, Engine, ExplainRequest, GradientKind, JobEvent,
    Session, TrainRequest,
};
use ml4all_bench::golden::assert_golden;
use ml4all_core::estimator::SpeculationConfig;

fn request(dataset: &str) -> TrainRequest {
    TrainRequest::new(
        GradientKind::LogisticRegression,
        DataSource::registry(dataset),
    )
    .max_iter(40)
}

#[test]
fn explain_table_snapshot_without_measured_column() {
    let session = Session::new();
    let report = session
        .explain(ExplainRequest::new(request("adult")))
        .unwrap();
    assert!(report.choices.iter().all(|c| c.measured_s.is_none()));
    assert_golden("explain_adult.txt", &render_report(&report));
}

#[test]
fn explain_table_snapshot_with_measured_column() {
    let session = Session::new();
    let report = session
        .explain(ExplainRequest::new(request("adult")).measured(true))
        .unwrap();
    assert!(report.choices.iter().all(|c| c.measured_s.is_some()));
    assert_golden("explain_adult_measured.txt", &render_report(&report));
}

#[test]
fn job_trace_snapshot_for_a_cold_then_cached_job_pair() {
    // The progress-stream surface is a contract too: speculation start,
    // the plan-chosen cost vector (with the cache marker), per-K ticks
    // carrying the ledger clock, and the completion line. Everything
    // rendered is deterministic — wall-clock never appears.
    let engine = Engine::new().with_speculation(SpeculationConfig {
        sample_size: 300,
        max_iterations: 2000,
        ..SpeculationConfig::default()
    });
    let request = || {
        TrainRequest::new(
            GradientKind::LogisticRegression,
            DataSource::registry("adult"),
        )
        .epsilon(0.01)
        .max_iter(2000)
        .progress_every(500)
    };
    let cold: Vec<JobEvent> = {
        let handle = engine.submit(request().named("cold"));
        let events = handle.progress().collect();
        handle.join().unwrap();
        events
    };
    let cached: Vec<JobEvent> = {
        let handle = engine.submit(request().named("cached"));
        let events = handle.progress().collect();
        handle.join().unwrap();
        events
    };
    let trace = format!(
        "--- cold submit ---\n{}--- repeated submit ---\n{}",
        render_trace(&cold),
        render_trace(&cached)
    );
    assert_golden("job_trace.txt", &trace);
}

#[test]
fn explain_table_snapshot_for_a_cluster_mapped_dataset() {
    // svm1 declares 10 GB: the table must show Spark placements and the
    // measured column comes from simulated-cluster executions.
    let session = Session::new();
    let report = session
        .explain(ExplainRequest::new(request("svm1")).measured(true))
        .unwrap();
    let rendered = render_report(&report);
    assert!(rendered.contains("Spark"));
    assert_golden("explain_svm1_measured.txt", &rendered);
}
