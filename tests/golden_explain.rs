//! Golden-file snapshots of the rendered `explain` plan table, with and
//! without the measured column — the `EXPLAIN` surface is a contract, so
//! its exact rendering (column set, cost formatting, platform mappings,
//! RNG-stream footer) is pinned. Regenerate with `UPDATE_GOLDEN=1` after
//! an intended change.

use ml4all::{render_report, DataSource, ExplainRequest, GradientKind, Session, TrainRequest};
use ml4all_bench::golden::assert_golden;

fn request(dataset: &str) -> TrainRequest {
    TrainRequest::new(
        GradientKind::LogisticRegression,
        DataSource::registry(dataset),
    )
    .max_iter(40)
}

#[test]
fn explain_table_snapshot_without_measured_column() {
    let session = Session::new();
    let report = session
        .explain(ExplainRequest::new(request("adult")))
        .unwrap();
    assert!(report.choices.iter().all(|c| c.measured_s.is_none()));
    assert_golden("explain_adult.txt", &render_report(&report));
}

#[test]
fn explain_table_snapshot_with_measured_column() {
    let session = Session::new();
    let report = session
        .explain(ExplainRequest::new(request("adult")).measured(true))
        .unwrap();
    assert!(report.choices.iter().all(|c| c.measured_s.is_some()));
    assert_golden("explain_adult_measured.txt", &render_report(&report));
}

#[test]
fn explain_table_snapshot_for_a_cluster_mapped_dataset() {
    // svm1 declares 10 GB: the table must show Spark placements and the
    // measured column comes from simulated-cluster executions.
    let session = Session::new();
    let report = session
        .explain(ExplainRequest::new(request("svm1")).measured(true))
        .unwrap();
    let rendered = render_report(&report);
    assert!(rendered.contains("Spark"));
    assert_golden("explain_svm1_measured.txt", &rendered);
}
