//! The concurrent-vs-serial determinism suite (the PR-5 acceptance bar):
//! a mixed batch of train/explain/predict jobs, submitted simultaneously
//! to one shared [`Engine`] on 1/2/8-worker pools and across both
//! backends (adult/covtype map locally, svm1/yearpred map onto the
//! simulated cluster), must produce bit-identical weights, summaries,
//! plan tables, and predictions to the same requests run sequentially —
//! and a plan-cache hit must return the same `PlanChoice` as a cold run
//! while skipping speculation.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ml4all::{
    render_report, DataSource, Engine, ExplainRequest, GradientKind, JobEvent, Model,
    PredictRequest, Runtime, SamplingMethod, TrainRequest, Trained,
};
use ml4all_core::estimator::SpeculationConfig;
use ml4all_gd::GdVariant;
use ml4all_linalg::DenseVector;

const SEEDS: u64 = 4;
const KINDS: usize = 8;

fn engine(workers: usize) -> Engine {
    Engine::new()
        .with_runtime(Arc::new(Runtime::new(workers)))
        .with_registry_cap(600)
        .with_speculation(SpeculationConfig {
            sample_size: 200,
            budget: Duration::from_secs(30),
            max_iterations: 800,
            ..SpeculationConfig::default()
        })
}

fn inline_model(dims: usize) -> Model {
    let weights: Vec<f64> = (0..dims).map(|i| ((i % 7) as f64 - 3.0) * 0.1).collect();
    Model::new(GradientKind::LogisticRegression, DenseVector::new(weights))
}

/// The 8 job kinds of the mix, parameterized by seed. Every (kind, seed)
/// pair produces a distinct plan-cache key, so cold/hit behaviour is
/// deterministic regardless of concurrent interleaving.
fn train_request(kind: usize, seed: u64) -> Option<TrainRequest> {
    let name = format!("k{kind}-s{seed}");
    match kind {
        0 => Some(
            TrainRequest::new(
                GradientKind::LogisticRegression,
                DataSource::registry("adult"),
            )
            .epsilon(0.02)
            .max_iter(150)
            .seed(seed)
            .named(name),
        ),
        1 => Some(
            TrainRequest::new(GradientKind::Svm, DataSource::registry("svm1"))
                .max_iter(10)
                .seed(seed)
                .named(name),
        ),
        2 => Some(
            TrainRequest::new(
                GradientKind::LogisticRegression,
                DataSource::registry("covtype"),
            )
            .max_iter(120)
            .algorithm(GdVariant::Stochastic)
            .sampler(SamplingMethod::ShuffledPartition)
            .seed(seed)
            .named(name),
        ),
        6 => Some(
            TrainRequest::new(
                GradientKind::LinearRegression,
                DataSource::registry("yearpred"),
            )
            .max_iter(40)
            .seed(seed)
            .named(name),
        ),
        _ => None,
    }
}

fn explain_request(kind: usize, seed: u64) -> Option<ExplainRequest> {
    match kind {
        3 => Some(ExplainRequest::new(
            TrainRequest::new(
                GradientKind::LogisticRegression,
                DataSource::registry("adult"),
            )
            .epsilon(0.05)
            .max_iter(300)
            .seed(seed),
        )),
        4 => Some(ExplainRequest::new(
            TrainRequest::new(GradientKind::Svm, DataSource::registry("svm1"))
                .max_iter(25)
                .seed(seed),
        )),
        _ => None,
    }
}

fn predict_request(kind: usize) -> Option<PredictRequest> {
    match kind {
        5 => Some(PredictRequest::new(
            DataSource::registry("adult"),
            inline_model(123),
        )),
        7 => Some(PredictRequest::new(
            DataSource::registry("covtype"),
            inline_model(54),
        )),
        _ => None,
    }
}

/// Everything comparable a job produced, rendered to comparable form.
#[derive(Debug, PartialEq)]
enum Outcome {
    Trained {
        plan: String,
        iterations: u64,
        converged: bool,
        sim_time_bits: u64,
        backend: &'static str,
        weight_bits: Vec<u64>,
    },
    Explained {
        table: String,
    },
    Predicted {
        prediction_bits: Vec<u64>,
        mse_bits: u64,
    },
}

fn trained_outcome(engine: &Engine, trained: &Trained) -> Outcome {
    let model = engine.model(&trained.name).expect("bound model");
    Outcome::Trained {
        plan: trained.summary.plan.name(),
        iterations: trained.summary.iterations,
        converged: trained.summary.converged,
        sim_time_bits: trained.summary.sim_time_s.to_bits(),
        backend: trained.summary.backend,
        weight_bits: model
            .weights
            .as_slice()
            .iter()
            .map(|w| w.to_bits())
            .collect(),
    }
}

fn run_one(engine: &Engine, kind: usize, seed: u64) -> Outcome {
    if let Some(request) = train_request(kind, seed) {
        let trained = engine.train(request).unwrap();
        trained_outcome(engine, &trained)
    } else if let Some(request) = explain_request(kind, seed) {
        let report = engine.explain(request).unwrap();
        Outcome::Explained {
            table: render_report(&report),
        }
    } else {
        let request = predict_request(kind).expect("kind covered");
        let p = engine.predict(request).unwrap();
        Outcome::Predicted {
            prediction_bits: p.predictions.iter().map(|x| x.to_bits()).collect(),
            mse_bits: p.mse.to_bits(),
        }
    }
}

/// The serial baseline: every job of the mix, one at a time, in kind-major
/// order on a single-worker engine.
fn serial_baseline() -> HashMap<(usize, u64), Outcome> {
    let engine = engine(1);
    let mut out = HashMap::new();
    for kind in 0..KINDS {
        for seed in 0..SEEDS {
            out.insert((kind, seed), run_one(&engine, kind, seed));
        }
    }
    out
}

#[test]
fn concurrent_mixed_jobs_match_the_serial_baseline_bit_for_bit() {
    let baseline = serial_baseline();
    assert_eq!(baseline.len(), KINDS * SEEDS as usize);

    for workers in [1usize, 2, 8] {
        let engine = engine(workers);
        // Trains go through Engine::submit (true jobs on the pool);
        // explains and predicts hammer the same engine from plain
        // threads — all 32 operations in flight together.
        let mut train_handles = Vec::new();
        for kind in 0..KINDS {
            for seed in 0..SEEDS {
                if let Some(request) = train_request(kind, seed) {
                    train_handles.push(((kind, seed), engine.submit(request)));
                }
            }
        }
        let mut results: HashMap<(usize, u64), Outcome> = HashMap::new();
        std::thread::scope(|scope| {
            let mut threads = Vec::new();
            for kind in 0..KINDS {
                for seed in 0..SEEDS {
                    if train_request(kind, seed).is_some() {
                        continue;
                    }
                    let engine = &engine;
                    threads.push((
                        (kind, seed),
                        scope.spawn(move || run_one(engine, kind, seed)),
                    ));
                }
            }
            for (key, thread) in threads {
                results.insert(key, thread.join().unwrap());
            }
        });
        for (key, handle) in train_handles {
            let trained = handle.join().unwrap();
            results.insert(key, trained_outcome(&engine, &trained));
        }

        assert_eq!(results.len(), baseline.len());
        for (key, outcome) in &results {
            assert_eq!(
                outcome, &baseline[key],
                "kind {} seed {} at {workers} workers diverged from the serial baseline",
                key.0, key.1
            );
        }

        // The plan-cache acceptance bar, on the same warmed engine: a
        // repeated decision is served as a hit, skips speculation, and
        // returns the same PlanChoice table as the cold run.
        let repeat = train_request(0, 0).unwrap();
        let cold_plan = match &baseline[&(0, 0)] {
            Outcome::Trained { plan, .. } => plan.clone(),
            other => panic!("kind 0 is a train job, got {other:?}"),
        };
        let report = engine.explain(ExplainRequest::new(repeat.clone())).unwrap();
        assert!(report.cache_hit, "repeated decision must be a cache hit");
        assert_eq!(report.best().plan.name(), cold_plan);
        let handle = engine.submit(repeat.named("repeat"));
        let events: Vec<JobEvent> = handle.progress().collect();
        assert!(
            events.iter().any(|e| matches!(
                e,
                JobEvent::PlanChosen {
                    cache_hit: true,
                    ..
                }
            )),
            "cache-hit marker missing from job events: {events:?}"
        );
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, JobEvent::SpeculationStarted)),
            "a cache hit must skip speculation"
        );
        let repeat_trained = handle.join().unwrap();
        match &baseline[&(0, 0)] {
            Outcome::Trained {
                iterations,
                sim_time_bits,
                ..
            } => {
                assert_eq!(repeat_trained.summary.iterations, *iterations);
                assert_eq!(repeat_trained.summary.sim_time_s.to_bits(), *sim_time_bits);
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn cancelling_some_jobs_leaves_concurrent_survivors_bit_identical() {
    let baseline = {
        let engine = engine(1);
        run_one(&engine, 0, 0)
    };
    let engine = engine(4);
    // A long-running victim next to a normal job: cancel the victim
    // immediately, then check the survivor against the serial baseline.
    let victim = engine.submit(
        TrainRequest::new(
            GradientKind::LogisticRegression,
            DataSource::registry("covtype"),
        )
        .epsilon(1e-12)
        .max_iter(5_000_000)
        .progress_every(1)
        .named("victim"),
    );
    let survivor = engine.submit(train_request(0, 0).unwrap());
    for event in victim.progress() {
        if matches!(event, JobEvent::Progress { .. }) {
            victim.cancel();
            break;
        }
    }
    assert!(matches!(
        victim.join().unwrap_err(),
        ml4all::SessionError::Cancelled { .. }
    ));
    let trained = survivor.join().unwrap();
    assert_eq!(
        trained_outcome(&engine, &trained),
        baseline,
        "a cancelled neighbour must not perturb surviving jobs"
    );
    assert!(engine.model("victim").is_none());
}
