//! Cross-crate integration tests: the declarative front end, the
//! optimizer, the executor, and the metrics working together.

use ml4all_core::chooser::{choose_plan, OptimizerConfig};
use ml4all_core::estimator::SpeculationConfig;
use ml4all_core::lang::{parse_query, plan_query, Query};
use ml4all_dataflow::{ClusterSpec, PartitionScheme, PartitionedDataset, SimEnv};
use ml4all_datasets::{metrics::predict_all, registry, train_test_split};
use ml4all_gd::{execute_plan, Gradient, GradientKind};

fn quick_speculation() -> SpeculationConfig {
    SpeculationConfig {
        sample_size: 400,
        budget: std::time::Duration::from_secs(2),
        max_iterations: 5000,
        ..SpeculationConfig::default()
    }
}

#[test]
fn declarative_query_trains_a_usable_model() {
    let cluster = ClusterSpec::paper_testbed();
    let query = parse_query("run logistic() on adult having epsilon 0.01, max iter 4000;")
        .expect("query parses");
    let Query::Run(run) = query else {
        panic!("expected run query")
    };
    let mut config = plan_query(&run).expect("query plans");
    config = config.with_speculation(quick_speculation());

    let spec = registry::adult();
    let points = spec.generate_points(2500, 11);
    let (train, test) = train_test_split(points, 0.8, 11);
    let data = PartitionedDataset::with_descriptor(
        spec.descriptor(),
        train,
        PartitionScheme::RoundRobin,
        &cluster,
    )
    .expect("dataset builds");

    let report = choose_plan(&data, &config, &cluster).expect("optimizer runs");
    let params = config.train_params();
    let mut env = SimEnv::new(cluster);
    let result =
        execute_plan(&report.best().plan, &data, &params, &mut env).expect("chosen plan executes");

    let gradient = config.gradient;
    assert_eq!(gradient, GradientKind::LogisticRegression);
    let preds = predict_all(&test, |p| gradient.predict(result.weights.as_slice(), p));
    let accuracy = ml4all_datasets::accuracy(&preds, &test);
    assert!(accuracy > 0.7, "accuracy {accuracy}");
}

#[test]
fn optimizer_never_picks_the_worst_plan() {
    // The paper's stated goal: "like database optimizers, the main goal
    // ... is to avoid the worst execution plans."
    let cluster = ClusterSpec::paper_testbed();
    for spec in [registry::adult(), registry::svm1(), registry::rcv1()] {
        let data = spec.build(1200, 5, &cluster).expect("dataset builds");
        let config = OptimizerConfig::new(ml4all_bench::task_gradient(spec.task))
            .with_tolerance(1e-3)
            .with_max_iter(300)
            .with_speculation(quick_speculation());
        let report = choose_plan(&data, &config, &cluster).expect("optimizer runs");

        // Execute best and worst; best must beat worst by a clear margin
        // whenever the worst is meaningfully bad.
        let params = config.train_params();
        let best = ml4all_bench::runs::run_plan(&report.best().plan, &data, &params, &cluster)
            .expect("best plan runs");
        let worst = ml4all_bench::runs::run_plan(&report.worst().plan, &data, &params, &cluster)
            .expect("worst plan runs");
        assert!(
            best.sim_time_s <= worst.sim_time_s * 1.05,
            "{}: chosen {} ({:.1}s) vs worst {} ({:.1}s)",
            spec.name,
            report.best().plan,
            best.sim_time_s,
            report.worst().plan,
            worst.sim_time_s
        );
    }
}

#[test]
fn estimator_tracks_reality_within_an_order_of_magnitude() {
    // The Figure 6 headline property, as an integration-level assertion
    // on a smooth (logistic) objective.
    let cluster = ClusterSpec::paper_testbed();
    let spec = registry::covtype();
    let data = spec.build(2500, 13, &cluster).expect("dataset builds");
    let mut params = ml4all_gd::TrainParams::paper_defaults(GradientKind::LogisticRegression);
    params.tolerance = 0.01;
    params.max_iter = 20_000;
    params.record_error_seq = false;

    let est = ml4all_core::estimator::estimate_iterations(
        &data,
        ml4all_gd::GdVariant::Batch,
        &params,
        0.01,
        &quick_speculation(),
        &cluster,
    )
    .expect("estimate");
    let real = ml4all_bench::runs::run_plan(&ml4all_gd::GdPlan::bgd(), &data, &params, &cluster)
        .expect("real run");
    assert!(real.converged(), "real run converged");
    let ratio = est.iterations.max(real.iterations) as f64
        / est.iterations.min(real.iterations).max(1) as f64;
    assert!(
        ratio <= 10.0,
        "estimated {} vs real {} (ratio {ratio:.1})",
        est.iterations,
        real.iterations
    );
}

#[test]
fn skewed_dataset_with_shuffle_sampling_hurts_test_error() {
    // The Section 8.5 rcv1 caveat: shuffled-partition sampling on a
    // label-sorted (contiguously partitioned) dataset biases the model.
    let cluster = ClusterSpec::paper_testbed();
    let spec = registry::rcv1();
    let points = spec.generate_points(2400, 3);
    let (train, test) = train_test_split(points, 0.8, 3);
    let data = PartitionedDataset::with_descriptor(
        spec.descriptor(),
        train,
        PartitionScheme::Contiguous,
        &cluster,
    )
    .expect("dataset builds");

    let mut params = ml4all_gd::TrainParams::paper_defaults(GradientKind::LogisticRegression);
    params.tolerance = 0.0;
    // The bias is a partition-locality effect: keep the run short enough
    // that shuffled-partition sampling stays inside its first (single
    // class) partition, with a step large enough to actually absorb it.
    params.max_iter = 150;
    params.step = ml4all_gd::StepSize::Constant(0.5);
    let gradient = GradientKind::LogisticRegression;

    let mse_for = |sampling| {
        let plan = ml4all_gd::GdPlan {
            variant: ml4all_gd::GdVariant::Stochastic,
            transform: ml4all_gd::TransformPolicy::Eager,
            sampling: Some(sampling),
        };
        let r = ml4all_bench::runs::run_plan(&plan, &data, &params, &cluster).expect("runs");
        let preds = predict_all(&test, |p| gradient.predict(r.weights.as_slice(), p));
        ml4all_datasets::mean_squared_error(&preds, &test)
    };

    let shuffle_mse = mse_for(ml4all_dataflow::SamplingMethod::ShuffledPartition);
    let bernoulli_mse = mse_for(ml4all_dataflow::SamplingMethod::Bernoulli);
    assert!(
        shuffle_mse > bernoulli_mse,
        "shuffle {shuffle_mse} should exceed bernoulli {bernoulli_mse} on skewed data"
    );
}
