//! Integration tests for the `ml4all-serve` network front end: wire/
//! in-process bit-identity, tenant isolation, cancellation prefix
//! exactness, framing robustness, and the golden wire-frame snapshot
//! (`tests/golden/wire_frames.txt`, regenerate with `UPDATE_GOLDEN=1`).

use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ml4all::{DataSource, Engine, GradientKind, JobEvent, TrainRequest};
use ml4all_bench::golden::assert_golden;
use ml4all_serve::{
    code, f64_to_bits_hex, protocol, Client, ClientError, Request, Response, ServeConfig, Server,
    TenantQuota, WireEvent, WireSource, WireTrain, PROTOCOL_VERSION,
};

fn serve(engine: Engine, config: ServeConfig) -> Server {
    Server::start(engine, config).expect("bind ephemeral port")
}

fn connect(server: &Server, tenant: &str) -> Client {
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.hello(tenant).expect("hello");
    client
}

fn adult_train(max_iter: u64, seed: u64, name: &str) -> WireTrain {
    let mut train = WireTrain::new("logistic", WireSource::Registry("adult".into()));
    train.max_iter = Some(max_iter);
    train.seed = Some(seed);
    train.name = Some(name.into());
    train
}

#[test]
fn wire_weights_are_bit_identical_to_in_process_and_share_the_plan_cache() {
    let engine = Engine::new();
    let server = serve(engine.clone(), ServeConfig::default());
    let mut client = connect(&server, "acme");

    let job = client.submit(&adult_train(40, 9, "wired")).expect("submit");
    let outcome = client.join(job).expect("join");
    assert_eq!(outcome.status, "completed");
    let wire_bits = outcome.weights_bits.expect("weights over the wire");
    assert_eq!(engine.plan_cache().misses(), 1);
    assert_eq!(engine.plan_cache().hits(), 0);

    // The same request submitted in process on the same engine: the
    // plan-cache key matches (the result name is not part of it), so
    // this is a cache hit — and the weights are bit-identical.
    let trained = engine
        .train(
            TrainRequest::new(
                GradientKind::LogisticRegression,
                DataSource::Registry("adult".into()),
            )
            .max_iter(40)
            .seed(9)
            .named("local"),
        )
        .expect("in-process train");
    assert_eq!(engine.plan_cache().hits(), 1, "second decision must hit");
    assert_eq!(trained.name, "local");
    let local_bits: Vec<String> = engine
        .model("local")
        .expect("bound model")
        .weights
        .as_slice()
        .iter()
        .map(|w| f64_to_bits_hex(*w))
        .collect();
    assert_eq!(wire_bits, local_bits, "wire weights must be bit-identical");

    // The decimal JSON numbers round-trip to the same bits too — the
    // hex form is authoritative, the float form must agree.
    let wire_floats = outcome.weights.expect("float weights");
    let float_bits: Vec<String> = wire_floats.iter().map(|w| f64_to_bits_hex(*w)).collect();
    assert_eq!(float_bits, wire_bits);

    // The wire model is bound under the tenant's namespace and
    // scoreable over the wire.
    let scores = client
        .predict("wired", &WireSource::Registry("adult".into()))
        .expect("predict");
    assert!(scores.n > 0);
    assert!(scores.accuracy.is_some(), "logistic is classification");
}

#[test]
fn tenants_cannot_observe_cancel_join_or_score_each_others_jobs() {
    let server = serve(Engine::new(), ServeConfig::default());
    let mut alpha = connect(&server, "tenant-a");
    let mut beta = connect(&server, "tenant-b");

    let job = alpha
        .submit(&adult_train(30, 0, "secret"))
        .expect("submit as a");

    let forbidden = |r: Result<(), ClientError>| match r {
        Err(ClientError::Server(e)) => assert_eq!(e.code, code::FORBIDDEN),
        other => panic!("expected forbidden, got {other:?}"),
    };
    forbidden(beta.cancel(job));
    forbidden(beta.join(job).map(|_| ()));
    forbidden(beta.observe(job, 0, |_, _| {}).map(|_| ()));

    // An id that does not exist is a distinct typed error.
    match alpha.cancel(999) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, code::UNKNOWN_JOB),
        other => panic!("expected unknown_job, got {other:?}"),
    }

    // Stats are tenant-scoped: beta sees no jobs, alpha sees exactly one.
    assert!(beta.stats().expect("stats").jobs.is_empty());
    let outcome = alpha.join(job).expect("join as a");
    assert_eq!(outcome.status, "completed");
    let stats = alpha.stats().expect("stats");
    assert_eq!(stats.tenant, "tenant-a");
    assert_eq!(stats.jobs.len(), 1);
    assert_eq!(stats.jobs[0].job, job);
    assert_eq!(stats.jobs[0].status, "completed");

    // Models are namespaced: beta cannot score alpha's result by name,
    // alpha can.
    match beta.predict("secret", &WireSource::Registry("adult".into())) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, code::FAILED),
        other => panic!("expected failed, got {other:?}"),
    }
    alpha
        .predict("secret", &WireSource::Registry("adult".into()))
        .expect("owner can score");
}

#[test]
fn wire_cancellation_reports_a_bit_identical_prefix_of_the_uncancelled_run() {
    let engine = Engine::new();

    // Reference trajectory: the same request run in process, uncancelled
    // to its iteration cap, ticks recorded per iteration.
    let spec = |name: &str| {
        TrainRequest::new(
            GradientKind::LogisticRegression,
            DataSource::Registry("adult".into()),
        )
        .epsilon(1e-12)
        .max_iter(60_000)
        .seed(3)
        .progress_every(25)
        .named(name)
    };
    let reference = engine.submit(spec("ref"));
    let mut reference_ticks: HashMap<u64, String> = HashMap::new();
    for event in reference.progress() {
        if let JobEvent::Progress {
            iteration, delta, ..
        } = event
        {
            reference_ticks.insert(iteration, f64_to_bits_hex(delta));
        }
    }
    reference.join().expect("reference run completes");

    // The same request over the wire, cancelled after the third tick by
    // a second connection of the same tenant.
    let server = serve(engine.clone(), ServeConfig::default());
    let mut observer = connect(&server, "acme");
    let mut controller = connect(&server, "acme");
    let mut train = adult_train(60_000, 3, "cut");
    train.epsilon = Some(1e-12);
    train.progress_every = Some(25);
    let job = observer.submit(&train).expect("submit");

    let mut wire_ticks: Vec<(u64, String)> = Vec::new();
    let mut cancel_sent = false;
    let mut saw_cancelled_event = false;
    let status = observer
        .observe(job, 0, |_, event| match event {
            WireEvent::Progress {
                iteration,
                delta_bits,
                ..
            } => {
                wire_ticks.push((*iteration, delta_bits.clone()));
                if wire_ticks.len() == 3 && !cancel_sent {
                    cancel_sent = true;
                    controller.cancel(job).expect("cancel over the wire");
                }
            }
            WireEvent::Cancelled { iterations } => {
                saw_cancelled_event = true;
                assert!(*iterations > 0, "partial progress must be reported");
            }
            _ => {}
        })
        .expect("observe");
    assert_eq!(status, "cancelled");
    assert!(saw_cancelled_event);
    assert!(wire_ticks.len() >= 3);

    let outcome = observer.join(job).expect("join");
    assert_eq!(outcome.status, "cancelled");
    let iterations = outcome.iterations.expect("partial iteration count");
    assert!(
        iterations > 0 && iterations < 60_000,
        "cancellation must land mid-run, got {iterations}"
    );
    assert!(outcome.weights.is_none(), "no model for a cancelled job");
    assert!(engine.model("acme:cut").is_none());

    // Prefix exactness: every tick the cancelled wire run emitted is
    // bit-identical to the uncancelled reference at that iteration.
    for (iteration, bits) in &wire_ticks {
        assert_eq!(
            Some(bits),
            reference_ticks.get(iteration),
            "tick at iteration {iteration} must match the reference"
        );
    }
}

#[test]
fn malformed_and_oversized_frames_get_typed_errors_and_the_connection_survives() {
    let config = ServeConfig {
        max_frame: 4096,
        ..ServeConfig::default()
    };
    let server = serve(Engine::new(), config);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let expect_err = |client: &mut Client, expected: &str| match client
        .read_response()
        .expect("typed response, live socket")
    {
        Response::Err(e) => assert_eq!(e.code, expected),
        Response::Ok(p) => panic!("expected {expected}, got {p:?}"),
    };

    // A fuzz batch of malformed payloads: every one must be answered
    // with `bad_frame` on a connection that stays alive.
    let malformed: [&[u8]; 8] = [
        b"",
        b"not json at all",
        b"42",
        b"\"NoSuchVerb\"",
        b"{\"Submit\":{}}",
        b"{\"Hello\":{\"tenant\":7}}",
        b"[1,2",
        b"\xff\xfe\x00garbage",
    ];
    for payload in malformed {
        client.send_raw(payload).expect("send");
        expect_err(&mut client, code::BAD_FRAME);
    }
    // Hostile nesting beyond the parser's depth cap is a typed refusal
    // too, not a stack overflow.
    let deep = "[".repeat(2_000);
    client.send_raw(deep.as_bytes()).expect("send");
    expect_err(&mut client, code::BAD_FRAME);

    // An oversized frame is drained and refused; the stream stays in
    // sync.
    client.send_raw(&vec![b'x'; 8192]).expect("send oversized");
    expect_err(&mut client, code::OVERSIZED_FRAME);

    assert_eq!(server.protocol_errors(), 10);

    // The same connection still serves real traffic afterwards.
    client.hello("acme").expect("hello after fuzz");
    let job = client.submit(&adult_train(10, 0, "ok")).expect("submit");
    assert_eq!(client.join(job).expect("join").status, "completed");
}

#[test]
fn hello_gates_verbs_and_reports_the_rng_stream_version() {
    let server = serve(Engine::new(), ServeConfig::default());

    // Verbs before Hello are refused with hello_required.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    match client.stats() {
        Err(ClientError::Server(e)) => assert_eq!(e.code, code::HELLO_REQUIRED),
        other => panic!("expected hello_required, got {other:?}"),
    }

    // A protocol version mismatch is refused with unsupported_protocol.
    match client.call(&Request::Hello {
        tenant: "acme".into(),
        protocol: Some(99),
    }) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, code::UNSUPPORTED_PROTOCOL),
        other => panic!("expected unsupported_protocol, got {other:?}"),
    }

    // A proper hello reports the server, protocol, and the RNG stream
    // version that pins bit-level reproducibility.
    let hello = client.hello("acme").expect("hello");
    assert!(hello.server.starts_with("ml4all-serve "));
    assert_eq!(hello.protocol, ml4all_serve::PROTOCOL_VERSION);
    assert_eq!(hello.rng_stream_version, ml4all::RNG_STREAM_VERSION);
    assert_eq!(hello.max_frame, ml4all_serve::DEFAULT_MAX_FRAME as u64);
    client.stats().expect("stats after hello");
}

#[test]
fn admission_refuses_over_quota_submissions_with_typed_busy_backpressure() {
    let config = ServeConfig {
        global_in_flight: 1,
        default_quota: TenantQuota {
            max_in_flight: 1,
            max_queued_bytes: 700,
        },
        ..ServeConfig::default()
    };
    let server = serve(Engine::new(), config);
    let mut client = connect(&server, "acme");

    // A long-running job occupies the single in-flight slot…
    let mut hog = adult_train(5_000_000, 0, "hog");
    hog.epsilon = Some(1e-12);
    hog.progress_every = Some(1);
    let hog_job = client.submit(&hog).expect("submit hog");
    // …wait until it is actually dispatched (its slot held, queue
    // empty), so the byte quota below fills deterministically.
    loop {
        let stats = client.stats().expect("stats");
        if stats.in_flight == 1 && stats.queued == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // …then small submissions queue until the byte quota fills, at
    // which point the server answers typed `busy` with a retry hint.
    let mut queued = Vec::new();
    let busy = loop {
        match client.submit(&adult_train(5, 0, &format!("q{}", queued.len()))) {
            Ok(job) => queued.push(job),
            Err(e) => break e,
        }
        assert!(queued.len() < 50, "quota never filled");
    };
    assert!(busy.is_busy(), "expected busy, got {busy:?}");
    match busy {
        ClientError::Server(e) => {
            assert_eq!(e.code, code::BUSY);
            assert!(e.retry_after_ms.unwrap_or(0) > 0, "hint required");
        }
        other => panic!("expected server busy, got {other:?}"),
    }
    assert!(!queued.is_empty(), "some submissions fit the quota");

    // Nothing admitted was dropped: cancel the hog and every queued job
    // runs to completion.
    client.cancel(hog_job).expect("cancel hog");
    assert_eq!(client.join(hog_job).expect("join hog").status, "cancelled");
    for job in queued {
        assert_eq!(client.join(job).expect("join queued").status, "completed");
    }
}

/// Raw-socket peer: complete the Hello handshake without a
/// [`Client`] so the test controls every byte on the wire afterwards.
fn raw_hello(server: &Server, tenant: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    protocol::write_message(
        &mut (&stream),
        &Request::Hello {
            tenant: tenant.into(),
            protocol: Some(PROTOCOL_VERSION),
        },
    )
    .expect("hello");
    match protocol::read_frame(&mut reader, 1 << 20).expect("hello response") {
        protocol::FrameIn::Frame(_) => {}
        other => panic!("expected hello frame, got {other:?}"),
    }
    (stream, reader)
}

/// Read one response frame a single byte at a time.
fn read_response_byte_by_byte(stream: &mut TcpStream) -> Response {
    let mut header = [0u8; 4];
    for byte in header.iter_mut() {
        stream
            .read_exact(std::slice::from_mut(byte))
            .expect("header byte");
    }
    let len = u32::from_be_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    for byte in payload.iter_mut() {
        stream
            .read_exact(std::slice::from_mut(byte))
            .expect("payload byte");
    }
    serde_json::from_slice(&payload).expect("parse response")
}

/// A long-running, nearly silent job: occupies its slot until cancelled
/// and emits almost no progress events.
fn hog_train(name: &str) -> WireTrain {
    let mut train = adult_train(2_000_000_000, 0, name);
    train.epsilon = Some(1e-12);
    train.progress_every = Some(1_000_000_000);
    train
}

#[test]
fn byte_at_a_time_and_pipelined_frames_get_correct_responses() {
    let server = serve(Engine::new(), ServeConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // Dribble the Hello frame one byte per syscall — the incremental
    // decoder must assemble it across arbitrarily small reads.
    let hello = protocol::encode_frame(&Request::Hello {
        tenant: "dribble".into(),
        protocol: Some(PROTOCOL_VERSION),
    })
    .expect("encode");
    for (i, byte) in hello.iter().enumerate() {
        stream.write_all(std::slice::from_ref(byte)).expect("write");
        if i % 7 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    match read_response_byte_by_byte(&mut stream) {
        Response::Ok(ml4all_serve::Payload::Hello { .. }) => {}
        other => panic!("expected hello, got {other:?}"),
    }

    // Two pipelined requests in ONE write: a fresh server assigns job 1,
    // so Submit and Join{1} can cross a frame boundary in one segment.
    // The server must answer both, in order.
    let mut pipelined = protocol::encode_frame(&Request::Submit {
        train: adult_train(5, 0, "dribble"),
    })
    .expect("encode submit");
    pipelined.extend_from_slice(
        &protocol::encode_frame(&Request::Join { job: 1 }).expect("encode join"),
    );
    stream.write_all(&pipelined).expect("pipelined write");
    match read_response_byte_by_byte(&mut stream) {
        Response::Ok(ml4all_serve::Payload::Submitted { job: 1 }) => {}
        other => panic!("expected submitted job 1, got {other:?}"),
    }
    match read_response_byte_by_byte(&mut stream) {
        Response::Ok(ml4all_serve::Payload::Joined(outcome)) => {
            assert_eq!(outcome.status, "completed");
        }
        other => panic!("expected joined, got {other:?}"),
    }
}

#[test]
fn half_open_connections_are_reaped_without_protocol_errors() {
    let server = serve(Engine::new(), ServeConfig::default());
    let mut control = connect(&server, "ops");
    let baseline = control.server_stats().expect("stats").active_connections;

    // Eight peers send a partial frame header and then vanish. The
    // partial header is not a protocol error — the peer is simply gone
    // mid-frame — but the reactor must notice the close and reap them.
    let half_open: Vec<TcpStream> = (0..8)
        .map(|_| {
            let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
            stream.write_all(&[0x00, 0x01]).expect("partial header");
            stream
        })
        .collect();
    let wait_for = |control: &mut Client, expected: u64| {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let active = control.server_stats().expect("stats").active_connections;
            if active == expected {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "active_connections stuck at {active}, wanted {expected}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    wait_for(&mut control, baseline + 8);
    drop(half_open);
    wait_for(&mut control, baseline);
    assert_eq!(
        server.protocol_errors(),
        0,
        "half-open is not a protocol error"
    );
}

#[test]
fn observer_swarm_shares_the_reactor_and_replays_bit_identically() {
    let server = serve(Engine::new(), ServeConfig::default());
    let mut control = connect(&server, "watch");
    let job = control.submit(&hog_train("watched")).expect("submit");
    loop {
        if control.stats().expect("stats").in_flight >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let threads = || -> Option<u64> {
        std::fs::read_to_string("/proc/self/status")
            .ok()?
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
    };
    let threads_before = threads();

    // 256 observers attach as raw sockets — no client threads, and
    // (the point of the reactor) no server threads either.
    const SWARM: usize = 256;
    let mut swarm: Vec<(TcpStream, BufReader<TcpStream>)> = (0..SWARM)
        .map(|_| {
            let (stream, reader) = raw_hello(&server, "watch");
            protocol::write_message(&mut (&stream), &Request::Observe { job, from: Some(0) })
                .expect("observe");
            (stream, reader)
        })
        .collect();
    let baseline = control.server_stats().expect("stats").active_connections;
    assert!(baseline > SWARM as u64, "swarm registered: {baseline}");

    if let (Some(before), Some(after)) = (threads_before, threads()) {
        // Tolerance absorbs unrelated tests starting servers in this
        // process; a thread-per-connection server would add 256 here.
        assert!(
            after < before + 8,
            "observer swarm grew the thread count {before} -> {after}"
        );
    }

    // Terminate the watched job; every parked stream gets the terminal
    // frames pushed, and all of them see byte-identical sequences.
    control.cancel(job).expect("cancel");
    assert_eq!(control.join(job).expect("join").status, "cancelled");

    let drain = |reader: &mut BufReader<TcpStream>| -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        loop {
            match protocol::read_frame(reader, 1 << 20).expect("frame") {
                protocol::FrameIn::Frame(payload) => {
                    let done = String::from_utf8_lossy(&payload).contains("ObserveEnd");
                    frames.push(payload);
                    if done {
                        return frames;
                    }
                }
                other => panic!("observer stream broke: {other:?}"),
            }
        }
    };
    let reference: Vec<Vec<u8>> = drain(&mut swarm[0].1);
    assert!(
        reference
            .iter()
            .any(|f| String::from_utf8_lossy(f).contains("Cancelled")),
        "terminal event must be pushed"
    );
    for (i, (_stream, reader)) in swarm.iter_mut().enumerate().skip(1) {
        assert_eq!(
            drain(reader),
            reference,
            "observer {i} saw different bytes than observer 0"
        );
    }

    // A latecomer replaying the now-terminal job gets the same bytes.
    let (stream, mut reader) = raw_hello(&server, "watch");
    protocol::write_message(&mut (&stream), &Request::Observe { job, from: Some(0) })
        .expect("late observe");
    assert_eq!(
        drain(&mut reader),
        reference,
        "replay must be bit-identical"
    );
}

#[test]
fn stalled_readers_are_disconnected_as_slow_consumers() {
    // A tight write-buffer cap so a stalled reader trips it quickly.
    let config = ServeConfig {
        max_write_buffer: 16 << 10,
        ..ServeConfig::default()
    };
    let server = serve(Engine::new(), config);
    let mut control = connect(&server, "firehose");

    // A chatty job: one event per iteration, ~30 MB of event frames —
    // far more than the kernel socket buffers plus the 16 KiB cap.
    let mut chatty = adult_train(200_000, 0, "chatty");
    chatty.epsilon = Some(1e-12);
    chatty.progress_every = Some(1);
    let job = control.submit(&chatty).expect("submit");

    // The observer attaches and then never reads.
    let (stream, mut reader) = raw_hello(&server, "firehose");
    protocol::write_message(&mut (&stream), &Request::Observe { job, from: Some(0) })
        .expect("observe");

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = control.server_stats().expect("stats");
        if stats.slow_consumer_disconnects >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stalled reader never tripped the write-buffer cap"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Now drain what the server managed to send: a contiguous prefix of
    // event frames, then exactly one `slow_consumer` error, then EOF —
    // frame alignment is preserved even at the cut.
    let mut next_seq = 0u64;
    let mut saw_error = false;
    loop {
        match protocol::read_frame(&mut reader, 1 << 20).expect("frame") {
            protocol::FrameIn::Frame(payload) => {
                assert!(!saw_error, "no frames may follow the slow_consumer error");
                let response: Response = serde_json::from_slice(&payload).expect("parse");
                match response {
                    Response::Ok(ml4all_serve::Payload::Event { seq, .. }) => {
                        assert_eq!(seq, next_seq, "delivered events must be a prefix");
                        next_seq += 1;
                    }
                    Response::Err(e) => {
                        assert_eq!(e.code, code::SLOW_CONSUMER);
                        saw_error = true;
                    }
                    other => panic!("unexpected frame: {other:?}"),
                }
            }
            protocol::FrameIn::Eof => break,
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert!(
        saw_error,
        "the disconnect must carry a typed slow_consumer error"
    );
    assert!(next_seq > 0, "some events were delivered before the stall");
    assert_eq!(
        control
            .server_stats()
            .expect("stats")
            .slow_consumer_disconnects,
        1
    );

    // The job itself is unaffected by its slow observer.
    assert_eq!(control.join(job).expect("join").status, "completed");
}

#[test]
fn late_observer_drains_a_backlog_larger_than_the_write_cap() {
    // Same tight cap as the stalled-reader test — but this reader keeps
    // reading, so replay must be paced through the cap, not refused by
    // it. (A slow-consumer disconnect here would mean attach-time
    // backlog size is being confused with reader stalling.)
    let config = ServeConfig {
        max_write_buffer: 16 << 10,
        ..ServeConfig::default()
    };
    let server = serve(Engine::new(), config);
    let mut control = connect(&server, "archive");

    // ~2k buffered event frames (~300 KB) on a finished job: twenty
    // times the write cap.
    let mut chatty = adult_train(2_000, 0, "archived");
    chatty.epsilon = Some(1e-12);
    chatty.progress_every = Some(1);
    let job = control.submit(&chatty).expect("submit");
    assert_eq!(control.join(job).expect("join").status, "completed");

    let (stream, mut reader) = raw_hello(&server, "archive");
    protocol::write_message(&mut (&stream), &Request::Observe { job, from: Some(0) })
        .expect("observe");
    let mut next_seq = 0u64;
    loop {
        match protocol::read_frame(&mut reader, 1 << 20).expect("frame") {
            protocol::FrameIn::Frame(payload) => {
                if String::from_utf8_lossy(&payload).contains("ObserveEnd") {
                    break;
                }
                let response: Response = serde_json::from_slice(&payload).expect("parse");
                match response {
                    Response::Ok(ml4all_serve::Payload::Event { seq, .. }) => {
                        assert_eq!(seq, next_seq, "replay must be gapless");
                        next_seq += 1;
                    }
                    other => panic!("unexpected frame: {other:?}"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert!(
        next_seq >= 2_000,
        "full backlog must replay, got {next_seq} frames"
    );
    assert_eq!(
        control
            .server_stats()
            .expect("stats")
            .slow_consumer_disconnects,
        0,
        "a reader that keeps up is not a slow consumer"
    );
}

#[test]
fn golden_wire_frame_conversation() {
    let server = serve(Engine::new(), ServeConfig::default());
    let mut transcript = String::new();
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = std::io::BufWriter::new(stream);

    let send_raw =
        |writer: &mut std::io::BufWriter<TcpStream>, transcript: &mut String, payload: &str| {
            transcript.push_str("C: ");
            transcript.push_str(payload);
            transcript.push('\n');
            protocol::write_frame(writer, payload.as_bytes()).expect("write");
            writer.flush().expect("flush");
        };
    let recv = |reader: &mut std::io::BufReader<TcpStream>, transcript: &mut String| -> String {
        match protocol::read_frame(reader, 16 << 20).expect("read") {
            protocol::FrameIn::Frame(payload) => {
                let text = String::from_utf8(payload).expect("utf8 frame");
                transcript.push_str("S: ");
                transcript.push_str(&text);
                transcript.push('\n');
                text
            }
            other => panic!("expected frame, got {other:?}"),
        }
    };
    let send =
        |writer: &mut std::io::BufWriter<TcpStream>, transcript: &mut String, request: &Request| {
            let payload = serde_json::to_string(request).expect("serialize");
            transcript.push_str("C: ");
            transcript.push_str(&payload);
            transcript.push('\n');
            protocol::write_frame(writer, payload.as_bytes()).expect("write");
            writer.flush().expect("flush");
        };

    // Hello, then a tiny fixed-iteration job — every response below is
    // deterministic (simulated time only, no wall clock on the wire).
    send(
        &mut writer,
        &mut transcript,
        &Request::Hello {
            tenant: "acme".into(),
            protocol: Some(ml4all_serve::PROTOCOL_VERSION),
        },
    );
    recv(&mut reader, &mut transcript);
    let mut train = adult_train(4, 0, "g");
    train.progress_every = Some(2);
    send(&mut writer, &mut transcript, &Request::Submit { train });
    recv(&mut reader, &mut transcript);

    // Observe replays the full buffered stream: PlanChosen, two ticks,
    // Completed, then the terminator.
    send(
        &mut writer,
        &mut transcript,
        &Request::Observe {
            job: 1,
            from: Some(0),
        },
    );
    loop {
        let text = recv(&mut reader, &mut transcript);
        if text.contains("ObserveEnd") {
            break;
        }
    }

    // Cancelling a finished job is an idempotent no-op.
    send(&mut writer, &mut transcript, &Request::Cancel { job: 1 });
    recv(&mut reader, &mut transcript);

    // A malformed frame gets a typed error on the same connection.
    send_raw(&mut writer, &mut transcript, "{oops");
    recv(&mut reader, &mut transcript);

    // Wait for the in-flight slot to clear so the stats frame is
    // deterministic (the event pump frees it just after ObserveEnd).
    {
        let mut poller = connect(&server, "acme");
        loop {
            let stats = poller.stats().expect("stats");
            if stats.global_in_flight == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    send(&mut writer, &mut transcript, &Request::Stats);
    recv(&mut reader, &mut transcript);

    assert_golden("wire_frames.txt", &transcript);
}
