//! Integration tests for the `ml4all-serve` network front end: wire/
//! in-process bit-identity, tenant isolation, cancellation prefix
//! exactness, framing robustness, and the golden wire-frame snapshot
//! (`tests/golden/wire_frames.txt`, regenerate with `UPDATE_GOLDEN=1`).

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;

use ml4all::{DataSource, Engine, GradientKind, JobEvent, TrainRequest};
use ml4all_bench::golden::assert_golden;
use ml4all_serve::{
    code, f64_to_bits_hex, protocol, Client, ClientError, Request, Response, ServeConfig, Server,
    TenantQuota, WireEvent, WireSource, WireTrain,
};

fn serve(engine: Engine, config: ServeConfig) -> Server {
    Server::start(engine, config).expect("bind ephemeral port")
}

fn connect(server: &Server, tenant: &str) -> Client {
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.hello(tenant).expect("hello");
    client
}

fn adult_train(max_iter: u64, seed: u64, name: &str) -> WireTrain {
    let mut train = WireTrain::new("logistic", WireSource::Registry("adult".into()));
    train.max_iter = Some(max_iter);
    train.seed = Some(seed);
    train.name = Some(name.into());
    train
}

#[test]
fn wire_weights_are_bit_identical_to_in_process_and_share_the_plan_cache() {
    let engine = Engine::new();
    let server = serve(engine.clone(), ServeConfig::default());
    let mut client = connect(&server, "acme");

    let job = client.submit(&adult_train(40, 9, "wired")).expect("submit");
    let outcome = client.join(job).expect("join");
    assert_eq!(outcome.status, "completed");
    let wire_bits = outcome.weights_bits.expect("weights over the wire");
    assert_eq!(engine.plan_cache().misses(), 1);
    assert_eq!(engine.plan_cache().hits(), 0);

    // The same request submitted in process on the same engine: the
    // plan-cache key matches (the result name is not part of it), so
    // this is a cache hit — and the weights are bit-identical.
    let trained = engine
        .train(
            TrainRequest::new(
                GradientKind::LogisticRegression,
                DataSource::Registry("adult".into()),
            )
            .max_iter(40)
            .seed(9)
            .named("local"),
        )
        .expect("in-process train");
    assert_eq!(engine.plan_cache().hits(), 1, "second decision must hit");
    assert_eq!(trained.name, "local");
    let local_bits: Vec<String> = engine
        .model("local")
        .expect("bound model")
        .weights
        .as_slice()
        .iter()
        .map(|w| f64_to_bits_hex(*w))
        .collect();
    assert_eq!(wire_bits, local_bits, "wire weights must be bit-identical");

    // The decimal JSON numbers round-trip to the same bits too — the
    // hex form is authoritative, the float form must agree.
    let wire_floats = outcome.weights.expect("float weights");
    let float_bits: Vec<String> = wire_floats.iter().map(|w| f64_to_bits_hex(*w)).collect();
    assert_eq!(float_bits, wire_bits);

    // The wire model is bound under the tenant's namespace and
    // scoreable over the wire.
    let scores = client
        .predict("wired", &WireSource::Registry("adult".into()))
        .expect("predict");
    assert!(scores.n > 0);
    assert!(scores.accuracy.is_some(), "logistic is classification");
}

#[test]
fn tenants_cannot_observe_cancel_join_or_score_each_others_jobs() {
    let server = serve(Engine::new(), ServeConfig::default());
    let mut alpha = connect(&server, "tenant-a");
    let mut beta = connect(&server, "tenant-b");

    let job = alpha
        .submit(&adult_train(30, 0, "secret"))
        .expect("submit as a");

    let forbidden = |r: Result<(), ClientError>| match r {
        Err(ClientError::Server(e)) => assert_eq!(e.code, code::FORBIDDEN),
        other => panic!("expected forbidden, got {other:?}"),
    };
    forbidden(beta.cancel(job));
    forbidden(beta.join(job).map(|_| ()));
    forbidden(beta.observe(job, 0, |_, _| {}).map(|_| ()));

    // An id that does not exist is a distinct typed error.
    match alpha.cancel(999) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, code::UNKNOWN_JOB),
        other => panic!("expected unknown_job, got {other:?}"),
    }

    // Stats are tenant-scoped: beta sees no jobs, alpha sees exactly one.
    assert!(beta.stats().expect("stats").jobs.is_empty());
    let outcome = alpha.join(job).expect("join as a");
    assert_eq!(outcome.status, "completed");
    let stats = alpha.stats().expect("stats");
    assert_eq!(stats.tenant, "tenant-a");
    assert_eq!(stats.jobs.len(), 1);
    assert_eq!(stats.jobs[0].job, job);
    assert_eq!(stats.jobs[0].status, "completed");

    // Models are namespaced: beta cannot score alpha's result by name,
    // alpha can.
    match beta.predict("secret", &WireSource::Registry("adult".into())) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, code::FAILED),
        other => panic!("expected failed, got {other:?}"),
    }
    alpha
        .predict("secret", &WireSource::Registry("adult".into()))
        .expect("owner can score");
}

#[test]
fn wire_cancellation_reports_a_bit_identical_prefix_of_the_uncancelled_run() {
    let engine = Engine::new();

    // Reference trajectory: the same request run in process, uncancelled
    // to its iteration cap, ticks recorded per iteration.
    let spec = |name: &str| {
        TrainRequest::new(
            GradientKind::LogisticRegression,
            DataSource::Registry("adult".into()),
        )
        .epsilon(1e-12)
        .max_iter(60_000)
        .seed(3)
        .progress_every(25)
        .named(name)
    };
    let reference = engine.submit(spec("ref"));
    let mut reference_ticks: HashMap<u64, String> = HashMap::new();
    for event in reference.progress() {
        if let JobEvent::Progress {
            iteration, delta, ..
        } = event
        {
            reference_ticks.insert(iteration, f64_to_bits_hex(delta));
        }
    }
    reference.join().expect("reference run completes");

    // The same request over the wire, cancelled after the third tick by
    // a second connection of the same tenant.
    let server = serve(engine.clone(), ServeConfig::default());
    let mut observer = connect(&server, "acme");
    let mut controller = connect(&server, "acme");
    let mut train = adult_train(60_000, 3, "cut");
    train.epsilon = Some(1e-12);
    train.progress_every = Some(25);
    let job = observer.submit(&train).expect("submit");

    let mut wire_ticks: Vec<(u64, String)> = Vec::new();
    let mut cancel_sent = false;
    let mut saw_cancelled_event = false;
    let status = observer
        .observe(job, 0, |_, event| match event {
            WireEvent::Progress {
                iteration,
                delta_bits,
                ..
            } => {
                wire_ticks.push((*iteration, delta_bits.clone()));
                if wire_ticks.len() == 3 && !cancel_sent {
                    cancel_sent = true;
                    controller.cancel(job).expect("cancel over the wire");
                }
            }
            WireEvent::Cancelled { iterations } => {
                saw_cancelled_event = true;
                assert!(*iterations > 0, "partial progress must be reported");
            }
            _ => {}
        })
        .expect("observe");
    assert_eq!(status, "cancelled");
    assert!(saw_cancelled_event);
    assert!(wire_ticks.len() >= 3);

    let outcome = observer.join(job).expect("join");
    assert_eq!(outcome.status, "cancelled");
    let iterations = outcome.iterations.expect("partial iteration count");
    assert!(
        iterations > 0 && iterations < 60_000,
        "cancellation must land mid-run, got {iterations}"
    );
    assert!(outcome.weights.is_none(), "no model for a cancelled job");
    assert!(engine.model("acme:cut").is_none());

    // Prefix exactness: every tick the cancelled wire run emitted is
    // bit-identical to the uncancelled reference at that iteration.
    for (iteration, bits) in &wire_ticks {
        assert_eq!(
            Some(bits),
            reference_ticks.get(iteration),
            "tick at iteration {iteration} must match the reference"
        );
    }
}

#[test]
fn malformed_and_oversized_frames_get_typed_errors_and_the_connection_survives() {
    let config = ServeConfig {
        max_frame: 4096,
        ..ServeConfig::default()
    };
    let server = serve(Engine::new(), config);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let expect_err = |client: &mut Client, expected: &str| match client
        .read_response()
        .expect("typed response, live socket")
    {
        Response::Err(e) => assert_eq!(e.code, expected),
        Response::Ok(p) => panic!("expected {expected}, got {p:?}"),
    };

    // A fuzz batch of malformed payloads: every one must be answered
    // with `bad_frame` on a connection that stays alive.
    let malformed: [&[u8]; 8] = [
        b"",
        b"not json at all",
        b"42",
        b"\"NoSuchVerb\"",
        b"{\"Submit\":{}}",
        b"{\"Hello\":{\"tenant\":7}}",
        b"[1,2",
        b"\xff\xfe\x00garbage",
    ];
    for payload in malformed {
        client.send_raw(payload).expect("send");
        expect_err(&mut client, code::BAD_FRAME);
    }
    // Hostile nesting beyond the parser's depth cap is a typed refusal
    // too, not a stack overflow.
    let deep = "[".repeat(2_000);
    client.send_raw(deep.as_bytes()).expect("send");
    expect_err(&mut client, code::BAD_FRAME);

    // An oversized frame is drained and refused; the stream stays in
    // sync.
    client.send_raw(&vec![b'x'; 8192]).expect("send oversized");
    expect_err(&mut client, code::OVERSIZED_FRAME);

    assert_eq!(server.protocol_errors(), 10);

    // The same connection still serves real traffic afterwards.
    client.hello("acme").expect("hello after fuzz");
    let job = client.submit(&adult_train(10, 0, "ok")).expect("submit");
    assert_eq!(client.join(job).expect("join").status, "completed");
}

#[test]
fn hello_gates_verbs_and_reports_the_rng_stream_version() {
    let server = serve(Engine::new(), ServeConfig::default());

    // Verbs before Hello are refused with hello_required.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    match client.stats() {
        Err(ClientError::Server(e)) => assert_eq!(e.code, code::HELLO_REQUIRED),
        other => panic!("expected hello_required, got {other:?}"),
    }

    // A protocol version mismatch is refused with unsupported_protocol.
    match client.call(&Request::Hello {
        tenant: "acme".into(),
        protocol: Some(99),
    }) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, code::UNSUPPORTED_PROTOCOL),
        other => panic!("expected unsupported_protocol, got {other:?}"),
    }

    // A proper hello reports the server, protocol, and the RNG stream
    // version that pins bit-level reproducibility.
    let hello = client.hello("acme").expect("hello");
    assert!(hello.server.starts_with("ml4all-serve "));
    assert_eq!(hello.protocol, ml4all_serve::PROTOCOL_VERSION);
    assert_eq!(hello.rng_stream_version, ml4all::RNG_STREAM_VERSION);
    assert_eq!(hello.max_frame, ml4all_serve::DEFAULT_MAX_FRAME as u64);
    client.stats().expect("stats after hello");
}

#[test]
fn admission_refuses_over_quota_submissions_with_typed_busy_backpressure() {
    let config = ServeConfig {
        global_in_flight: 1,
        default_quota: TenantQuota {
            max_in_flight: 1,
            max_queued_bytes: 700,
        },
        ..ServeConfig::default()
    };
    let server = serve(Engine::new(), config);
    let mut client = connect(&server, "acme");

    // A long-running job occupies the single in-flight slot…
    let mut hog = adult_train(5_000_000, 0, "hog");
    hog.epsilon = Some(1e-12);
    hog.progress_every = Some(1);
    let hog_job = client.submit(&hog).expect("submit hog");
    // …wait until it is actually dispatched (its slot held, queue
    // empty), so the byte quota below fills deterministically.
    loop {
        let stats = client.stats().expect("stats");
        if stats.in_flight == 1 && stats.queued == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // …then small submissions queue until the byte quota fills, at
    // which point the server answers typed `busy` with a retry hint.
    let mut queued = Vec::new();
    let busy = loop {
        match client.submit(&adult_train(5, 0, &format!("q{}", queued.len()))) {
            Ok(job) => queued.push(job),
            Err(e) => break e,
        }
        assert!(queued.len() < 50, "quota never filled");
    };
    assert!(busy.is_busy(), "expected busy, got {busy:?}");
    match busy {
        ClientError::Server(e) => {
            assert_eq!(e.code, code::BUSY);
            assert!(e.retry_after_ms.unwrap_or(0) > 0, "hint required");
        }
        other => panic!("expected server busy, got {other:?}"),
    }
    assert!(!queued.is_empty(), "some submissions fit the quota");

    // Nothing admitted was dropped: cancel the hog and every queued job
    // runs to completion.
    client.cancel(hog_job).expect("cancel hog");
    assert_eq!(client.join(hog_job).expect("join hog").status, "cancelled");
    for job in queued {
        assert_eq!(client.join(job).expect("join queued").status, "completed");
    }
}

#[test]
fn golden_wire_frame_conversation() {
    let server = serve(Engine::new(), ServeConfig::default());
    let mut transcript = String::new();
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = std::io::BufWriter::new(stream);

    let send_raw =
        |writer: &mut std::io::BufWriter<TcpStream>, transcript: &mut String, payload: &str| {
            transcript.push_str("C: ");
            transcript.push_str(payload);
            transcript.push('\n');
            protocol::write_frame(writer, payload.as_bytes()).expect("write");
            writer.flush().expect("flush");
        };
    let recv = |reader: &mut std::io::BufReader<TcpStream>, transcript: &mut String| -> String {
        match protocol::read_frame(reader, 16 << 20).expect("read") {
            protocol::FrameIn::Frame(payload) => {
                let text = String::from_utf8(payload).expect("utf8 frame");
                transcript.push_str("S: ");
                transcript.push_str(&text);
                transcript.push('\n');
                text
            }
            other => panic!("expected frame, got {other:?}"),
        }
    };
    let send =
        |writer: &mut std::io::BufWriter<TcpStream>, transcript: &mut String, request: &Request| {
            let payload = serde_json::to_string(request).expect("serialize");
            transcript.push_str("C: ");
            transcript.push_str(&payload);
            transcript.push('\n');
            protocol::write_frame(writer, payload.as_bytes()).expect("write");
            writer.flush().expect("flush");
        };

    // Hello, then a tiny fixed-iteration job — every response below is
    // deterministic (simulated time only, no wall clock on the wire).
    send(
        &mut writer,
        &mut transcript,
        &Request::Hello {
            tenant: "acme".into(),
            protocol: Some(ml4all_serve::PROTOCOL_VERSION),
        },
    );
    recv(&mut reader, &mut transcript);
    let mut train = adult_train(4, 0, "g");
    train.progress_every = Some(2);
    send(&mut writer, &mut transcript, &Request::Submit { train });
    recv(&mut reader, &mut transcript);

    // Observe replays the full buffered stream: PlanChosen, two ticks,
    // Completed, then the terminator.
    send(
        &mut writer,
        &mut transcript,
        &Request::Observe {
            job: 1,
            from: Some(0),
        },
    );
    loop {
        let text = recv(&mut reader, &mut transcript);
        if text.contains("ObserveEnd") {
            break;
        }
    }

    // Cancelling a finished job is an idempotent no-op.
    send(&mut writer, &mut transcript, &Request::Cancel { job: 1 });
    recv(&mut reader, &mut transcript);

    // A malformed frame gets a typed error on the same connection.
    send_raw(&mut writer, &mut transcript, "{oops");
    recv(&mut reader, &mut transcript);

    // Wait for the in-flight slot to clear so the stats frame is
    // deterministic (the event pump frees it just after ObserveEnd).
    {
        let mut poller = connect(&server, "acme");
        loop {
            let stats = poller.stats().expect("stats");
            if stats.global_in_flight == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    send(&mut writer, &mut transcript, &Request::Stats);
    recv(&mut reader, &mut transcript);

    assert_golden("wire_frames.txt", &transcript);
}
