//! Property-based tests for the dataflow substrate: cost-model
//! monotonicity, partition-geometry invariants, and sampler bounds.

use ml4all_dataflow::{
    ClusterSpec, DatasetDescriptor, PartitionScheme, PartitionedDataset, SamplerState,
    SamplingMethod, SimEnv, StorageMedium,
};
use ml4all_linalg::{FeatureVec, LabeledPoint};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec() -> ClusterSpec {
    ClusterSpec::paper_testbed()
}

fn arb_descriptor() -> impl Strategy<Value = DatasetDescriptor> {
    (
        1u64..100_000_000,
        1usize..10_000,
        1u64..(512u64 * 1024 * 1024 * 1024),
        0.001f64..1.0,
    )
        .prop_map(|(n, dims, bytes, density)| {
            DatasetDescriptor::new("prop", n, dims, bytes, density)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_geometry_is_consistent(desc in arb_descriptor()) {
        let s = spec();
        let p = desc.partitions(&s);
        let full_waves = desc.waves(&s).floor() as u64;
        let lwp = desc.last_wave_partitions(&s);
        // Full waves plus the partial wave account for every partition.
        prop_assert_eq!(full_waves * s.cap() as u64 + lwp, p);
        // Units per partition covers the dataset.
        let k = desc.units_per_partition(&s);
        prop_assert!(k * p >= desc.n);
        // Last-wave slot work is bounded by a full partition.
        prop_assert!(desc.last_wave_slot_bytes(&s) <= s.partition_bytes);
        prop_assert!(desc.last_wave_slot_units(&s) <= k);
    }

    #[test]
    fn scan_io_is_monotone_in_bytes(
        n in 1u64..1_000_000,
        dims in 1usize..1000,
        bytes_a in 1u64..(100u64 * 1024 * 1024 * 1024),
        extra in 1u64..(100u64 * 1024 * 1024 * 1024),
    ) {
        let s = spec();
        let small = DatasetDescriptor::new("a", n, dims, bytes_a, 1.0);
        let large = DatasetDescriptor::new("b", n, dims, bytes_a.saturating_add(extra), 1.0);
        let mut env_small = SimEnv::new(s.clone());
        env_small.charge_full_scan_io(&small, StorageMedium::Disk);
        let mut env_large = SimEnv::new(s);
        env_large.charge_full_scan_io(&large, StorageMedium::Disk);
        prop_assert!(env_large.elapsed_s() >= env_small.elapsed_s() - 1e-12);
    }

    #[test]
    fn auto_medium_is_between_memory_and_disk(desc in arb_descriptor()) {
        let s = spec();
        let mut mem = SimEnv::new(s.clone());
        mem.charge_full_scan_io(&desc, StorageMedium::Memory);
        let mut auto = SimEnv::new(s.clone());
        auto.charge_full_scan_io(&desc, StorageMedium::Auto);
        let mut disk = SimEnv::new(s);
        disk.charge_full_scan_io(&desc, StorageMedium::Disk);
        prop_assert!(mem.elapsed_s() <= auto.elapsed_s() + 1e-12);
        prop_assert!(auto.elapsed_s() <= disk.elapsed_s() + 1e-12);
    }

    #[test]
    fn wave_cpu_never_exceeds_serial_cpu(desc in arb_descriptor(), per_unit in 1e-9f64..1e-5) {
        let s = spec();
        let mut wave = SimEnv::new(s.clone());
        wave.charge_wave_cpu(&desc, per_unit);
        let mut serial = SimEnv::new(s);
        serial.charge_serial_cpu(desc.n, per_unit);
        // Wave scheduling parallelizes across cap slots; allow the ceil
        // slack of one partition's worth of units.
        let slack = desc.units_per_partition(&spec()) as f64 * per_unit + 1e-9;
        prop_assert!(wave.elapsed_s() <= serial.elapsed_s() + slack);
    }

    #[test]
    fn network_cost_is_monotone_and_packet_rounded(a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let s = spec();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut env_lo = SimEnv::new(s.clone());
        env_lo.charge_network(lo);
        let mut env_hi = SimEnv::new(s);
        env_hi.charge_network(hi);
        prop_assert!(env_lo.elapsed_s() <= env_hi.elapsed_s() + 1e-15);
    }

    #[test]
    fn ledger_total_is_sum_of_categories(
        io in 0.0f64..100.0, cpu in 0.0f64..100.0, net in 0.0f64..100.0, ovh in 0.0f64..100.0,
    ) {
        let mut env = SimEnv::new(spec());
        env.ledger.charge_io(io);
        env.ledger.charge_cpu(cpu);
        env.ledger.charge_net(net);
        env.ledger.charge_overhead(ovh);
        let s = env.snapshot();
        prop_assert!((s.total_s() - (io + cpu + net + ovh)).abs() < 1e-9);
    }
}

fn tiny_dataset(n: usize, partitions: u64) -> PartitionedDataset {
    let points: Vec<LabeledPoint> = (0..n)
        .map(|i| LabeledPoint::new(1.0, FeatureVec::dense(vec![i as f64])))
        .collect();
    let s = spec();
    let desc = DatasetDescriptor::new("t", n as u64, 1, partitions * s.partition_bytes, 1.0);
    PartitionedDataset::with_descriptor(desc, points, PartitionScheme::RoundRobin, &s).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn samplers_return_valid_coordinates(
        n in 10usize..500,
        parts in 1u64..8,
        m in 1usize..64,
        seed in 0u64..1000,
        method_ix in 0usize..3,
    ) {
        let method = [
            SamplingMethod::Bernoulli,
            SamplingMethod::RandomPartition,
            SamplingMethod::ShuffledPartition,
        ][method_ix];
        let data = tiny_dataset(n, parts);
        let mut env = SimEnv::new(spec());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = SamplerState::new(method);
        let coords = sampler.draw(&data, m, &mut env, &mut rng).unwrap();
        // Bernoulli may return any non-empty count; the others exactly m.
        if method != SamplingMethod::Bernoulli {
            prop_assert_eq!(coords.len(), m);
        } else {
            prop_assert!(!coords.is_empty());
        }
        for (pi, oi) in coords {
            prop_assert!(data.point(pi, oi).is_some());
        }
        // Every draw charges something.
        prop_assert!(env.elapsed_s() > 0.0);
    }

    #[test]
    fn physical_partitioning_preserves_every_point(
        n in 1usize..500,
        parts in 1u64..32,
        scheme_ix in 0usize..2,
    ) {
        let scheme = [PartitionScheme::RoundRobin, PartitionScheme::Contiguous][scheme_ix];
        let points: Vec<LabeledPoint> = (0..n)
            .map(|i| LabeledPoint::new(i as f64, FeatureVec::dense(vec![i as f64])))
            .collect();
        let s = spec();
        let desc = DatasetDescriptor::new("t", n as u64, 1, parts * s.partition_bytes, 1.0);
        let data =
            PartitionedDataset::with_descriptor(desc, points, scheme, &s).unwrap();
        prop_assert_eq!(data.physical_n(), n);
        let mut labels: Vec<f64> = data.iter_views().map(|v| v.label).collect();
        labels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert_eq!(labels, expect);
    }
}
