//! Out-of-core columnar slabs: a memory-mappable on-disk format for
//! [`ColumnStore`] plus a budget-bounded spilling builder.
//!
//! Datasets larger than the configured memory budget never materialize in
//! RAM. Ingestion streams rows into a [`SpillingBuilder`], which flushes
//! bounded in-memory segments to disk and finally merges them into one
//! **slab file**; the merged file is memory-mapped and served back as a
//! [`ColumnStore`] whose label/index/value buffers borrow the mapping
//! directly — the gradient hot loop reads mapped pages through the same
//! zero-copy [`ml4all_linalg::PointView`] path as in-memory slabs, and the
//! OS pages data in and out as the working set demands.
//!
//! # File format (version 1)
//!
//! Native-endian, a spill/cache format rather than an interchange format:
//!
//! ```text
//! offset 0   magic  b"ML4ASLAB"
//!        8   version u32 (= 1)
//!       12   kind    u32 (0 = dense, 1 = CSR)
//!       16   rows    u64
//!       24   dims    u64
//!       32   nnz     u64 (dense: rows × dims)
//! ```
//!
//! followed by page-aligned (4096-byte) sections, each in row order:
//! `labels: f64 × rows`, then for dense slabs `values: f64 × rows × dims`,
//! and for CSR `indptr: u64 × (rows + 1)`, `indices: u32 × nnz`,
//! `values: f64 × nnz`. Page alignment keeps every section aligned for its
//! element type under a whole-file mapping.
//!
//! On Unix the mapping is a direct `mmap(PROT_READ, MAP_PRIVATE)` (no
//! external crates — the two syscalls are declared here); elsewhere the
//! file is read into an 8-byte-aligned heap buffer, which loses the
//! out-of-core property but keeps every API identical.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ml4all_linalg::LinalgError;

use crate::columns::{ColumnStore, ColumnarBuilder};

/// Magic bytes opening every slab file.
pub const SLAB_MAGIC: [u8; 8] = *b"ML4ASLAB";
/// Current slab format version.
pub const SLAB_VERSION: u32 = 1;
/// Section alignment: one page, so every section is aligned for its
/// element type under a page-aligned whole-file mapping.
const SECTION_ALIGN: u64 = 4096;

const KIND_DENSE: u32 = 0;
const KIND_CSR: u32 = 1;

/// Errors from writing, opening, or spilling slab files.
#[derive(Debug)]
pub enum SlabError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The file is not a valid slab (bad magic/version/sizes/indptr).
    Format(String),
    /// A pushed sparse row was invalid (unsorted or ragged indices).
    Row(LinalgError),
}

impl std::fmt::Display for SlabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "slab io error: {e}"),
            Self::Format(why) => write!(f, "invalid slab file: {why}"),
            Self::Row(e) => write!(f, "invalid row: {e}"),
        }
    }
}

impl std::error::Error for SlabError {}

impl From<std::io::Error> for SlabError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<LinalgError> for SlabError {
    fn from(e: LinalgError) -> Self {
        Self::Row(e)
    }
}

// ---------------------------------------------------------------------------
// Memory mapping
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 0x02;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// A read-only mapping of an entire file.
///
/// On Unix this is a real `mmap`: pages load lazily and the OS may evict
/// clean pages under memory pressure, which is what makes
/// larger-than-budget datasets trainable. The mapped file must not be
/// truncated while mapped (that is undefined at the OS level); spill files
/// are private to this process, so the hazard only applies to
/// user-supplied slab files. On non-Unix targets the "mapping" is an
/// 8-byte-aligned heap copy of the file.
#[derive(Debug)]
pub struct MappedSlab {
    #[cfg(unix)]
    ptr: *const u8,
    #[cfg(not(unix))]
    buf: Vec<u64>,
    len: usize,
}

// The mapping is read-only for its entire lifetime.
unsafe impl Send for MappedSlab {}
unsafe impl Sync for MappedSlab {}

impl MappedSlab {
    /// Map the whole of `file` (its current length) read-only.
    pub fn from_file(file: &mut File) -> std::io::Result<Self> {
        // `u64 → usize` must be checked, not truncated: on a 32-bit
        // target a >4 GiB file would otherwise map a silently wrapped
        // length and every section offset computed from the header would
        // read out of bounds.
        let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file too large to map on this platform",
            )
        })?;
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            if len == 0 {
                return Ok(Self {
                    ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                    len: 0,
                });
            }
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == sys::map_failed() {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Self {
                ptr: ptr as *const u8,
                len,
            })
        }
        #[cfg(not(unix))]
        {
            use std::io::Seek;
            file.seek(std::io::SeekFrom::Start(0))?;
            let mut buf = vec![0u64; len.div_ceil(8)];
            let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
            file.read_exact(bytes)?;
            Ok(Self { buf, len })
        }
    }

    /// The mapped bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        #[cfg(unix)]
        unsafe {
            std::slice::from_raw_parts(self.ptr, self.len)
        }
        #[cfg(not(unix))]
        unsafe {
            std::slice::from_raw_parts(self.buf.as_ptr() as *const u8, self.len)
        }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for a zero-length mapping.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(unix)]
impl Drop for MappedSlab {
    fn drop(&mut self) {
        if self.len > 0 {
            unsafe {
                sys::munmap(self.ptr as *mut core::ffi::c_void, self.len);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn align_up(off: u64) -> u64 {
    off.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Counter making temp-file names unique within the process.
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A process-unique temp path in the same directory as `path` (same
/// filesystem, so the final rename is atomic).
fn temp_sibling(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".into());
    path.with_file_name(format!("{name}.{}-{seq}.tmp", std::process::id()))
}

/// Best-effort fsync of the directory holding `path`, so the rename that
/// published `path` is itself durable. Failures are ignored: directory
/// handles are not syncable on every platform, and the data file is
/// already synced.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        }) {
            let _ = dir.sync_all();
        }
    }
}

/// Write `bytes` to `path` crash-safely: the bytes go to a temp file in
/// the same directory, are fsynced, and the temp file is renamed over
/// `path`. A crash at any point leaves either the previous file or the
/// complete new one, never a loadable half-write. Shared by slab spills,
/// checkpoint files, the persistent plan cache, and model persistence.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let tmp = temp_sibling(path);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    } else {
        sync_parent_dir(path);
    }
    result
}

/// Sequential slab-file writer tracking the running offset so sections can
/// be padded to page boundaries. Writes land in a temp sibling that
/// [`SectionWriter::finish`] fsyncs and renames into place, so a crash
/// mid-write can never leave a loadable half-slab at the destination.
struct SectionWriter {
    out: Option<BufWriter<File>>,
    offset: u64,
    tmp: PathBuf,
    dest: PathBuf,
}

impl SectionWriter {
    fn create(path: &Path) -> std::io::Result<Self> {
        let tmp = temp_sibling(path);
        Ok(Self {
            out: Some(BufWriter::new(File::create(&tmp)?)),
            offset: 0,
            tmp,
            dest: path.to_path_buf(),
        })
    }

    fn write(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.out.as_mut().expect("writer open").write_all(bytes)?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Pad with zeros to the next page boundary.
    fn pad_to_section(&mut self) -> std::io::Result<()> {
        const ZEROS: [u8; 256] = [0; 256];
        let mut need = (align_up(self.offset) - self.offset) as usize;
        while need > 0 {
            let n = need.min(ZEROS.len());
            self.write(&ZEROS[..n])?;
            need -= n;
        }
        Ok(())
    }

    fn finish(mut self) -> std::io::Result<()> {
        let result = (|| {
            let file = self
                .out
                .take()
                .expect("writer open")
                .into_inner()
                .map_err(|e| e.into_error())?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&self.tmp, &self.dest)
        })();
        match result {
            Ok(()) => {
                sync_parent_dir(&self.dest);
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&self.tmp);
                Err(e)
            }
        }
    }
}

impl Drop for SectionWriter {
    /// An abandoned writer (error mid-write) removes its temp file; the
    /// destination path was never touched.
    fn drop(&mut self) {
        if self.out.is_some() {
            self.out = None;
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Reinterpret a plain-data slice as native-endian bytes.
fn as_bytes<T: Copy>(s: &[T]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u8, std::mem::size_of_val(s)) }
}

/// Per-row nnz counts of a store (dense rows count every materialized
/// entry, matching the dense→CSR upgrade of [`ColumnarBuilder`]).
fn row_nnz(store: &ColumnStore, i: usize) -> u64 {
    match store.as_csr() {
        Some((_, indptr, ..)) => indptr[i + 1] - indptr[i],
        None => store.dims() as u64,
    }
}

/// The absolute `indices`/`values` span a CSR `indptr` covers.
fn csr_span(indptr: &[u64]) -> (usize, usize) {
    match (indptr.first(), indptr.last()) {
        (Some(&lo), Some(&hi)) => (lo as usize, hi as usize),
        _ => (0, 0),
    }
}

/// Write `parts`, concatenated in order, as one slab file at `path`.
///
/// The result is dense only when every part is dense with one shared
/// width; any CSR part (or ragged dense widths) makes the output CSR, with
/// dense rows expanded to explicit entries — exactly the
/// [`ColumnarBuilder`] upgrade rule, so a spilled dataset round-trips to
/// the same logical rows the in-memory builder would have produced.
/// `dims` widens a CSR output like [`ColumnarBuilder::finish_with_dims`].
fn write_concatenated(path: &Path, parts: &[&ColumnStore], dims: usize) -> Result<(), SlabError> {
    let rows: u64 = parts.iter().map(|p| p.len() as u64).sum();
    let all_dense = parts.iter().all(|p| p.as_dense().is_some());
    let shared_width = parts.first().map_or(0, |p| p.dims());
    let dense = all_dense && parts.iter().all(|p| p.dims() == shared_width);
    let (kind, dim, nnz) = if dense {
        (KIND_DENSE, shared_width, rows * shared_width as u64)
    } else {
        let dim = parts.iter().map(|p| p.dims()).max().unwrap_or(0).max(dims);
        let nnz: u64 = parts.iter().map(|p| p.total_nnz()).sum();
        (KIND_CSR, dim, nnz)
    };

    let mut w = SectionWriter::create(path)?;
    w.write(&SLAB_MAGIC)?;
    w.write(&SLAB_VERSION.to_ne_bytes())?;
    w.write(&kind.to_ne_bytes())?;
    w.write(&rows.to_ne_bytes())?;
    w.write(&(dim as u64).to_ne_bytes())?;
    w.write(&nnz.to_ne_bytes())?;

    // Labels.
    w.pad_to_section()?;
    for p in parts {
        w.write(as_bytes(p.labels()))?;
    }

    if kind == KIND_DENSE {
        w.pad_to_section()?;
        for p in parts {
            let (_, values, _) = p.as_dense().expect("checked dense");
            w.write(as_bytes(values))?;
        }
        return Ok(w.finish()?);
    }

    // CSR indptr: rebase each part's offsets onto the running total.
    w.pad_to_section()?;
    let mut running = 0u64;
    w.write(&running.to_ne_bytes())?;
    for p in parts {
        for i in 0..p.len() {
            running += row_nnz(p, i);
            w.write(&running.to_ne_bytes())?;
        }
    }
    debug_assert_eq!(running, nnz);

    // Indices: CSR parts copy their indptr-delimited span (a window's
    // indptr is absolute into the full buffers); dense parts expand to
    // 0..width per row.
    w.pad_to_section()?;
    for p in parts {
        match p.as_csr() {
            Some((_, indptr, indices, _, _)) => {
                let (lo, hi) = csr_span(indptr);
                w.write(as_bytes(&indices[lo..hi]))?;
            }
            None => {
                let width = p.dims() as u32;
                let expanded: Vec<u32> = (0..width).collect();
                for _ in 0..p.len() {
                    w.write(as_bytes(&expanded))?;
                }
            }
        }
    }

    // Values: both layouts store row-order f64 runs.
    w.pad_to_section()?;
    for p in parts {
        match p.as_csr() {
            Some((_, indptr, _, values, _)) => {
                let (lo, hi) = csr_span(indptr);
                w.write(as_bytes(&values[lo..hi]))?;
            }
            None => {
                let (_, values, _) = p.as_dense().expect("dense");
                w.write(as_bytes(values))?;
            }
        }
    }
    Ok(w.finish()?)
}

/// Write a [`ColumnStore`] as a slab file at `path` (overwriting).
pub fn write_slab(path: impl AsRef<Path>, store: &ColumnStore) -> Result<(), SlabError> {
    write_concatenated(path.as_ref(), &[store], store.dims())
}

// ---------------------------------------------------------------------------
// Opening
// ---------------------------------------------------------------------------

fn read_u32(b: &[u8], off: usize) -> u32 {
    u32::from_ne_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}

fn read_u64(b: &[u8], off: usize) -> u64 {
    u64::from_ne_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}

/// Checked arithmetic over header-declared sizes: any overflow means the
/// header is corrupt, which must surface as a typed error rather than a
/// wrapped offset that reads out of bounds.
fn sec_add(a: u64, b: u64) -> Result<u64, SlabError> {
    a.checked_add(b)
        .ok_or_else(|| SlabError::Format("declared section sizes overflow".into()))
}

fn sec_mul(a: u64, b: u64) -> Result<u64, SlabError> {
    a.checked_mul(b)
        .ok_or_else(|| SlabError::Format("declared section sizes overflow".into()))
}

fn sec_align(off: u64) -> Result<u64, SlabError> {
    off.checked_next_multiple_of(SECTION_ALIGN)
        .ok_or_else(|| SlabError::Format("declared section sizes overflow".into()))
}

fn sec_usize(v: u64, what: &str) -> Result<usize, SlabError> {
    usize::try_from(v)
        .map_err(|_| SlabError::Format(format!("declared {what} too large for this platform")))
}

fn open_impl(path: &Path, delete_after_map: bool) -> Result<ColumnStore, SlabError> {
    let mut file = File::open(path)?;
    let mut header = [0u8; 40];
    file.read_exact(&mut header)
        .map_err(|_| SlabError::Format("file shorter than the slab header".into()))?;
    if header[..8] != SLAB_MAGIC {
        return Err(SlabError::Format("bad magic".into()));
    }
    let version = read_u32(&header, 8);
    if version != SLAB_VERSION {
        return Err(SlabError::Format(format!(
            "unsupported version {version} (expected {SLAB_VERSION})"
        )));
    }
    let kind = read_u32(&header, 12);
    let rows64 = read_u64(&header, 16);
    let dims64 = read_u64(&header, 24);
    let nnz64 = read_u64(&header, 32);

    if rows64 == 0 {
        return Ok(ColumnStore::empty());
    }

    // Validate the declared geometry against the *actual* file length,
    // in checked u64 arithmetic, before anything is mapped: a truncated
    // or corrupt slab must return a typed error, never an out-of-bounds
    // read through the mapping.
    let file_len = file.metadata()?.len();
    let need = |end: u64| -> Result<(), SlabError> {
        if end > file_len {
            Err(SlabError::Format(format!(
                "file is {file_len} bytes but the declared sections need {end}"
            )))
        } else {
            Ok(())
        }
    };
    let labels_off = SECTION_ALIGN;
    let labels_end = sec_add(labels_off, sec_mul(8, rows64)?)?;
    let (values_off, indptr_off, indices_off) = match kind {
        KIND_DENSE => {
            if nnz64 != sec_mul(rows64, dims64)? {
                return Err(SlabError::Format("dense nnz must equal rows × dims".into()));
            }
            let values_off = sec_align(labels_end)?;
            need(sec_add(values_off, sec_mul(8, nnz64)?)?)?;
            (values_off, 0, 0)
        }
        KIND_CSR => {
            let indptr_off = sec_align(labels_end)?;
            let indices_off = sec_align(sec_add(indptr_off, sec_mul(8, sec_add(rows64, 1)?)?)?)?;
            let values_off = sec_align(sec_add(indices_off, sec_mul(4, nnz64)?)?)?;
            need(sec_add(values_off, sec_mul(8, nnz64)?)?)?;
            (values_off, indptr_off, indices_off)
        }
        other => return Err(SlabError::Format(format!("unknown kind {other}"))),
    };
    let rows = sec_usize(rows64, "rows")?;
    let dims = sec_usize(dims64, "dims")?;
    let nnz = sec_usize(nnz64, "nnz")?;

    let map = Arc::new(MappedSlab::from_file(&mut file)?);
    drop(file);
    if delete_after_map {
        // On Unix the mapping keeps the pages alive after the unlink, so
        // spill files free their directory entry immediately; elsewhere the
        // bytes are already in memory.
        let _ = std::fs::remove_file(path);
    }

    match kind {
        KIND_DENSE => Ok(ColumnStore::from_mapped_dense(
            map,
            rows,
            dims,
            labels_off as usize,
            values_off as usize,
        )),
        KIND_CSR => {
            let store = ColumnStore::from_mapped_csr(
                map,
                rows,
                dims,
                nnz,
                labels_off as usize,
                indptr_off as usize,
                indices_off as usize,
                values_off as usize,
            );
            let (_, indptr, indices, ..) = store.as_csr().expect("just built CSR");
            if indptr[0] != 0
                || indptr[rows] != nnz as u64
                || indptr.windows(2).any(|w| w[0] > w[1])
            {
                return Err(SlabError::Format("indptr must ascend from 0 to nnz".into()));
            }
            if indices.iter().any(|&i| i as usize >= dims) {
                return Err(SlabError::Format("index out of the declared dims".into()));
            }
            Ok(store)
        }
        other => Err(SlabError::Format(format!("unknown kind {other}"))),
    }
}

/// Memory-map a slab file and serve it as a zero-copy [`ColumnStore`].
///
/// The file stays on disk (the mapping holds it open); every buffer of the
/// returned store borrows the mapping, shared by all clones and windows.
pub fn open_slab(path: impl AsRef<Path>) -> Result<ColumnStore, SlabError> {
    open_impl(path.as_ref(), false)
}

// ---------------------------------------------------------------------------
// Spilling
// ---------------------------------------------------------------------------

/// Counter making spill directories unique within the process.
static SPILL_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A fresh process-unique spill directory under the system temp dir.
pub fn fresh_spill_dir() -> PathBuf {
    let seq = SPILL_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("ml4all-spill-{}-{seq}", std::process::id()))
}

/// A [`ColumnarBuilder`] that never holds more than a budgeted number of
/// bytes in memory: rows stream in, bounded segments flush to slab files,
/// and [`SpillingBuilder::finish`] merges the segments into one mapped
/// slab. If the rows never exceed the budget, no file is written and the
/// result is a plain in-memory store — callers need not pre-classify
/// dataset sizes. Rows keep their push order in the merged result, so a
/// spilled ingestion is logically identical to an in-memory one.
#[derive(Debug)]
pub struct SpillingBuilder {
    dir: PathBuf,
    /// Flush the in-memory segment when it reaches this many bytes.
    flush_bytes: u64,
    builder: ColumnarBuilder,
    segments: Vec<PathBuf>,
}

impl SpillingBuilder {
    /// A builder spilling to a fresh directory under `dir` once the
    /// in-memory segment reaches a fraction of `budget_bytes`.
    pub fn new(dir: impl Into<PathBuf>, budget_bytes: u64) -> Result<Self, SlabError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            // A quarter of the budget per segment bounds peak usage at
            // segment + merge overhead well under the budget; the one-page
            // floor keeps degenerate budgets from flushing every row.
            flush_bytes: (budget_bytes / 4).max(4096),
            builder: ColumnarBuilder::new(),
            segments: Vec::new(),
        })
    }

    /// Rows pushed so far (across memory and spilled segments is not
    /// tracked; this is the *current in-memory* segment's length).
    pub fn in_memory_rows(&self) -> usize {
        self.builder.len()
    }

    /// `true` once at least one segment has been flushed to disk.
    pub fn spilled(&self) -> bool {
        !self.segments.is_empty()
    }

    /// Append a dense row.
    pub fn push_dense(&mut self, label: f64, row: &[f64]) -> Result<(), SlabError> {
        self.builder.push_dense(label, row);
        self.maybe_flush()
    }

    /// Append a sparse row (strictly increasing indices).
    pub fn push_sparse(
        &mut self,
        label: f64,
        indices: &[u32],
        values: &[f64],
    ) -> Result<(), SlabError> {
        self.builder.push_sparse(label, indices, values)?;
        self.maybe_flush()
    }

    fn maybe_flush(&mut self) -> Result<(), SlabError> {
        if self.builder.approx_bytes() >= self.flush_bytes {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), SlabError> {
        let store = std::mem::take(&mut self.builder).finish();
        if store.is_empty() {
            return Ok(());
        }
        let path = self.dir.join(format!("seg-{}.slab", self.segments.len()));
        write_slab(&path, &store)?;
        self.segments.push(path);
        Ok(())
    }

    /// Finish, widening CSR output to at least `dims`. Returns an owned
    /// in-memory store when nothing spilled, otherwise merges every
    /// segment into one slab file, memory-maps it, and unlinks it (the
    /// mapping keeps the pages alive). The spill directory is removed
    /// either way — by the `Drop` impl once `self` goes out of scope.
    pub fn finish(mut self, dims: usize) -> Result<ColumnStore, SlabError> {
        if self.segments.is_empty() {
            return Ok(std::mem::take(&mut self.builder).finish_with_dims(dims));
        }
        self.flush()?;
        let opened: Vec<ColumnStore> = self
            .segments
            .iter()
            .map(open_slab)
            .collect::<Result<_, _>>()?;
        let parts: Vec<&ColumnStore> = opened.iter().collect();
        let merged_path = self.dir.join("merged.slab");
        write_concatenated(&merged_path, &parts, dims)?;
        drop(opened);
        open_impl(&merged_path, true)
    }
}

impl Drop for SpillingBuilder {
    /// Best-effort removal of the spill directory and anything left in
    /// it: segments (already merged or orphaned by an error) and, off
    /// unix, a merged slab that was copied rather than unlinked-while-
    /// mapped. The directory is process-private and uniquely named, so
    /// removing it wholesale can never race another builder.
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columns::ColumnarBuilder;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ml4all-slab-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn dense_store(rows: usize, dims: usize) -> ColumnStore {
        let mut b = ColumnarBuilder::with_dense_capacity(rows, dims);
        for i in 0..rows {
            let row: Vec<f64> = (0..dims).map(|j| (i * dims + j) as f64 * 0.5).collect();
            b.push_dense(if i % 2 == 0 { 1.0 } else { -1.0 }, &row);
        }
        b.finish()
    }

    fn csr_store(rows: usize, dim: usize) -> ColumnStore {
        let mut b = ColumnarBuilder::new();
        for i in 0..rows {
            // Ragged nnz, including an empty row every 7th.
            let nnz = if i % 7 == 0 { 0 } else { 1 + i % 3 };
            let idx: Vec<u32> = (0..nnz).map(|k| ((i + k * 3) % dim) as u32).collect();
            let mut idx = idx;
            idx.sort_unstable();
            idx.dedup();
            let vals: Vec<f64> = idx
                .iter()
                .map(|&j| (i as f64) + f64::from(j) * 0.25)
                .collect();
            b.push_sparse(if i % 2 == 0 { 1.0 } else { -1.0 }, &idx, &vals)
                .unwrap();
        }
        b.finish_with_dims(dim)
    }

    #[test]
    fn dense_slab_round_trips_bitwise() {
        let dir = tmp("dense-rt");
        let store = dense_store(100, 7);
        let path = dir.join("d.slab");
        write_slab(&path, &store).unwrap();
        let mapped = open_slab(&path).unwrap();
        assert!(mapped.is_mapped());
        assert_eq!(mapped.len(), store.len());
        assert_eq!(mapped.dims(), store.dims());
        assert_eq!(mapped.to_points(), store.to_points());
        let (a, av, _) = store.as_dense().unwrap();
        let (b, bv, _) = mapped.as_dense().unwrap();
        assert_eq!(as_bytes(a), as_bytes(b));
        assert_eq!(as_bytes(av), as_bytes(bv));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csr_slab_round_trips_bitwise() {
        let dir = tmp("csr-rt");
        let store = csr_store(120, 11);
        let path = dir.join("c.slab");
        write_slab(&path, &store).unwrap();
        let mapped = open_slab(&path).unwrap();
        assert!(mapped.is_mapped());
        assert_eq!(mapped.dims(), 11);
        assert_eq!(mapped.total_nnz(), store.total_nnz());
        assert_eq!(mapped.to_points(), store.to_points());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn open_rejects_corrupt_files() {
        let dir = tmp("corrupt");
        let path = dir.join("x.slab");
        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(open_slab(&path), Err(SlabError::Format(_))));
        std::fs::write(&path, [0u8; 64]).unwrap();
        assert!(matches!(open_slab(&path), Err(SlabError::Format(_))));
        // Valid header, truncated body.
        let store = dense_store(50, 5);
        write_slab(&path, &store).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 64]).unwrap();
        assert!(matches!(open_slab(&path), Err(SlabError::Format(_))));
        // Bad version.
        let mut bad = full.clone();
        bad[8] = 99;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(open_slab(&path), Err(SlabError::Format(_))));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn spilling_builder_stays_in_memory_under_budget() {
        let dir = fresh_spill_dir();
        let sb = {
            let mut sb = SpillingBuilder::new(&dir, 1 << 30).unwrap();
            for i in 0..100 {
                sb.push_dense(1.0, &[i as f64, 1.0]).unwrap();
            }
            sb
        };
        assert!(!sb.spilled());
        assert!(dir.is_dir());
        let store = sb.finish(0).unwrap();
        assert!(!store.is_mapped());
        assert_eq!(store.len(), 100);
        // The no-spill path must not leak its (empty) spill directory.
        assert!(!dir.exists(), "spill dir {dir:?} leaked");
    }

    #[test]
    fn dropped_builder_cleans_its_spill_directory() {
        // Abandoning a builder mid-ingestion (e.g. a parse error upstream)
        // must remove the directory and any flushed segments.
        let dir = fresh_spill_dir();
        {
            let mut sb = SpillingBuilder::new(&dir, 0).unwrap();
            for i in 0..200 {
                sb.push_dense(1.0, &[i as f64, 1.0]).unwrap();
            }
            assert!(sb.spilled());
            assert!(dir.is_dir());
        }
        assert!(!dir.exists(), "spill dir {dir:?} leaked after drop");
    }

    #[test]
    fn spilled_dense_ingestion_matches_in_memory_builder() {
        // A tiny budget forces several segments; the merged mapped store
        // must hold exactly the rows the in-memory builder would.
        let mut sb = SpillingBuilder::new(fresh_spill_dir(), 0).unwrap();
        let mut b = ColumnarBuilder::new();
        let mut row = [0.0f64; 64];
        for i in 0..2000 {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * 64 + j) as f64 * 0.125;
            }
            sb.push_dense(-1.0, &row).unwrap();
            b.push_dense(-1.0, &row);
        }
        assert!(sb.spilled());
        let mapped = sb.finish(0).unwrap();
        let owned = b.finish();
        assert!(mapped.is_mapped());
        assert_eq!(mapped.len(), 2000);
        let (ml, mv, md) = mapped.as_dense().unwrap();
        let (ol, ov, od) = owned.as_dense().unwrap();
        assert_eq!(md, od);
        assert_eq!(as_bytes(ml), as_bytes(ol));
        assert_eq!(as_bytes(mv), as_bytes(ov));
    }

    #[test]
    fn spilled_sparse_ingestion_matches_in_memory_builder() {
        let mut sb = SpillingBuilder::new(fresh_spill_dir(), 0).unwrap();
        let mut b = ColumnarBuilder::new();
        for i in 0..3000usize {
            let idx = [(i % 20) as u32, 20 + (i % 30) as u32];
            let vals = [i as f64, -(i as f64)];
            sb.push_sparse(1.0, &idx, &vals).unwrap();
            b.push_sparse(1.0, &idx, &vals).unwrap();
        }
        assert!(sb.spilled());
        let mapped = sb.finish(64).unwrap();
        let owned = b.finish_with_dims(64);
        assert!(mapped.is_mapped());
        assert_eq!(mapped.dims(), 64);
        assert_eq!(mapped.total_nnz(), owned.total_nnz());
        assert_eq!(mapped.to_points(), owned.to_points());
    }

    #[test]
    fn mixed_segments_merge_as_csr_like_the_builder_upgrade() {
        // Dense rows then sparse rows: the in-memory builder upgrades to
        // CSR; a spilled ingestion crossing a segment boundary must land on
        // the same logical rows.
        let mut sb = SpillingBuilder::new(fresh_spill_dir(), 0).unwrap();
        let mut b = ColumnarBuilder::new();
        for i in 0..1500usize {
            if i < 700 {
                let row = [i as f64, 1.0, 2.0];
                sb.push_dense(1.0, &row).unwrap();
                b.push_dense(1.0, &row);
            } else {
                let idx = [2u32];
                let vals = [i as f64];
                sb.push_sparse(-1.0, &idx, &vals).unwrap();
                b.push_sparse(-1.0, &idx, &vals).unwrap();
            }
        }
        let mapped = sb.finish(0).unwrap();
        let owned = b.finish();
        assert!(mapped.as_csr().is_some());
        assert_eq!(mapped.to_points(), owned.to_points());
    }

    #[test]
    fn empty_rows_slab_serves_empty_store() {
        let dir = tmp("empty");
        let path = dir.join("e.slab");
        write_slab(&path, &ColumnStore::empty()).unwrap();
        let store = open_slab(&path).unwrap();
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }
}
