//! The simulation environment: cluster spec + cost ledger + the charging
//! primitives that implement Equations 3–5 of the paper.

use std::sync::Arc;

use ml4all_runtime::Runtime;

use crate::backend::Backend;
use crate::cluster::{ClusterSpec, StorageMedium};
use crate::descriptor::DatasetDescriptor;
use crate::ledger::{CostBreakdown, CostLedger};

/// Execution environment handed to operators: charge costs here while the
/// computation itself runs over the physical rows — which it does through
/// the shared [`Runtime`] worker pool, the physical counterpart of the
/// cost model's wave parallelism. A [`Backend`] selects whether runs are
/// additionally metered as a simulated cluster (per-node placement,
/// broadcast/aggregate accounting); charging is backend-invariant.
#[derive(Debug, Clone)]
pub struct SimEnv {
    /// Deployment constants.
    pub spec: ClusterSpec,
    /// Simulated clock.
    pub ledger: CostLedger,
    /// Worker pool physical computation dispatches through.
    runtime: Arc<Runtime>,
    /// Execution backend (selects cluster metering).
    backend: Backend,
}

impl SimEnv {
    /// Fresh environment at t = 0, on the process-wide runtime.
    pub fn new(spec: ClusterSpec) -> Self {
        Self::with_runtime(spec, Runtime::global())
    }

    /// Fresh environment at t = 0 on an explicit runtime (e.g. a
    /// fixed-size pool for determinism tests).
    pub fn with_runtime(spec: ClusterSpec, runtime: Arc<Runtime>) -> Self {
        Self {
            spec,
            ledger: CostLedger::new(),
            runtime,
            backend: Backend::Local,
        }
    }

    /// Route execution through `backend` (builder-style).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The backend this environment executes on.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// The worker pool this environment executes on.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// Total simulated seconds so far.
    pub fn elapsed_s(&self) -> f64 {
        self.ledger.total_s()
    }

    /// Snapshot for per-phase deltas.
    pub fn snapshot(&self) -> CostBreakdown {
        self.ledger.snapshot()
    }

    /// Fixed job-scheduling overhead (Spark job init).
    pub fn charge_job_init(&mut self) {
        let s = self.spec.job_init_s;
        self.ledger.charge_overhead(s);
    }

    /// **Equation 3** — IO cost of scanning dataset `d`: each full wave
    /// costs a seek plus the pages of one partition (partitions within a
    /// wave are read in parallel); the final partial wave costs the pages
    /// one slot actually reads.
    pub fn charge_full_scan_io(&mut self, d: &DatasetDescriptor, medium: StorageMedium) {
        let spec = &self.spec;
        let page_io = spec.page_io_s(medium, d.bytes);
        let seek = spec.seek_io_s(medium, d.bytes);
        let pages_per_partition = spec.partition_bytes.div_ceil(spec.page_bytes);
        let full_waves = d.waves(spec).floor();
        let mut cost = full_waves * (seek + pages_per_partition as f64 * page_io);
        let tail_bytes = d.last_wave_slot_bytes(spec);
        if tail_bytes > 0 {
            let tail_pages = tail_bytes.div_ceil(spec.page_bytes);
            cost += seek + tail_pages as f64 * page_io;
        }
        self.ledger.charge_io(cost);
    }

    /// **Equation 4** — wave-parallel CPU cost of applying a per-unit
    /// operation over all of `d`: each full wave costs `k` units of work
    /// (slots run in parallel); the partial wave costs the units of one
    /// slot.
    pub fn charge_wave_cpu(&mut self, d: &DatasetDescriptor, per_unit_s: f64) {
        let spec = &self.spec;
        let k = d.units_per_partition(spec) as f64;
        let full_waves = d.waves(spec).floor();
        let tail_units = d.last_wave_slot_units(spec) as f64;
        self.ledger
            .charge_cpu((full_waves * k + tail_units) * per_unit_s);
    }

    /// Serial CPU: `units` data units processed on a single slot (driver
    /// side — `Update`, `Converge`, `Loop`, and hybrid-mode `Compute`).
    pub fn charge_serial_cpu(&mut self, units: u64, per_unit_s: f64) {
        self.ledger.charge_cpu(units as f64 * per_unit_s);
    }

    /// **Equation 5** — network cost of moving `bytes` across the
    /// interconnect, rounded up to whole packets.
    pub fn charge_network(&mut self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let packets = bytes.div_ceil(self.spec.packet_bytes);
        let effective = packets * self.spec.packet_bytes;
        self.ledger
            .charge_net(effective as f64 * self.spec.net_byte_s);
    }

    /// One random-access seek into a dataset of `dataset_bytes`
    /// (cache-aware).
    pub fn charge_seek(&mut self, dataset_bytes: u64, medium: StorageMedium) {
        let s = self.spec.seek_io_s(medium, dataset_bytes);
        self.ledger.charge_io(s);
    }

    /// Sequential page reads of `bytes` from a dataset of `dataset_bytes`
    /// (cache-aware), without a seek — the shuffled-partition fast path.
    pub fn charge_sequential_read(
        &mut self,
        bytes: u64,
        dataset_bytes: u64,
        medium: StorageMedium,
    ) {
        if bytes == 0 {
            return;
        }
        let page_io = self.spec.page_io_s(medium, dataset_bytes);
        // Amortized: sequential cursors touch `bytes / page` pages over
        // time; charge fractionally rather than rounding every 1-unit read
        // up to a full page.
        let pages = bytes as f64 / self.spec.page_bytes as f64;
        self.ledger.charge_io(pages * page_io);
    }

    /// Random page read: a seek plus one page (the random-partition
    /// sampler's per-draw cost).
    pub fn charge_random_page_read(&mut self, dataset_bytes: u64, medium: StorageMedium) {
        let page_io = self.spec.page_io_s(medium, dataset_bytes);
        let seek = self.spec.seek_io_s(medium, dataset_bytes);
        self.ledger.charge_io(seek + page_io);
    }

    /// Random access to one *data unit* of dataset `d`. For datasets that
    /// fit a single partition the data lives at the driver (ML4all's hybrid
    /// Java execution, Appendix D) and a draw is a memory access; otherwise
    /// it is a block access on the cluster: seek plus one page, cache-aware.
    pub fn charge_random_unit_read(&mut self, d: &DatasetDescriptor, medium: StorageMedium) {
        if d.fits_one_partition(&self.spec) {
            let unit_pages = d.unit_bytes() / self.spec.page_bytes as f64;
            self.ledger
                .charge_io(self.spec.mem_seek_s + unit_pages * self.spec.mem_page_io_s);
        } else {
            self.charge_random_page_read(d.bytes, medium);
        }
    }

    /// Meter one compute wave on the simulated-cluster backend:
    /// `units[pi]` data units ran on the node hosting partition `pi` at
    /// `per_unit_s` each, and the `model_bytes`-sized weight vector was
    /// broadcast to — and its partial aggregates gathered from — every
    /// active node. No-op on the local backend, where nothing crosses a
    /// node boundary. Metering never moves the simulated clock; the
    /// cost charges stay backend-invariant.
    pub fn meter_cluster_wave(&mut self, units: &[u64], per_unit_s: f64, model_bytes: u64) {
        let Backend::SimulatedCluster(topo) = &self.backend else {
            return;
        };
        let active = topo.active_nodes(units.len()) as u64;
        // 1-based index of the wave being metered (the meter counts it
        // below), used to position the fault schedule.
        let wave = self.ledger.usage().waves + 1;
        self.ledger.meter_wave();
        self.ledger.meter_shuffle_bytes(2 * model_bytes * active);
        let faults = topo.faults();
        if faults.is_empty() {
            for (pi, &u) in units.iter().enumerate() {
                self.ledger.meter_tuples(u);
                self.ledger
                    .meter_node_compute(topo.node_of(pi), u as f64 * per_unit_s);
            }
            return;
        }
        // Node losses scheduled for this wave: the dying node's in-flight
        // attempt is lost (metered as recovery waste plus one extra
        // broadcast/aggregate round per lost node), and the re-execution
        // lands on the survivors via the re-placed `node_of_at` below.
        for node in faults.losses_at(wave) {
            let lost_units: u64 = units
                .iter()
                .enumerate()
                .filter(|(pi, _)| topo.node_of_at(*pi, wave.saturating_sub(1)) == node)
                .map(|(_, &u)| u)
                .sum();
            self.ledger.meter_node_loss(
                lost_units,
                2 * model_bytes,
                lost_units as f64 * per_unit_s,
            );
        }
        for (pi, &u) in units.iter().enumerate() {
            let node = topo.node_of_at(pi, wave);
            let s = u as f64 * per_unit_s;
            let slowdown = faults.straggler_factor(node) as f64;
            self.ledger.meter_tuples(u);
            self.ledger.meter_node_compute(node, s * slowdown);
            if slowdown > 1.0 {
                self.ledger.meter_straggler_delay(s * (slowdown - 1.0));
            }
        }
    }

    /// Meter a hybrid-mode sample fetch on the simulated-cluster backend:
    /// `drawn` units were read on the cluster and shipped to the driver.
    /// No-op on the local backend.
    pub fn meter_cluster_sample(&mut self, drawn: u64, unit_bytes: u64) {
        if !self.backend.is_cluster() {
            return;
        }
        self.ledger.meter_tuples(drawn);
        self.ledger.meter_shuffle_bytes(drawn * unit_bytes);
    }

    /// Per-iteration scheduling overhead: a distributed stage launch when
    /// the iteration touches multi-partition data, plus the driver loop
    /// bookkeeping either way.
    pub fn charge_iteration_overhead(&mut self, distributed: bool) {
        let s = if distributed {
            self.spec.stage_launch_s + self.spec.driver_loop_s
        } else {
            self.spec.driver_loop_s
        };
        self.ledger.charge_overhead(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> SimEnv {
        SimEnv::new(ClusterSpec::paper_testbed())
    }

    fn desc(n: u64, bytes: u64) -> DatasetDescriptor {
        DatasetDescriptor::new("t", n, 100, bytes, 1.0)
    }

    #[test]
    fn scan_io_single_partition_counts_actual_pages() {
        let mut e = env();
        let d = desc(1000, 7 * 1024 * 1024); // 7 MB → 2 pages of 4 MB
        e.charge_full_scan_io(&d, StorageMedium::Disk);
        let expect = e.spec.seek_s + 2.0 * e.spec.disk_page_io_s;
        assert!((e.ledger.snapshot().io_s - expect).abs() < 1e-12);
    }

    #[test]
    fn scan_io_scales_with_waves_not_partitions() {
        let mut e = env();
        // 32 partitions at cap 16 → exactly 2 waves; cost = 2 × one-partition cost.
        let d32 = desc(1_000_000, 32 * 128 * 1024 * 1024);
        e.charge_full_scan_io(&d32, StorageMedium::Disk);
        let two_waves = e.ledger.snapshot().io_s;

        let mut e2 = env();
        let d16 = desc(500_000, 16 * 128 * 1024 * 1024);
        e2.charge_full_scan_io(&d16, StorageMedium::Disk);
        let one_wave = e2.ledger.snapshot().io_s;

        assert!((two_waves - 2.0 * one_wave).abs() < 1e-9);
    }

    #[test]
    fn cached_scan_is_cheaper_than_cold() {
        let d = desc(1_000_000, 16 * 128 * 1024 * 1024);
        let mut cold = env();
        cold.charge_full_scan_io(&d, StorageMedium::Disk);
        let mut warm = env();
        warm.charge_full_scan_io(&d, StorageMedium::Memory);
        assert!(cold.ledger.total_s() > warm.ledger.total_s());
    }

    #[test]
    fn auto_medium_penalizes_datasets_larger_than_cache() {
        let spec = ClusterSpec::paper_testbed();
        let fits = desc(1_000_000, spec.cache_bytes / 2);
        let spills = desc(2_000_000, spec.cache_bytes * 2);
        let mut a = env();
        a.charge_full_scan_io(&fits, StorageMedium::Auto);
        let mut b = env();
        b.charge_full_scan_io(&spills, StorageMedium::Auto);
        // Per-byte cost must be strictly higher for the spilled dataset.
        let per_byte_a = a.ledger.total_s() / fits.bytes as f64;
        let per_byte_b = b.ledger.total_s() / spills.bytes as f64;
        assert!(per_byte_b > 2.0 * per_byte_a);
    }

    #[test]
    fn wave_cpu_equals_serial_cpu_for_one_partition() {
        let d = desc(1000, 1024 * 1024);
        let mut a = env();
        a.charge_wave_cpu(&d, 1e-6);
        let mut b = env();
        b.charge_serial_cpu(1000, 1e-6);
        assert!((a.ledger.total_s() - b.ledger.total_s()).abs() < 1e-12);
    }

    #[test]
    fn wave_cpu_gets_cap_speedup_for_many_partitions() {
        // 64 partitions = 4 waves; CPU time should be n/cap × per-unit.
        let d = desc(640_000, 64 * 128 * 1024 * 1024);
        let mut e = env();
        e.charge_wave_cpu(&d, 1e-6);
        let expect = (640_000.0 / 16.0) * 1e-6;
        assert!((e.ledger.total_s() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn network_rounds_to_packets() {
        let mut e = env();
        e.charge_network(1); // one byte still costs a packet
        let expect = e.spec.packet_bytes as f64 * e.spec.net_byte_s;
        assert!((e.ledger.snapshot().net_s - expect).abs() < 1e-15);
        let mut e2 = env();
        e2.charge_network(0);
        assert_eq!(e2.ledger.total_s(), 0.0);
    }

    #[test]
    fn sequential_read_is_cheaper_than_random() {
        let mut seq = env();
        seq.charge_sequential_read(1800, 7 * 1024 * 1024, StorageMedium::Memory);
        let mut rnd = env();
        rnd.charge_random_page_read(7 * 1024 * 1024, StorageMedium::Memory);
        assert!(seq.ledger.total_s() < rnd.ledger.total_s());
    }

    #[test]
    fn job_init_charges_overhead() {
        let mut e = env();
        e.charge_job_init();
        assert_eq!(e.ledger.snapshot().overhead_s, e.spec.job_init_s);
    }

    #[test]
    fn cluster_wave_meters_per_node_without_moving_the_clock() {
        let spec = ClusterSpec::paper_testbed();
        let mut e =
            SimEnv::new(spec.clone()).with_backend(crate::Backend::simulated_cluster(&spec));
        // 6 partitions on 4 nodes: nodes 0 and 1 host two partitions each.
        let units = [10u64, 20, 30, 40, 50, 60];
        e.meter_cluster_wave(&units, 1.0, 80);
        let usage = e.ledger.usage();
        assert_eq!(usage.waves, 1);
        assert_eq!(usage.tuples_scanned, 210);
        // Broadcast + aggregate for 4 active nodes.
        assert_eq!(usage.bytes_shuffled, 2 * 80 * 4);
        assert_eq!(usage.node_compute_s, vec![60.0, 80.0, 30.0, 40.0]);
        assert_eq!(usage.busiest_node_s(), 80.0);
        assert_eq!(e.elapsed_s(), 0.0, "metering must not charge the ledger");
    }

    #[test]
    fn local_backend_meters_nothing() {
        let mut e = env();
        assert!(!e.backend().is_cluster());
        e.meter_cluster_wave(&[10, 20], 1.0, 80);
        e.meter_cluster_sample(5, 100);
        assert!(e.ledger.usage().is_empty());
    }

    #[test]
    fn cluster_sample_meters_shipping() {
        let spec = ClusterSpec::paper_testbed();
        let mut e =
            SimEnv::new(spec.clone()).with_backend(crate::Backend::simulated_cluster(&spec));
        e.meter_cluster_sample(100, 64);
        assert_eq!(e.ledger.usage().tuples_scanned, 100);
        assert_eq!(e.ledger.usage().bytes_shuffled, 6400);
        assert!(e.ledger.usage().node_compute_s.is_empty());
    }
}
