//! Cluster specification: the hardware/deployment constants of the cost
//! model (Table 1's `cap`, `pageIO`, `SK`, `NT`, page/partition/packet
//! sizes) plus per-operator CPU cost helpers.

use serde::{Deserialize, Serialize};

/// Where a scan is served from, selecting the `pageIO` constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageMedium {
    /// Cold read from disk/HDFS (first pass over a dataset).
    Disk,
    /// Fully cached in cluster memory.
    Memory,
    /// Cache-aware mix: the fraction of the dataset that fits in the
    /// cluster cache is served from memory, the spill-over from disk. This
    /// is Spark's steady-state behaviour after the first pass and the
    /// mechanism behind the paper's svm3 observations (datasets above cache
    /// capacity incur disk IO every iteration).
    Auto,
}

/// Deployment constants of the simulated cluster.
///
/// The default mirrors the paper's testbed (Section 8.1): four nodes with
/// four Spark executor cores each (`cap = 16`), 10 GbE interconnect, HDFS
/// with 128 MB partitions, and 4 × 20 GB of Spark cache.
///
/// All `*_s` fields are seconds. Calibration targets commodity 2017-era
/// hardware: ~150 MB/s sequential disk per slot, ~8 GB/s memory scan per
/// slot, 10 ms seeks, 1.25 GB/s network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Worker nodes.
    pub nodes: usize,
    /// Parallel slots (executor cores) per node.
    pub slots_per_node: usize,
    /// HDFS partition (block) size in bytes — `|P|_b`.
    pub partition_bytes: u64,
    /// Storage page size in bytes — `|page|_b`, the minimum unit of data
    /// access.
    pub page_bytes: u64,
    /// Maximum network transfer unit in bytes — `|packet|_b`.
    pub packet_bytes: u64,
    /// IO cost of a seek on disk — `SK`.
    pub seek_s: f64,
    /// Random-access cost within the in-memory cache (pointer chase +
    /// deserialization, orders of magnitude below a disk seek).
    pub mem_seek_s: f64,
    /// IO cost of reading/writing one page from disk — `pageIO` (disk).
    pub disk_page_io_s: f64,
    /// IO cost of reading one page from the in-memory cache.
    pub mem_page_io_s: f64,
    /// Network cost of one byte — `NT`.
    pub net_byte_s: f64,
    /// Total cluster cache capacity in bytes (Spark executor storage).
    pub cache_bytes: u64,
    /// Seconds per elementary CPU operation (flop-ish, JVM-calibrated).
    pub cpu_op_s: f64,
    /// Fixed per-job scheduling/initialization overhead (the ~4 s Spark job
    /// init the paper reports in Section 8.3).
    pub job_init_s: f64,
    /// Per-iteration overhead of launching a distributed stage (task
    /// serialization, scheduling) — charged whenever an iteration touches
    /// multi-partition data.
    pub stage_launch_s: f64,
    /// Per-iteration driver-side loop overhead (condition checks,
    /// bookkeeping) — charged on every iteration.
    pub driver_loop_s: f64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

impl ClusterSpec {
    /// The paper's 4-node testbed.
    pub fn paper_testbed() -> Self {
        Self {
            nodes: 4,
            slots_per_node: 4,
            partition_bytes: 128 * 1024 * 1024,
            page_bytes: 4 * 1024 * 1024,
            packet_bytes: 64 * 1024,
            seek_s: 0.010,
            mem_seek_s: 5.0e-6,
            disk_page_io_s: 4.0 * 1024.0 * 1024.0 / 150.0e6,
            mem_page_io_s: 4.0 * 1024.0 * 1024.0 / 8.0e9,
            net_byte_s: 1.0 / 1.25e9,
            cache_bytes: 80 * 1024 * 1024 * 1024,
            cpu_op_s: 1.0e-8,
            job_init_s: 4.0,
            stage_launch_s: 0.15,
            // Per-iteration operator scheduling through the cross-platform
            // layer (Rheem dispatch, convergence check, context swap):
            // ~2 ms even when the loop stays on the driver.
            driver_loop_s: 0.002,
        }
    }

    /// A single-machine "local" deployment (one node, cap = number of
    /// slots); useful in tests and for the hybrid Java-only execution path.
    pub fn local(slots: usize) -> Self {
        Self {
            nodes: 1,
            slots_per_node: slots.max(1),
            ..Self::paper_testbed()
        }
    }

    /// `cap` — number of processes able to run in parallel (Table 1).
    pub fn cap(&self) -> usize {
        self.nodes * self.slots_per_node
    }

    /// Effective page-IO cost given the medium and the fraction of the
    /// dataset resident in cache.
    pub fn page_io_s(&self, medium: StorageMedium, dataset_bytes: u64) -> f64 {
        match medium {
            StorageMedium::Disk => self.disk_page_io_s,
            StorageMedium::Memory => self.mem_page_io_s,
            StorageMedium::Auto => {
                let f_mem = self.cache_fraction(dataset_bytes);
                f_mem * self.mem_page_io_s + (1.0 - f_mem) * self.disk_page_io_s
            }
        }
    }

    /// Effective seek cost given the medium and the fraction of the dataset
    /// resident in cache.
    pub fn seek_io_s(&self, medium: StorageMedium, dataset_bytes: u64) -> f64 {
        match medium {
            StorageMedium::Disk => self.seek_s,
            StorageMedium::Memory => self.mem_seek_s,
            StorageMedium::Auto => {
                let f_mem = self.cache_fraction(dataset_bytes);
                f_mem * self.mem_seek_s + (1.0 - f_mem) * self.seek_s
            }
        }
    }

    /// Fraction of a dataset of `bytes` that fits in the cluster cache.
    pub fn cache_fraction(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            1.0
        } else {
            (self.cache_bytes as f64 / bytes as f64).min(1.0)
        }
    }

    /// `true` if a dataset of `bytes` fits entirely in the cluster cache.
    pub fn fits_in_cache(&self, bytes: u64) -> bool {
        bytes <= self.cache_bytes
    }

    // ----- per-operator CPU cost helpers (`CPUu(op)` of Table 1) -----
    //
    // Costs are expressed per data unit as a multiple of `cpu_op_s`.
    // `nnz` is the number of materialized features of the unit.

    /// `Transform`: tokenize + parse one text unit (~6 ops/feature — split,
    /// trim, parse, store — plus fixed record overhead).
    pub fn cpu_transform_s(&self, nnz: usize) -> f64 {
        (40.0 + 6.0 * nnz as f64) * self.cpu_op_s
    }

    /// `Compute`: one gradient evaluation (dot + axpy, 2 ops each per
    /// feature, plus fixed overhead).
    pub fn cpu_gradient_s(&self, nnz: usize) -> f64 {
        (20.0 + 4.0 * nnz as f64) * self.cpu_op_s
    }

    /// `Update`: apply an aggregated gradient to a `d`-dimensional model.
    pub fn cpu_update_s(&self, dims: usize) -> f64 {
        (10.0 + 2.0 * dims as f64) * self.cpu_op_s
    }

    /// Per-unit cost of the Bernoulli inclusion test (one RNG draw and
    /// comparison per scanned unit).
    pub fn cpu_sample_test_s(&self) -> f64 {
        4.0 * self.cpu_op_s
    }

    /// Per-unit cost of moving a unit during a partition shuffle
    /// (Fisher–Yates swap).
    pub fn cpu_shuffle_unit_s(&self) -> f64 {
        6.0 * self.cpu_op_s
    }

    /// `Converge` + `Loop`: one pass over the model vector plus the scalar
    /// comparison (executed on a single node — Section 7.1).
    pub fn cpu_converge_s(&self, dims: usize) -> f64 {
        (10.0 + 2.0 * dims as f64) * self.cpu_op_s
    }

    /// `Stage`: initializing the model and scalar parameters.
    pub fn cpu_stage_s(&self, dims: usize) -> f64 {
        (10.0 + dims as f64) * self.cpu_op_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_cap_is_16() {
        assert_eq!(ClusterSpec::paper_testbed().cap(), 16);
    }

    #[test]
    fn cache_fraction_saturates_at_one() {
        let spec = ClusterSpec::paper_testbed();
        assert_eq!(spec.cache_fraction(1), 1.0);
        assert_eq!(spec.cache_fraction(0), 1.0);
        let double = spec.cache_bytes * 2;
        assert!((spec.cache_fraction(double) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auto_medium_interpolates_between_memory_and_disk() {
        let spec = ClusterSpec::paper_testbed();
        let cached = spec.page_io_s(StorageMedium::Auto, spec.cache_bytes / 2);
        assert_eq!(cached, spec.mem_page_io_s);
        let spilled = spec.page_io_s(StorageMedium::Auto, spec.cache_bytes * 2);
        assert!(spilled > spec.mem_page_io_s);
        assert!(spilled < spec.disk_page_io_s);
        let expected = 0.5 * spec.mem_page_io_s + 0.5 * spec.disk_page_io_s;
        assert!((spilled - expected).abs() < 1e-15);
    }

    #[test]
    fn cpu_costs_grow_with_dimensionality() {
        let spec = ClusterSpec::paper_testbed();
        assert!(spec.cpu_gradient_s(1000) > spec.cpu_gradient_s(10));
        assert!(spec.cpu_transform_s(1000) > spec.cpu_transform_s(10));
        assert!(spec.cpu_update_s(1000) > spec.cpu_update_s(10));
    }

    #[test]
    fn local_spec_has_one_node() {
        let spec = ClusterSpec::local(4);
        assert_eq!(spec.cap(), 4);
        assert_eq!(ClusterSpec::local(0).cap(), 1);
    }

    #[test]
    fn disk_is_slower_than_memory() {
        let spec = ClusterSpec::paper_testbed();
        assert!(spec.disk_page_io_s > 10.0 * spec.mem_page_io_s);
    }
}
