//! Checkpoint files: a versioned, checksummed on-disk snapshot of a GD
//! run at a wave boundary.
//!
//! A checkpoint captures everything the executor's loop mutates — the
//! model vector, the RNG stream position, the sampler cursor, the cost
//! ledger, and the iteration index — so a killed job can be restored and
//! continue **bit-identically** to the run that was interrupted: same
//! weights, same event stream suffix, same ledger totals. Identity
//! fields (a caller-supplied key hash, the plan name, and the RNG stream
//! version) bind the file to one logical job, so a stale or foreign
//! checkpoint is rejected with a typed error instead of silently
//! resuming the wrong run.
//!
//! # File format (version 1)
//!
//! Three lines of text, inspectable like the model format:
//!
//! ```text
//! ML4ACKPT v1
//! crc <16-hex FNV-1a-64 of the payload line>
//! <single-line JSON payload>
//! ```
//!
//! Every `f64` in the payload is stored as its IEEE-754 bit pattern (a
//! JSON integer), so the round trip is bit-exact by construction, NaNs
//! and signed zeros included. Files are written via
//! [`crate::slab::atomic_write`] (temp + fsync + rename), so a crash
//! mid-write leaves the previous checkpoint intact.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::ledger::{CostBreakdown, UsageMeter};
use crate::sampling::{SamplerSnapshot, SamplingMethod};
use crate::slab::atomic_write;

/// First line of every checkpoint file.
pub const CHECKPOINT_MAGIC: &str = "ML4ACKPT";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Errors from writing, reading, or validating checkpoint files.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint (bad magic/version/payload).
    Format(String),
    /// The payload does not match its recorded checksum (torn or
    /// corrupted file).
    Checksum {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
    /// A structurally valid checkpoint that belongs to a different job,
    /// plan, or RNG stream layout.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint io error: {e}"),
            Self::Format(why) => write!(f, "invalid checkpoint file: {why}"),
            Self::Checksum { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch: recorded {expected:016x}, payload hashes to {actual:016x}"
            ),
            Self::Mismatch(why) => write!(f, "checkpoint does not match this job: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// FNV-1a 64-bit hash — the checkpoint checksum, and the stable hash the
/// engine uses to derive checkpoint file names from job keys.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The executor's full mutable state at a wave boundary: what a resumed
/// run needs to continue bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecState {
    /// Iterations completed (1-based count; the next iteration is
    /// `iteration + 1`).
    pub iteration: u64,
    /// Model vector after `iteration` updates.
    pub weights: Vec<f64>,
    /// Model vector one update earlier (convergence-delta operand).
    pub prev_weights: Vec<f64>,
    /// Convergence delta at `iteration`.
    pub final_delta: f64,
    /// `(iteration, delta)` convergence pairs recorded so far.
    pub error_seq: Vec<(u64, f64)>,
    /// xoshiro256++ state words of the training RNG stream.
    pub rng_state: [u64; 4],
    /// Sampler state, when the plan samples.
    pub sampler: Option<SamplerSnapshot>,
    /// Simulated-cost clock at the boundary.
    pub cost: CostBreakdown,
    /// Physical usage metered so far.
    pub usage: UsageMeter,
}

/// A checkpoint: executor state plus the identity fields binding it to
/// one logical job.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Caller-defined key hash (the engine hashes its plan-cache key), so
    /// a checkpoint can never be resumed under a different request.
    pub key_hash: u64,
    /// Display name of the plan that produced the state.
    pub plan: String,
    /// RNG stream layout the state was captured under.
    pub rng_stream_version: u32,
    /// The executor state.
    pub state: ExecState,
}

// --------------------------------------------------------------------------
// Wire payload: every f64 travels as its bit pattern (u64), which the
// vendored JSON number type preserves exactly.
// --------------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct WireCursor {
    partition: u64,
    pos: u64,
    order: Vec<u32>,
}

#[derive(Serialize, Deserialize)]
struct WireSampler {
    method: SamplingMethod,
    shuffles: u64,
    cursor: Option<WireCursor>,
}

#[derive(Serialize, Deserialize)]
struct WireCost {
    io_s: u64,
    cpu_s: u64,
    net_s: u64,
    overhead_s: u64,
}

#[derive(Serialize, Deserialize)]
struct WireUsage {
    tuples_scanned: u64,
    bytes_shuffled: u64,
    node_compute_s: Vec<u64>,
    waves: u64,
    nodes_lost: u64,
    recovery_tuples: u64,
    recovery_bytes: u64,
    recovery_compute_s: u64,
    straggler_delay_s: u64,
}

#[derive(Serialize, Deserialize)]
struct WireCheckpoint {
    key_hash: u64,
    plan: String,
    rng_stream_version: u32,
    iteration: u64,
    weights: Vec<u64>,
    prev_weights: Vec<u64>,
    final_delta: u64,
    error_iters: Vec<u64>,
    error_deltas: Vec<u64>,
    rng_state: Vec<u64>,
    sampler: Option<WireSampler>,
    cost: WireCost,
    usage: WireUsage,
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|w| w.to_bits()).collect()
}

fn floats(v: &[u64]) -> Vec<f64> {
    v.iter().map(|w| f64::from_bits(*w)).collect()
}

impl WireCheckpoint {
    fn from_checkpoint(ckpt: &Checkpoint) -> Self {
        let s = &ckpt.state;
        Self {
            key_hash: ckpt.key_hash,
            plan: ckpt.plan.clone(),
            rng_stream_version: ckpt.rng_stream_version,
            iteration: s.iteration,
            weights: bits(&s.weights),
            prev_weights: bits(&s.prev_weights),
            final_delta: s.final_delta.to_bits(),
            error_iters: s.error_seq.iter().map(|(i, _)| *i).collect(),
            error_deltas: s.error_seq.iter().map(|(_, d)| d.to_bits()).collect(),
            rng_state: s.rng_state.to_vec(),
            sampler: s.sampler.as_ref().map(|snap| WireSampler {
                method: snap.method,
                shuffles: snap.shuffles,
                cursor: snap
                    .cursor
                    .as_ref()
                    .map(|(partition, pos, order)| WireCursor {
                        partition: *partition,
                        pos: *pos,
                        order: order.clone(),
                    }),
            }),
            cost: WireCost {
                io_s: s.cost.io_s.to_bits(),
                cpu_s: s.cost.cpu_s.to_bits(),
                net_s: s.cost.net_s.to_bits(),
                overhead_s: s.cost.overhead_s.to_bits(),
            },
            usage: WireUsage {
                tuples_scanned: s.usage.tuples_scanned,
                bytes_shuffled: s.usage.bytes_shuffled,
                node_compute_s: bits(&s.usage.node_compute_s),
                waves: s.usage.waves,
                nodes_lost: s.usage.nodes_lost,
                recovery_tuples: s.usage.recovery_tuples,
                recovery_bytes: s.usage.recovery_bytes,
                recovery_compute_s: s.usage.recovery_compute_s.to_bits(),
                straggler_delay_s: s.usage.straggler_delay_s.to_bits(),
            },
        }
    }

    fn into_checkpoint(self) -> Result<Checkpoint, CheckpointError> {
        let rng_state: [u64; 4] = self.rng_state.as_slice().try_into().map_err(|_| {
            CheckpointError::Format(format!(
                "rng state must hold 4 words, found {}",
                self.rng_state.len()
            ))
        })?;
        if self.error_iters.len() != self.error_deltas.len() {
            return Err(CheckpointError::Format(format!(
                "error sequence length mismatch: {} iterations vs {} deltas",
                self.error_iters.len(),
                self.error_deltas.len()
            )));
        }
        let error_seq = self
            .error_iters
            .iter()
            .zip(&self.error_deltas)
            .map(|(i, d)| (*i, f64::from_bits(*d)))
            .collect();
        Ok(Checkpoint {
            key_hash: self.key_hash,
            plan: self.plan,
            rng_stream_version: self.rng_stream_version,
            state: ExecState {
                iteration: self.iteration,
                weights: floats(&self.weights),
                prev_weights: floats(&self.prev_weights),
                final_delta: f64::from_bits(self.final_delta),
                error_seq,
                rng_state,
                sampler: self.sampler.map(|s| SamplerSnapshot {
                    method: s.method,
                    shuffles: s.shuffles,
                    cursor: s.cursor.map(|c| (c.partition, c.pos, c.order)),
                }),
                cost: CostBreakdown {
                    io_s: f64::from_bits(self.cost.io_s),
                    cpu_s: f64::from_bits(self.cost.cpu_s),
                    net_s: f64::from_bits(self.cost.net_s),
                    overhead_s: f64::from_bits(self.cost.overhead_s),
                },
                usage: UsageMeter {
                    tuples_scanned: self.usage.tuples_scanned,
                    bytes_shuffled: self.usage.bytes_shuffled,
                    node_compute_s: floats(&self.usage.node_compute_s),
                    waves: self.usage.waves,
                    nodes_lost: self.usage.nodes_lost,
                    recovery_tuples: self.usage.recovery_tuples,
                    recovery_bytes: self.usage.recovery_bytes,
                    recovery_compute_s: f64::from_bits(self.usage.recovery_compute_s),
                    straggler_delay_s: f64::from_bits(self.usage.straggler_delay_s),
                },
            },
        })
    }
}

/// Serialize `ckpt` into the on-disk text format (without writing it).
pub fn encode_checkpoint(ckpt: &Checkpoint) -> Result<Vec<u8>, CheckpointError> {
    let payload = serde_json::to_string(&WireCheckpoint::from_checkpoint(ckpt))
        .map_err(|e| CheckpointError::Format(format!("payload serialization failed: {e}")))?;
    let crc = fnv1a64(payload.as_bytes());
    Ok(
        format!("{CHECKPOINT_MAGIC} v{CHECKPOINT_VERSION}\ncrc {crc:016x}\n{payload}\n")
            .into_bytes(),
    )
}

/// Write `ckpt` to `path` crash-safely (temp + fsync + rename).
pub fn write_checkpoint(path: impl AsRef<Path>, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    Ok(atomic_write(path, &encode_checkpoint(ckpt)?)?)
}

/// Read and validate a checkpoint: magic, version, checksum, and payload
/// structure. Identity validation against the *expected* job is the
/// caller's business ([`Checkpoint::key_hash`] and friends).
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
    let text = std::fs::read_to_string(path.as_ref())?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| CheckpointError::Format("empty file".into()))?;
    let version = header
        .strip_prefix(CHECKPOINT_MAGIC)
        .and_then(|rest| rest.trim().strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| CheckpointError::Format(format!("bad header {header:?}")))?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version} (expected {CHECKPOINT_VERSION})"
        )));
    }
    let crc_line = lines
        .next()
        .ok_or_else(|| CheckpointError::Format("missing checksum line".into()))?;
    let expected = crc_line
        .strip_prefix("crc ")
        .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
        .ok_or_else(|| CheckpointError::Format(format!("bad checksum line {crc_line:?}")))?;
    let payload = lines
        .next()
        .ok_or_else(|| CheckpointError::Format("missing payload line".into()))?;
    let actual = fnv1a64(payload.as_bytes());
    if actual != expected {
        return Err(CheckpointError::Checksum { expected, actual });
    }
    let wire: WireCheckpoint = serde_json::from_str(payload)
        .map_err(|e| CheckpointError::Format(format!("bad payload: {e}")))?;
    wire.into_checkpoint()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ml4all-ckpt-{}-{tag}", std::process::id()))
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            key_hash: 0xdead_beef_cafe_f00d,
            plan: "SGD-lazy-shuffle".into(),
            rng_stream_version: 3,
            state: ExecState {
                iteration: 42,
                weights: vec![1.5, -0.0, f64::NAN, 2.0f64.powi(-1074)],
                prev_weights: vec![1.0, 2.0, 3.0, 4.0],
                final_delta: 1e-9,
                error_seq: vec![(1, 0.5), (2, 0.25), (3, 0.125)],
                rng_state: [1, u64::MAX, 0, 0x0123_4567_89ab_cdef],
                sampler: Some(SamplerSnapshot {
                    method: SamplingMethod::ShuffledPartition,
                    shuffles: 7,
                    cursor: Some((3, 12, vec![5, 1, 4, 0, 2, 3])),
                }),
                cost: CostBreakdown {
                    io_s: 1.25,
                    cpu_s: 0.5,
                    net_s: 0.0625,
                    overhead_s: 3.0,
                },
                usage: UsageMeter {
                    tuples_scanned: 1000,
                    bytes_shuffled: 2048,
                    node_compute_s: vec![0.5, 0.25],
                    waves: 5,
                    nodes_lost: 1,
                    recovery_tuples: 250,
                    recovery_bytes: 160,
                    recovery_compute_s: 0.125,
                    straggler_delay_s: 0.0,
                },
            },
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let path = tmp("roundtrip");
        let ckpt = sample_checkpoint();
        write_checkpoint(&path, &ckpt).unwrap();
        let read = read_checkpoint(&path).unwrap();
        // NaN breaks PartialEq; compare through bit patterns.
        assert_eq!(bits(&read.state.weights), bits(&ckpt.state.weights));
        assert_eq!(read.state.prev_weights, ckpt.state.prev_weights);
        assert_eq!(read.state.error_seq, ckpt.state.error_seq);
        assert_eq!(read.state.rng_state, ckpt.state.rng_state);
        assert_eq!(read.state.sampler, ckpt.state.sampler);
        assert_eq!(read.state.cost, ckpt.state.cost);
        assert_eq!(read.state.usage, ckpt.state.usage);
        assert_eq!(read.key_hash, ckpt.key_hash);
        assert_eq!(read.plan, ckpt.plan);
        assert_eq!(read.state.iteration, 42);
        // Signed zero survives.
        assert_eq!(read.state.weights[1].to_bits(), (-0.0f64).to_bits());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let path = tmp("corrupt");
        write_checkpoint(&path, &sample_checkpoint()).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Flip one digit inside the payload.
        let flip = text.rfind("42").expect("iteration in payload");
        text.replace_range(flip..flip + 2, "43");
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Checksum { .. })
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncated_and_foreign_files_are_rejected_with_typed_errors() {
        let path = tmp("reject");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Format(_))
        ));
        std::fs::write(&path, "not a checkpoint\n").unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Format(_))
        ));
        std::fs::write(&path, "ML4ACKPT v99\ncrc 0\n{}\n").unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Format(_))
        ));
        // Header but no payload.
        std::fs::write(&path, "ML4ACKPT v1\ncrc 00000000000000aa\n").unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Format(_))
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn checksum_pins_the_exact_payload_bytes() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
