//! Contiguous columnar row storage: the physical layout behind every
//! [`crate::dataset::Partition`].
//!
//! The paper's Section 4.1 data units — "a label, a set of indices, and a
//! set of values" — map directly onto two slab layouts:
//!
//! - **Dense**: one row-major `values` slab (`n × dims`) plus a `labels`
//!   column. A row is a borrowed `&[f64]` slice — no per-point heap
//!   allocation, no pointer chasing in the gradient hot loop.
//! - **CSR**: `indptr`/`indices`/`values` compressed sparse rows plus the
//!   `labels` column, for LIBSVM-shaped data like `rcv1`.
//!
//! [`ColumnarBuilder`] ingests rows in either shape and upgrades a dense
//! slab to CSR transparently when sparse or ragged rows arrive, so loaders
//! can stream rows without pre-classifying the dataset.

use ml4all_linalg::{FeatureView, LabeledPoint, LinalgError, PointView};

/// Dense slab storage: labels + a row-major value matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseColumns {
    dims: usize,
    labels: Vec<f64>,
    values: Vec<f64>,
}

/// CSR storage: labels + compressed sparse rows over a shared dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrColumns {
    dim: usize,
    labels: Vec<f64>,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

/// A block of rows in contiguous columnar form.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnStore {
    /// Dense slab (`labels` + row-major `values`).
    Dense(DenseColumns),
    /// Compressed sparse rows.
    Csr(CsrColumns),
}

impl ColumnStore {
    /// An empty dense store (zero rows, zero dims).
    pub fn empty() -> Self {
        ColumnarBuilder::new().finish()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Self::Dense(d) => d.labels.len(),
            Self::Csr(c) => c.labels.len(),
        }
    }

    /// `true` when the store holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature-space dimensionality shared by every row.
    #[inline]
    pub fn dims(&self) -> usize {
        match self {
            Self::Dense(d) => d.dims,
            Self::Csr(c) => c.dim,
        }
    }

    /// Label column.
    #[inline]
    pub fn labels(&self) -> &[f64] {
        match self {
            Self::Dense(d) => &d.labels,
            Self::Csr(c) => &c.labels,
        }
    }

    /// Borrow row `i` as a zero-copy [`PointView`].
    #[inline]
    pub fn view(&self, i: usize) -> Option<PointView<'_>> {
        match self {
            Self::Dense(d) => {
                let label = *d.labels.get(i)?;
                let row = &d.values[i * d.dims..(i + 1) * d.dims];
                Some(PointView::new(label, FeatureView::Dense(row)))
            }
            Self::Csr(c) => {
                let label = *c.labels.get(i)?;
                let (lo, hi) = (c.indptr[i], c.indptr[i + 1]);
                Some(PointView::new(
                    label,
                    FeatureView::Sparse {
                        dim: c.dim,
                        indices: &c.indices[lo..hi],
                        values: &c.values[lo..hi],
                    },
                ))
            }
        }
    }

    /// Iterate over every row as a [`PointView`].
    pub fn iter(&self) -> ColumnIter<'_> {
        ColumnIter {
            store: self,
            next: 0,
        }
    }

    /// Raw dense slab access (`labels`, row-major `values`, `dims`) — the
    /// branch-free fast path the gradient wave runs over.
    #[inline]
    pub fn as_dense(&self) -> Option<(&[f64], &[f64], usize)> {
        match self {
            Self::Dense(d) => Some((&d.labels, &d.values, d.dims)),
            Self::Csr(_) => None,
        }
    }

    /// Sum of materialized (possibly non-zero) entries across all rows.
    pub fn total_nnz(&self) -> u64 {
        match self {
            Self::Dense(d) => d.values.len() as u64,
            Self::Csr(c) => c.indices.len() as u64,
        }
    }

    /// Approximate storage footprint in bytes, matching the sum of
    /// [`LabeledPoint::approx_bytes`] over the materialized rows.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Self::Dense(d) => (8 * d.labels.len() + 8 * d.values.len()) as u64,
            Self::Csr(c) => (8 * c.labels.len() + 12 * c.indices.len()) as u64,
        }
    }

    /// Materialize every row as an owned [`LabeledPoint`] (ingestion/API
    /// boundary only — never on the hot path).
    pub fn to_points(&self) -> Vec<LabeledPoint> {
        self.iter().map(|v| v.to_point()).collect()
    }
}

/// Iterator over the rows of a [`ColumnStore`].
#[derive(Debug, Clone)]
pub struct ColumnIter<'a> {
    store: &'a ColumnStore,
    next: usize,
}

impl<'a> Iterator for ColumnIter<'a> {
    type Item = PointView<'a>;

    #[inline]
    fn next(&mut self) -> Option<PointView<'a>> {
        let v = self.store.view(self.next)?;
        self.next += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.store.len().saturating_sub(self.next);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ColumnIter<'_> {}

/// Streaming builder for a [`ColumnStore`].
///
/// Starts as a dense slab on the first dense push; upgrades to CSR the
/// moment a sparse or ragged-width row arrives (existing dense rows are
/// rewritten as explicit CSR rows, which is numerically identical).
#[derive(Debug, Clone)]
pub struct ColumnarBuilder {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    Empty,
    Dense(DenseColumns),
    Csr(CsrColumns),
}

impl Default for ColumnarBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnarBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self { repr: Repr::Empty }
    }

    /// A builder pre-sized for `rows` rows of `dims` dense features.
    pub fn with_dense_capacity(rows: usize, dims: usize) -> Self {
        Self {
            repr: Repr::Dense(DenseColumns {
                dims,
                labels: Vec::with_capacity(rows),
                values: Vec::with_capacity(rows * dims),
            }),
        }
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Empty => 0,
            Repr::Dense(d) => d.labels.len(),
            Repr::Csr(c) => c.labels.len(),
        }
    }

    /// `true` when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a dense row.
    pub fn push_dense(&mut self, label: f64, row: &[f64]) {
        match &mut self.repr {
            Repr::Empty => {
                self.repr = Repr::Dense(DenseColumns {
                    dims: row.len(),
                    labels: vec![label],
                    values: row.to_vec(),
                });
            }
            Repr::Dense(d) if d.dims == row.len() => {
                d.labels.push(label);
                d.values.extend_from_slice(row);
            }
            Repr::Dense(_) => {
                // Ragged dense width: fall back to CSR.
                self.upgrade_to_csr(row.len());
                self.push_dense(label, row);
            }
            Repr::Csr(c) => {
                c.dim = c.dim.max(row.len());
                c.labels.push(label);
                for (i, &v) in row.iter().enumerate() {
                    c.indices.push(i as u32);
                    c.values.push(v);
                }
                c.indptr.push(c.indices.len());
            }
        }
    }

    /// Append a sparse row. `indices` must be strictly increasing; the
    /// store's dimensionality grows to cover the largest index seen (use
    /// [`ColumnarBuilder::finish_with_dims`] to widen it further).
    pub fn push_sparse(
        &mut self,
        label: f64,
        indices: &[u32],
        values: &[f64],
    ) -> Result<(), LinalgError> {
        if indices.len() != values.len() {
            return Err(LinalgError::IndexValueLengthMismatch {
                indices: indices.len(),
                values: values.len(),
            });
        }
        if indices.windows(2).any(|w| w[0] >= w[1]) {
            return Err(LinalgError::UnsortedIndices);
        }
        let needed = indices.last().map_or(0, |&m| m as usize + 1);
        if !matches!(self.repr, Repr::Csr(_)) {
            let dims = match &self.repr {
                Repr::Dense(d) => d.dims,
                _ => 0,
            };
            self.upgrade_to_csr(dims.max(needed));
        }
        let Repr::Csr(c) = &mut self.repr else {
            unreachable!("just upgraded to CSR");
        };
        c.dim = c.dim.max(needed);
        c.labels.push(label);
        c.indices.extend_from_slice(indices);
        c.values.extend_from_slice(values);
        c.indptr.push(c.indices.len());
        Ok(())
    }

    /// Append an already-validated owned point.
    pub fn push_point(&mut self, point: &LabeledPoint) {
        self.push_view(point.view());
    }

    /// Append a borrowed row (the partition-dealing path: rows move from
    /// one store into per-partition builders without materializing points).
    pub fn push_view(&mut self, view: PointView<'_>) {
        match view.features {
            FeatureView::Dense(row) => self.push_dense(view.label, row),
            FeatureView::Sparse {
                dim,
                indices,
                values,
            } => {
                self.push_sparse(view.label, indices, values)
                    .expect("a view borrows already-validated storage");
                if let Repr::Csr(c) = &mut self.repr {
                    c.dim = c.dim.max(dim);
                }
            }
        }
    }

    /// Finish, producing the columnar store.
    pub fn finish(self) -> ColumnStore {
        match self.repr {
            Repr::Empty => ColumnStore::Dense(DenseColumns {
                dims: 0,
                labels: Vec::new(),
                values: Vec::new(),
            }),
            Repr::Dense(d) => ColumnStore::Dense(d),
            Repr::Csr(c) => ColumnStore::Csr(c),
        }
    }

    /// Finish, widening a CSR store's dimensionality to at least `dims`
    /// (LIBSVM's "pad to the model width" hint). Dense slabs keep their
    /// exact width — their dimensionality is structural, not declared.
    pub fn finish_with_dims(self, dims: usize) -> ColumnStore {
        let mut store = self.finish();
        if let ColumnStore::Csr(c) = &mut store {
            c.dim = c.dim.max(dims);
        }
        store
    }

    fn upgrade_to_csr(&mut self, dim: usize) {
        let repr = std::mem::replace(&mut self.repr, Repr::Empty);
        self.repr = match repr {
            Repr::Empty => Repr::Csr(CsrColumns {
                dim,
                labels: Vec::new(),
                indptr: vec![0],
                indices: Vec::new(),
                values: Vec::new(),
            }),
            Repr::Dense(d) => {
                let n = d.labels.len();
                let mut indices = Vec::with_capacity(d.values.len());
                let mut indptr = Vec::with_capacity(n + 1);
                indptr.push(0);
                for _ in 0..n {
                    indices.extend(0..d.dims as u32);
                    indptr.push(indices.len());
                }
                Repr::Csr(CsrColumns {
                    dim: dim.max(d.dims),
                    labels: d.labels,
                    indptr,
                    indices,
                    values: d.values,
                })
            }
            Repr::Csr(mut c) => {
                c.dim = c.dim.max(dim);
                Repr::Csr(c)
            }
        };
    }
}

/// Build a store from owned points (the compatibility ingestion path).
impl FromIterator<LabeledPoint> for ColumnStore {
    fn from_iter<I: IntoIterator<Item = LabeledPoint>>(iter: I) -> Self {
        let mut b = ColumnarBuilder::new();
        let mut dim = 0usize;
        for p in iter {
            dim = dim.max(p.dim());
            b.push_point(&p);
        }
        b.finish_with_dims(dim)
    }
}

impl From<&LabeledPoint> for ColumnStore {
    fn from(p: &LabeledPoint) -> Self {
        let mut b = ColumnarBuilder::new();
        b.push_point(p);
        b.finish_with_dims(p.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_linalg::{FeatureVec, SparseVector};

    #[test]
    fn dense_rows_land_in_one_slab() {
        let mut b = ColumnarBuilder::new();
        b.push_dense(1.0, &[1.0, 2.0]);
        b.push_dense(-1.0, &[3.0, 4.0]);
        let store = b.finish();
        assert_eq!(store.len(), 2);
        assert_eq!(store.dims(), 2);
        let (labels, values, dims) = store.as_dense().unwrap();
        assert_eq!(labels, &[1.0, -1.0]);
        assert_eq!(values, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(dims, 2);
        let v = store.view(1).unwrap();
        assert_eq!(v.label, -1.0);
        assert_eq!(v.features.dot(&[1.0, 0.0]), 3.0);
        assert!(store.view(2).is_none());
    }

    #[test]
    fn sparse_rows_build_csr() {
        let mut b = ColumnarBuilder::new();
        b.push_sparse(1.0, &[1, 3], &[5.0, 1.0]).unwrap();
        b.push_sparse(-1.0, &[0], &[2.0]).unwrap();
        let store = b.finish_with_dims(6);
        assert_eq!(store.len(), 2);
        assert_eq!(store.dims(), 6);
        assert!(store.as_dense().is_none());
        let v = store.view(0).unwrap();
        assert_eq!(v.features.nnz(), 2);
        assert_eq!(v.features.dot(&[0.0, 1.0, 0.0, 1.0, 0.0, 0.0]), 6.0);
        assert_eq!(store.total_nnz(), 3);
    }

    #[test]
    fn mixed_rows_upgrade_dense_to_csr_identically() {
        let mut b = ColumnarBuilder::new();
        b.push_dense(1.0, &[1.0, 0.0, 2.0]);
        b.push_sparse(-1.0, &[2], &[7.0]).unwrap();
        let store = b.finish();
        assert_eq!(store.dims(), 3);
        let w = [1.0, 10.0, 100.0];
        assert_eq!(store.view(0).unwrap().features.dot(&w), 201.0);
        assert_eq!(store.view(1).unwrap().features.dot(&w), 700.0);
    }

    #[test]
    fn builder_rejects_invalid_sparse_rows() {
        let mut b = ColumnarBuilder::new();
        assert_eq!(
            b.push_sparse(1.0, &[2, 1], &[1.0, 1.0]).unwrap_err(),
            LinalgError::UnsortedIndices
        );
        assert!(matches!(
            b.push_sparse(1.0, &[1], &[]).unwrap_err(),
            LinalgError::IndexValueLengthMismatch { .. }
        ));
    }

    #[test]
    fn to_points_round_trips_both_layouts() {
        let pts = vec![
            LabeledPoint::new(1.0, FeatureVec::dense(vec![1.0, 2.0])),
            LabeledPoint::new(-1.0, FeatureVec::dense(vec![3.0, 4.0])),
        ];
        let store: ColumnStore = pts.clone().into_iter().collect();
        assert_eq!(store.to_points(), pts);

        let sparse = vec![
            LabeledPoint::new(
                1.0,
                FeatureVec::Sparse(SparseVector::new(5, vec![0, 4], vec![1.0, 2.0]).unwrap()),
            ),
            LabeledPoint::new(
                -1.0,
                FeatureVec::Sparse(SparseVector::new(5, vec![2], vec![3.0]).unwrap()),
            ),
        ];
        let store: ColumnStore = sparse.clone().into_iter().collect();
        assert_eq!(store.to_points(), sparse);
    }

    #[test]
    fn approx_bytes_matches_point_accounting() {
        let pts = vec![
            LabeledPoint::new(1.0, FeatureVec::dense(vec![0.0; 10])),
            LabeledPoint::new(-1.0, FeatureVec::dense(vec![0.0; 10])),
        ];
        let expect: u64 = pts.iter().map(|p| p.approx_bytes() as u64).sum();
        let store: ColumnStore = pts.into_iter().collect();
        assert_eq!(store.approx_bytes(), expect);
    }

    #[test]
    fn empty_store_is_well_formed() {
        let store = ColumnStore::empty();
        assert!(store.is_empty());
        assert_eq!(store.iter().count(), 0);
        assert!(store.view(0).is_none());
    }

    #[test]
    fn iterator_is_exact_size() {
        let mut b = ColumnarBuilder::with_dense_capacity(3, 1);
        for i in 0..3 {
            b.push_dense(i as f64, &[i as f64]);
        }
        let store = b.finish();
        let mut it = store.iter();
        assert_eq!(it.len(), 3);
        it.next();
        assert_eq!(it.len(), 2);
        let labels: Vec<f64> = store.iter().map(|v| v.label).collect();
        assert_eq!(labels, vec![0.0, 1.0, 2.0]);
    }
}
