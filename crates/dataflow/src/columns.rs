//! Contiguous columnar row storage: the physical layout behind every
//! [`crate::dataset::Partition`].
//!
//! The paper's Section 4.1 data units — "a label, a set of indices, and a
//! set of values" — map directly onto two slab layouts:
//!
//! - **Dense**: one row-major `values` slab (`n × dims`) plus a `labels`
//!   column. A row is a borrowed `&[f64]` slice — no per-point heap
//!   allocation, no pointer chasing in the gradient hot loop.
//! - **CSR**: `indptr`/`indices`/`values` compressed sparse rows plus the
//!   `labels` column, for LIBSVM-shaped data like `rcv1`.
//!
//! Each column lives in a `SlabBuf`: either an owned `Vec` or a
//! zero-copy window into a memory-mapped slab file (see [`crate::slab`]).
//! The gradient executor reads both through identical slices, so
//! out-of-core datasets run the same hot loop as in-memory ones.
//!
//! [`ColumnarBuilder`] ingests rows in either shape and upgrades a dense
//! slab to CSR transparently when sparse or ragged rows arrive, so loaders
//! can stream rows without pre-classifying the dataset.

use std::ops::{Deref, Range};
use std::sync::Arc;

use ml4all_linalg::{FeatureView, LabeledPoint, LinalgError, PointView};

use crate::slab::MappedSlab;

/// Element types a [`SlabBuf`] can hold: plain old data whose bytes can be
/// reinterpreted straight out of a mapped file.
pub(crate) trait SlabElem:
    Copy + std::fmt::Debug + PartialEq + Send + Sync + 'static
{
}

impl SlabElem for f64 {}
impl SlabElem for u64 {}
impl SlabElem for u32 {}

/// A column buffer: an owned `Vec<T>` or a typed window into a shared
/// memory-mapped slab file. Both read as plain slices (via `Deref`), so
/// everything downstream of the builder is storage-agnostic.
pub(crate) struct SlabBuf<T: SlabElem> {
    inner: Inner<T>,
}

enum Inner<T> {
    Owned(Vec<T>),
    Mapped {
        map: Arc<MappedSlab>,
        byte_offset: usize,
        len: usize,
    },
}

impl<T: SlabElem> SlabBuf<T> {
    fn new() -> Self {
        Self {
            inner: Inner::Owned(Vec::new()),
        }
    }

    /// A window of `len` elements at `byte_offset` into a mapping. The
    /// offset must be aligned for `T` and the window must lie inside the
    /// mapping — both hold by construction for slab-file sections, which
    /// start on page boundaries.
    pub(crate) fn mapped(map: Arc<MappedSlab>, byte_offset: usize, len: usize) -> Self {
        assert_eq!(
            byte_offset % std::mem::align_of::<T>(),
            0,
            "slab section offset must be aligned for its element type"
        );
        assert!(
            byte_offset + len * std::mem::size_of::<T>() <= map.len(),
            "slab section must lie inside the mapping"
        );
        Self {
            inner: Inner::Mapped {
                map,
                byte_offset,
                len,
            },
        }
    }

    #[inline]
    fn as_slice(&self) -> &[T] {
        match &self.inner {
            Inner::Owned(v) => v,
            Inner::Mapped {
                map,
                byte_offset,
                len,
            } => unsafe {
                std::slice::from_raw_parts(map.bytes().as_ptr().add(*byte_offset) as *const T, *len)
            },
        }
    }

    /// A sub-buffer over `range`. Zero-copy (an `Arc` bump) when mapped;
    /// an owned copy otherwise.
    fn window(&self, range: Range<usize>) -> Self {
        match &self.inner {
            Inner::Owned(v) => Self {
                inner: Inner::Owned(v[range].to_vec()),
            },
            Inner::Mapped {
                map, byte_offset, ..
            } => Self::mapped(
                Arc::clone(map),
                byte_offset + range.start * std::mem::size_of::<T>(),
                range.len(),
            ),
        }
    }

    fn is_mapped(&self) -> bool {
        matches!(self.inner, Inner::Mapped { .. })
    }
}

impl<T: SlabElem> Deref for SlabBuf<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: SlabElem> From<Vec<T>> for SlabBuf<T> {
    fn from(v: Vec<T>) -> Self {
        Self {
            inner: Inner::Owned(v),
        }
    }
}

impl<T: SlabElem> Clone for SlabBuf<T> {
    fn clone(&self) -> Self {
        match &self.inner {
            Inner::Owned(v) => Self {
                inner: Inner::Owned(v.clone()),
            },
            Inner::Mapped {
                map,
                byte_offset,
                len,
            } => Self {
                inner: Inner::Mapped {
                    map: Arc::clone(map),
                    byte_offset: *byte_offset,
                    len: *len,
                },
            },
        }
    }
}

impl<T: SlabElem> std::fmt::Debug for SlabBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_mapped() {
            write!(f, "mapped:")?;
        }
        self.as_slice().fmt(f)
    }
}

impl<T: SlabElem> PartialEq for SlabBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Dense slab storage: labels + a row-major value matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseColumns {
    dims: usize,
    labels: SlabBuf<f64>,
    values: SlabBuf<f64>,
}

/// CSR storage: labels + compressed sparse rows over a shared dimension.
///
/// `indptr` offsets are **absolute** positions into `indices`/`values`. A
/// full store has `indptr[0] == 0`; a [`ColumnStore::window`] keeps the
/// complete `indices`/`values` buffers (shared zero-copy when mapped) and
/// narrows only `labels` and `indptr`, so its first offset is generally
/// non-zero.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrColumns {
    dim: usize,
    labels: SlabBuf<f64>,
    indptr: SlabBuf<u64>,
    indices: SlabBuf<u32>,
    values: SlabBuf<f64>,
}

/// A block of rows in contiguous columnar form.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnStore {
    /// Dense slab (`labels` + row-major `values`).
    Dense(DenseColumns),
    /// Compressed sparse rows.
    Csr(CsrColumns),
}

impl ColumnStore {
    /// An empty dense store (zero rows, zero dims).
    pub fn empty() -> Self {
        ColumnarBuilder::new().finish()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Self::Dense(d) => d.labels.len(),
            Self::Csr(c) => c.labels.len(),
        }
    }

    /// `true` when the store holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature-space dimensionality shared by every row.
    #[inline]
    pub fn dims(&self) -> usize {
        match self {
            Self::Dense(d) => d.dims,
            Self::Csr(c) => c.dim,
        }
    }

    /// Label column.
    #[inline]
    pub fn labels(&self) -> &[f64] {
        match self {
            Self::Dense(d) => &d.labels,
            Self::Csr(c) => &c.labels,
        }
    }

    /// Borrow row `i` as a zero-copy [`PointView`].
    #[inline]
    pub fn view(&self, i: usize) -> Option<PointView<'_>> {
        match self {
            Self::Dense(d) => {
                let label = *d.labels.get(i)?;
                let row = &d.values[i * d.dims..(i + 1) * d.dims];
                Some(PointView::new(label, FeatureView::Dense(row)))
            }
            Self::Csr(c) => {
                let label = *c.labels.get(i)?;
                let (lo, hi) = (c.indptr[i] as usize, c.indptr[i + 1] as usize);
                Some(PointView::new(
                    label,
                    FeatureView::Sparse {
                        dim: c.dim,
                        indices: &c.indices[lo..hi],
                        values: &c.values[lo..hi],
                    },
                ))
            }
        }
    }

    /// Iterate over every row as a [`PointView`].
    pub fn iter(&self) -> ColumnIter<'_> {
        ColumnIter {
            store: self,
            next: 0,
        }
    }

    /// Raw dense slab access (`labels`, row-major `values`, `dims`) — the
    /// branch-free fast path the gradient wave runs over.
    #[inline]
    pub fn as_dense(&self) -> Option<(&[f64], &[f64], usize)> {
        match self {
            Self::Dense(d) => Some((&d.labels, &d.values, d.dims)),
            Self::Csr(_) => None,
        }
    }

    /// Raw CSR access (`labels`, `indptr`, `indices`, `values`, `dim`).
    /// `indptr` offsets are absolute into `indices`/`values`; a window's
    /// first offset is generally non-zero (see [`CsrColumns`]).
    #[inline]
    #[allow(clippy::type_complexity)]
    pub fn as_csr(&self) -> Option<(&[f64], &[u64], &[u32], &[f64], usize)> {
        match self {
            Self::Dense(_) => None,
            Self::Csr(c) => Some((&c.labels, &c.indptr, &c.indices, &c.values, c.dim)),
        }
    }

    /// Sum of materialized (possibly non-zero) entries across all rows.
    pub fn total_nnz(&self) -> u64 {
        match self {
            Self::Dense(d) => d.values.len() as u64,
            Self::Csr(c) => match (c.indptr.first(), c.indptr.last()) {
                (Some(&lo), Some(&hi)) => hi - lo,
                _ => 0,
            },
        }
    }

    /// Approximate storage footprint in bytes, matching the sum of
    /// [`LabeledPoint::approx_bytes`] over the materialized rows.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Self::Dense(d) => (8 * d.labels.len() + 8 * d.values.len()) as u64,
            Self::Csr(c) => 8 * c.labels.len() as u64 + 12 * self.total_nnz(),
        }
    }

    /// `true` when the store's columns borrow a memory-mapped slab file
    /// rather than owning heap buffers.
    pub fn is_mapped(&self) -> bool {
        match self {
            Self::Dense(d) => d.labels.is_mapped(),
            Self::Csr(c) => c.labels.is_mapped(),
        }
    }

    /// Rows `start..end` as a store sharing this one's storage. For a
    /// mapped store this is zero-copy (the window borrows the same
    /// mapping), which is how partitions of an out-of-core dataset avoid
    /// duplicating data; for an owned dense store the rows are copied, and
    /// an owned CSR store additionally clones its full `indices`/`values`
    /// buffers — partitioning owned stores should keep using the builder
    /// dealing path instead.
    pub fn window(&self, start: usize, end: usize) -> ColumnStore {
        assert!(
            start <= end && end <= self.len(),
            "window {start}..{end} out of bounds for {} rows",
            self.len()
        );
        match self {
            Self::Dense(d) => Self::Dense(DenseColumns {
                dims: d.dims,
                labels: d.labels.window(start..end),
                values: d.values.window(start * d.dims..end * d.dims),
            }),
            Self::Csr(c) => Self::Csr(CsrColumns {
                dim: c.dim,
                labels: c.labels.window(start..end),
                indptr: c.indptr.window(start..end + 1),
                indices: c.indices.clone(),
                values: c.values.clone(),
            }),
        }
    }

    /// A dense store borrowing sections of a mapped slab file.
    pub(crate) fn from_mapped_dense(
        map: Arc<MappedSlab>,
        rows: usize,
        dims: usize,
        labels_off: usize,
        values_off: usize,
    ) -> Self {
        Self::Dense(DenseColumns {
            dims,
            labels: SlabBuf::mapped(Arc::clone(&map), labels_off, rows),
            values: SlabBuf::mapped(map, values_off, rows * dims),
        })
    }

    /// A CSR store borrowing sections of a mapped slab file.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_mapped_csr(
        map: Arc<MappedSlab>,
        rows: usize,
        dim: usize,
        nnz: usize,
        labels_off: usize,
        indptr_off: usize,
        indices_off: usize,
        values_off: usize,
    ) -> Self {
        Self::Csr(CsrColumns {
            dim,
            labels: SlabBuf::mapped(Arc::clone(&map), labels_off, rows),
            indptr: SlabBuf::mapped(Arc::clone(&map), indptr_off, rows + 1),
            indices: SlabBuf::mapped(Arc::clone(&map), indices_off, nnz),
            values: SlabBuf::mapped(map, values_off, nnz),
        })
    }

    /// Materialize every row as an owned [`LabeledPoint`] (ingestion/API
    /// boundary only — never on the hot path).
    pub fn to_points(&self) -> Vec<LabeledPoint> {
        self.iter().map(|v| v.to_point()).collect()
    }
}

/// Iterator over the rows of a [`ColumnStore`].
#[derive(Debug, Clone)]
pub struct ColumnIter<'a> {
    store: &'a ColumnStore,
    next: usize,
}

impl<'a> Iterator for ColumnIter<'a> {
    type Item = PointView<'a>;

    #[inline]
    fn next(&mut self) -> Option<PointView<'a>> {
        let v = self.store.view(self.next)?;
        self.next += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.store.len().saturating_sub(self.next);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ColumnIter<'_> {}

/// Streaming builder for a [`ColumnStore`].
///
/// Starts as a dense slab on the first dense push; upgrades to CSR the
/// moment a sparse or ragged-width row arrives (existing dense rows are
/// rewritten as explicit CSR rows, which is numerically identical).
#[derive(Debug, Clone)]
pub struct ColumnarBuilder {
    repr: Repr,
}

/// Builders always own plain `Vec`s; conversion to [`SlabBuf`] happens
/// once at [`ColumnarBuilder::finish`].
#[derive(Debug, Clone)]
enum Repr {
    Empty,
    Dense {
        dims: usize,
        labels: Vec<f64>,
        values: Vec<f64>,
    },
    Csr {
        dim: usize,
        labels: Vec<f64>,
        indptr: Vec<u64>,
        indices: Vec<u32>,
        values: Vec<f64>,
    },
}

impl Default for ColumnarBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnarBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self { repr: Repr::Empty }
    }

    /// A builder pre-sized for `rows` rows of `dims` dense features.
    pub fn with_dense_capacity(rows: usize, dims: usize) -> Self {
        Self {
            repr: Repr::Dense {
                dims,
                labels: Vec::with_capacity(rows),
                values: Vec::with_capacity(rows * dims),
            },
        }
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Empty => 0,
            Repr::Dense { labels, .. } | Repr::Csr { labels, .. } => labels.len(),
        }
    }

    /// `true` when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate in-memory footprint of the rows pushed so far, in the
    /// same accounting as [`ColumnStore::approx_bytes`]. This is what a
    /// spilling ingester budgets against.
    pub fn approx_bytes(&self) -> u64 {
        match &self.repr {
            Repr::Empty => 0,
            Repr::Dense { labels, values, .. } => (8 * labels.len() + 8 * values.len()) as u64,
            Repr::Csr {
                labels, indices, ..
            } => (8 * labels.len() + 12 * indices.len()) as u64,
        }
    }

    /// Append a dense row.
    pub fn push_dense(&mut self, label: f64, row: &[f64]) {
        match &mut self.repr {
            Repr::Empty => {
                self.repr = Repr::Dense {
                    dims: row.len(),
                    labels: vec![label],
                    values: row.to_vec(),
                };
            }
            Repr::Dense {
                dims,
                labels,
                values,
            } if *dims == row.len() => {
                labels.push(label);
                values.extend_from_slice(row);
            }
            Repr::Dense { .. } => {
                // Ragged dense width: fall back to CSR.
                self.upgrade_to_csr(row.len());
                self.push_dense(label, row);
            }
            Repr::Csr {
                dim,
                labels,
                indptr,
                indices,
                values,
            } => {
                *dim = (*dim).max(row.len());
                labels.push(label);
                for (i, &v) in row.iter().enumerate() {
                    indices.push(i as u32);
                    values.push(v);
                }
                indptr.push(indices.len() as u64);
            }
        }
    }

    /// Append a sparse row. `indices` must be strictly increasing; the
    /// store's dimensionality grows to cover the largest index seen (use
    /// [`ColumnarBuilder::finish_with_dims`] to widen it further).
    pub fn push_sparse(
        &mut self,
        label: f64,
        indices: &[u32],
        values: &[f64],
    ) -> Result<(), LinalgError> {
        if indices.len() != values.len() {
            return Err(LinalgError::IndexValueLengthMismatch {
                indices: indices.len(),
                values: values.len(),
            });
        }
        if indices.windows(2).any(|w| w[0] >= w[1]) {
            return Err(LinalgError::UnsortedIndices);
        }
        let needed = indices.last().map_or(0, |&m| m as usize + 1);
        if !matches!(self.repr, Repr::Csr { .. }) {
            let dims = match &self.repr {
                Repr::Dense { dims, .. } => *dims,
                _ => 0,
            };
            self.upgrade_to_csr(dims.max(needed));
        }
        let Repr::Csr {
            dim,
            labels,
            indptr,
            indices: all_indices,
            values: all_values,
        } = &mut self.repr
        else {
            unreachable!("just upgraded to CSR");
        };
        *dim = (*dim).max(needed);
        labels.push(label);
        all_indices.extend_from_slice(indices);
        all_values.extend_from_slice(values);
        indptr.push(all_indices.len() as u64);
        Ok(())
    }

    /// Append an already-validated owned point.
    pub fn push_point(&mut self, point: &LabeledPoint) {
        self.push_view(point.view());
    }

    /// Append a borrowed row (the partition-dealing path: rows move from
    /// one store into per-partition builders without materializing points).
    pub fn push_view(&mut self, view: PointView<'_>) {
        match view.features {
            FeatureView::Dense(row) => self.push_dense(view.label, row),
            FeatureView::Sparse {
                dim,
                indices,
                values,
            } => {
                self.push_sparse(view.label, indices, values)
                    .expect("a view borrows already-validated storage");
                if let Repr::Csr { dim: d, .. } = &mut self.repr {
                    *d = (*d).max(dim);
                }
            }
        }
    }

    /// Finish, producing the columnar store.
    pub fn finish(self) -> ColumnStore {
        match self.repr {
            Repr::Empty => ColumnStore::Dense(DenseColumns {
                dims: 0,
                labels: SlabBuf::new(),
                values: SlabBuf::new(),
            }),
            Repr::Dense {
                dims,
                labels,
                values,
            } => ColumnStore::Dense(DenseColumns {
                dims,
                labels: labels.into(),
                values: values.into(),
            }),
            Repr::Csr {
                dim,
                labels,
                indptr,
                indices,
                values,
            } => ColumnStore::Csr(CsrColumns {
                dim,
                labels: labels.into(),
                indptr: indptr.into(),
                indices: indices.into(),
                values: values.into(),
            }),
        }
    }

    /// Finish, widening a CSR store's dimensionality to at least `dims`
    /// (LIBSVM's "pad to the model width" hint). Dense slabs keep their
    /// exact width — their dimensionality is structural, not declared.
    pub fn finish_with_dims(self, dims: usize) -> ColumnStore {
        let mut store = self.finish();
        if let ColumnStore::Csr(c) = &mut store {
            c.dim = c.dim.max(dims);
        }
        store
    }

    fn upgrade_to_csr(&mut self, dim: usize) {
        let repr = std::mem::replace(&mut self.repr, Repr::Empty);
        self.repr = match repr {
            Repr::Empty => Repr::Csr {
                dim,
                labels: Vec::new(),
                indptr: vec![0],
                indices: Vec::new(),
                values: Vec::new(),
            },
            Repr::Dense {
                dims,
                labels,
                values,
            } => {
                let n = labels.len();
                let mut indices = Vec::with_capacity(values.len());
                let mut indptr = Vec::with_capacity(n + 1);
                indptr.push(0);
                for _ in 0..n {
                    indices.extend(0..dims as u32);
                    indptr.push(indices.len() as u64);
                }
                Repr::Csr {
                    dim: dim.max(dims),
                    labels,
                    indptr,
                    indices,
                    values,
                }
            }
            Repr::Csr {
                dim: d,
                labels,
                indptr,
                indices,
                values,
            } => Repr::Csr {
                dim: d.max(dim),
                labels,
                indptr,
                indices,
                values,
            },
        };
    }
}

/// Build a store from owned points (the compatibility ingestion path).
impl FromIterator<LabeledPoint> for ColumnStore {
    fn from_iter<I: IntoIterator<Item = LabeledPoint>>(iter: I) -> Self {
        let mut b = ColumnarBuilder::new();
        let mut dim = 0usize;
        for p in iter {
            dim = dim.max(p.dim());
            b.push_point(&p);
        }
        b.finish_with_dims(dim)
    }
}

impl From<&LabeledPoint> for ColumnStore {
    fn from(p: &LabeledPoint) -> Self {
        let mut b = ColumnarBuilder::new();
        b.push_point(p);
        b.finish_with_dims(p.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_linalg::{FeatureVec, SparseVector};

    #[test]
    fn dense_rows_land_in_one_slab() {
        let mut b = ColumnarBuilder::new();
        b.push_dense(1.0, &[1.0, 2.0]);
        b.push_dense(-1.0, &[3.0, 4.0]);
        let store = b.finish();
        assert_eq!(store.len(), 2);
        assert_eq!(store.dims(), 2);
        let (labels, values, dims) = store.as_dense().unwrap();
        assert_eq!(labels, &[1.0, -1.0]);
        assert_eq!(values, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(dims, 2);
        let v = store.view(1).unwrap();
        assert_eq!(v.label, -1.0);
        assert_eq!(v.features.dot(&[1.0, 0.0]), 3.0);
        assert!(store.view(2).is_none());
    }

    #[test]
    fn sparse_rows_build_csr() {
        let mut b = ColumnarBuilder::new();
        b.push_sparse(1.0, &[1, 3], &[5.0, 1.0]).unwrap();
        b.push_sparse(-1.0, &[0], &[2.0]).unwrap();
        let store = b.finish_with_dims(6);
        assert_eq!(store.len(), 2);
        assert_eq!(store.dims(), 6);
        assert!(store.as_dense().is_none());
        let v = store.view(0).unwrap();
        assert_eq!(v.features.nnz(), 2);
        assert_eq!(v.features.dot(&[0.0, 1.0, 0.0, 1.0, 0.0, 0.0]), 6.0);
        assert_eq!(store.total_nnz(), 3);
    }

    #[test]
    fn mixed_rows_upgrade_dense_to_csr_identically() {
        let mut b = ColumnarBuilder::new();
        b.push_dense(1.0, &[1.0, 0.0, 2.0]);
        b.push_sparse(-1.0, &[2], &[7.0]).unwrap();
        let store = b.finish();
        assert_eq!(store.dims(), 3);
        let w = [1.0, 10.0, 100.0];
        assert_eq!(store.view(0).unwrap().features.dot(&w), 201.0);
        assert_eq!(store.view(1).unwrap().features.dot(&w), 700.0);
    }

    #[test]
    fn builder_rejects_invalid_sparse_rows() {
        let mut b = ColumnarBuilder::new();
        assert_eq!(
            b.push_sparse(1.0, &[2, 1], &[1.0, 1.0]).unwrap_err(),
            LinalgError::UnsortedIndices
        );
        assert!(matches!(
            b.push_sparse(1.0, &[1], &[]).unwrap_err(),
            LinalgError::IndexValueLengthMismatch { .. }
        ));
    }

    #[test]
    fn to_points_round_trips_both_layouts() {
        let pts = vec![
            LabeledPoint::new(1.0, FeatureVec::dense(vec![1.0, 2.0])),
            LabeledPoint::new(-1.0, FeatureVec::dense(vec![3.0, 4.0])),
        ];
        let store: ColumnStore = pts.clone().into_iter().collect();
        assert_eq!(store.to_points(), pts);

        let sparse = vec![
            LabeledPoint::new(
                1.0,
                FeatureVec::Sparse(SparseVector::new(5, vec![0, 4], vec![1.0, 2.0]).unwrap()),
            ),
            LabeledPoint::new(
                -1.0,
                FeatureVec::Sparse(SparseVector::new(5, vec![2], vec![3.0]).unwrap()),
            ),
        ];
        let store: ColumnStore = sparse.clone().into_iter().collect();
        assert_eq!(store.to_points(), sparse);
    }

    #[test]
    fn approx_bytes_matches_point_accounting() {
        let pts = vec![
            LabeledPoint::new(1.0, FeatureVec::dense(vec![0.0; 10])),
            LabeledPoint::new(-1.0, FeatureVec::dense(vec![0.0; 10])),
        ];
        let expect: u64 = pts.iter().map(|p| p.approx_bytes() as u64).sum();
        let store: ColumnStore = pts.into_iter().collect();
        assert_eq!(store.approx_bytes(), expect);
    }

    #[test]
    fn empty_store_is_well_formed() {
        let store = ColumnStore::empty();
        assert!(store.is_empty());
        assert_eq!(store.iter().count(), 0);
        assert!(store.view(0).is_none());
        assert!(!store.is_mapped());
    }

    #[test]
    fn iterator_is_exact_size() {
        let mut b = ColumnarBuilder::with_dense_capacity(3, 1);
        for i in 0..3 {
            b.push_dense(i as f64, &[i as f64]);
        }
        let store = b.finish();
        let mut it = store.iter();
        assert_eq!(it.len(), 3);
        it.next();
        assert_eq!(it.len(), 2);
        let labels: Vec<f64> = store.iter().map(|v| v.label).collect();
        assert_eq!(labels, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn dense_window_selects_the_right_rows() {
        let mut b = ColumnarBuilder::new();
        for i in 0..10 {
            b.push_dense(i as f64, &[i as f64, -(i as f64)]);
        }
        let store = b.finish();
        let w = store.window(3, 7);
        assert_eq!(w.len(), 4);
        assert_eq!(w.dims(), 2);
        assert_eq!(w.labels(), &[3.0, 4.0, 5.0, 6.0]);
        for (k, v) in w.iter().enumerate() {
            assert_eq!(v.to_point(), store.view(3 + k).unwrap().to_point());
        }
    }

    #[test]
    fn csr_window_keeps_absolute_indptr() {
        let mut b = ColumnarBuilder::new();
        for i in 0..8u32 {
            b.push_sparse(i as f64, &[i, i + 10], &[1.0, 2.0]).unwrap();
        }
        let store = b.finish_with_dims(20);
        let w = store.window(2, 5);
        assert_eq!(w.len(), 3);
        assert_eq!(w.dims(), 20);
        assert_eq!(w.total_nnz(), 6);
        assert_eq!(w.approx_bytes(), 8 * 3 + 12 * 6);
        let (_, indptr, ..) = w.as_csr().unwrap();
        assert_eq!(indptr, &[4, 6, 8, 10]);
        for (k, v) in w.iter().enumerate() {
            assert_eq!(v.to_point(), store.view(2 + k).unwrap().to_point());
        }
    }

    #[test]
    fn empty_window_is_well_formed() {
        let mut b = ColumnarBuilder::new();
        b.push_sparse(1.0, &[0], &[1.0]).unwrap();
        let store = b.finish();
        let w = store.window(1, 1);
        assert!(w.is_empty());
        assert_eq!(w.total_nnz(), 0);
    }
}
