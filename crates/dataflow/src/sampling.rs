//! The three sampling strategies of Figure 4, with their distinct cost
//! profiles (Section 6, "Efficient data skipping"):
//!
//! - **Bernoulli** — include every data unit with probability `m/n` (what
//!   MLlib does). The *simulated* cost is a full scan per draw; the
//!   machine implementation uses geometric skip sampling (jump straight
//!   to the next included unit) so the real work is proportional to the
//!   included count, not the dataset size.
//! - **Random-partition** — for each of the `m` requested units, pick a
//!   random partition, then a random unit inside it. Cost: `m` random page
//!   reads (seek + page each).
//! - **Shuffled-partition** — shuffle one randomly-picked partition once,
//!   then serve samples *sequentially* from it, reshuffling a fresh
//!   partition on exhaustion. Cost: an amortized partition read + cheap
//!   sequential page access; the trade-off is intra-partition sample
//!   correlation, which can increase iterations to converge (and distorts
//!   models on partition-skewed data — the paper's rcv1 caveat).
//!
//! All three samplers are **index-based**: a draw yields `(partition,
//! offset)` coordinates into the columnar storage — no point is ever
//! cloned — and [`SamplerState::draw_into`] writes them into a
//! caller-owned buffer so the training loop allocates nothing per
//! iteration.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cluster::StorageMedium;
use crate::dataset::PartitionedDataset;
use crate::env::SimEnv;
use crate::DataflowError;

/// Which sampling strategy a GD plan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SamplingMethod {
    /// Full-scan probabilistic inclusion.
    Bernoulli,
    /// Random partition + random offset per draw.
    RandomPartition,
    /// One shuffled partition served sequentially.
    ShuffledPartition,
}

impl SamplingMethod {
    /// Short label used in plan names (`eager-bernoulli`, `lazy-shuffle`, …).
    pub fn label(&self) -> &'static str {
        match self {
            Self::Bernoulli => "bernoulli",
            Self::RandomPartition => "random",
            Self::ShuffledPartition => "shuffle",
        }
    }
}

impl std::fmt::Display for SamplingMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cursor into the currently-shuffled partition. `order[..pos]` holds the
/// units served so far (in served order); `order[pos..]` the not-yet-served
/// remainder, permuted lazily by one forward Fisher–Yates step per serve.
/// The buffer is reused across reshuffles.
#[derive(Debug, Clone)]
struct ShuffleCursor {
    partition: usize,
    order: Vec<u32>,
    pos: usize,
}

/// Stateful sampler living across the iterations of one GD run.
#[derive(Debug, Clone)]
pub struct SamplerState {
    method: SamplingMethod,
    cursor: Option<ShuffleCursor>,
    /// Partitions shuffled so far (exposed for tests/diagnostics; the paper
    /// notes reshuffling kicks in when a partition runs out of units).
    shuffles: usize,
}

/// A serializable snapshot of a [`SamplerState`] mid-run, captured for
/// checkpointing. Restoring it (plus the RNG stream position) puts the
/// sampler back exactly where the snapshot interrupted it, so the
/// resumed draw sequence is bit-identical to the uninterrupted one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplerSnapshot {
    /// The strategy in use.
    pub method: SamplingMethod,
    /// Partitions shuffled so far.
    pub shuffles: u64,
    /// Shuffled-partition cursor, when one exists: `(partition, pos,
    /// order)` with `order[..pos]` already served.
    pub cursor: Option<(u64, u64, Vec<u32>)>,
}

impl SamplerState {
    /// Bernoulli retries before force-picking a unit (an empty Bernoulli
    /// sample would otherwise stall the iteration — the paper discusses
    /// MLlib's workaround of inflating the fraction).
    const MAX_BERNOULLI_RETRIES: usize = 64;

    /// New sampler for a given method.
    pub fn new(method: SamplingMethod) -> Self {
        Self {
            method,
            cursor: None,
            shuffles: 0,
        }
    }

    /// The strategy this sampler implements.
    pub fn method(&self) -> SamplingMethod {
        self.method
    }

    /// Number of partition shuffles performed so far.
    pub fn shuffles(&self) -> usize {
        self.shuffles
    }

    /// Capture the sampler's full mutable state for a checkpoint.
    pub fn snapshot(&self) -> SamplerSnapshot {
        SamplerSnapshot {
            method: self.method,
            shuffles: self.shuffles as u64,
            cursor: self
                .cursor
                .as_ref()
                .map(|c| (c.partition as u64, c.pos as u64, c.order.clone())),
        }
    }

    /// Rebuild a sampler at a previously captured state.
    pub fn restore(snapshot: &SamplerSnapshot) -> Self {
        Self {
            method: snapshot.method,
            cursor: snapshot
                .cursor
                .as_ref()
                .map(|(partition, pos, order)| ShuffleCursor {
                    partition: *partition as usize,
                    order: order.clone(),
                    pos: *pos as usize,
                }),
            shuffles: snapshot.shuffles as usize,
        }
    }

    /// Draw (approximately, for Bernoulli; exactly, otherwise) `m` sample
    /// coordinates `(partition, offset)` from `data`, charging the
    /// strategy's per-iteration cost to `env`. Allocating convenience
    /// wrapper around [`SamplerState::draw_into`].
    pub fn draw(
        &mut self,
        data: &PartitionedDataset,
        m: usize,
        env: &mut SimEnv,
        rng: &mut StdRng,
    ) -> Result<Vec<(usize, usize)>, DataflowError> {
        let mut out = Vec::new();
        self.draw_into(data, m, env, rng, &mut out)?;
        Ok(out)
    }

    /// Draw sample coordinates into `out` (cleared first). The buffer is
    /// caller-owned so repeated draws reuse its allocation.
    pub fn draw_into(
        &mut self,
        data: &PartitionedDataset,
        m: usize,
        env: &mut SimEnv,
        rng: &mut StdRng,
        out: &mut Vec<(usize, usize)>,
    ) -> Result<(), DataflowError> {
        out.clear();
        if data.physical_n() == 0 {
            return Err(DataflowError::NothingToSample);
        }
        if m == 0 {
            return Ok(());
        }
        match self.method {
            SamplingMethod::Bernoulli => self.draw_bernoulli(data, m, env, rng, out),
            SamplingMethod::RandomPartition => self.draw_random_partition(data, m, env, rng, out),
            SamplingMethod::ShuffledPartition => {
                self.draw_shuffled_partition(data, m, env, rng, out)
            }
        }
    }

    /// Bernoulli via geometric skip sampling: instead of flipping a coin
    /// per unit, jump directly to the next included unit (the skip length
    /// is geometrically distributed with the same inclusion probability),
    /// so a draw costs O(included) instead of O(n). Each partition tests
    /// its units with an RNG seeded from (draw, partition index) and
    /// partitions emit in index order, so the drawn sample is identical at
    /// any worker count. The *simulated* cost stays a full scan — that is
    /// the strategy's cost profile, regardless of how fast the machine
    /// executes it.
    fn draw_bernoulli(
        &mut self,
        data: &PartitionedDataset,
        m: usize,
        env: &mut SimEnv,
        rng: &mut StdRng,
        out: &mut Vec<(usize, usize)>,
    ) -> Result<(), DataflowError> {
        let desc = data.descriptor();
        let n_phys = data.physical_n();
        let prob = (m as f64 / n_phys as f64).min(1.0);
        for _ in 0..Self::MAX_BERNOULLI_RETRIES {
            // Every retry is charged as a whole-dataset scan: that is the
            // cost profile that makes Bernoulli a poor fit for small
            // samples.
            env.charge_full_scan_io(desc, StorageMedium::Auto);
            env.charge_wave_cpu(desc, env.spec.cpu_sample_test_s());
            let draw_seed = rng.next_u64();
            for (pi, part) in data.partitions().iter().enumerate() {
                let mut prng =
                    StdRng::seed_from_u64(ml4all_runtime::derive_seed(draw_seed, pi as u64));
                if prob >= 1.0 {
                    out.extend((0..part.len()).map(|oi| (pi, oi)));
                    continue;
                }
                let ln_q = (1.0 - prob).ln();
                let mut oi = 0usize;
                loop {
                    // `1 - u ∈ (0, 1]` keeps ln() finite; the skip length
                    // floor(ln(u')/ln(1-p)) is Geometric(p).
                    let u = 1.0 - prng.gen::<f64>();
                    let skip = u.ln() / ln_q;
                    if skip >= (part.len() - oi) as f64 {
                        break;
                    }
                    oi += skip as usize;
                    out.push((pi, oi));
                    oi += 1;
                    if oi >= part.len() {
                        break;
                    }
                }
            }
            if !out.is_empty() {
                return Ok(());
            }
        }
        // Degenerate fallback: force one uniformly random unit.
        out.push(random_coordinate(data, rng));
        Ok(())
    }

    fn draw_random_partition(
        &mut self,
        data: &PartitionedDataset,
        m: usize,
        env: &mut SimEnv,
        rng: &mut StdRng,
        out: &mut Vec<(usize, usize)>,
    ) -> Result<(), DataflowError> {
        let desc = data.descriptor();
        out.reserve(m);
        for _ in 0..m {
            env.charge_random_unit_read(desc, StorageMedium::Auto);
            out.push(random_coordinate(data, rng));
        }
        env.charge_serial_cpu(m as u64, env.spec.cpu_sample_test_s());
        Ok(())
    }

    fn draw_shuffled_partition(
        &mut self,
        data: &PartitionedDataset,
        m: usize,
        env: &mut SimEnv,
        rng: &mut StdRng,
        out: &mut Vec<(usize, usize)>,
    ) -> Result<(), DataflowError> {
        let desc = data.descriptor();

        // Charge the reshuffle *amortized at logical scale*: one partition
        // shuffle (seek + sequential partition read + Fisher–Yates over its
        // k units) serves k sequential draws. Charging per *physical*
        // reshuffle would make the simulated cost depend on how many rows
        // this process happens to hold in memory, not on the dataset.
        {
            let k = desc.units_per_partition(&env.spec).max(1);
            let mut shuffle_env = SimEnv::new(env.spec.clone());
            shuffle_env.charge_seek(desc.bytes, StorageMedium::Auto);
            let partition_bytes = desc
                .bytes
                .div_ceil(desc.partitions(&env.spec))
                .min(env.spec.partition_bytes);
            shuffle_env.charge_sequential_read(partition_bytes, desc.bytes, StorageMedium::Auto);
            shuffle_env.charge_serial_cpu(k, shuffle_env.spec.cpu_shuffle_unit_s());
            env.ledger
                .charge_io(shuffle_env.elapsed_s() * m as f64 / k as f64);
        }

        out.reserve(m);
        while out.len() < m {
            let need_shuffle = match &self.cursor {
                None => true,
                Some(c) => c.pos >= c.order.len(),
            };
            if need_shuffle {
                // Physical reshuffle (cost already amortized above): pick a
                // fresh partition and reset the cursor to the identity
                // order. The permutation itself is produced *incrementally*
                // below — one forward Fisher–Yates step per served unit —
                // so a reshuffle costs O(partition) cheap sequential writes
                // and zero RNG draws, and a draw of `m` units costs exactly
                // `m` `gen_range` calls however large the partition is.
                let pi = rng.gen_range(0..data.num_partitions());
                let part = data.partition(pi)?;
                let cursor = self.cursor.get_or_insert_with(|| ShuffleCursor {
                    partition: 0,
                    order: Vec::new(),
                    pos: 0,
                });
                cursor.partition = pi;
                cursor.pos = 0;
                cursor.order.clear();
                cursor.order.extend(0..part.len() as u32);
                self.shuffles += 1;
            }
            let cursor = self.cursor.as_mut().expect("cursor just ensured");
            while out.len() < m && cursor.pos < cursor.order.len() {
                // Forward Fisher–Yates step: every not-yet-served unit is
                // equally likely to be served next, so a full epoch walks a
                // uniformly random permutation — exactly the distribution
                // of the old upfront shuffle (RNG stream v3; the upfront
                // variant was v2).
                let j = rng.gen_range(cursor.pos..cursor.order.len());
                cursor.order.swap(cursor.pos, j);
                out.push((cursor.partition, cursor.order[cursor.pos] as usize));
                cursor.pos += 1;
            }
        }
        // Sequential access to the m units, amortized over pages.
        let unit_bytes = desc.unit_bytes().ceil() as u64;
        env.charge_sequential_read(unit_bytes * m as u64, desc.bytes, StorageMedium::Auto);
        env.charge_serial_cpu(m as u64, env.spec.cpu_sample_test_s());
        Ok(())
    }
}

fn random_coordinate(data: &PartitionedDataset, rng: &mut StdRng) -> (usize, usize) {
    loop {
        let pi = rng.gen_range(0..data.num_partitions());
        let part = &data.partitions()[pi];
        if !part.is_empty() {
            return (pi, rng.gen_range(0..part.len()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::dataset::PartitionScheme;
    use crate::descriptor::DatasetDescriptor;
    use ml4all_linalg::{FeatureVec, LabeledPoint};
    use rand::SeedableRng;

    fn dataset(n: usize, partitions: u64) -> PartitionedDataset {
        let points: Vec<LabeledPoint> = (0..n)
            .map(|i| LabeledPoint::new(1.0, FeatureVec::dense(vec![i as f64])))
            .collect();
        let spec = ClusterSpec::paper_testbed();
        let desc = DatasetDescriptor::new("s", n as u64, 1, partitions * spec.partition_bytes, 1.0);
        PartitionedDataset::with_descriptor(desc, points, PartitionScheme::RoundRobin, &spec)
            .unwrap()
    }

    fn env() -> SimEnv {
        SimEnv::new(ClusterSpec::paper_testbed())
    }

    #[test]
    fn bernoulli_returns_roughly_m_units() {
        let data = dataset(10_000, 1);
        let mut env = env();
        let mut rng = StdRng::seed_from_u64(7);
        let mut sampler = SamplerState::new(SamplingMethod::Bernoulli);
        let s = sampler.draw(&data, 1000, &mut env, &mut rng).unwrap();
        assert!(s.len() > 700 && s.len() < 1300, "got {}", s.len());
    }

    #[test]
    fn bernoulli_skip_sampling_draws_m_in_expectation() {
        // Average over many draws: the geometric-skip implementation must
        // keep the Bernoulli mean inclusion count at m.
        let data = dataset(5_000, 4);
        let mut env = env();
        let mut rng = StdRng::seed_from_u64(11);
        let mut sampler = SamplerState::new(SamplingMethod::Bernoulli);
        let m = 100usize;
        let draws = 200;
        let mut total = 0usize;
        for _ in 0..draws {
            total += sampler.draw(&data, m, &mut env, &mut rng).unwrap().len();
        }
        let mean = total as f64 / draws as f64;
        assert!(
            (mean - m as f64).abs() < 0.08 * m as f64,
            "mean inclusion {mean} vs requested {m}"
        );
    }

    #[test]
    fn bernoulli_with_m_at_least_n_includes_everything() {
        let data = dataset(64, 4);
        let mut env = env();
        let mut rng = StdRng::seed_from_u64(5);
        let mut sampler = SamplerState::new(SamplingMethod::Bernoulli);
        let s = sampler.draw(&data, 64, &mut env, &mut rng).unwrap();
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn bernoulli_never_returns_empty() {
        let data = dataset(5000, 1);
        let mut env = env();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = SamplerState::new(SamplingMethod::Bernoulli);
        for _ in 0..50 {
            let s = sampler.draw(&data, 1, &mut env, &mut rng).unwrap();
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn bernoulli_coordinates_are_valid_and_strictly_increasing_per_partition() {
        let data = dataset(2000, 4);
        let mut env = env();
        let mut rng = StdRng::seed_from_u64(17);
        let mut sampler = SamplerState::new(SamplingMethod::Bernoulli);
        let s = sampler.draw(&data, 200, &mut env, &mut rng).unwrap();
        for w in s.windows(2) {
            let ((p0, o0), (p1, o1)) = (w[0], w[1]);
            assert!(
                p0 < p1 || (p0 == p1 && o0 < o1),
                "skip sampling emits in order"
            );
        }
        for (pi, oi) in s {
            assert!(data.view(pi, oi).is_some());
        }
    }

    #[test]
    fn draw_into_reuses_the_coordinate_buffer() {
        let data = dataset(1000, 2);
        let mut env = env();
        let mut rng = StdRng::seed_from_u64(23);
        let mut sampler = SamplerState::new(SamplingMethod::RandomPartition);
        let mut buf = Vec::new();
        sampler
            .draw_into(&data, 64, &mut env, &mut rng, &mut buf)
            .unwrap();
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        for _ in 0..10 {
            sampler
                .draw_into(&data, 64, &mut env, &mut rng, &mut buf)
                .unwrap();
            assert_eq!(buf.len(), 64);
        }
        assert_eq!(buf.capacity(), cap, "no buffer growth across draws");
        assert_eq!(buf.as_ptr(), ptr, "no reallocation across draws");
    }

    #[test]
    fn random_partition_returns_exactly_m() {
        let data = dataset(1000, 4);
        let mut env = env();
        let mut rng = StdRng::seed_from_u64(1);
        let mut sampler = SamplerState::new(SamplingMethod::RandomPartition);
        let s = sampler.draw(&data, 64, &mut env, &mut rng).unwrap();
        assert_eq!(s.len(), 64);
        for (pi, oi) in s {
            assert!(data.view(pi, oi).is_some());
        }
    }

    #[test]
    fn shuffled_partition_serves_sequentially_and_reshuffles() {
        let data = dataset(100, 4); // 25 points per partition
        let mut env = env();
        let mut rng = StdRng::seed_from_u64(2);
        let mut sampler = SamplerState::new(SamplingMethod::ShuffledPartition);
        let first = sampler.draw(&data, 10, &mut env, &mut rng).unwrap();
        assert_eq!(first.len(), 10);
        assert_eq!(sampler.shuffles(), 1);
        // All ten from the same partition.
        let p0 = first[0].0;
        assert!(first.iter().all(|(p, _)| *p == p0));
        // Drawing 20 more exhausts the 25-unit partition → reshuffle.
        let _ = sampler.draw(&data, 20, &mut env, &mut rng).unwrap();
        assert_eq!(sampler.shuffles(), 2);
    }

    #[test]
    fn shuffled_partition_covers_whole_partition_without_repeats() {
        let data = dataset(40, 1);
        let mut env = env();
        let mut rng = StdRng::seed_from_u64(9);
        let mut sampler = SamplerState::new(SamplingMethod::ShuffledPartition);
        let s = sampler.draw(&data, 40, &mut env, &mut rng).unwrap();
        let mut offsets: Vec<usize> = s.iter().map(|(_, o)| *o).collect();
        offsets.sort_unstable();
        offsets.dedup();
        assert_eq!(
            offsets.len(),
            40,
            "each unit served exactly once per shuffle"
        );
    }

    #[test]
    fn bernoulli_costs_a_full_scan_but_random_does_not() {
        let data = dataset(100_000, 8);
        let mut rng = StdRng::seed_from_u64(5);

        let mut env_b = env();
        let mut bernoulli = SamplerState::new(SamplingMethod::Bernoulli);
        bernoulli.draw(&data, 10, &mut env_b, &mut rng).unwrap();

        let mut env_r = env();
        let mut random = SamplerState::new(SamplingMethod::RandomPartition);
        random.draw(&data, 10, &mut env_r, &mut rng).unwrap();

        assert!(
            env_b.elapsed_s() > 3.0 * env_r.elapsed_s(),
            "bernoulli {} vs random {}",
            env_b.elapsed_s(),
            env_r.elapsed_s()
        );
    }

    #[test]
    fn shuffle_amortizes_below_random_partition_over_many_draws() {
        let data = dataset(100_000, 8);
        let mut rng = StdRng::seed_from_u64(6);

        let mut env_s = env();
        let mut shuffled = SamplerState::new(SamplingMethod::ShuffledPartition);
        for _ in 0..500 {
            shuffled.draw(&data, 1, &mut env_s, &mut rng).unwrap();
        }

        let mut env_r = env();
        let mut random = SamplerState::new(SamplingMethod::RandomPartition);
        for _ in 0..500 {
            random.draw(&data, 1, &mut env_r, &mut rng).unwrap();
        }

        assert!(
            env_s.elapsed_s() < env_r.elapsed_s(),
            "shuffle {} vs random {}",
            env_s.elapsed_s(),
            env_r.elapsed_s()
        );
    }

    #[test]
    fn zero_sample_is_free_and_empty() {
        let data = dataset(10, 1);
        let mut env = env();
        let mut rng = StdRng::seed_from_u64(0);
        let mut sampler = SamplerState::new(SamplingMethod::RandomPartition);
        let s = sampler.draw(&data, 0, &mut env, &mut rng).unwrap();
        assert!(s.is_empty());
        assert_eq!(env.elapsed_s(), 0.0);
    }
}
