//! Execution backends: *where* a plan's waves run, and what gets metered.
//!
//! The paper executes cluster-mapped plans on a 4-node Spark deployment and
//! driver-only plans in a single JVM (Appendix D). This module makes that
//! split explicit: a [`Backend`] value selects between the in-process
//! [`Local`](Backend::Local) runtime and a deterministic
//! [`SimulatedCluster`](Backend::SimulatedCluster) — N simulated nodes with
//! round-robin partition placement and a broadcast/aggregate step per
//! compute wave. The simulated cluster never changes *what* executes (the
//! math and its RNG streams are backend-invariant, bit for bit); it adds a
//! per-node **usage meter** ([`crate::ledger::UsageMeter`]) so a run yields
//! a measured cost vector beside the modelled one — the raw material of
//! the conformance harness.

use crate::cluster::ClusterSpec;

/// Deterministic placement of partitions onto simulated cluster nodes.
///
/// Placement is round-robin by partition index — the statistical analog of
/// HDFS block assignment — so it depends only on the partition count and
/// the node count, never on worker identity or execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTopology {
    nodes: usize,
}

impl ClusterTopology {
    /// Topology with the node count of `spec` (at least one node).
    pub fn new(spec: &ClusterSpec) -> Self {
        Self {
            nodes: spec.nodes.max(1),
        }
    }

    /// Number of simulated nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node hosting partition `pi`.
    pub fn node_of(&self, pi: usize) -> usize {
        pi % self.nodes
    }

    /// Nodes that hold at least one of `partitions` partitions.
    pub fn active_nodes(&self, partitions: usize) -> usize {
        partitions.min(self.nodes)
    }
}

/// Which backend executes a plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Backend {
    /// In-process execution at the driver (the paper's "Java" side): the
    /// shared worker pool runs the waves, nothing is metered.
    #[default]
    Local,
    /// Deterministic simulated cluster (the paper's "Spark" side): waves
    /// still execute on the shared pool — placement is an accounting
    /// overlay, so results stay bit-identical to [`Backend::Local`] — but
    /// every wave meters tuples scanned, bytes shuffled (model broadcast +
    /// partial aggregation), and busy seconds per node.
    SimulatedCluster(ClusterTopology),
}

impl Backend {
    /// A simulated cluster with the node count of `spec`.
    pub fn simulated_cluster(spec: &ClusterSpec) -> Self {
        Self::SimulatedCluster(ClusterTopology::new(spec))
    }

    /// `true` for the simulated-cluster backend.
    pub fn is_cluster(&self) -> bool {
        matches!(self, Self::SimulatedCluster(_))
    }

    /// Stable backend label used in reports and summaries.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Local => "local",
            Self::SimulatedCluster(_) => "simulated-cluster",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_round_robin_over_nodes() {
        let topo = ClusterTopology::new(&ClusterSpec::paper_testbed());
        assert_eq!(topo.nodes(), 4);
        assert_eq!(topo.node_of(0), 0);
        assert_eq!(topo.node_of(5), 1);
        assert_eq!(topo.node_of(7), 3);
        assert_eq!(topo.active_nodes(2), 2);
        assert_eq!(topo.active_nodes(100), 4);
    }

    #[test]
    fn single_node_spec_still_has_one_node() {
        let topo = ClusterTopology::new(&ClusterSpec::local(4));
        assert_eq!(topo.nodes(), 1);
        assert_eq!(topo.node_of(9), 0);
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Backend::Local.name(), "local");
        let cluster = Backend::simulated_cluster(&ClusterSpec::paper_testbed());
        assert_eq!(cluster.name(), "simulated-cluster");
        assert!(cluster.is_cluster());
        assert!(!Backend::default().is_cluster());
        assert_eq!(format!("{cluster}"), "simulated-cluster");
    }
}
