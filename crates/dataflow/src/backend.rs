//! Execution backends: *where* a plan's waves run, and what gets metered.
//!
//! The paper executes cluster-mapped plans on a 4-node Spark deployment and
//! driver-only plans in a single JVM (Appendix D). This module makes that
//! split explicit: a [`Backend`] value selects between the in-process
//! [`Local`](Backend::Local) runtime and a deterministic
//! [`SimulatedCluster`](Backend::SimulatedCluster) — N simulated nodes with
//! round-robin partition placement and a broadcast/aggregate step per
//! compute wave. The simulated cluster never changes *what* executes (the
//! math and its RNG streams are backend-invariant, bit for bit); it adds a
//! per-node **usage meter** ([`crate::ledger::UsageMeter`]) so a run yields
//! a measured cost vector beside the modelled one — the raw material of
//! the conformance harness.

use crate::cluster::ClusterSpec;

/// Deterministic fault injection for the simulated cluster: scripted
/// node losses and stragglers, applied as an accounting overlay by
/// [`crate::SimEnv::meter_cluster_wave`]. Faults never change *what*
/// executes — the math and RNG streams stay bit-identical to a
/// fault-free run — they change where partitions are placed and what the
/// usage meter records, so `explain`'s measured column shows what a
/// failure costs. An empty schedule meters exactly like before.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    /// `(wave, node)`: the node dies during that 1-based compute wave.
    /// Its in-flight work is lost and its partitions re-place onto the
    /// survivors from that wave onward.
    node_losses: Vec<(u64, usize)>,
    /// `(node, slowdown)`: the node computes `slowdown`× slower than its
    /// peers for the whole run.
    stragglers: Vec<(usize, u32)>,
}

impl FaultSchedule {
    /// An empty schedule (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Script node `node` to die during 1-based wave `wave`.
    pub fn lose_node(mut self, wave: u64, node: usize) -> Self {
        self.node_losses.push((wave.max(1), node));
        self
    }

    /// Script node `node` as a straggler computing `slowdown`× slower.
    pub fn straggler(mut self, node: usize, slowdown: u32) -> Self {
        self.stragglers.push((node, slowdown.max(1)));
        self
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.node_losses.is_empty() && self.stragglers.is_empty()
    }

    /// Nodes scripted to die during exactly wave `wave`.
    pub fn losses_at(&self, wave: u64) -> Vec<usize> {
        self.node_losses
            .iter()
            .filter(|(w, _)| *w == wave)
            .map(|(_, n)| *n)
            .collect()
    }

    /// `true` when `node` is dead as of wave `wave` (it died during this
    /// wave or an earlier one).
    pub fn is_dead_at(&self, node: usize, wave: u64) -> bool {
        self.node_losses
            .iter()
            .any(|(w, n)| *n == node && *w <= wave)
    }

    /// The straggler slowdown factor for `node` (1 when not a straggler).
    pub fn straggler_factor(&self, node: usize) -> u32 {
        self.stragglers
            .iter()
            .find(|(n, _)| *n == node)
            .map_or(1, |(_, s)| *s)
    }
}

/// Deterministic placement of partitions onto simulated cluster nodes.
///
/// Placement is round-robin by partition index — the statistical analog of
/// HDFS block assignment — so it depends only on the partition count and
/// the node count, never on worker identity or execution order. With a
/// [`FaultSchedule`] attached, partitions of dead nodes re-place
/// round-robin over the survivors — still a pure function of `(partition,
/// wave)`, so fault-injected runs stay deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTopology {
    nodes: usize,
    faults: FaultSchedule,
}

impl ClusterTopology {
    /// Topology with the node count of `spec` (at least one node).
    pub fn new(spec: &ClusterSpec) -> Self {
        Self {
            nodes: spec.nodes.max(1),
            faults: FaultSchedule::default(),
        }
    }

    /// Attach a fault schedule (builder-style).
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// The attached fault schedule (empty by default).
    pub fn faults(&self) -> &FaultSchedule {
        &self.faults
    }

    /// Number of simulated nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node hosting partition `pi` in a fault-free cluster.
    pub fn node_of(&self, pi: usize) -> usize {
        pi % self.nodes
    }

    /// The node hosting partition `pi` as of 1-based wave `wave`, with
    /// the fault schedule applied: partitions of dead nodes re-place
    /// round-robin over the surviving nodes. Falls back to the fault-free
    /// placement when no nodes survive (a degenerate schedule).
    pub fn node_of_at(&self, pi: usize, wave: u64) -> usize {
        let base = self.node_of(pi);
        if self.faults.node_losses.is_empty() || !self.faults.is_dead_at(base, wave) {
            return base;
        }
        let survivors: Vec<usize> = (0..self.nodes)
            .filter(|&n| !self.faults.is_dead_at(n, wave))
            .collect();
        if survivors.is_empty() {
            return base;
        }
        survivors[pi % survivors.len()]
    }

    /// Nodes that hold at least one of `partitions` partitions.
    pub fn active_nodes(&self, partitions: usize) -> usize {
        partitions.min(self.nodes)
    }
}

/// Which backend executes a plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Backend {
    /// In-process execution at the driver (the paper's "Java" side): the
    /// shared worker pool runs the waves, nothing is metered.
    #[default]
    Local,
    /// Deterministic simulated cluster (the paper's "Spark" side): waves
    /// still execute on the shared pool — placement is an accounting
    /// overlay, so results stay bit-identical to [`Backend::Local`] — but
    /// every wave meters tuples scanned, bytes shuffled (model broadcast +
    /// partial aggregation), and busy seconds per node.
    SimulatedCluster(ClusterTopology),
}

impl Backend {
    /// A simulated cluster with the node count of `spec`.
    pub fn simulated_cluster(spec: &ClusterSpec) -> Self {
        Self::SimulatedCluster(ClusterTopology::new(spec))
    }

    /// A simulated cluster with a [`FaultSchedule`] attached.
    pub fn simulated_cluster_with_faults(spec: &ClusterSpec, faults: FaultSchedule) -> Self {
        Self::SimulatedCluster(ClusterTopology::new(spec).with_faults(faults))
    }

    /// `true` for the simulated-cluster backend.
    pub fn is_cluster(&self) -> bool {
        matches!(self, Self::SimulatedCluster(_))
    }

    /// Stable backend label used in reports and summaries.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Local => "local",
            Self::SimulatedCluster(_) => "simulated-cluster",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_round_robin_over_nodes() {
        let topo = ClusterTopology::new(&ClusterSpec::paper_testbed());
        assert_eq!(topo.nodes(), 4);
        assert_eq!(topo.node_of(0), 0);
        assert_eq!(topo.node_of(5), 1);
        assert_eq!(topo.node_of(7), 3);
        assert_eq!(topo.active_nodes(2), 2);
        assert_eq!(topo.active_nodes(100), 4);
    }

    #[test]
    fn single_node_spec_still_has_one_node() {
        let topo = ClusterTopology::new(&ClusterSpec::local(4));
        assert_eq!(topo.nodes(), 1);
        assert_eq!(topo.node_of(9), 0);
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Backend::Local.name(), "local");
        let cluster = Backend::simulated_cluster(&ClusterSpec::paper_testbed());
        assert_eq!(cluster.name(), "simulated-cluster");
        assert!(cluster.is_cluster());
        assert!(!Backend::default().is_cluster());
        assert_eq!(format!("{cluster}"), "simulated-cluster");
    }
}
