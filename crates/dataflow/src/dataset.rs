//! Physical partitioned datasets.
//!
//! A [`PartitionedDataset`] pairs a logical [`DatasetDescriptor`] (the
//! scale the cost model charges for) with physical partitions of
//! [`LabeledPoint`] rows that the math actually runs over. For laptop-scale
//! reproduction of the paper's multi-gigabyte datasets, the physical rows
//! may be a deterministic down-sample of the declared logical scale — the
//! paper's own Section 5 argument (error-sequence shape is preserved under
//! sampling) is what licenses this.

use std::sync::Arc;

use ml4all_linalg::LabeledPoint;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::cluster::ClusterSpec;
use crate::descriptor::DatasetDescriptor;
use crate::DataflowError;

/// How points are laid out across partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Deal points round-robin: partitions are statistically interchangeable.
    RoundRobin,
    /// Chunk points in their given order: preserves any ordering skew in the
    /// source (e.g. label-sorted dumps), which is what makes the
    /// shuffled-partition sampler's single-partition bias observable —
    /// the paper's rcv1 testing-error caveat (Section 8.5).
    Contiguous,
}

/// One physical partition (an HDFS block's worth of rows).
#[derive(Debug, Clone)]
pub struct Partition {
    points: Vec<LabeledPoint>,
}

impl Partition {
    /// Rows of this partition.
    pub fn points(&self) -> &[LabeledPoint] {
        &self.points
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the partition holds no rows.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A dataset partitioned across the simulated cluster.
///
/// Partitions are immutable after construction and shared behind an
/// [`Arc`], so cloning a dataset (the source resolver hands out owned
/// values; the chooser clones for speculation) is O(1) rather than a deep
/// copy of every row.
#[derive(Debug, Clone)]
pub struct PartitionedDataset {
    desc: DatasetDescriptor,
    partitions: Arc<[Partition]>,
}

impl PartitionedDataset {
    /// Cap on physical partitions: keeps memory bounded while the logical
    /// descriptor may declare thousands of partitions.
    pub const MAX_PHYSICAL_PARTITIONS: usize = 64;

    /// Build from points, deriving the logical descriptor from the physical
    /// rows (full-scale dataset).
    pub fn from_points(
        name: impl Into<String>,
        points: Vec<LabeledPoint>,
        scheme: PartitionScheme,
        spec: &ClusterSpec,
    ) -> Result<Self, DataflowError> {
        let desc = DatasetDescriptor::from_points(name, &points);
        Self::with_descriptor(desc, points, scheme, spec)
    }

    /// Build from points with an explicit (possibly larger-than-physical)
    /// logical descriptor.
    pub fn with_descriptor(
        desc: DatasetDescriptor,
        points: Vec<LabeledPoint>,
        scheme: PartitionScheme,
        spec: &ClusterSpec,
    ) -> Result<Self, DataflowError> {
        if points.is_empty() {
            return Err(DataflowError::EmptyDataset);
        }
        let logical_p = desc.partitions(spec) as usize;
        let n_phys = points.len();
        // One physical partition per logical partition, capped; never more
        // partitions than points.
        let p_phys = logical_p
            .clamp(1, Self::MAX_PHYSICAL_PARTITIONS)
            .min(n_phys);
        let mut partitions: Vec<Vec<LabeledPoint>> = (0..p_phys)
            .map(|i| Vec::with_capacity(n_phys / p_phys + usize::from(i < n_phys % p_phys)))
            .collect();
        match scheme {
            PartitionScheme::RoundRobin => {
                for (i, pt) in points.into_iter().enumerate() {
                    partitions[i % p_phys].push(pt);
                }
            }
            PartitionScheme::Contiguous => {
                let chunk = n_phys.div_ceil(p_phys);
                for (i, pt) in points.into_iter().enumerate() {
                    partitions[(i / chunk).min(p_phys - 1)].push(pt);
                }
            }
        }
        Ok(Self {
            desc,
            partitions: partitions
                .into_iter()
                .map(|points| Partition { points })
                .collect::<Vec<_>>()
                .into(),
        })
    }

    /// The logical descriptor used for all cost accounting.
    pub fn descriptor(&self) -> &DatasetDescriptor {
        &self.desc
    }

    /// Physical partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Number of physical partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// A specific partition.
    pub fn partition(&self, index: usize) -> Result<&Partition, DataflowError> {
        self.partitions
            .get(index)
            .ok_or(DataflowError::PartitionOutOfBounds {
                index,
                partitions: self.partitions.len(),
            })
    }

    /// Total physical rows in memory.
    pub fn physical_n(&self) -> usize {
        self.partitions.iter().map(Partition::len).sum()
    }

    /// `physical rows / logical n` — 1.0 for full-scale datasets.
    pub fn physical_scale(&self) -> f64 {
        self.physical_n() as f64 / self.desc.n as f64
    }

    /// Iterate over every physical row (partition-major order).
    pub fn iter_points(&self) -> impl Iterator<Item = &LabeledPoint> {
        self.partitions.iter().flat_map(|p| p.points.iter())
    }

    /// Look up a row by `(partition, offset)` coordinates.
    pub fn point(&self, partition: usize, offset: usize) -> Option<&LabeledPoint> {
        self.partitions.get(partition)?.points.get(offset)
    }

    /// A deterministic uniform sub-sample of `m` physical rows (used by the
    /// speculation-based iterations estimator, Algorithm 1 line 1). Returns
    /// all rows if `m >= physical_n`.
    pub fn sample_points(&self, m: usize, seed: u64) -> Vec<LabeledPoint> {
        let all: Vec<&LabeledPoint> = self.iter_points().collect();
        if m >= all.len() {
            return all.into_iter().cloned().collect();
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..all.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(m);
        idx.sort_unstable();
        idx.into_iter().map(|i| all[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_linalg::FeatureVec;

    fn points(n: usize) -> Vec<LabeledPoint> {
        (0..n)
            .map(|i| {
                LabeledPoint::new(
                    if i % 2 == 0 { 1.0 } else { -1.0 },
                    FeatureVec::dense(vec![i as f64, 1.0]),
                )
            })
            .collect()
    }

    fn spec() -> ClusterSpec {
        ClusterSpec::paper_testbed()
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let err =
            PartitionedDataset::from_points("e", vec![], PartitionScheme::RoundRobin, &spec())
                .unwrap_err();
        assert_eq!(err, DataflowError::EmptyDataset);
    }

    #[test]
    fn small_dataset_lands_in_one_partition() {
        let ds =
            PartitionedDataset::from_points("s", points(100), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        assert_eq!(ds.num_partitions(), 1);
        assert_eq!(ds.physical_n(), 100);
        assert!((ds.physical_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn logical_descriptor_controls_partition_count() {
        // Declare a 2 GB logical dataset backed by 1 000 physical rows:
        // 2 GB / 128 MB = 16 logical partitions → 16 physical partitions.
        let desc = DatasetDescriptor::new("big", 1_000_000, 2, 2 * 1024 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(1000),
            PartitionScheme::RoundRobin,
            &spec(),
        )
        .unwrap();
        assert_eq!(ds.num_partitions(), 16);
        assert_eq!(ds.physical_n(), 1000);
        assert!((ds.physical_scale() - 0.001).abs() < 1e-9);
    }

    #[test]
    fn physical_partitions_are_capped() {
        // 160 GB → 1280 logical partitions, capped at 64 physical.
        let desc = DatasetDescriptor::new("huge", 88_268_800, 100, 160 * 1024 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(10_000),
            PartitionScheme::RoundRobin,
            &spec(),
        )
        .unwrap();
        assert_eq!(
            ds.num_partitions(),
            PartitionedDataset::MAX_PHYSICAL_PARTITIONS
        );
    }

    #[test]
    fn contiguous_scheme_preserves_order_chunks() {
        let desc = DatasetDescriptor::new("c", 100, 2, 4 * 128 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(100),
            PartitionScheme::Contiguous,
            &spec(),
        )
        .unwrap();
        assert_eq!(ds.num_partitions(), 4);
        // First partition holds the first chunk in order.
        let first = ds.partition(0).unwrap();
        assert_eq!(first.points()[0].features.dot(&[1.0, 0.0]), 0.0);
        assert_eq!(first.points()[1].features.dot(&[1.0, 0.0]), 1.0);
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let desc = DatasetDescriptor::new("r", 100, 2, 4 * 128 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(100),
            PartitionScheme::RoundRobin,
            &spec(),
        )
        .unwrap();
        for p in ds.partitions() {
            assert_eq!(p.len(), 25);
        }
    }

    #[test]
    fn sample_points_is_deterministic_and_sized() {
        let ds =
            PartitionedDataset::from_points("s", points(500), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        let a = ds.sample_points(50, 42);
        let b = ds.sample_points(50, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert_eq!(ds.sample_points(10_000, 1).len(), 500);
    }

    #[test]
    fn point_lookup_round_trips() {
        let ds =
            PartitionedDataset::from_points("p", points(10), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        assert!(ds.point(0, 0).is_some());
        assert!(ds.point(9, 0).is_none());
        assert!(ds.partition(3).is_err());
    }
}
