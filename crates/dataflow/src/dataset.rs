//! Physical partitioned datasets.
//!
//! A [`PartitionedDataset`] pairs a logical [`DatasetDescriptor`] (the
//! scale the cost model charges for) with physical partitions stored in
//! contiguous columnar form ([`ColumnStore`]): a labels column plus either
//! a row-major dense slab or CSR, which is what the gradient hot loop
//! iterates with zero per-point allocation. For laptop-scale reproduction
//! of the paper's multi-gigabyte datasets, the physical rows may be a
//! deterministic down-sample of the declared logical scale — the paper's
//! own Section 5 argument (error-sequence shape is preserved under
//! sampling) is what licenses this.

use std::sync::Arc;

use ml4all_linalg::{LabeledPoint, PointView};
use rand::{Rng, SeedableRng};

use crate::cluster::ClusterSpec;
use crate::columns::{ColumnStore, ColumnarBuilder};
use crate::descriptor::DatasetDescriptor;
use crate::DataflowError;

/// How points are laid out across partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Deal points round-robin: partitions are statistically interchangeable.
    RoundRobin,
    /// Chunk points in their given order: preserves any ordering skew in the
    /// source (e.g. label-sorted dumps), which is what makes the
    /// shuffled-partition sampler's single-partition bias observable —
    /// the paper's rcv1 testing-error caveat (Section 8.5).
    Contiguous,
}

/// One physical partition (an HDFS block's worth of rows) in columnar form.
#[derive(Debug, Clone)]
pub struct Partition {
    columns: ColumnStore,
}

impl Partition {
    /// The columnar storage behind this partition.
    pub fn columns(&self) -> &ColumnStore {
        &self.columns
    }

    /// Borrow row `oi` as a zero-copy view.
    #[inline]
    pub fn view(&self, oi: usize) -> Option<PointView<'_>> {
        self.columns.view(oi)
    }

    /// Iterate over the partition's rows as views.
    pub fn iter(&self) -> crate::columns::ColumnIter<'_> {
        self.columns.iter()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` if the partition holds no rows.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// A dataset partitioned across the simulated cluster.
///
/// Partitions are immutable after construction and shared behind an
/// [`Arc`], so cloning a dataset (the source resolver hands out owned
/// values; the chooser clones for speculation) is O(1) rather than a deep
/// copy of every row.
#[derive(Debug, Clone)]
pub struct PartitionedDataset {
    desc: DatasetDescriptor,
    partitions: Arc<[Partition]>,
}

impl PartitionedDataset {
    /// Cap on physical partitions: keeps memory bounded while the logical
    /// descriptor may declare thousands of partitions.
    pub const MAX_PHYSICAL_PARTITIONS: usize = 64;

    /// Build from owned points, deriving the logical descriptor from the
    /// physical rows (full-scale dataset). Ingestion-compatibility path;
    /// loaders that already hold columnar rows use
    /// [`PartitionedDataset::from_columns`].
    pub fn from_points(
        name: impl Into<String>,
        points: Vec<LabeledPoint>,
        scheme: PartitionScheme,
        spec: &ClusterSpec,
    ) -> Result<Self, DataflowError> {
        let desc = DatasetDescriptor::from_points(name, &points);
        let rows: ColumnStore = points.into_iter().collect();
        Self::with_descriptor_columns(desc, &rows, scheme, spec)
    }

    /// Build from columnar rows, deriving the logical descriptor from the
    /// physical rows (full-scale dataset).
    pub fn from_columns(
        name: impl Into<String>,
        rows: &ColumnStore,
        scheme: PartitionScheme,
        spec: &ClusterSpec,
    ) -> Result<Self, DataflowError> {
        let desc = DatasetDescriptor::from_columns(name, rows);
        Self::with_descriptor_columns(desc, rows, scheme, spec)
    }

    /// Build from owned points with an explicit (possibly
    /// larger-than-physical) logical descriptor.
    pub fn with_descriptor(
        desc: DatasetDescriptor,
        points: Vec<LabeledPoint>,
        scheme: PartitionScheme,
        spec: &ClusterSpec,
    ) -> Result<Self, DataflowError> {
        let rows: ColumnStore = points.into_iter().collect();
        Self::with_descriptor_columns(desc, &rows, scheme, spec)
    }

    /// Build from columnar rows with an explicit logical descriptor: rows
    /// are dealt into per-partition slabs without materializing any
    /// [`LabeledPoint`].
    pub fn with_descriptor_columns(
        desc: DatasetDescriptor,
        rows: &ColumnStore,
        scheme: PartitionScheme,
        spec: &ClusterSpec,
    ) -> Result<Self, DataflowError> {
        if rows.is_empty() {
            return Err(DataflowError::EmptyDataset);
        }
        let logical_p = desc.partitions(spec) as usize;
        let n_phys = rows.len();
        // One physical partition per logical partition, capped; never more
        // partitions than points.
        let p_phys = logical_p
            .clamp(1, Self::MAX_PHYSICAL_PARTITIONS)
            .min(n_phys);
        // Pre-size a dense slab only when the source rows are dense: a
        // dense pre-allocation for CSR rows would survive the builder's
        // layout upgrade and pin dense-equivalent memory for sparse data.
        // Row counts follow the scheme: round-robin deals evenly, while
        // contiguous dealing fills ceil(n/p)-sized chunks front to back.
        let chunk = n_phys.div_ceil(p_phys);
        let mut builders: Vec<ColumnarBuilder> = (0..p_phys)
            .map(|i| {
                let rows_here = match scheme {
                    PartitionScheme::RoundRobin => {
                        n_phys / p_phys + usize::from(i < n_phys % p_phys)
                    }
                    PartitionScheme::Contiguous => chunk.min(n_phys - (i * chunk).min(n_phys)),
                };
                if rows.as_dense().is_some() {
                    ColumnarBuilder::with_dense_capacity(rows_here, rows.dims())
                } else {
                    ColumnarBuilder::new()
                }
            })
            .collect();
        match scheme {
            PartitionScheme::RoundRobin => {
                for (i, v) in rows.iter().enumerate() {
                    builders[i % p_phys].push_view(v);
                }
            }
            PartitionScheme::Contiguous => {
                for (i, v) in rows.iter().enumerate() {
                    builders[(i / chunk).min(p_phys - 1)].push_view(v);
                }
            }
        }
        Ok(Self {
            desc,
            partitions: builders
                .into_iter()
                .map(|b| Partition {
                    columns: b.finish_with_dims(rows.dims()),
                })
                .collect::<Vec<_>>()
                .into(),
        })
    }

    /// The logical descriptor used for all cost accounting.
    pub fn descriptor(&self) -> &DatasetDescriptor {
        &self.desc
    }

    /// Physical partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Number of physical partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// A specific partition.
    pub fn partition(&self, index: usize) -> Result<&Partition, DataflowError> {
        self.partitions
            .get(index)
            .ok_or(DataflowError::PartitionOutOfBounds {
                index,
                partitions: self.partitions.len(),
            })
    }

    /// Total physical rows in memory.
    pub fn physical_n(&self) -> usize {
        self.partitions.iter().map(Partition::len).sum()
    }

    /// `physical rows / logical n` — 1.0 for full-scale datasets.
    pub fn physical_scale(&self) -> f64 {
        self.physical_n() as f64 / self.desc.n as f64
    }

    /// Iterate over every physical row as a zero-copy view
    /// (partition-major order).
    pub fn iter_views(&self) -> impl Iterator<Item = PointView<'_>> {
        self.partitions.iter().flat_map(|p| p.iter())
    }

    /// Borrow a row by `(partition, offset)` coordinates.
    #[inline]
    pub fn view(&self, partition: usize, offset: usize) -> Option<PointView<'_>> {
        self.partitions.get(partition)?.view(offset)
    }

    /// Materialize a row by `(partition, offset)` coordinates (API
    /// boundary only — the hot loop uses [`PartitionedDataset::view`]).
    pub fn point(&self, partition: usize, offset: usize) -> Option<LabeledPoint> {
        Some(self.view(partition, offset)?.to_point())
    }

    /// Materialize every physical row (partition-major order).
    pub fn to_points(&self) -> Vec<LabeledPoint> {
        self.iter_views().map(|v| v.to_point()).collect()
    }

    /// A deterministic uniform sub-sample of `m` physical rows (used by the
    /// speculation-based iterations estimator, Algorithm 1 line 1). Returns
    /// all rows if `m >= physical_n`. A partial Fisher–Yates stops after
    /// the `m` draws instead of shuffling the full index vector.
    pub fn sample_points(&self, m: usize, seed: u64) -> Vec<LabeledPoint> {
        let n = self.physical_n();
        if m >= n {
            return self.to_points();
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut idx: Vec<u32> = (0..n as u32).collect();
        for i in 0..m {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(m);
        idx.sort_unstable();

        // Walk the sorted global indices against the partition offsets.
        let mut out = Vec::with_capacity(m);
        let mut pi = 0usize;
        let mut start = 0usize;
        for gi in idx {
            let gi = gi as usize;
            while gi >= start + self.partitions[pi].len() {
                start += self.partitions[pi].len();
                pi += 1;
            }
            out.push(
                self.partitions[pi]
                    .view(gi - start)
                    .expect("global index within partition")
                    .to_point(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_linalg::FeatureVec;

    fn points(n: usize) -> Vec<LabeledPoint> {
        (0..n)
            .map(|i| {
                LabeledPoint::new(
                    if i % 2 == 0 { 1.0 } else { -1.0 },
                    FeatureVec::dense(vec![i as f64, 1.0]),
                )
            })
            .collect()
    }

    fn spec() -> ClusterSpec {
        ClusterSpec::paper_testbed()
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let err =
            PartitionedDataset::from_points("e", vec![], PartitionScheme::RoundRobin, &spec())
                .unwrap_err();
        assert_eq!(err, DataflowError::EmptyDataset);
    }

    #[test]
    fn small_dataset_lands_in_one_partition() {
        let ds =
            PartitionedDataset::from_points("s", points(100), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        assert_eq!(ds.num_partitions(), 1);
        assert_eq!(ds.physical_n(), 100);
        assert!((ds.physical_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn logical_descriptor_controls_partition_count() {
        // Declare a 2 GB logical dataset backed by 1 000 physical rows:
        // 2 GB / 128 MB = 16 logical partitions → 16 physical partitions.
        let desc = DatasetDescriptor::new("big", 1_000_000, 2, 2 * 1024 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(1000),
            PartitionScheme::RoundRobin,
            &spec(),
        )
        .unwrap();
        assert_eq!(ds.num_partitions(), 16);
        assert_eq!(ds.physical_n(), 1000);
        assert!((ds.physical_scale() - 0.001).abs() < 1e-9);
    }

    #[test]
    fn physical_partitions_are_capped() {
        // 160 GB → 1280 logical partitions, capped at 64 physical.
        let desc = DatasetDescriptor::new("huge", 88_268_800, 100, 160 * 1024 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(10_000),
            PartitionScheme::RoundRobin,
            &spec(),
        )
        .unwrap();
        assert_eq!(
            ds.num_partitions(),
            PartitionedDataset::MAX_PHYSICAL_PARTITIONS
        );
    }

    #[test]
    fn contiguous_scheme_preserves_order_chunks() {
        let desc = DatasetDescriptor::new("c", 100, 2, 4 * 128 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(100),
            PartitionScheme::Contiguous,
            &spec(),
        )
        .unwrap();
        assert_eq!(ds.num_partitions(), 4);
        // First partition holds the first chunk in order.
        let first = ds.partition(0).unwrap();
        assert_eq!(first.view(0).unwrap().features.dot(&[1.0, 0.0]), 0.0);
        assert_eq!(first.view(1).unwrap().features.dot(&[1.0, 0.0]), 1.0);
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let desc = DatasetDescriptor::new("r", 100, 2, 4 * 128 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(100),
            PartitionScheme::RoundRobin,
            &spec(),
        )
        .unwrap();
        for p in ds.partitions() {
            assert_eq!(p.len(), 25);
        }
    }

    #[test]
    fn contiguous_chunking_fills_front_partitions() {
        // n = 10, p = 4 → chunks of 3,3,3,1 (not the round-robin 3,3,2,2):
        // the pre-sizing must match the dealing so slabs never regrow.
        let desc = DatasetDescriptor::new("c", 10, 2, 4 * 128 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(10),
            PartitionScheme::Contiguous,
            &spec(),
        )
        .unwrap();
        let lens: Vec<usize> = ds.partitions().iter().map(Partition::len).collect();
        assert_eq!(lens, vec![3, 3, 3, 1]);
    }

    #[test]
    fn dense_points_build_contiguous_slabs() {
        let ds =
            PartitionedDataset::from_points("d", points(10), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        let (labels, values, dims) = ds.partition(0).unwrap().columns().as_dense().unwrap();
        assert_eq!(labels.len(), 10);
        assert_eq!(dims, 2);
        assert_eq!(values.len(), 20);
    }

    #[test]
    fn sample_points_is_deterministic_and_sized() {
        let ds =
            PartitionedDataset::from_points("s", points(500), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        let a = ds.sample_points(50, 42);
        let b = ds.sample_points(50, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert_eq!(ds.sample_points(10_000, 1).len(), 500);
    }

    #[test]
    fn sample_points_draws_distinct_rows() {
        let ds =
            PartitionedDataset::from_points("u", points(200), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        let sample = ds.sample_points(80, 7);
        let mut xs: Vec<f64> = sample.iter().map(|p| p.features.dot(&[1.0, 0.0])).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        assert_eq!(xs.len(), 80, "a uniform sample never repeats a row");
    }

    #[test]
    fn point_lookup_round_trips() {
        let ds =
            PartitionedDataset::from_points("p", points(10), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        assert!(ds.view(0, 0).is_some());
        assert!(ds.view(9, 0).is_none());
        assert!(ds.partition(3).is_err());
        let p = ds.point(0, 0).unwrap();
        assert_eq!(p.label, 1.0);
    }
}
