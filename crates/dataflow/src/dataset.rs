//! Physical partitioned datasets.
//!
//! A [`PartitionedDataset`] pairs a logical [`DatasetDescriptor`] (the
//! scale the cost model charges for) with physical partitions stored in
//! contiguous columnar form ([`ColumnStore`]): a labels column plus either
//! a row-major dense slab or CSR, which is what the gradient hot loop
//! iterates with zero per-point allocation. For laptop-scale reproduction
//! of the paper's multi-gigabyte datasets, the physical rows may be a
//! deterministic down-sample of the declared logical scale — the paper's
//! own Section 5 argument (error-sequence shape is preserved under
//! sampling) is what licenses this.

use std::sync::{Arc, OnceLock};

use ml4all_linalg::{LabeledPoint, PointView};
use rand::{Rng, SeedableRng};

use crate::cluster::ClusterSpec;
use crate::columns::{ColumnStore, ColumnarBuilder};
use crate::descriptor::DatasetDescriptor;
use crate::DataflowError;

/// How points are laid out across partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Deal points round-robin: partitions are statistically interchangeable.
    RoundRobin,
    /// Chunk points in their given order: preserves any ordering skew in the
    /// source (e.g. label-sorted dumps), which is what makes the
    /// shuffled-partition sampler's single-partition bias observable —
    /// the paper's rcv1 testing-error caveat (Section 8.5).
    Contiguous,
}

/// One physical partition (an HDFS block's worth of rows) in columnar form.
#[derive(Debug, Clone)]
pub struct Partition {
    columns: ColumnStore,
}

impl Partition {
    /// The columnar storage behind this partition.
    pub fn columns(&self) -> &ColumnStore {
        &self.columns
    }

    /// Borrow row `oi` as a zero-copy view.
    #[inline]
    pub fn view(&self, oi: usize) -> Option<PointView<'_>> {
        self.columns.view(oi)
    }

    /// Iterate over the partition's rows as views.
    pub fn iter(&self) -> crate::columns::ColumnIter<'_> {
        self.columns.iter()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` if the partition holds no rows.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// A dataset partitioned across the simulated cluster.
///
/// Partitions are immutable after construction and shared behind an
/// [`Arc`], so cloning a dataset (the source resolver hands out owned
/// values; the chooser clones for speculation) is O(1) rather than a deep
/// copy of every row.
#[derive(Debug, Clone)]
pub struct PartitionedDataset {
    desc: DatasetDescriptor,
    partitions: Arc<[Partition]>,
    /// How the input rows were dealt into partitions — recorded so
    /// [`PartitionedDataset::iter_views_input_order`] can walk them back
    /// in their original order.
    scheme: PartitionScheme,
    /// Lazily computed content fingerprint, shared by every clone (the
    /// plan cache keys on it; computing it once per storage is enough).
    fingerprint: Arc<OnceLock<u64>>,
}

impl PartitionedDataset {
    /// Cap on physical partitions: keeps memory bounded while the logical
    /// descriptor may declare thousands of partitions.
    pub const MAX_PHYSICAL_PARTITIONS: usize = 64;

    /// Build from owned points, deriving the logical descriptor from the
    /// physical rows (full-scale dataset). Ingestion-compatibility path;
    /// loaders that already hold columnar rows use
    /// [`PartitionedDataset::from_columns`].
    pub fn from_points(
        name: impl Into<String>,
        points: Vec<LabeledPoint>,
        scheme: PartitionScheme,
        spec: &ClusterSpec,
    ) -> Result<Self, DataflowError> {
        let desc = DatasetDescriptor::from_points(name, &points);
        let rows: ColumnStore = points.into_iter().collect();
        Self::with_descriptor_columns(desc, &rows, scheme, spec)
    }

    /// Build from columnar rows, deriving the logical descriptor from the
    /// physical rows (full-scale dataset).
    pub fn from_columns(
        name: impl Into<String>,
        rows: &ColumnStore,
        scheme: PartitionScheme,
        spec: &ClusterSpec,
    ) -> Result<Self, DataflowError> {
        let desc = DatasetDescriptor::from_columns(name, rows);
        Self::with_descriptor_columns(desc, rows, scheme, spec)
    }

    /// Build from owned points with an explicit (possibly
    /// larger-than-physical) logical descriptor.
    pub fn with_descriptor(
        desc: DatasetDescriptor,
        points: Vec<LabeledPoint>,
        scheme: PartitionScheme,
        spec: &ClusterSpec,
    ) -> Result<Self, DataflowError> {
        let rows: ColumnStore = points.into_iter().collect();
        Self::with_descriptor_columns(desc, &rows, scheme, spec)
    }

    /// Build from columnar rows with an explicit logical descriptor: rows
    /// are dealt into per-partition slabs without materializing any
    /// [`LabeledPoint`].
    pub fn with_descriptor_columns(
        desc: DatasetDescriptor,
        rows: &ColumnStore,
        scheme: PartitionScheme,
        spec: &ClusterSpec,
    ) -> Result<Self, DataflowError> {
        if rows.is_empty() {
            return Err(DataflowError::EmptyDataset);
        }
        let logical_p = desc.partitions(spec) as usize;
        let n_phys = rows.len();
        // One physical partition per logical partition, capped; never more
        // partitions than points.
        let p_phys = logical_p
            .clamp(1, Self::MAX_PHYSICAL_PARTITIONS)
            .min(n_phys);
        // Pre-size a dense slab only when the source rows are dense: a
        // dense pre-allocation for CSR rows would survive the builder's
        // layout upgrade and pin dense-equivalent memory for sparse data.
        // Row counts follow the scheme: round-robin deals evenly, while
        // contiguous dealing fills ceil(n/p)-sized chunks front to back.
        let chunk = n_phys.div_ceil(p_phys);
        let mut builders: Vec<ColumnarBuilder> = (0..p_phys)
            .map(|i| {
                let rows_here = match scheme {
                    PartitionScheme::RoundRobin => {
                        n_phys / p_phys + usize::from(i < n_phys % p_phys)
                    }
                    PartitionScheme::Contiguous => chunk.min(n_phys - (i * chunk).min(n_phys)),
                };
                if rows.as_dense().is_some() {
                    ColumnarBuilder::with_dense_capacity(rows_here, rows.dims())
                } else {
                    ColumnarBuilder::new()
                }
            })
            .collect();
        match scheme {
            PartitionScheme::RoundRobin => {
                for (i, v) in rows.iter().enumerate() {
                    builders[i % p_phys].push_view(v);
                }
            }
            PartitionScheme::Contiguous => {
                for (i, v) in rows.iter().enumerate() {
                    builders[(i / chunk).min(p_phys - 1)].push_view(v);
                }
            }
        }
        Ok(Self {
            desc,
            partitions: builders
                .into_iter()
                .map(|b| Partition {
                    columns: b.finish_with_dims(rows.dims()),
                })
                .collect::<Vec<_>>()
                .into(),
            scheme,
            fingerprint: Arc::new(OnceLock::new()),
        })
    }

    /// Build from columnar rows **without re-dealing them**: partitions
    /// are contiguous row windows sharing the source storage. This is the
    /// out-of-core ingestion path — for a memory-mapped [`ColumnStore`]
    /// (see [`crate::slab`]) every partition borrows the same mapping
    /// zero-copy, so a dataset larger than RAM is never duplicated into
    /// per-partition slabs. The windowing reproduces
    /// [`PartitionScheme::Contiguous`] dealing exactly (`ceil(n/p)`-sized
    /// chunks, front-filled), so the result is row-for-row identical to
    /// [`PartitionedDataset::from_columns`] with the contiguous scheme —
    /// same views, same iteration order, same fingerprint.
    pub fn from_mapped(
        name: impl Into<String>,
        rows: &ColumnStore,
        spec: &ClusterSpec,
    ) -> Result<Self, DataflowError> {
        let desc = DatasetDescriptor::from_columns(name, rows);
        Self::with_descriptor_mapped(desc, rows, spec)
    }

    /// [`PartitionedDataset::from_mapped`] with an explicit logical
    /// descriptor.
    pub fn with_descriptor_mapped(
        desc: DatasetDescriptor,
        rows: &ColumnStore,
        spec: &ClusterSpec,
    ) -> Result<Self, DataflowError> {
        if rows.is_empty() {
            return Err(DataflowError::EmptyDataset);
        }
        let logical_p = desc.partitions(spec) as usize;
        let n_phys = rows.len();
        let p_phys = logical_p
            .clamp(1, Self::MAX_PHYSICAL_PARTITIONS)
            .min(n_phys);
        let chunk = n_phys.div_ceil(p_phys);
        let partitions: Vec<Partition> = (0..p_phys)
            .map(|i| Partition {
                columns: rows.window((i * chunk).min(n_phys), ((i + 1) * chunk).min(n_phys)),
            })
            .collect();
        Ok(Self {
            desc,
            partitions: partitions.into(),
            scheme: PartitionScheme::Contiguous,
            fingerprint: Arc::new(OnceLock::new()),
        })
    }

    /// The logical descriptor used for all cost accounting.
    pub fn descriptor(&self) -> &DatasetDescriptor {
        &self.desc
    }

    /// Physical partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Number of physical partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// A specific partition.
    pub fn partition(&self, index: usize) -> Result<&Partition, DataflowError> {
        self.partitions
            .get(index)
            .ok_or(DataflowError::PartitionOutOfBounds {
                index,
                partitions: self.partitions.len(),
            })
    }

    /// Total physical rows in memory.
    pub fn physical_n(&self) -> usize {
        self.partitions.iter().map(Partition::len).sum()
    }

    /// `physical rows / logical n` — 1.0 for full-scale datasets.
    pub fn physical_scale(&self) -> f64 {
        self.physical_n() as f64 / self.desc.n as f64
    }

    /// Iterate over every physical row as a zero-copy view
    /// (partition-major order).
    pub fn iter_views(&self) -> impl Iterator<Item = PointView<'_>> {
        self.partitions.iter().flat_map(|p| p.iter())
    }

    /// The scheme the input rows were dealt with.
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// Iterate over every physical row in the **original input order**
    /// (the order the rows were dealt from): round-robin dealing is
    /// walked back interleaved, contiguous dealing is partition-major
    /// already. The scoring path uses this so `predictions[i]` always
    /// corresponds to input row `i`, whatever the partitioning.
    pub fn iter_views_input_order(&self) -> impl Iterator<Item = PointView<'_>> {
        let p = self.partitions.len();
        let n = self.physical_n();
        // Mirrors the dealing rules of `with_descriptor_columns`: row `g`
        // went to (g % p, g / p) under round-robin, and to chunk
        // `(g / chunk).min(p - 1)` under contiguous dealing.
        let chunk = n.div_ceil(p);
        let scheme = self.scheme;
        (0..n).map(move |g| {
            let (pi, oi) = match scheme {
                PartitionScheme::RoundRobin => (g % p, g / p),
                PartitionScheme::Contiguous => {
                    let q = (g / chunk).min(p - 1);
                    (q, g - q * chunk)
                }
            };
            self.view(pi, oi).expect("row in range")
        })
    }

    /// Borrow a row by `(partition, offset)` coordinates.
    #[inline]
    pub fn view(&self, partition: usize, offset: usize) -> Option<PointView<'_>> {
        self.partitions.get(partition)?.view(offset)
    }

    /// Materialize a row by `(partition, offset)` coordinates (API
    /// boundary only — the hot loop uses [`PartitionedDataset::view`]).
    pub fn point(&self, partition: usize, offset: usize) -> Option<LabeledPoint> {
        Some(self.view(partition, offset)?.to_point())
    }

    /// Materialize every physical row (partition-major order).
    pub fn to_points(&self) -> Vec<LabeledPoint> {
        self.iter_views().map(|v| v.to_point()).collect()
    }

    /// A deterministic content fingerprint of this dataset: the logical
    /// descriptor plus every physical row (labels and feature bits, in
    /// partition order). Two datasets with identical logical scale and
    /// identical physical rows fingerprint identically, even when built
    /// independently; any differing row changes the value with
    /// overwhelming probability. Computed once per underlying storage and
    /// cached (clones share the cache), so repeated callers — the plan
    /// cache keys on this — pay the O(rows × features) pass only once.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut h = Fnv64::new();
            h.write_str(&self.desc.name);
            h.write_u64(self.desc.n);
            h.write_u64(self.desc.dims as u64);
            h.write_u64(self.desc.bytes);
            h.write_u64(self.desc.density.to_bits());
            h.write_u64(self.partitions.len() as u64);
            for part in self.partitions.iter() {
                h.write_u64(part.len() as u64);
                for v in part.iter() {
                    h.write_u64(v.label.to_bits());
                    match v.features {
                        ml4all_linalg::FeatureView::Dense(values) => {
                            for &x in values {
                                h.write_u64(x.to_bits());
                            }
                        }
                        ml4all_linalg::FeatureView::Sparse {
                            dim,
                            indices,
                            values,
                        } => {
                            h.write_u64(dim as u64);
                            for (&i, &x) in indices.iter().zip(values) {
                                h.write_u64(u64::from(i));
                                h.write_u64(x.to_bits());
                            }
                        }
                    }
                }
            }
            h.finish()
        })
    }

    /// An opaque identity of the shared partition storage: equal for
    /// clones of the same dataset (which share their `Arc`ed partitions),
    /// different for independently built datasets even when their rows are
    /// equal. Lets tests assert that concurrent jobs read the *same*
    /// resolved storage instead of cloning it.
    pub fn storage_id(&self) -> usize {
        Arc::as_ptr(&self.partitions) as *const Partition as usize
    }

    /// A deterministic uniform sub-sample of `m` physical rows (used by the
    /// speculation-based iterations estimator, Algorithm 1 line 1). Returns
    /// all rows if `m >= physical_n`. A partial Fisher–Yates stops after
    /// the `m` draws instead of shuffling the full index vector.
    pub fn sample_points(&self, m: usize, seed: u64) -> Vec<LabeledPoint> {
        let n = self.physical_n();
        if m >= n {
            return self.to_points();
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut idx: Vec<u32> = (0..n as u32).collect();
        for i in 0..m {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(m);
        idx.sort_unstable();

        // Walk the sorted global indices against the partition offsets.
        let mut out = Vec::with_capacity(m);
        let mut pi = 0usize;
        let mut start = 0usize;
        for gi in idx {
            let gi = gi as usize;
            while gi >= start + self.partitions[pi].len() {
                start += self.partitions[pi].len();
                pi += 1;
            }
            out.push(
                self.partitions[pi]
                    .view(gi - start)
                    .expect("global index within partition")
                    .to_point(),
            );
        }
        out
    }
}

/// FNV-1a, widened to mix 8 bytes per step: dependency-free, deterministic
/// across platforms, and fast enough for a one-time pass over the rows.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for byte in s.as_bytes() {
            self.0 ^= u64::from(*byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_linalg::FeatureVec;

    fn points(n: usize) -> Vec<LabeledPoint> {
        (0..n)
            .map(|i| {
                LabeledPoint::new(
                    if i % 2 == 0 { 1.0 } else { -1.0 },
                    FeatureVec::dense(vec![i as f64, 1.0]),
                )
            })
            .collect()
    }

    fn spec() -> ClusterSpec {
        ClusterSpec::paper_testbed()
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let err =
            PartitionedDataset::from_points("e", vec![], PartitionScheme::RoundRobin, &spec())
                .unwrap_err();
        assert_eq!(err, DataflowError::EmptyDataset);
    }

    #[test]
    fn small_dataset_lands_in_one_partition() {
        let ds =
            PartitionedDataset::from_points("s", points(100), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        assert_eq!(ds.num_partitions(), 1);
        assert_eq!(ds.physical_n(), 100);
        assert!((ds.physical_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn logical_descriptor_controls_partition_count() {
        // Declare a 2 GB logical dataset backed by 1 000 physical rows:
        // 2 GB / 128 MB = 16 logical partitions → 16 physical partitions.
        let desc = DatasetDescriptor::new("big", 1_000_000, 2, 2 * 1024 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(1000),
            PartitionScheme::RoundRobin,
            &spec(),
        )
        .unwrap();
        assert_eq!(ds.num_partitions(), 16);
        assert_eq!(ds.physical_n(), 1000);
        assert!((ds.physical_scale() - 0.001).abs() < 1e-9);
    }

    #[test]
    fn physical_partitions_are_capped() {
        // 160 GB → 1280 logical partitions, capped at 64 physical.
        let desc = DatasetDescriptor::new("huge", 88_268_800, 100, 160 * 1024 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(10_000),
            PartitionScheme::RoundRobin,
            &spec(),
        )
        .unwrap();
        assert_eq!(
            ds.num_partitions(),
            PartitionedDataset::MAX_PHYSICAL_PARTITIONS
        );
    }

    #[test]
    fn contiguous_scheme_preserves_order_chunks() {
        let desc = DatasetDescriptor::new("c", 100, 2, 4 * 128 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(100),
            PartitionScheme::Contiguous,
            &spec(),
        )
        .unwrap();
        assert_eq!(ds.num_partitions(), 4);
        // First partition holds the first chunk in order.
        let first = ds.partition(0).unwrap();
        assert_eq!(first.view(0).unwrap().features.dot(&[1.0, 0.0]), 0.0);
        assert_eq!(first.view(1).unwrap().features.dot(&[1.0, 0.0]), 1.0);
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let desc = DatasetDescriptor::new("r", 100, 2, 4 * 128 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(100),
            PartitionScheme::RoundRobin,
            &spec(),
        )
        .unwrap();
        for p in ds.partitions() {
            assert_eq!(p.len(), 25);
        }
    }

    #[test]
    fn contiguous_chunking_fills_front_partitions() {
        // n = 10, p = 4 → chunks of 3,3,3,1 (not the round-robin 3,3,2,2):
        // the pre-sizing must match the dealing so slabs never regrow.
        let desc = DatasetDescriptor::new("c", 10, 2, 4 * 128 * 1024 * 1024, 1.0);
        let ds = PartitionedDataset::with_descriptor(
            desc,
            points(10),
            PartitionScheme::Contiguous,
            &spec(),
        )
        .unwrap();
        let lens: Vec<usize> = ds.partitions().iter().map(Partition::len).collect();
        assert_eq!(lens, vec![3, 3, 3, 1]);
    }

    #[test]
    fn dense_points_build_contiguous_slabs() {
        let ds =
            PartitionedDataset::from_points("d", points(10), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        let (labels, values, dims) = ds.partition(0).unwrap().columns().as_dense().unwrap();
        assert_eq!(labels.len(), 10);
        assert_eq!(dims, 2);
        assert_eq!(values.len(), 20);
    }

    #[test]
    fn sample_points_is_deterministic_and_sized() {
        let ds =
            PartitionedDataset::from_points("s", points(500), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        let a = ds.sample_points(50, 42);
        let b = ds.sample_points(50, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert_eq!(ds.sample_points(10_000, 1).len(), 500);
    }

    #[test]
    fn sample_points_draws_distinct_rows() {
        let ds =
            PartitionedDataset::from_points("u", points(200), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        let sample = ds.sample_points(80, 7);
        let mut xs: Vec<f64> = sample.iter().map(|p| p.features.dot(&[1.0, 0.0])).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        assert_eq!(xs.len(), 80, "a uniform sample never repeats a row");
    }

    #[test]
    fn input_order_iteration_undoes_both_dealing_schemes() {
        // Row g carries g as its first feature, so order is observable.
        for scheme in [PartitionScheme::RoundRobin, PartitionScheme::Contiguous] {
            for n in [10usize, 100] {
                let desc = DatasetDescriptor::new("o", n as u64, 2, 4 * 128 * 1024 * 1024, 1.0);
                let ds =
                    PartitionedDataset::with_descriptor(desc, points(n), scheme, &spec()).unwrap();
                assert!(ds.num_partitions() > 1);
                assert_eq!(ds.scheme(), scheme);
                let order: Vec<f64> = ds
                    .iter_views_input_order()
                    .map(|v| v.features.dot(&[1.0, 0.0]))
                    .collect();
                let expect: Vec<f64> = (0..n).map(|i| i as f64).collect();
                assert_eq!(order, expect, "{scheme:?} n={n}");
            }
        }
    }

    #[test]
    fn fingerprint_is_content_based_and_shared_by_clones() {
        let a =
            PartitionedDataset::from_points("f", points(200), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        // An independently built, identical dataset fingerprints equal...
        let b =
            PartitionedDataset::from_points("f", points(200), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.storage_id(), b.storage_id());
        // ...a clone shares both the storage and the cached fingerprint...
        let c = a.clone();
        assert_eq!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.storage_id(), c.storage_id());
        // ...and any content difference (rows or name) changes the value.
        let fewer =
            PartitionedDataset::from_points("f", points(199), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        assert_ne!(a.fingerprint(), fewer.fingerprint());
        let renamed =
            PartitionedDataset::from_points("g", points(200), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        assert_ne!(a.fingerprint(), renamed.fingerprint());
    }

    #[test]
    fn window_partitioning_matches_contiguous_dealing() {
        // The zero-copy mapped path must agree with builder dealing in
        // every observable: lengths, row content, and fingerprint (so the
        // plan cache hits across the two ingestion paths).
        let desc = || DatasetDescriptor::new("w", 10, 2, 4 * 128 * 1024 * 1024, 1.0);
        let rows: ColumnStore = points(10).into_iter().collect();
        let dealt = PartitionedDataset::with_descriptor(
            desc(),
            points(10),
            PartitionScheme::Contiguous,
            &spec(),
        )
        .unwrap();
        let windowed = PartitionedDataset::with_descriptor_mapped(desc(), &rows, &spec()).unwrap();
        assert_eq!(windowed.scheme(), PartitionScheme::Contiguous);
        let lens = |ds: &PartitionedDataset| -> Vec<usize> {
            ds.partitions().iter().map(Partition::len).collect()
        };
        assert_eq!(lens(&windowed), lens(&dealt));
        assert_eq!(lens(&windowed), vec![3, 3, 3, 1]);
        assert_eq!(windowed.to_points(), dealt.to_points());
        assert_eq!(windowed.fingerprint(), dealt.fingerprint());
        let in_order: Vec<f64> = windowed
            .iter_views_input_order()
            .map(|v| v.features.dot(&[1.0, 0.0]))
            .collect();
        assert_eq!(in_order, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn point_lookup_round_trips() {
        let ds =
            PartitionedDataset::from_points("p", points(10), PartitionScheme::RoundRobin, &spec())
                .unwrap();
        assert!(ds.view(0, 0).is_some());
        assert!(ds.view(9, 0).is_none());
        assert!(ds.partition(3).is_err());
        let p = ds.point(0, 0).unwrap();
        assert_eq!(p.label, 1.0);
    }
}
