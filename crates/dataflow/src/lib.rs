//! Distributed dataflow substrate for the ml4all GD optimizer.
//!
//! The paper executes GD plans on a 4-node Spark/HDFS cluster through the
//! Rheem cross-platform layer. This crate is that substrate rebuilt as an
//! **in-process simulator**: computation over the data actually runs (in
//! memory, deterministically), while a [`ledger::CostLedger`] charges the
//! simulated wall-clock seconds that the paper's cost model attributes to
//! IO, CPU, and network (Section 7, Table 1, Equations 3–5).
//!
//! Why this substitution is faithful: training *time* in the paper is a
//! function of full scans, partition/page reads, wave-parallel CPU, and
//! network aggregation — precisely the quantities Equations 3–5 model. By
//! charging those equations while genuinely executing the math, the
//! simulator reproduces the paper's *relative* behaviour (which plan wins,
//! where crossovers fall, order-of-magnitude gaps) without the physical
//! cluster, and convergence behaviour (iteration counts, error sequences)
//! is real, not simulated.
//!
//! Key pieces:
//! - [`cluster::ClusterSpec`] — nodes × slots (`cap`), partition/page/packet
//!   sizes, IO/network/CPU constants, Spark-like cache capacity.
//! - [`descriptor::DatasetDescriptor`] — the logical view of a dataset
//!   (`n`, `d`, bytes, density) with the Table 1 derived quantities
//!   `p(D)`, `w(D)`, `k`, `lwp(D)`.
//! - [`dataset::PartitionedDataset`] — physical partitioned rows; may be a
//!   down-scaled physical sample of a larger logical dataset (the paper's
//!   own argument, Section 5: error-sequence shape is preserved under
//!   sampling).
//! - [`ledger::CostLedger`] / [`env::SimEnv`] — cost accounting and the
//!   charging primitives implementing Equations 3–5.
//! - [`backend::Backend`] — where waves run: the in-process local runtime
//!   or a deterministic simulated cluster whose per-node placement and
//!   broadcast/aggregate steps are metered into a
//!   [`ledger::UsageMeter`] beside the modelled costs.
//! - [`sampling`] — the three sampling strategies of Figure 4: Bernoulli,
//!   random-partition, shuffled-partition.
//! - [`slab`] — out-of-core columnar slab files: memory-mapped storage and
//!   a budget-bounded spilling builder for datasets larger than RAM.

pub mod backend;
pub mod checkpoint;
pub mod cluster;
pub mod columns;
pub mod dataset;
pub mod descriptor;
pub mod env;
pub mod ledger;
pub mod sampling;
pub mod slab;

pub use backend::{Backend, ClusterTopology, FaultSchedule};
pub use checkpoint::{
    fnv1a64, read_checkpoint, write_checkpoint, Checkpoint, CheckpointError, ExecState,
};
pub use cluster::{ClusterSpec, StorageMedium};
pub use columns::{ColumnStore, ColumnarBuilder};
pub use dataset::{Partition, PartitionScheme, PartitionedDataset};
pub use descriptor::DatasetDescriptor;
pub use env::SimEnv;
pub use ledger::{CostBreakdown, CostLedger, UsageMeter};
pub use ml4all_runtime::{derive_seed, CancelToken, Runtime, RNG_STREAM_VERSION};
pub use sampling::{SamplerSnapshot, SamplerState, SamplingMethod};
pub use slab::{atomic_write, open_slab, write_slab, MappedSlab, SlabError, SpillingBuilder};

/// Errors surfaced by the dataflow substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowError {
    /// A dataset was constructed with no points.
    EmptyDataset,
    /// A requested partition index does not exist.
    PartitionOutOfBounds { index: usize, partitions: usize },
    /// Sampling was requested from an empty physical dataset.
    NothingToSample,
}

impl std::fmt::Display for DataflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyDataset => write!(f, "dataset has no points"),
            Self::PartitionOutOfBounds { index, partitions } => {
                write!(
                    f,
                    "partition {index} out of bounds ({partitions} partitions)"
                )
            }
            Self::NothingToSample => write!(f, "cannot sample from an empty dataset"),
        }
    }
}

impl std::error::Error for DataflowError {}
