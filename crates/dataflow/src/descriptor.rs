//! Logical dataset descriptors and the Table 1 derived quantities.
//!
//! The cost model never needs the rows themselves — only the shape of the
//! dataset: number of data units `n`, dimensionality `d`, total bytes
//! `|D|_b`, and density. From these and a [`ClusterSpec`] it derives the
//! partition/wave geometry of Table 1:
//!
//! - `p(D) = ceil(|D|_b / |P|_b)` — number of partitions,
//! - `w(D) = p(D) / cap` — number of waves,
//! - `k = ceil(n × |P|_b / |D|_b)` — data units per partition,
//! - `lwp(D)` — partitions in the last (partial) wave.

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;

/// The logical view of a dataset: everything the cost model needs.
///
/// A descriptor may declare a larger scale than the physical rows held in
/// memory (see [`crate::dataset::PartitionedDataset`]); costs always follow
/// the *logical* numbers so that simulated times correspond to the paper's
/// dataset sizes (Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetDescriptor {
    /// Dataset name (e.g. `adult`, `svm1`).
    pub name: String,
    /// Number of data units (points) — `n`.
    pub n: u64,
    /// Number of features per unit — `d`.
    pub dims: usize,
    /// Total size in bytes — `|D|_b`.
    pub bytes: u64,
    /// Fraction of non-zero values (Table 2's density column).
    pub density: f64,
}

impl DatasetDescriptor {
    /// Construct a descriptor. `bytes` and `n` must be positive.
    pub fn new(name: impl Into<String>, n: u64, dims: usize, bytes: u64, density: f64) -> Self {
        let n = n.max(1);
        Self {
            name: name.into(),
            n,
            dims,
            bytes: bytes.max(1),
            density: density.clamp(0.0, 1.0),
        }
    }

    /// Derive a descriptor from physical points: sums their approximate
    /// byte footprint.
    pub fn from_points(name: impl Into<String>, points: &[ml4all_linalg::LabeledPoint]) -> Self {
        let bytes: u64 = points.iter().map(|p| p.approx_bytes() as u64).sum();
        let dims = points.iter().map(|p| p.dim()).max().unwrap_or(0);
        let nnz: u64 = points.iter().map(|p| p.features.nnz() as u64).sum();
        let denom = (points.len() as u64 * dims as u64).max(1);
        Self::new(
            name,
            points.len() as u64,
            dims,
            bytes.max(1),
            nnz as f64 / denom as f64,
        )
    }

    /// Derive a descriptor from columnar rows: the zero-copy counterpart
    /// of [`DatasetDescriptor::from_points`].
    pub fn from_columns(name: impl Into<String>, rows: &crate::columns::ColumnStore) -> Self {
        // Labels cost 8 bytes each; dense entries 8, sparse entries 12 —
        // matching the sum of `LabeledPoint::approx_bytes` for homogeneous
        // input. Mixed-input rows upgraded to CSR are charged at their CSR
        // footprint (explicit zeros included): costs follow the layout the
        // rows are actually stored in.
        let bytes = rows.approx_bytes();
        let dims = rows.dims();
        let denom = (rows.len() as u64 * dims as u64).max(1);
        Self::new(
            name,
            rows.len() as u64,
            dims,
            bytes.max(1),
            rows.total_nnz() as f64 / denom as f64,
        )
    }

    /// Average bytes per data unit.
    pub fn unit_bytes(&self) -> f64 {
        self.bytes as f64 / self.n as f64
    }

    /// Average number of materialized features per unit (`d × density`,
    /// at least 1) — the `nnz` the CPU cost helpers expect.
    pub fn avg_nnz(&self) -> usize {
        ((self.dims as f64 * self.density).ceil() as usize).max(1)
    }

    /// `p(D)` — number of partitions.
    pub fn partitions(&self, spec: &ClusterSpec) -> u64 {
        self.bytes.div_ceil(spec.partition_bytes).max(1)
    }

    /// `w(D) = p(D) / cap` — number of waves (fractional).
    pub fn waves(&self, spec: &ClusterSpec) -> f64 {
        self.partitions(spec) as f64 / spec.cap() as f64
    }

    /// `k` — data units per (full) partition.
    pub fn units_per_partition(&self, spec: &ClusterSpec) -> u64 {
        let k = (self.n as f64 * spec.partition_bytes as f64 / self.bytes as f64).ceil() as u64;
        k.clamp(1, self.n)
    }

    /// `lwp(D)` — number of partitions processed in the last, partial wave
    /// (`0` when the partition count divides evenly into full waves).
    pub fn last_wave_partitions(&self, spec: &ClusterSpec) -> u64 {
        let p = self.partitions(spec);
        let full_waves = self.waves(spec).floor() as u64;
        p - full_waves * spec.cap() as u64
    }

    /// Bytes a single slot reads during the last, partial wave: a full
    /// partition if several remain, otherwise the actual tail bytes.
    pub fn last_wave_slot_bytes(&self, spec: &ClusterSpec) -> u64 {
        let lwp = self.last_wave_partitions(spec);
        if lwp == 0 {
            0
        } else if lwp >= 2 {
            spec.partition_bytes
        } else {
            // One partition left in the wave; it may be a partial tail.
            let p = self.partitions(spec);
            self.bytes
                .saturating_sub((p - 1) * spec.partition_bytes)
                .clamp(1, spec.partition_bytes)
        }
    }

    /// Data units a single slot processes during the last, partial wave
    /// (the `ceil(min(lwp(D), 1) × k)` term of Equation 4).
    pub fn last_wave_slot_units(&self, spec: &ClusterSpec) -> u64 {
        let lwp = self.last_wave_partitions(spec);
        let k = self.units_per_partition(spec);
        if lwp == 0 {
            0
        } else if lwp >= 2 {
            k
        } else {
            let p = self.partitions(spec);
            self.n.saturating_sub((p - 1) * k).clamp(1, k)
        }
    }

    /// `true` when the whole dataset fits inside a single partition — the
    /// condition under which ML4all maps operators to the local Java
    /// executor instead of Spark (Appendix D).
    pub fn fits_one_partition(&self, spec: &ClusterSpec) -> bool {
        self.partitions(spec) == 1
    }

    /// A scaled copy declaring `factor ×` the points and bytes (used by the
    /// scalability sweeps of Figure 10).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            name: self.name.clone(),
            n: ((self.n as f64 * factor).round() as u64).max(1),
            dims: self.dims,
            bytes: ((self.bytes as f64 * factor).round() as u64).max(1),
            density: self.density,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::paper_testbed()
    }

    fn desc(n: u64, bytes: u64) -> DatasetDescriptor {
        DatasetDescriptor::new("t", n, 100, bytes, 1.0)
    }

    #[test]
    fn small_dataset_is_one_partition_one_wave() {
        let d = desc(1000, 7 * 1024 * 1024); // adult-sized: 7 MB
        assert_eq!(d.partitions(&spec()), 1);
        assert!(d.waves(&spec()) < 1.0);
        assert!(d.fits_one_partition(&spec()));
        assert_eq!(d.last_wave_partitions(&spec()), 1);
        assert_eq!(d.last_wave_slot_bytes(&spec()), d.bytes);
    }

    #[test]
    fn partition_count_matches_80gb_example() {
        // svm2: 80 GB / 128 MB = 640 partitions, 40 waves at cap 16.
        let d = desc(44_134_400, 80 * 1024 * 1024 * 1024);
        assert_eq!(d.partitions(&spec()), 640);
        assert!((d.waves(&spec()) - 40.0).abs() < 1e-12);
        assert_eq!(d.last_wave_partitions(&spec()), 0);
        assert_eq!(d.last_wave_slot_bytes(&spec()), 0);
    }

    #[test]
    fn partial_wave_is_detected() {
        // 85 partitions at cap 16 → 5 full waves + 5 leftover partitions
        // (the paper's own worked example uses 85 partitions / 20 slots).
        let d = desc(85_000, 85 * 128 * 1024 * 1024);
        assert_eq!(d.partitions(&spec()), 85);
        assert_eq!(d.waves(&spec()).floor() as u64, 5);
        assert_eq!(d.last_wave_partitions(&spec()), 5);
        assert_eq!(
            d.last_wave_slot_bytes(&spec()),
            spec().partition_bytes,
            "several partitions remain, each slot reads a full one"
        );
    }

    #[test]
    fn units_per_partition_is_n_for_single_partition() {
        let d = desc(12_345, 1024 * 1024);
        assert_eq!(d.units_per_partition(&spec()), 12_345);
    }

    #[test]
    fn units_per_partition_scales_with_bytes() {
        let d = desc(1_000_000, 10 * 128 * 1024 * 1024); // 10 partitions
        let k = d.units_per_partition(&spec());
        assert_eq!(k, 100_000);
    }

    #[test]
    fn scaled_multiplies_points_and_bytes() {
        let d = desc(100, 1000).scaled(2.5);
        assert_eq!(d.n, 250);
        assert_eq!(d.bytes, 2500);
    }

    #[test]
    fn from_points_sums_bytes() {
        use ml4all_linalg::{FeatureVec, LabeledPoint};
        let pts = vec![
            LabeledPoint::new(1.0, FeatureVec::dense(vec![0.0; 4])),
            LabeledPoint::new(-1.0, FeatureVec::dense(vec![0.0; 4])),
        ];
        let d = DatasetDescriptor::from_points("p", &pts);
        assert_eq!(d.n, 2);
        assert_eq!(d.dims, 4);
        assert_eq!(d.bytes, 2 * (8 + 32));
        assert!((d.density - 1.0).abs() < 1e-12);
    }

    #[test]
    fn avg_nnz_reflects_density() {
        let d = DatasetDescriptor::new("s", 10, 1000, 1000, 0.0015);
        assert_eq!(d.avg_nnz(), 2);
        let dense = DatasetDescriptor::new("d", 10, 100, 1000, 1.0);
        assert_eq!(dense.avg_nnz(), 100);
    }
}
