//! The cost ledger: the simulated clock of the dataflow substrate.
//!
//! Every operator execution charges IO, CPU, network, and fixed-overhead
//! seconds here. The ledger is the "stopwatch" of the reproduction: what
//! the paper measures as training time on its Spark cluster, we read off
//! the ledger after genuinely executing the plan's math.

use serde::{Deserialize, Serialize};

/// Immutable snapshot of accumulated costs, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Disk/memory page IO plus seeks.
    pub io_s: f64,
    /// Wave-parallel and driver-side compute.
    pub cpu_s: f64,
    /// Bytes moved across the interconnect.
    pub net_s: f64,
    /// Fixed scheduling overheads (job init, stage launch).
    pub overhead_s: f64,
}

impl CostBreakdown {
    /// Total simulated seconds.
    pub fn total_s(&self) -> f64 {
        self.io_s + self.cpu_s + self.net_s + self.overhead_s
    }

    /// Category-wise sum of two breakdowns.
    pub fn plus(&self, other: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            io_s: self.io_s + other.io_s,
            cpu_s: self.cpu_s + other.cpu_s,
            net_s: self.net_s + other.net_s,
            overhead_s: self.overhead_s + other.overhead_s,
        }
    }

    /// Every category multiplied by `k` (e.g. per-iteration × iterations).
    pub fn times(&self, k: f64) -> CostBreakdown {
        CostBreakdown {
            io_s: self.io_s * k,
            cpu_s: self.cpu_s * k,
            net_s: self.net_s * k,
            overhead_s: self.overhead_s * k,
        }
    }

    /// Total seconds after applying per-category multiplicative unit-cost
    /// scales `[io, cpu, net, overhead]`.
    ///
    /// Written as `total_s() + Σ catᵢ·(scaleᵢ − 1)` rather than
    /// `Σ catᵢ·scaleᵢ` so that identity scales (all 1.0) reproduce
    /// [`CostBreakdown::total_s`] **bit for bit**: each correction term is
    /// exactly `cat·0.0 = 0.0` and adding `+0.0` to a finite non-negative
    /// float is an identity. Calibration at generation 0 therefore cannot
    /// perturb any decision the static model would make.
    pub fn rescaled_total_s(&self, scales: [f64; 4]) -> f64 {
        self.total_s()
            + self.io_s * (scales[0] - 1.0)
            + self.cpu_s * (scales[1] - 1.0)
            + self.net_s * (scales[2] - 1.0)
            + self.overhead_s * (scales[3] - 1.0)
    }
}

/// Physical usage metered during a run on the simulated-cluster backend:
/// the *measured* counterpart of the modelled cost vector. Ledger seconds
/// follow the logical dataset descriptor; these counters follow the rows
/// this process actually pushed through the backend, so they quantify the
/// work the cluster really performed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UsageMeter {
    /// Data units fed through compute waves and sample draws.
    pub tuples_scanned: u64,
    /// Bytes crossing the simulated interconnect: model broadcast, partial
    /// aggregation, and sample shipping to the driver.
    pub bytes_shuffled: u64,
    /// Busy compute seconds per simulated node (index = node id). Empty on
    /// the local backend, which has no nodes to attribute work to.
    pub node_compute_s: Vec<f64>,
    /// Broadcast/aggregate waves executed.
    pub waves: u64,
    /// Node-loss events injected by the fault schedule.
    pub nodes_lost: u64,
    /// Data units re-processed because their node died mid-wave.
    pub recovery_tuples: u64,
    /// Bytes re-shuffled to recover lost partials (model re-broadcast and
    /// re-aggregation for the recovery round).
    pub recovery_bytes: u64,
    /// Compute seconds wasted on dying nodes' lost attempts (the re-spent
    /// seconds land in [`UsageMeter::node_compute_s`] of the survivors
    /// that took over).
    pub recovery_compute_s: f64,
    /// Extra critical-path seconds induced by injected stragglers.
    pub straggler_delay_s: f64,
}

impl UsageMeter {
    /// Compute seconds of the busiest node — the wave-parallel critical
    /// path of the measured run.
    pub fn busiest_node_s(&self) -> f64 {
        self.node_compute_s.iter().copied().fold(0.0, f64::max)
    }

    /// Total compute seconds across all nodes.
    pub fn total_node_compute_s(&self) -> f64 {
        self.node_compute_s.iter().sum()
    }

    /// `true` when nothing was metered (local-backend runs).
    pub fn is_empty(&self) -> bool {
        self.tuples_scanned == 0
            && self.bytes_shuffled == 0
            && self.node_compute_s.is_empty()
            && self.nodes_lost == 0
            && self.straggler_delay_s == 0.0
    }

    /// `true` when the fault schedule injected failures into this run.
    pub fn saw_faults(&self) -> bool {
        self.nodes_lost > 0 || self.straggler_delay_s > 0.0
    }
}

/// Accumulates simulated cost. Cheap to copy out via [`CostLedger::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    acc: CostBreakdown,
    meter: UsageMeter,
}

impl CostLedger {
    /// A fresh ledger at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge IO seconds.
    pub fn charge_io(&mut self, s: f64) {
        debug_assert!(s >= 0.0, "negative IO charge {s}");
        self.acc.io_s += s;
    }

    /// Charge CPU seconds.
    pub fn charge_cpu(&mut self, s: f64) {
        debug_assert!(s >= 0.0, "negative CPU charge {s}");
        self.acc.cpu_s += s;
    }

    /// Charge network seconds.
    pub fn charge_net(&mut self, s: f64) {
        debug_assert!(s >= 0.0, "negative network charge {s}");
        self.acc.net_s += s;
    }

    /// Charge fixed overhead seconds.
    pub fn charge_overhead(&mut self, s: f64) {
        debug_assert!(s >= 0.0, "negative overhead charge {s}");
        self.acc.overhead_s += s;
    }

    /// Meter `units` data units scanned by the cluster backend.
    pub fn meter_tuples(&mut self, units: u64) {
        self.meter.tuples_scanned += units;
    }

    /// Meter `bytes` moved across the simulated interconnect.
    pub fn meter_shuffle_bytes(&mut self, bytes: u64) {
        self.meter.bytes_shuffled += bytes;
    }

    /// Meter `s` busy compute seconds on simulated node `node`.
    pub fn meter_node_compute(&mut self, node: usize, s: f64) {
        debug_assert!(s >= 0.0, "negative node compute charge {s}");
        if self.meter.node_compute_s.len() <= node {
            self.meter.node_compute_s.resize(node + 1, 0.0);
        }
        self.meter.node_compute_s[node] += s;
    }

    /// Meter one broadcast/aggregate wave.
    pub fn meter_wave(&mut self) {
        self.meter.waves += 1;
    }

    /// Meter one injected node-loss event with its recovery footprint:
    /// `tuples` data units re-executed, `bytes` re-shuffled, and `s`
    /// compute seconds wasted-plus-respent.
    pub fn meter_node_loss(&mut self, tuples: u64, bytes: u64, s: f64) {
        debug_assert!(s >= 0.0, "negative recovery charge {s}");
        self.meter.nodes_lost += 1;
        self.meter.recovery_tuples += tuples;
        self.meter.recovery_bytes += bytes;
        self.meter.recovery_compute_s += s;
    }

    /// Meter `s` extra critical-path seconds caused by a straggler.
    pub fn meter_straggler_delay(&mut self, s: f64) {
        debug_assert!(s >= 0.0, "negative straggler delay {s}");
        self.meter.straggler_delay_s += s;
    }

    /// Physical usage metered so far.
    pub fn usage(&self) -> &UsageMeter {
        &self.meter
    }

    /// Current accumulated costs.
    pub fn snapshot(&self) -> CostBreakdown {
        self.acc
    }

    /// Total simulated seconds so far.
    pub fn total_s(&self) -> f64 {
        self.acc.total_s()
    }

    /// Seconds elapsed since an earlier snapshot (for per-phase accounting,
    /// e.g. separating speculation overhead from plan execution in
    /// Figure 8).
    pub fn since(&self, earlier: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            io_s: self.acc.io_s - earlier.io_s,
            cpu_s: self.acc.cpu_s - earlier.cpu_s,
            net_s: self.acc.net_s - earlier.net_s,
            overhead_s: self.acc.overhead_s - earlier.overhead_s,
        }
    }

    /// Reset to t = 0 and clear the usage meter.
    pub fn reset(&mut self) {
        self.acc = CostBreakdown::default();
        self.meter = UsageMeter::default();
    }

    /// Restore the ledger to a previously captured state — the resume
    /// counterpart of [`CostLedger::snapshot`] / [`CostLedger::usage`].
    /// Charges and metering continue from exactly where the checkpointed
    /// run left off, so a resumed job's totals stay bit-identical to the
    /// uninterrupted run's.
    pub fn restore(&mut self, acc: CostBreakdown, meter: UsageMeter) {
        self.acc = acc;
        self.meter = meter;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_category() {
        let mut l = CostLedger::new();
        l.charge_io(1.0);
        l.charge_cpu(2.0);
        l.charge_net(3.0);
        l.charge_overhead(4.0);
        let s = l.snapshot();
        assert_eq!(s.io_s, 1.0);
        assert_eq!(s.cpu_s, 2.0);
        assert_eq!(s.net_s, 3.0);
        assert_eq!(s.overhead_s, 4.0);
        assert_eq!(s.total_s(), 10.0);
    }

    #[test]
    fn since_computes_deltas() {
        let mut l = CostLedger::new();
        l.charge_io(1.0);
        let mark = l.snapshot();
        l.charge_io(2.5);
        l.charge_cpu(0.5);
        let d = l.since(&mark);
        assert_eq!(d.io_s, 2.5);
        assert_eq!(d.cpu_s, 0.5);
        assert_eq!(d.total_s(), 3.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut l = CostLedger::new();
        l.charge_net(9.0);
        l.meter_tuples(5);
        l.reset();
        assert_eq!(l.total_s(), 0.0);
        assert!(l.usage().is_empty());
    }

    #[test]
    fn meter_accumulates_per_node_compute() {
        let mut l = CostLedger::new();
        l.meter_node_compute(2, 1.5);
        l.meter_node_compute(0, 0.5);
        l.meter_node_compute(2, 0.5);
        let usage = l.usage();
        assert_eq!(usage.node_compute_s, vec![0.5, 0.0, 2.0]);
        assert_eq!(usage.busiest_node_s(), 2.0);
        assert!((usage.total_node_compute_s() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn identity_scales_reproduce_total_bit_for_bit() {
        let b = CostBreakdown {
            io_s: 0.1 + 0.2, // deliberately non-representable sums
            cpu_s: 1.0 / 3.0,
            net_s: 2.0 / 7.0,
            overhead_s: 1e-9,
        };
        assert_eq!(
            b.rescaled_total_s([1.0; 4]).to_bits(),
            b.total_s().to_bits(),
            "identity calibration must be invisible at the bit level"
        );
        // Non-identity scales actually rescale.
        let scaled = b.rescaled_total_s([2.0, 1.0, 1.0, 1.0]);
        assert!((scaled - (b.total_s() + b.io_s)).abs() < 1e-15);
    }

    #[test]
    fn plus_and_times_compose_categorywise() {
        let a = CostBreakdown {
            io_s: 1.0,
            cpu_s: 2.0,
            net_s: 3.0,
            overhead_s: 4.0,
        };
        let b = a.times(2.0).plus(&a);
        assert_eq!(b.io_s, 3.0);
        assert_eq!(b.cpu_s, 6.0);
        assert_eq!(b.net_s, 9.0);
        assert_eq!(b.overhead_s, 12.0);
    }

    #[test]
    fn meter_tracks_tuples_bytes_and_waves() {
        let mut l = CostLedger::new();
        assert!(l.usage().is_empty());
        l.meter_tuples(100);
        l.meter_shuffle_bytes(4096);
        l.meter_wave();
        l.meter_wave();
        assert_eq!(l.usage().tuples_scanned, 100);
        assert_eq!(l.usage().bytes_shuffled, 4096);
        assert_eq!(l.usage().waves, 2);
        assert!(!l.usage().is_empty());
        // Metering never moves the simulated clock.
        assert_eq!(l.total_s(), 0.0);
    }
}
