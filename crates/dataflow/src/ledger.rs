//! The cost ledger: the simulated clock of the dataflow substrate.
//!
//! Every operator execution charges IO, CPU, network, and fixed-overhead
//! seconds here. The ledger is the "stopwatch" of the reproduction: what
//! the paper measures as training time on its Spark cluster, we read off
//! the ledger after genuinely executing the plan's math.

use serde::{Deserialize, Serialize};

/// Immutable snapshot of accumulated costs, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Disk/memory page IO plus seeks.
    pub io_s: f64,
    /// Wave-parallel and driver-side compute.
    pub cpu_s: f64,
    /// Bytes moved across the interconnect.
    pub net_s: f64,
    /// Fixed scheduling overheads (job init, stage launch).
    pub overhead_s: f64,
}

impl CostBreakdown {
    /// Total simulated seconds.
    pub fn total_s(&self) -> f64 {
        self.io_s + self.cpu_s + self.net_s + self.overhead_s
    }
}

/// Accumulates simulated cost. Cheap to copy out via [`CostLedger::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    acc: CostBreakdown,
}

impl CostLedger {
    /// A fresh ledger at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge IO seconds.
    pub fn charge_io(&mut self, s: f64) {
        debug_assert!(s >= 0.0, "negative IO charge {s}");
        self.acc.io_s += s;
    }

    /// Charge CPU seconds.
    pub fn charge_cpu(&mut self, s: f64) {
        debug_assert!(s >= 0.0, "negative CPU charge {s}");
        self.acc.cpu_s += s;
    }

    /// Charge network seconds.
    pub fn charge_net(&mut self, s: f64) {
        debug_assert!(s >= 0.0, "negative network charge {s}");
        self.acc.net_s += s;
    }

    /// Charge fixed overhead seconds.
    pub fn charge_overhead(&mut self, s: f64) {
        debug_assert!(s >= 0.0, "negative overhead charge {s}");
        self.acc.overhead_s += s;
    }

    /// Current accumulated costs.
    pub fn snapshot(&self) -> CostBreakdown {
        self.acc
    }

    /// Total simulated seconds so far.
    pub fn total_s(&self) -> f64 {
        self.acc.total_s()
    }

    /// Seconds elapsed since an earlier snapshot (for per-phase accounting,
    /// e.g. separating speculation overhead from plan execution in
    /// Figure 8).
    pub fn since(&self, earlier: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            io_s: self.acc.io_s - earlier.io_s,
            cpu_s: self.acc.cpu_s - earlier.cpu_s,
            net_s: self.acc.net_s - earlier.net_s,
            overhead_s: self.acc.overhead_s - earlier.overhead_s,
        }
    }

    /// Reset to t = 0.
    pub fn reset(&mut self) {
        self.acc = CostBreakdown::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_category() {
        let mut l = CostLedger::new();
        l.charge_io(1.0);
        l.charge_cpu(2.0);
        l.charge_net(3.0);
        l.charge_overhead(4.0);
        let s = l.snapshot();
        assert_eq!(s.io_s, 1.0);
        assert_eq!(s.cpu_s, 2.0);
        assert_eq!(s.net_s, 3.0);
        assert_eq!(s.overhead_s, 4.0);
        assert_eq!(s.total_s(), 10.0);
    }

    #[test]
    fn since_computes_deltas() {
        let mut l = CostLedger::new();
        l.charge_io(1.0);
        let mark = l.snapshot();
        l.charge_io(2.5);
        l.charge_cpu(0.5);
        let d = l.since(&mark);
        assert_eq!(d.io_s, 2.5);
        assert_eq!(d.cpu_s, 0.5);
        assert_eq!(d.total_s(), 3.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut l = CostLedger::new();
        l.charge_net(9.0);
        l.reset();
        assert_eq!(l.total_s(), 0.0);
    }
}
