//! SystemML baseline (Section 8.1): SystemML 0.10 running hand-scripted
//! BGD/MGD/SGD in its R-like DML, hybrid execution mode.
//!
//! Modelled traits:
//!
//! - **Binary-block conversion**: SystemML ingests its own binary matrix
//!   format; the paper charges this conversion to SystemML's totals
//!   (Figure 9 shows the breakdown) — "the cost of converting data to its
//!   binary representation is higher than its training time itself" for
//!   small data.
//! - **Hybrid execution**: when the binary matrix fits the driver it runs
//!   locally (fast: binary format, no per-iteration Spark jobs); otherwise
//!   it runs distributed with heavy per-iteration overheads (instruction
//!   generation, buffer-pool exchange).
//! - **Dense out-of-memory failure**: "for all the dense synthetic
//!   datasets SystemML failed with out of memory exceptions" — modelled as
//!   a dense-block materialization limit.

use ml4all_dataflow::{PartitionedDataset, SimEnv, StorageMedium};
use ml4all_gd::executor::StopReason;
use ml4all_gd::{GdVariant, Gradient, TrainParams, TrainResult};
use ml4all_linalg::DenseVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BaselineError;

/// The SystemML-like runner.
#[derive(Debug, Clone)]
pub struct SystemmlRunner {
    /// Binary matrices at or below this size run locally at the driver.
    pub local_threshold_bytes: u64,
    /// Dense matrices above this size fail with OOM during conversion.
    pub dense_oom_limit_bytes: u64,
    /// CPU factor for local execution (binary format is faster than the
    /// generic row path).
    pub local_cpu_factor: f64,
    /// CPU factor for distributed execution.
    pub dist_cpu_factor: f64,
    /// Fixed per-iteration overhead in distributed mode (DML instruction
    /// generation, buffer-pool exchange).
    pub dist_iter_overhead_s: f64,
}

impl Default for SystemmlRunner {
    fn default() -> Self {
        Self {
            local_threshold_bytes: 1024 * 1024 * 1024,
            dense_oom_limit_bytes: 4 * 1024 * 1024 * 1024,
            local_cpu_factor: 0.6,
            dist_cpu_factor: 3.0,
            dist_iter_overhead_s: 2.0,
        }
    }
}

/// Outcome of a SystemML run, separating the conversion pass the paper
/// plots as a stacked bar.
#[derive(Debug, Clone)]
pub struct SystemmlOutcome {
    /// Training result (post-conversion).
    pub result: TrainResult,
    /// Seconds spent converting the input to binary blocks.
    pub conversion_s: f64,
}

impl SystemmlRunner {
    /// Size of the dataset in SystemML's binary representation.
    pub fn binary_bytes(&self, desc: &ml4all_dataflow::DatasetDescriptor) -> u64 {
        if desc.density >= 0.5 {
            // Dense block: n × d × 8.
            desc.n * desc.dims as u64 * 8
        } else {
            // Sparse block: ~12 bytes per non-zero.
            (desc.n as f64 * desc.dims as f64 * desc.density * 12.0) as u64
        }
    }

    /// Whether this dataset runs locally after conversion.
    pub fn runs_locally(&self, desc: &ml4all_dataflow::DatasetDescriptor) -> bool {
        self.binary_bytes(desc) <= self.local_threshold_bytes
    }

    /// Run a GD variant with SystemML's execution profile.
    pub fn run(
        &self,
        variant: GdVariant,
        data: &PartitionedDataset,
        params: &TrainParams,
        env: &mut SimEnv,
    ) -> Result<SystemmlOutcome, BaselineError> {
        let start = std::time::Instant::now();
        let desc = data.descriptor().clone();
        let dims = desc.dims;
        let avg_nnz = desc.avg_nnz();
        let binary = self.binary_bytes(&desc);
        if desc.density >= 0.5 && binary > self.dense_oom_limit_bytes {
            return Err(BaselineError::OutOfMemory {
                system: "systemml",
                required_bytes: binary,
                limit_bytes: self.dense_oom_limit_bytes,
            });
        }

        // ---- Conversion pass: text scan + binary write + block packing.
        let before_conversion = env.snapshot();
        env.charge_job_init();
        env.charge_full_scan_io(&desc, StorageMedium::Disk);
        env.charge_wave_cpu(&desc, env.spec.cpu_transform_s(avg_nnz) * 1.5);
        let binary_desc = ml4all_dataflow::DatasetDescriptor::new(
            format!("{}-binary", desc.name),
            desc.n,
            desc.dims,
            binary.max(1),
            desc.density,
        );
        env.charge_full_scan_io(&binary_desc, StorageMedium::Disk); // write-out
        let conversion_s = env.ledger.since(&before_conversion).total_s();

        let local = self.runs_locally(&desc);
        let n_phys = data.physical_n();
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5953_4D4C);

        let mut weights = DenseVector::zeros(dims);
        let mut prev = weights.clone();
        let mut grad_acc = DenseVector::zeros(dims);
        let mut error_seq = Vec::new();
        let mut iteration = 0u64;
        let mut final_delta;
        let stop;
        let m = variant.sample_size(desc.n);
        let m_phys = variant.sample_size(n_phys as u64) as usize;

        loop {
            iteration += 1;
            match variant {
                GdVariant::Batch => {
                    if local {
                        // Single-node pass over the binary matrix.
                        env.charge_sequential_read(binary, binary, StorageMedium::Auto);
                        env.charge_serial_cpu(
                            desc.n,
                            env.spec.cpu_gradient_s(avg_nnz) * self.local_cpu_factor,
                        );
                    } else {
                        env.ledger.charge_overhead(self.dist_iter_overhead_s);
                        env.charge_iteration_overhead(true);
                        env.charge_full_scan_io(&binary_desc, StorageMedium::Auto);
                        env.charge_wave_cpu(
                            &binary_desc,
                            env.spec.cpu_gradient_s(avg_nnz) * self.dist_cpu_factor,
                        );
                        let partials = binary_desc.partitions(&env.spec);
                        env.charge_network(partials * dims as u64 * 8 * 2);
                    }
                }
                GdVariant::Stochastic | GdVariant::MiniBatch { .. } => {
                    if local {
                        env.charge_serial_cpu(
                            m,
                            env.spec.cpu_gradient_s(avg_nnz) * self.local_cpu_factor,
                        );
                    } else {
                        // Distributed row sampling materializes a sub-matrix.
                        env.ledger.charge_overhead(self.dist_iter_overhead_s);
                        env.charge_iteration_overhead(true);
                        env.charge_full_scan_io(&binary_desc, StorageMedium::Auto);
                        env.charge_serial_cpu(
                            m,
                            env.spec.cpu_gradient_s(avg_nnz) * self.dist_cpu_factor,
                        );
                        env.charge_network(m * (dims as u64) * 8);
                    }
                }
            }
            env.charge_serial_cpu(1, env.spec.cpu_update_s(dims));

            // ---- Real math (same gradients/step as every other system).
            grad_acc.fill_zero();
            let mut count = 0u64;
            match variant {
                GdVariant::Batch => {
                    for v in data.iter_views() {
                        params.gradient.accumulate_view(
                            weights.as_slice(),
                            v,
                            grad_acc.as_mut_slice(),
                        );
                        count += 1;
                    }
                }
                _ => {
                    let all: Vec<_> = data.iter_views().collect();
                    for _ in 0..m_phys.max(1) {
                        let v = all[rng.gen_range(0..all.len())];
                        params.gradient.accumulate_view(
                            weights.as_slice(),
                            v,
                            grad_acc.as_mut_slice(),
                        );
                        count += 1;
                    }
                }
            }
            if count > 0 {
                let alpha = params.step.at(iteration);
                let scale = -alpha / count as f64;
                let mut reg = vec![0.0; dims];
                params.regularizer.accumulate(weights.as_slice(), &mut reg);
                for ((wi, gi), ri) in weights
                    .as_mut_slice()
                    .iter_mut()
                    .zip(grad_acc.as_slice())
                    .zip(&reg)
                {
                    *wi += scale * gi - alpha * ri;
                }
            }
            if weights.as_slice().iter().any(|w| !w.is_finite()) {
                return Err(BaselineError::Gd(ml4all_gd::GdError::Diverged {
                    iteration,
                }));
            }

            let delta = weights
                .l1_distance(&prev)
                .expect("dimensions fixed per run");
            env.charge_serial_cpu(1, env.spec.cpu_converge_s(dims));
            prev.clone_from(&weights);
            final_delta = delta;
            if params.record_error_seq {
                error_seq.push((iteration, delta));
            }

            if delta < params.tolerance {
                stop = StopReason::Converged;
                break;
            }
            if iteration >= params.max_iter {
                stop = StopReason::MaxIterations;
                break;
            }
            if let Some(budget) = params.wall_budget {
                if start.elapsed() >= budget {
                    stop = StopReason::WallBudget;
                    break;
                }
            }
        }

        Ok(SystemmlOutcome {
            result: TrainResult {
                weights,
                iterations: iteration,
                stop,
                final_delta,
                cost: env.snapshot(),
                sim_time_s: env.elapsed_s(),
                wall_time: start.elapsed(),
                error_seq,
                sampler_shuffles: 0,
                usage: env.ledger.usage().clone(),
                backend: env.backend().name(),
                rng_stream_version: ml4all_dataflow::RNG_STREAM_VERSION,
                resume_state: None,
            },
            conversion_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_dataflow::{ClusterSpec, DatasetDescriptor, PartitionScheme};
    use ml4all_gd::GradientKind;
    use ml4all_linalg::{FeatureVec, LabeledPoint};

    fn dataset(n: usize, dims: usize, logical_bytes: u64, density: f64) -> PartitionedDataset {
        let mut rng = StdRng::seed_from_u64(4);
        let points: Vec<LabeledPoint> = (0..n)
            .map(|_| {
                let xs: Vec<f64> = (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let label = if xs[0] > 0.0 { 1.0 } else { -1.0 };
                LabeledPoint::new(label, FeatureVec::dense(xs))
            })
            .collect();
        let desc = DatasetDescriptor::new("sysml-test", n as u64, dims, logical_bytes, density);
        PartitionedDataset::with_descriptor(
            desc,
            points,
            PartitionScheme::RoundRobin,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap()
    }

    #[test]
    fn dense_synthetic_datasets_oom() {
        // svm1-like: 5.5 M × 100 dense → 4.4 GB binary > 4 GB limit.
        let data = dataset(1000, 100, 10 * 1024 * 1024 * 1024, 1.0);
        let mut big = data.descriptor().clone();
        big.n = 5_516_800;
        let runner = SystemmlRunner::default();
        assert!(runner.binary_bytes(&big) > runner.dense_oom_limit_bytes);

        let desc = DatasetDescriptor::new("svm1", 5_516_800, 100, 10 * 1024 * 1024 * 1024, 1.0);
        let data = PartitionedDataset::with_descriptor(
            desc,
            data.to_points(),
            PartitionScheme::RoundRobin,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap();
        let params = TrainParams::paper_defaults(GradientKind::Svm);
        let mut env = SimEnv::new(ClusterSpec::paper_testbed());
        let err = runner
            .run(GdVariant::Batch, &data, &params, &mut env)
            .unwrap_err();
        assert!(matches!(err, BaselineError::OutOfMemory { .. }));
    }

    #[test]
    fn sparse_high_dimensional_data_does_not_oom() {
        // rcv1-like: sparse representation keeps the binary small.
        let runner = SystemmlRunner::default();
        let rcv1 = DatasetDescriptor::new(
            "rcv1",
            677_399,
            47_236,
            (1.2 * 1024.0 * 1024.0 * 1024.0) as u64,
            1.5e-3,
        );
        assert!(runner.binary_bytes(&rcv1) < runner.dense_oom_limit_bytes);
    }

    #[test]
    fn small_data_runs_locally_with_conversion_overhead() {
        let data = dataset(2000, 10, 7 * 1024 * 1024, 1.0);
        let runner = SystemmlRunner::default();
        assert!(runner.runs_locally(data.descriptor()));
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.max_iter = 50;
        params.tolerance = 0.0;
        let mut env = SimEnv::new(ClusterSpec::paper_testbed());
        let outcome = runner
            .run(GdVariant::Batch, &data, &params, &mut env)
            .unwrap();
        assert!(outcome.conversion_s > 0.0);
        assert_eq!(outcome.result.iterations, 50);
    }

    #[test]
    fn distributed_mode_is_much_slower_per_iteration_than_local() {
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.max_iter = 10;
        params.tolerance = 0.0;
        let runner = SystemmlRunner::default();

        let local = dataset(1000, 10, 50 * 1024 * 1024, 1.0);
        let mut env_local = SimEnv::new(ClusterSpec::paper_testbed());
        let r_local = runner
            .run(GdVariant::Batch, &local, &params, &mut env_local)
            .unwrap();

        // higgs-like: 11M × 28 dense ≈ 2.5 GB binary → distributed.
        // Physical rows must match the declared 28 dims for the math.
        let physical_28d = dataset(1000, 28, 1024, 0.92);
        let desc = DatasetDescriptor::new(
            "higgs",
            11_000_000,
            28,
            (7.4 * 1024.0 * 1024.0 * 1024.0) as u64,
            0.92,
        );
        assert!(!runner.runs_locally(&desc));
        let big = PartitionedDataset::with_descriptor(
            desc,
            physical_28d.to_points(),
            PartitionScheme::RoundRobin,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap();
        let mut env_big = SimEnv::new(ClusterSpec::paper_testbed());
        let r_big = runner
            .run(GdVariant::Batch, &big, &params, &mut env_big)
            .unwrap();

        let local_iter = (r_local.result.sim_time_s - r_local.conversion_s) / 10.0;
        let big_iter = (r_big.result.sim_time_s - r_big.conversion_s) / 10.0;
        assert!(
            big_iter > 20.0 * local_iter,
            "distributed {big_iter} vs local {local_iter}"
        );
    }
}
