//! The Bismarck abstraction [Feng et al., SIGMOD'12] on the substrate —
//! the paper's abstraction baseline (Section 8.4.3).
//!
//! Bismarck models ML as a unified aggregate with a `Prepare` UDF and a
//! *fused* Compute/Update. The paper's criticism, which this runner
//! reproduces structurally: "a key advantage of separating Compute from
//! Update is that the former can be parallelized where the latter has to
//! be effectively serialized. When these two operators are combined into
//! one, parallelization cannot be leveraged."
//!
//! Consequences modelled:
//! - `Prepare` (transform) is parallel, like an eager ML4all plan;
//! - every iteration `collect()`s its input units to one node and runs the
//!   fused gradient+update **serially** there (no wave speed-up — for BGD
//!   that is the whole dataset);
//! - the fused operator materializes its input densely at the driver, so
//!   high `n × d` overflows driver memory — the Figure 11 failures (BGD
//!   and MGD(10k) on rcv1, BGD on svm1).

use ml4all_dataflow::{PartitionedDataset, SimEnv, StorageMedium};
use ml4all_gd::executor::StopReason;
use ml4all_gd::{GdVariant, Gradient, TrainParams, TrainResult};
use ml4all_linalg::DenseVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BaselineError;

/// The Bismarck-abstraction runner.
#[derive(Debug, Clone)]
pub struct BismarckRunner {
    /// Driver memory available to the fused operator (the paper runs the
    /// Spark driver with its 1 GB default).
    pub driver_mem_bytes: u64,
    /// Per-unit cost of collecting sample units through the driver
    /// (serialization + deserialization).
    pub collect_per_unit_s: f64,
}

impl Default for BismarckRunner {
    fn default() -> Self {
        Self {
            driver_mem_bytes: 1024 * 1024 * 1024,
            collect_per_unit_s: 3.0e-5,
        }
    }
}

impl BismarckRunner {
    /// Bytes the fused operator materializes at the driver per iteration:
    /// the iteration's units as dense `d`-vectors.
    pub fn driver_bytes(&self, desc: &ml4all_dataflow::DatasetDescriptor, m: u64) -> u64 {
        m * desc.dims as u64 * 8
    }

    /// Run a GD variant through the Bismarck abstraction.
    pub fn run(
        &self,
        variant: GdVariant,
        data: &PartitionedDataset,
        params: &TrainParams,
        env: &mut SimEnv,
    ) -> Result<TrainResult, BaselineError> {
        let start = std::time::Instant::now();
        let desc = data.descriptor().clone();
        let dims = desc.dims;
        let avg_nnz = desc.avg_nnz();
        let m = variant.sample_size(desc.n);
        let required = self.driver_bytes(&desc, m);
        if required > self.driver_mem_bytes {
            return Err(BaselineError::DriverOverflow {
                required_bytes: required,
                limit_bytes: self.driver_mem_bytes,
            });
        }

        env.charge_job_init();
        // Prepare UDF: parallel parse, like eager transformation.
        env.charge_full_scan_io(&desc, StorageMedium::Disk);
        env.charge_wave_cpu(&desc, env.spec.cpu_transform_s(avg_nnz));

        let n_phys = data.physical_n();
        let m_phys = variant.sample_size(n_phys as u64) as usize;
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x4249_534D);

        let mut weights = DenseVector::zeros(dims);
        let mut prev = weights.clone();
        let mut error_seq = Vec::new();
        let mut iteration = 0u64;
        let mut final_delta;
        let stop;
        let distributed = !desc.fits_one_partition(&env.spec);

        loop {
            iteration += 1;
            env.charge_iteration_overhead(distributed);

            // Gather this iteration's units at the single fused node.
            match variant {
                GdVariant::Batch => {
                    env.charge_full_scan_io(&desc, StorageMedium::Auto);
                    if distributed {
                        env.charge_network(desc.bytes); // whole dataset moves
                    }
                    env.charge_serial_cpu(desc.n, self.collect_per_unit_s / 10.0);
                    // Fused compute+update: serial gradient over *all* n.
                    env.charge_serial_cpu(desc.n, env.spec.cpu_gradient_s(avg_nnz));
                }
                GdVariant::Stochastic | GdVariant::MiniBatch { .. } => {
                    // Bernoulli-style scan (UDA table pass) + collect.
                    env.charge_full_scan_io(&desc, StorageMedium::Auto);
                    env.charge_wave_cpu(&desc, env.spec.cpu_sample_test_s());
                    if distributed {
                        env.charge_network(desc.unit_bytes().ceil() as u64 * m);
                    }
                    env.charge_serial_cpu(m, self.collect_per_unit_s);
                    env.charge_serial_cpu(m, env.spec.cpu_gradient_s(avg_nnz));
                }
            }
            env.charge_serial_cpu(1, env.spec.cpu_update_s(dims));

            // ---- Real math: identical gradient/step semantics.
            let mut grad_acc = DenseVector::zeros(dims);
            let mut count = 0u64;
            match variant {
                GdVariant::Batch => {
                    for v in data.iter_views() {
                        params.gradient.accumulate_view(
                            weights.as_slice(),
                            v,
                            grad_acc.as_mut_slice(),
                        );
                        count += 1;
                    }
                }
                _ => {
                    let all: Vec<_> = data.iter_views().collect();
                    for _ in 0..m_phys.max(1) {
                        let v = all[rng.gen_range(0..all.len())];
                        params.gradient.accumulate_view(
                            weights.as_slice(),
                            v,
                            grad_acc.as_mut_slice(),
                        );
                        count += 1;
                    }
                }
            }
            if count > 0 {
                let alpha = params.step.at(iteration);
                let scale = -alpha / count as f64;
                let mut reg = vec![0.0; dims];
                params.regularizer.accumulate(weights.as_slice(), &mut reg);
                for ((wi, gi), ri) in weights
                    .as_mut_slice()
                    .iter_mut()
                    .zip(grad_acc.as_slice())
                    .zip(&reg)
                {
                    *wi += scale * gi - alpha * ri;
                }
            }
            if weights.as_slice().iter().any(|w| !w.is_finite()) {
                return Err(BaselineError::Gd(ml4all_gd::GdError::Diverged {
                    iteration,
                }));
            }

            let delta = weights
                .l1_distance(&prev)
                .expect("dimensions fixed per run");
            env.charge_serial_cpu(1, env.spec.cpu_converge_s(dims));
            prev.clone_from(&weights);
            final_delta = delta;
            if params.record_error_seq {
                error_seq.push((iteration, delta));
            }

            if delta < params.tolerance {
                stop = StopReason::Converged;
                break;
            }
            if iteration >= params.max_iter {
                stop = StopReason::MaxIterations;
                break;
            }
            if let Some(budget) = params.wall_budget {
                if start.elapsed() >= budget {
                    stop = StopReason::WallBudget;
                    break;
                }
            }
        }

        Ok(TrainResult {
            weights,
            iterations: iteration,
            stop,
            final_delta,
            cost: env.snapshot(),
            sim_time_s: env.elapsed_s(),
            wall_time: start.elapsed(),
            error_seq,
            sampler_shuffles: 0,
            usage: env.ledger.usage().clone(),
            backend: env.backend().name(),
            rng_stream_version: ml4all_dataflow::RNG_STREAM_VERSION,
            resume_state: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_dataflow::{ClusterSpec, DatasetDescriptor, PartitionScheme};
    use ml4all_gd::GradientKind;
    use ml4all_linalg::{FeatureVec, LabeledPoint};

    fn dataset(n: usize, dims_logical: usize, logical_bytes: u64) -> PartitionedDataset {
        let mut rng = StdRng::seed_from_u64(6);
        let points: Vec<LabeledPoint> = (0..n)
            .map(|_| {
                let x: f64 = rng.gen_range(-1.0..1.0);
                let label = if x > 0.0 { 1.0 } else { -1.0 };
                LabeledPoint::new(label, FeatureVec::dense(vec![x, 1.0]))
            })
            .collect();
        let desc = DatasetDescriptor::new("bis-test", n as u64, dims_logical, logical_bytes, 1.0);
        PartitionedDataset::with_descriptor(
            desc,
            points,
            PartitionScheme::RoundRobin,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap()
    }

    #[test]
    fn bgd_on_wide_data_overflows_the_driver() {
        // rcv1-like: 677 399 × 47 236 dense at the driver = ~256 GB.
        let data = dataset(1000, 47_236, 1024 * 1024 * 1024);
        let mut desc = data.descriptor().clone();
        desc.n = 677_399;
        let runner = BismarckRunner::default();
        assert!(runner.driver_bytes(&desc, desc.n) > runner.driver_mem_bytes);

        let params = TrainParams::paper_defaults(GradientKind::Svm);
        let mut env = SimEnv::new(ClusterSpec::paper_testbed());
        // The constructed dataset already has n=1000 logical; force a big
        // logical n by rebuilding with the wide descriptor.
        let wide = PartitionedDataset::with_descriptor(
            DatasetDescriptor::new("rcv1", 677_399, 47_236, 1024 * 1024 * 1024, 1.0),
            data.to_points(),
            PartitionScheme::RoundRobin,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap();
        let err = runner
            .run(GdVariant::Batch, &wide, &params, &mut env)
            .unwrap_err();
        assert!(matches!(err, BaselineError::DriverOverflow { .. }));
    }

    #[test]
    fn mgd_10k_on_wide_data_fails_but_1k_succeeds() {
        // The paper's Figure 11(b): Bismarck runs MGD(1k) on rcv1 but
        // fails MGD(10k).
        let runner = BismarckRunner::default();
        let rcv1 = DatasetDescriptor::new("rcv1", 677_399, 47_236, 1024 * 1024 * 1024, 1.5e-3);
        assert!(runner.driver_bytes(&rcv1, 1_000) <= runner.driver_mem_bytes);
        assert!(runner.driver_bytes(&rcv1, 10_000) > runner.driver_mem_bytes);
    }

    #[test]
    fn bismarck_sgd_matches_small_data_but_loses_bgd_at_scale() {
        use ml4all_gd::{execute_plan, GdPlan};
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.max_iter = 20;
        params.tolerance = 0.0;
        let runner = BismarckRunner::default();

        // Large distributed dataset: fused BGD must be much slower than
        // the split-operator BGD (serial vs wave-parallel gradients).
        let big = dataset(4000, 2, 5 * 1024 * 1024 * 1024);
        let mut env_bis = SimEnv::new(ClusterSpec::paper_testbed());
        let bis = runner
            .run(GdVariant::Batch, &big, &params, &mut env_bis)
            .unwrap();
        let mut env_ours = SimEnv::new(ClusterSpec::paper_testbed());
        let ours = execute_plan(&GdPlan::bgd(), &big, &params, &mut env_ours).unwrap();
        assert!(
            bis.sim_time_s > 2.0 * ours.sim_time_s,
            "bismarck {} vs ml4all {}",
            bis.sim_time_s,
            ours.sim_time_s
        );
    }

    #[test]
    fn bismarck_trains_a_real_model() {
        let data = dataset(2000, 2, 1024 * 1024);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.max_iter = 100;
        params.tolerance = 0.0;
        let mut env = SimEnv::new(ClusterSpec::paper_testbed());
        let result = BismarckRunner::default()
            .run(
                GdVariant::MiniBatch { batch: 100 },
                &data,
                &params,
                &mut env,
            )
            .unwrap();
        let correct = data
            .iter_views()
            .filter(|v| (v.features.dot(result.weights.as_slice()) >= 0.0) == (v.label > 0.0))
            .count();
        assert!(correct as f64 / data.physical_n() as f64 > 0.8);
    }
}
