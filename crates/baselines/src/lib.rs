//! Simulated baseline systems from the paper's evaluation (Section 8.1):
//! **MLlib**, **SystemML**, and the **Bismarck** abstraction, each rebuilt
//! over the same dataflow substrate with the behavioural traits the paper
//! attributes to it.
//!
//! | Baseline  | Modelled traits |
//! |-----------|-----------------|
//! | [`mllib`] | eager transformation only; fraction-based Bernoulli sampling (full scan per iteration; inflated fraction for SGD to dodge empty samples); `treeAggregate` two-level aggregation; JVM/closure CPU factor; per-iteration Spark job |
//! | [`systemml`] | binary-block conversion pass charged up front; hybrid execution (local when the binary fits the driver, distributed otherwise); out-of-memory failure on large dense data; per-iteration instruction-generation overhead in distributed mode |
//! | [`bismarck`] | `Prepare` UDF parallelized, but the fused Compute/Update runs serialized at one node; samples are `collect()`ed through the driver with dense materialization — overflowing the driver for high `n × d` (its Figure 11 failure mode) |
//!
//! All baselines run the *real* math (identical gradients, step sizes, and
//! convergence conditions — the paper configures all systems identically)
//! and charge their own cost profile to the ledger, so both training times
//! and models are comparable with ML4all's.

pub mod bismarck;
pub mod mllib;
pub mod systemml;

pub use bismarck::BismarckRunner;
pub use mllib::MllibRunner;
pub use systemml::SystemmlRunner;

/// Failure modes the paper observed in the baselines (these are *results*,
/// not panics — Figures 9 and 11 report them).
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// SystemML's dense-block out-of-memory failure ("for all the dense
    /// synthetic datasets SystemML failed with out of memory exceptions").
    OutOfMemory {
        /// System that failed.
        system: &'static str,
        /// Bytes the system attempted to materialize.
        required_bytes: u64,
        /// Its limit.
        limit_bytes: u64,
    },
    /// Bismarck's driver overflow on large `n × d` (rcv1 MGD(10k)/BGD,
    /// svm1 BGD in Figure 11).
    DriverOverflow {
        /// Bytes the fused operator must hold at the driver.
        required_bytes: u64,
        /// Driver memory.
        limit_bytes: u64,
    },
    /// Underlying GD failure (divergence etc.).
    Gd(ml4all_gd::GdError),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OutOfMemory {
                system,
                required_bytes,
                limit_bytes,
            } => write!(
                f,
                "{system}: out of memory ({required_bytes} bytes required, {limit_bytes} limit)"
            ),
            Self::DriverOverflow {
                required_bytes,
                limit_bytes,
            } => write!(
                f,
                "bismarck: driver overflow ({required_bytes} bytes required, {limit_bytes} limit)"
            ),
            Self::Gd(e) => write!(f, "gd error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<ml4all_gd::GdError> for BaselineError {
    fn from(e: ml4all_gd::GdError) -> Self {
        Self::Gd(e)
    }
}
