//! MLlib baseline (Section 8.1): Spark MLlib 1.6.2's `GradientDescent`
//! rebuilt over the substrate.
//!
//! Modelled traits, each credited by the paper for MLlib's behaviour:
//!
//! - **Eager transformation only** — the input RDD is parsed up front.
//! - **Fraction-based Bernoulli sampling**: `miniBatchFraction = b/n`
//!   scans the *entire* dataset every iteration. For SGD the fraction is
//!   inflated ("we set the fraction slightly higher to reduce the chances
//!   that the sample will be empty", Section 8.4.1).
//! - **`treeAggregate`** two-level aggregation: extra stages and network
//!   versus ML4all's `mapPartitions`+`reduce` ("we used mapPartitions and
//!   reduce instead of treeAggregate, which resulted in better data
//!   locality").
//! - A **Spark job per iteration**, small data or not.
//! - A JVM/closure **CPU factor** on the gradient sweep.
//! - Cache-aware IO: datasets above cluster cache pay disk every iteration
//!   (the svm3 behaviour: "MLlib incurred disk IOs in each iteration").

use ml4all_dataflow::{PartitionedDataset, SimEnv, StorageMedium};
use ml4all_gd::executor::StopReason;
use ml4all_gd::{GdVariant, Gradient, TrainParams, TrainResult};
use ml4all_linalg::DenseVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BaselineError;

/// The MLlib-like runner.
#[derive(Debug, Clone)]
pub struct MllibRunner {
    /// CPU multiplier on the distributed gradient sweep (closure
    /// serialization, Breeze boxing) relative to the hand-tuned substrate.
    pub cpu_factor: f64,
    /// `treeAggregate` depth (2 in MLlib's default).
    pub tree_depth: u64,
    /// Fraction inflation for SGD (expected sample ≈ this many units).
    pub sgd_fraction_inflation: f64,
}

impl Default for MllibRunner {
    fn default() -> Self {
        Self {
            cpu_factor: 2.0,
            tree_depth: 2,
            sgd_fraction_inflation: 5.0,
        }
    }
}

impl MllibRunner {
    /// Run a GD variant to convergence with MLlib's execution profile.
    pub fn run(
        &self,
        variant: GdVariant,
        data: &PartitionedDataset,
        params: &TrainParams,
        env: &mut SimEnv,
    ) -> Result<TrainResult, BaselineError> {
        let start = std::time::Instant::now();
        let desc = data.descriptor().clone();
        let dims = desc.dims;
        let n_phys = data.physical_n();
        let avg_nnz = desc.avg_nnz();
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x4D4C_4C49);

        env.charge_job_init();
        // Eager parse of the input RDD (textFile → LabeledPoint), cached.
        env.charge_full_scan_io(&desc, StorageMedium::Disk);
        env.charge_wave_cpu(&desc, env.spec.cpu_transform_s(avg_nnz) * self.cpu_factor);

        let fraction = match variant {
            GdVariant::Batch => 1.0,
            GdVariant::Stochastic => (self.sgd_fraction_inflation / desc.n as f64).min(1.0),
            GdVariant::MiniBatch { batch } => (batch as f64 / desc.n as f64).min(1.0),
        };
        let phys_fraction = match variant {
            GdVariant::Batch => 1.0,
            GdVariant::Stochastic => (self.sgd_fraction_inflation / n_phys as f64).min(1.0),
            GdVariant::MiniBatch { batch } => (batch as f64 / n_phys as f64).min(1.0),
        };

        let mut weights = DenseVector::zeros(dims);
        let mut prev = weights.clone();
        let mut grad_acc = DenseVector::zeros(dims);
        let mut error_seq = Vec::new();
        let mut iteration = 0u64;
        let mut final_delta;
        let stop;

        loop {
            iteration += 1;
            // One Spark job per iteration + the extra treeAggregate level.
            env.charge_iteration_overhead(true);
            env.ledger
                .charge_overhead(env.spec.stage_launch_s * (self.tree_depth - 1) as f64);

            // The sampled gradient sweep: a full scan with per-unit
            // Bernoulli tests, gradients only on included units.
            env.charge_full_scan_io(&desc, StorageMedium::Auto);
            env.charge_wave_cpu(&desc, env.spec.cpu_sample_test_s());
            env.charge_wave_cpu(
                &desc,
                env.spec.cpu_gradient_s(avg_nnz) * fraction * self.cpu_factor,
            );
            // treeAggregate: every partition ships a d-vector, then the
            // intermediate level ships again.
            let partials = desc.partitions(&env.spec) * self.tree_depth;
            env.charge_network(partials * dims as u64 * 8);
            env.charge_serial_cpu(1, env.spec.cpu_update_s(dims));

            grad_acc.fill_zero();
            let mut count = 0u64;
            for v in data.iter_views() {
                if fraction >= 1.0 || rng.gen::<f64>() < phys_fraction {
                    params
                        .gradient
                        .accumulate_view(weights.as_slice(), v, grad_acc.as_mut_slice());
                    count += 1;
                }
            }
            if count > 0 {
                let alpha = params.step.at(iteration);
                let scale = -alpha / count as f64;
                let mut reg = vec![0.0; dims];
                params.regularizer.accumulate(weights.as_slice(), &mut reg);
                for ((wi, gi), ri) in weights
                    .as_mut_slice()
                    .iter_mut()
                    .zip(grad_acc.as_slice())
                    .zip(&reg)
                {
                    *wi += scale * gi - alpha * ri;
                }
            }
            if weights.as_slice().iter().any(|w| !w.is_finite()) {
                return Err(BaselineError::Gd(ml4all_gd::GdError::Diverged {
                    iteration,
                }));
            }

            let delta = weights
                .l1_distance(&prev)
                .expect("dimensions fixed per run");
            env.charge_serial_cpu(1, env.spec.cpu_converge_s(dims));
            prev.clone_from(&weights);
            final_delta = delta;
            if params.record_error_seq {
                error_seq.push((iteration, delta));
            }

            if delta < params.tolerance {
                stop = StopReason::Converged;
                break;
            }
            if iteration >= params.max_iter {
                stop = StopReason::MaxIterations;
                break;
            }
            if let Some(budget) = params.wall_budget {
                if start.elapsed() >= budget {
                    stop = StopReason::WallBudget;
                    break;
                }
            }
        }

        Ok(TrainResult {
            weights,
            iterations: iteration,
            stop,
            final_delta,
            cost: env.snapshot(),
            sim_time_s: env.elapsed_s(),
            wall_time: start.elapsed(),
            error_seq,
            sampler_shuffles: 0,
            usage: env.ledger.usage().clone(),
            backend: env.backend().name(),
            rng_stream_version: ml4all_dataflow::RNG_STREAM_VERSION,
            resume_state: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_dataflow::{ClusterSpec, PartitionScheme};
    use ml4all_gd::{execute_plan, GdPlan, GradientKind};
    use ml4all_linalg::{FeatureVec, LabeledPoint};

    fn dataset(n: usize, logical_bytes: u64) -> PartitionedDataset {
        let mut rng = StdRng::seed_from_u64(9);
        let points: Vec<LabeledPoint> = (0..n)
            .map(|_| {
                let x0: f64 = rng.gen_range(-1.0..1.0);
                let x1: f64 = rng.gen_range(-1.0..1.0);
                let label = if x0 - x1 > 0.0 { 1.0 } else { -1.0 };
                LabeledPoint::new(label, FeatureVec::dense(vec![x0, x1, 1.0]))
            })
            .collect();
        let desc =
            ml4all_dataflow::DatasetDescriptor::new("mllib-test", n as u64, 3, logical_bytes, 1.0);
        PartitionedDataset::with_descriptor(
            desc,
            points,
            PartitionScheme::RoundRobin,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap()
    }

    #[test]
    fn mllib_bgd_trains_a_model() {
        let data = dataset(2000, 1024 * 1024);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.max_iter = 200;
        params.tolerance = 0.01;
        let mut env = SimEnv::new(ClusterSpec::paper_testbed());
        let result = MllibRunner::default()
            .run(GdVariant::Batch, &data, &params, &mut env)
            .unwrap();
        assert!(result.iterations > 1);
        // The model separates reasonably.
        let correct = data
            .iter_views()
            .filter(|v| (v.features.dot(result.weights.as_slice()) >= 0.0) == (v.label > 0.0))
            .count();
        assert!(correct as f64 / data.physical_n() as f64 > 0.8);
    }

    #[test]
    fn mllib_is_slower_than_ml4all_best_plan_on_large_data() {
        // The Figure 9(c) shape: MLlib's per-iteration full scans vs
        // ML4all's shuffled-partition SGD.
        let data = dataset(5000, 10 * 1024 * 1024 * 1024);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.max_iter = 50;
        params.tolerance = 0.0;

        let mut env_mllib = SimEnv::new(ClusterSpec::paper_testbed());
        let mllib = MllibRunner::default()
            .run(GdVariant::Stochastic, &data, &params, &mut env_mllib)
            .unwrap();

        let plan = GdPlan::sgd(
            ml4all_gd::TransformPolicy::Lazy,
            ml4all_dataflow::SamplingMethod::ShuffledPartition,
        )
        .unwrap();
        let mut env_ours = SimEnv::new(ClusterSpec::paper_testbed());
        let ours = execute_plan(&plan, &data, &params, &mut env_ours).unwrap();

        // Cached 10 GB: MLlib's per-iteration scans cost ~2× end to end.
        assert!(
            mllib.sim_time_s > 2.0 * ours.sim_time_s,
            "mllib {} vs ml4all {}",
            mllib.sim_time_s,
            ours.sim_time_s
        );
    }

    #[test]
    fn mllib_gap_explodes_when_data_exceeds_cache() {
        // The Figure 10(a) tail: at 160 GB (svm3-scale) MLlib's Bernoulli
        // scans hit disk every iteration while shuffled-partition SGD
        // reads a partition's worth.
        let data = dataset(5000, 160 * 1024 * 1024 * 1024);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.max_iter = 10;
        params.tolerance = 0.0;

        let mut env_mllib = SimEnv::new(ClusterSpec::paper_testbed());
        let mllib = MllibRunner::default()
            .run(GdVariant::Stochastic, &data, &params, &mut env_mllib)
            .unwrap();

        let plan = GdPlan::sgd(
            ml4all_gd::TransformPolicy::Lazy,
            ml4all_dataflow::SamplingMethod::ShuffledPartition,
        )
        .unwrap();
        let mut env_ours = SimEnv::new(ClusterSpec::paper_testbed());
        let ours = execute_plan(&plan, &data, &params, &mut env_ours).unwrap();

        assert!(
            mllib.sim_time_s > 10.0 * ours.sim_time_s,
            "mllib {} vs ml4all {} — expected an order of magnitude",
            mllib.sim_time_s,
            ours.sim_time_s
        );
    }

    #[test]
    fn sgd_fraction_inflation_avoids_empty_samples_mostly() {
        let data = dataset(5000, 1024 * 1024);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.max_iter = 30;
        params.tolerance = 0.0;
        let mut env = SimEnv::new(ClusterSpec::paper_testbed());
        let result = MllibRunner::default()
            .run(GdVariant::Stochastic, &data, &params, &mut env)
            .unwrap();
        assert_eq!(result.iterations, 30);
    }

    #[test]
    fn mllib_pays_disk_io_when_dataset_exceeds_cache() {
        let spec = ClusterSpec::paper_testbed();
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.max_iter = 5;
        params.tolerance = 0.0;

        let fits = dataset(2000, spec.cache_bytes / 2);
        let mut env_fits = SimEnv::new(spec.clone());
        let r_fits = MllibRunner::default()
            .run(
                GdVariant::MiniBatch { batch: 100 },
                &fits,
                &params,
                &mut env_fits,
            )
            .unwrap();

        let spills = dataset(2000, spec.cache_bytes * 2);
        let mut env_spills = SimEnv::new(spec);
        let r_spills = MllibRunner::default()
            .run(
                GdVariant::MiniBatch { batch: 100 },
                &spills,
                &params,
                &mut env_spills,
            )
            .unwrap();

        // Per logical byte, the spilled dataset costs far more IO.
        let per_byte_fits = r_fits.cost.io_s / fits.descriptor().bytes as f64;
        let per_byte_spills = r_spills.cost.io_s / spills.descriptor().bytes as f64;
        assert!(per_byte_spills > 2.0 * per_byte_fits);
    }
}
