//! Integration tests for the accelerated algorithms of Appendix C: SVRG
//! and BGD with backtracking line search, both expressed through the same
//! seven-operator abstraction and executor as the plain plans.

use ml4all_dataflow::{ClusterSpec, PartitionScheme, PartitionedDataset, SamplingMethod, SimEnv};
use ml4all_gd::linesearch::execute_line_search_bgd;
use ml4all_gd::svrg::execute_svrg;
use ml4all_gd::{dataset_loss, partitioned_loss, GradientKind, Regularizer, StepSize, TrainParams};
use ml4all_linalg::{FeatureVec, LabeledPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn regression_points(n: usize, seed: u64) -> Vec<LabeledPoint> {
    // y = 2 x0 − x1 + 0.5 with small noise.
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x0: f64 = rng.gen_range(-1.0..1.0);
            let x1: f64 = rng.gen_range(-1.0..1.0);
            let y = 2.0 * x0 - x1 + 0.5 + rng.gen_range(-0.02..0.02);
            LabeledPoint::new(y, FeatureVec::dense(vec![x0, x1, 1.0]))
        })
        .collect()
}

fn dataset(n: usize, seed: u64) -> PartitionedDataset {
    PartitionedDataset::from_points(
        "reg",
        regression_points(n, seed),
        PartitionScheme::RoundRobin,
        &ClusterSpec::paper_testbed(),
    )
    .unwrap()
}

#[test]
fn svrg_converges_on_regression() {
    let data = dataset(1000, 5);
    let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
    params.tolerance = 1e-5;
    params.max_iter = 3000;
    let mut env = SimEnv::new(ClusterSpec::paper_testbed());
    let result = execute_svrg(
        &data,
        SamplingMethod::ShuffledPartition,
        50,
        0.05,
        &params,
        &mut env,
    )
    .unwrap();
    let loss = partitioned_loss(
        &GradientKind::LinearRegression,
        &Regularizer::None,
        result.weights.as_slice(),
        &data,
    );
    assert!(loss < 0.05, "SVRG loss {loss}");
    assert!(
        (result.weights[0] - 2.0).abs() < 0.2,
        "w0 {}",
        result.weights[0]
    );
}

#[test]
fn svrg_variance_reduction_beats_plain_sgd_at_equal_steps() {
    use ml4all_gd::{execute_plan, GdPlan, TransformPolicy};
    let data = dataset(1000, 5);

    let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
    params.tolerance = 0.0;
    params.max_iter = 600;
    params.step = StepSize::Constant(0.05);

    let mut env_svrg = SimEnv::new(ClusterSpec::paper_testbed());
    let svrg = execute_svrg(
        &data,
        SamplingMethod::ShuffledPartition,
        100,
        0.05,
        &params,
        &mut env_svrg,
    )
    .unwrap();

    let plan = GdPlan::sgd(TransformPolicy::Eager, SamplingMethod::ShuffledPartition).unwrap();
    let mut env_sgd = SimEnv::new(ClusterSpec::paper_testbed());
    let sgd = execute_plan(&plan, &data, &params, &mut env_sgd).unwrap();

    let loss = |w: &ml4all_linalg::DenseVector| {
        partitioned_loss(
            &GradientKind::LinearRegression,
            &Regularizer::None,
            w.as_slice(),
            &data,
        )
    };
    assert!(
        loss(&svrg.weights) < loss(&sgd.weights) + 1e-9,
        "svrg {} vs sgd {}",
        loss(&svrg.weights),
        loss(&sgd.weights)
    );
}

#[test]
fn line_search_bgd_converges_without_tuning() {
    let data = dataset(800, 9);
    let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
    params.tolerance = 1e-6;
    params.max_iter = 4000; // counts phases: gradient + probe passes
    let mut env = SimEnv::new(ClusterSpec::paper_testbed());
    // Deliberately absurd initial step: backtracking must tame it.
    let result = execute_line_search_bgd(&data, 64.0, 0.5, &params, &mut env).unwrap();
    let loss = partitioned_loss(
        &GradientKind::LinearRegression,
        &Regularizer::None,
        result.weights.as_slice(),
        &data,
    );
    assert!(loss < 0.01, "line-search loss {loss}");
}

#[test]
fn line_search_probes_cost_extra_scans() {
    // The same model quality costs more simulated time than fixed-step BGD
    // because every probe is a full objective evaluation over the data.
    use ml4all_gd::{execute_plan, GdPlan};
    let data = dataset(800, 9);
    let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
    params.tolerance = 1e-4;
    params.max_iter = 200;

    let mut env_ls = SimEnv::new(ClusterSpec::paper_testbed());
    let ls = execute_line_search_bgd(&data, 8.0, 0.5, &params, &mut env_ls).unwrap();

    params.step = StepSize::Constant(0.1);
    let mut env_bgd = SimEnv::new(ClusterSpec::paper_testbed());
    let bgd = execute_plan(&GdPlan::bgd(), &data, &params, &mut env_bgd).unwrap();

    // Line search performed at least one probe phase per accepted step.
    assert!(ls.iterations > bgd.iterations / 2);
    assert!(ls.cost.cpu_s > 0.0 && bgd.cost.cpu_s > 0.0);
}

#[test]
fn svrg_anchor_frequency_one_degenerates_to_batch() {
    let data = dataset(500, 13);
    let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
    params.tolerance = 1e-6;
    params.max_iter = 500;
    let mut env = SimEnv::new(ClusterSpec::paper_testbed());
    let result = execute_svrg(
        &data,
        SamplingMethod::ShuffledPartition,
        1, // anchor every iteration → full gradient steps
        0.1,
        &params,
        &mut env,
    )
    .unwrap();
    let loss = partitioned_loss(
        &GradientKind::LinearRegression,
        &Regularizer::None,
        result.weights.as_slice(),
        &data,
    );
    assert!(loss < 0.05, "anchored-only SVRG loss {loss}");
}

#[test]
fn momentum_bgd_accelerates_on_ill_conditioned_objectives() {
    // The textbook heavy-ball win: a badly-conditioned quadratic. One
    // feature spans [-1, 1], the other [-0.05, 0.05] (condition number
    // ~400); plain GD crawls along the flat direction while momentum
    // accelerates through it. (Weight-delta convergence triggers later
    // under momentum, so compare losses at a fixed budget.)
    use ml4all_gd::momentum::execute_momentum_bgd;
    use ml4all_gd::{execute_plan, GdPlan};
    let mut rng = StdRng::seed_from_u64(21);
    let points: Vec<LabeledPoint> = (0..1000)
        .map(|_| {
            let x0: f64 = rng.gen_range(-1.0..1.0);
            let x1: f64 = rng.gen_range(-0.05..0.05);
            let y = x0 + 20.0 * x1;
            LabeledPoint::new(y, FeatureVec::dense(vec![x0, x1]))
        })
        .collect();
    let data = PartitionedDataset::from_points(
        "illcond",
        points.clone(),
        PartitionScheme::RoundRobin,
        &ClusterSpec::paper_testbed(),
    )
    .unwrap();

    let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
    params.tolerance = 0.0;
    params.max_iter = 300;
    params.step = StepSize::Constant(0.5);

    let mut env_plain = SimEnv::new(ClusterSpec::paper_testbed());
    let plain = execute_plan(&GdPlan::bgd(), &data, &params, &mut env_plain).unwrap();
    let mut env_mom = SimEnv::new(ClusterSpec::paper_testbed());
    let momentum = execute_momentum_bgd(&data, 0.9, &params, &mut env_mom).unwrap();

    let loss = |w: &ml4all_linalg::DenseVector| {
        dataset_loss(
            &GradientKind::LinearRegression,
            &Regularizer::None,
            w.as_slice(),
            &points,
        )
    };
    assert!(
        loss(&momentum.weights) < loss(&plain.weights) * 0.5,
        "momentum {} vs plain {}",
        loss(&momentum.weights),
        loss(&plain.weights)
    );
}

#[test]
fn momentum_sgd_trains_a_model() {
    use ml4all_gd::momentum::execute_momentum_sgd;
    let data = dataset(1000, 23);
    let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
    params.tolerance = 0.0;
    params.max_iter = 2000;
    params.step = StepSize::Constant(0.02);
    let mut env = SimEnv::new(ClusterSpec::paper_testbed());
    let r = execute_momentum_sgd(
        &data,
        0.9,
        SamplingMethod::ShuffledPartition,
        &params,
        &mut env,
    )
    .unwrap();
    let loss = partitioned_loss(
        &GradientKind::LinearRegression,
        &Regularizer::None,
        r.weights.as_slice(),
        &data,
    );
    assert!(loss < 0.05, "momentum-SGD loss {loss}");
}

#[test]
fn adagrad_converges_without_schedule_tuning() {
    use ml4all_gd::adagrad::execute_adagrad;
    let data = dataset(1000, 29);
    let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
    params.tolerance = 1e-6;
    params.max_iter = 5000;
    let mut env = SimEnv::new(ClusterSpec::paper_testbed());
    let r = execute_adagrad(
        &data,
        0.5,
        100,
        SamplingMethod::ShuffledPartition,
        &params,
        &mut env,
    )
    .unwrap();
    let loss = partitioned_loss(
        &GradientKind::LinearRegression,
        &Regularizer::None,
        r.weights.as_slice(),
        &data,
    );
    assert!(loss < 0.05, "adagrad loss {loss}");
}

#[test]
fn adagrad_per_coordinate_steps_differ() {
    // The point of AdaGrad: coordinates with larger accumulated gradients
    // get smaller effective steps. Verify the accumulator state exists and
    // the model is sane after a few iterations.
    use ml4all_gd::adagrad::execute_adagrad;
    let data = dataset(500, 31);
    let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
    params.tolerance = 0.0;
    params.max_iter = 50;
    let mut env = SimEnv::new(ClusterSpec::paper_testbed());
    let r = execute_adagrad(
        &data,
        0.5,
        50,
        SamplingMethod::RandomPartition,
        &params,
        &mut env,
    )
    .unwrap();
    assert_eq!(r.iterations, 50);
    assert!(r.weights.as_slice().iter().all(|w| w.is_finite()));
}

#[test]
fn stats_stage_plus_mean_center_runs_through_the_executor() {
    // The Section 6 global-statistics path end to end: a Stage that
    // demands a full scan, a non-identity Transform consuming its output,
    // materialized eagerly by the executor.
    use ml4all_gd::executor::execute_with_operators;
    use ml4all_gd::operators::{
        FixedSample, GdOperators, GradientCompute, L1Converge, MeanCenterTransform, SampleSize,
        StatsStage, StepUpdate, ToleranceLoop,
    };
    use ml4all_gd::{GdPlan, Regularizer};

    // Features with a strong offset: centering makes the intercept-free
    // regression solvable.
    let mut rng = StdRng::seed_from_u64(77);
    let points: Vec<LabeledPoint> = (0..800)
        .map(|_| {
            let x: f64 = rng.gen_range(-1.0..1.0);
            // offset feature = x + 100; y = 2x
            LabeledPoint::new(2.0 * x, FeatureVec::dense(vec![x + 100.0]))
        })
        .collect();
    let data = PartitionedDataset::from_points(
        "offset",
        points,
        PartitionScheme::RoundRobin,
        &ClusterSpec::paper_testbed(),
    )
    .unwrap();

    let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
    params.tolerance = 1e-8;
    params.max_iter = 3000;
    params.step = StepSize::Constant(0.5);
    let ops = GdOperators {
        transform: Box::new(MeanCenterTransform),
        stage: Box::new(StatsStage { dims: 1 }),
        compute: Box::new(GradientCompute::of(GradientKind::LinearRegression)),
        update: Box::new(StepUpdate {
            step: params.step,
            regularizer: Regularizer::None,
        }),
        sample: Box::new(FixedSample {
            size: SampleSize::All,
        }),
        converge: Box::new(L1Converge),
        loop_op: Box::new(ToleranceLoop {
            tolerance: params.tolerance,
            max_iter: params.max_iter,
        }),
    };
    let mut env = SimEnv::new(ClusterSpec::paper_testbed());
    let result = execute_with_operators(&GdPlan::bgd(), &data, &ops, &params, &mut env).unwrap();
    // After centering, the slope is recoverable.
    assert!(
        (result.weights[0] - 2.0).abs() < 0.05,
        "slope {}",
        result.weights[0]
    );
    // The stats scan was charged: preparation includes two full scans
    // (stats + eager transform), visible as extra IO versus a plain run.
    assert!(result.cost.io_s > 0.0);
}
