//! Property-based tests for the GD layer: gradient correctness against
//! numerical differentiation, executor determinism, and descent behaviour.

use ml4all_dataflow::{ClusterSpec, PartitionScheme, PartitionedDataset, SamplingMethod, SimEnv};
use ml4all_gd::{
    execute_plan, partitioned_loss, GdPlan, Gradient, GradientKind, Regularizer, StepSize,
    TrainParams, TransformPolicy,
};
use ml4all_linalg::{FeatureVec, LabeledPoint};
use proptest::prelude::*;

fn arb_point(dims: usize) -> impl Strategy<Value = LabeledPoint> {
    (
        prop::collection::vec(-2.0f64..2.0, dims),
        prop_oneof![Just(-1.0f64), Just(1.0f64)],
    )
        .prop_map(|(xs, label)| LabeledPoint::new(label, FeatureVec::dense(xs)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gradients_match_numerical_differentiation(
        point in arb_point(4),
        w in prop::collection::vec(-2.0f64..2.0, 4),
        kind_ix in 0usize..2,
    ) {
        // Smooth losses only (hinge is non-differentiable at the margin).
        let kind = [GradientKind::LinearRegression, GradientKind::LogisticRegression][kind_ix];
        let eps = 1e-6;
        let mut analytic = vec![0.0; 4];
        kind.accumulate(&w, &point, &mut analytic);
        for j in 0..4 {
            let mut wp = w.clone();
            wp[j] += eps;
            let mut wm = w.clone();
            wm[j] -= eps;
            let numeric = (kind.loss(&wp, &point) - kind.loss(&wm, &point)) / (2.0 * eps);
            prop_assert!(
                (numeric - analytic[j]).abs() < 1e-4 * (1.0 + analytic[j].abs()),
                "{kind:?} dim {j}: numeric {numeric} vs analytic {}",
                analytic[j]
            );
        }
    }

    #[test]
    fn hinge_subgradient_is_valid(
        point in arb_point(3),
        w in prop::collection::vec(-2.0f64..2.0, 3),
    ) {
        // Subgradient inequality: ℓ(v) ≥ ℓ(w) + g·(v − w) for hinge.
        let kind = GradientKind::Svm;
        let mut g = vec![0.0; 3];
        kind.accumulate(&w, &point, &mut g);
        let lw = kind.loss(&w, &point);
        for dv in [-0.5, 0.3, 1.0] {
            let v: Vec<f64> = w.iter().map(|x| x + dv).collect();
            let lv = kind.loss(&v, &point);
            let linear: f64 = g.iter().map(|gi| gi * dv).sum();
            prop_assert!(lv + 1e-9 >= lw + linear);
        }
    }
}

fn dataset(n: usize, seed: u64) -> PartitionedDataset {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<LabeledPoint> = (0..n)
        .map(|_| {
            let x0: f64 = rng.gen_range(-1.0..1.0);
            let x1: f64 = rng.gen_range(-1.0..1.0);
            let label = if x0 + 0.5 * x1 > 0.0 { 1.0 } else { -1.0 };
            LabeledPoint::new(label, FeatureVec::dense(vec![x0, x1, 1.0]))
        })
        .collect();
    PartitionedDataset::from_points(
        "prop",
        points,
        PartitionScheme::RoundRobin,
        &ClusterSpec::paper_testbed(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn executor_is_deterministic_per_seed(seed in 0u64..1000, iters in 5u64..50) {
        let data = dataset(300, 5);
        let plan = GdPlan::mgd(20, TransformPolicy::Eager, SamplingMethod::RandomPartition)
            .unwrap();
        let mut params = TrainParams::paper_defaults(GradientKind::LogisticRegression);
        params.seed = seed;
        params.tolerance = 0.0;
        params.max_iter = iters;

        let mut env_a = SimEnv::new(ClusterSpec::paper_testbed());
        let a = execute_plan(&plan, &data, &params, &mut env_a).unwrap();
        let mut env_b = SimEnv::new(ClusterSpec::paper_testbed());
        let b = execute_plan(&plan, &data, &params, &mut env_b).unwrap();
        prop_assert_eq!(a.weights, b.weights);
        prop_assert_eq!(a.sim_time_s, b.sim_time_s);
    }

    #[test]
    fn bgd_monotonically_reduces_logistic_loss(seed in 0u64..100) {
        // With a constant, stable step, full-batch GD on the smooth convex
        // logistic loss must not increase the objective.
        let data = dataset(400, seed);
        let mut params = TrainParams::paper_defaults(GradientKind::LogisticRegression);
        params.step = StepSize::Constant(0.2);
        params.tolerance = 0.0;

        let mut last = partitioned_loss(
            &GradientKind::LogisticRegression,
            &Regularizer::None,
            &[0.0, 0.0, 0.0],
            &data,
        );
        for iters in [5u64, 15, 40] {
            params.max_iter = iters;
            let mut env = SimEnv::new(ClusterSpec::paper_testbed());
            let r = execute_plan(&GdPlan::bgd(), &data, &params, &mut env).unwrap();
            let loss = partitioned_loss(
                &GradientKind::LogisticRegression,
                &Regularizer::None,
                r.weights.as_slice(),
                &data,
            );
            prop_assert!(loss <= last + 1e-9, "loss rose from {last} to {loss}");
            last = loss;
        }
    }

    #[test]
    fn sim_time_is_positive_and_additive_in_iterations(iters in 2u64..40) {
        let data = dataset(200, 3);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.tolerance = 0.0;

        params.max_iter = iters;
        let mut env = SimEnv::new(ClusterSpec::paper_testbed());
        let full = execute_plan(&GdPlan::bgd(), &data, &params, &mut env).unwrap();

        params.max_iter = iters / 2;
        let mut env_half = SimEnv::new(ClusterSpec::paper_testbed());
        let half = execute_plan(&GdPlan::bgd(), &data, &params, &mut env_half).unwrap();

        prop_assert!(full.sim_time_s > half.sim_time_s);
        prop_assert!(half.sim_time_s > 0.0);
    }
}

/// The same logical data stored as a dense slab and as CSR (explicit
/// zeros dropped) trains to equivalent weights. Not bit-identical: the
/// batched dense kernels score rows in the fixed blocked reduction order
/// (`ml4all_linalg::simd::dot_blocked`), while CSR rows keep the
/// sequential stored-entry order — the two layouts round identically-
/// valued real sums differently. The layouts must still agree to within
/// rounding noise, and must run the same number of iterations.
fn check_dense_slab_vs_csr(seed: u64, sampler_ix: usize, iters: u64) {
    use ml4all_linalg::SparseVector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(seed);
    let dims = 6usize;
    let mut dense_pts = Vec::new();
    let mut sparse_pts = Vec::new();
    for _ in 0..240 {
        // Roughly half the entries are exact zeros, so the CSR rows
        // genuinely skip storage the dense slab materializes.
        let xs: Vec<f64> = (0..dims)
            .map(|_| {
                if rng.gen::<f64>() < 0.5 {
                    0.0
                } else {
                    rng.gen_range(-1.0f64..1.0)
                }
            })
            .collect();
        let label = if xs.iter().sum::<f64>() > 0.0 {
            1.0
        } else {
            -1.0
        };
        let (idx, val): (Vec<u32>, Vec<f64>) = xs
            .iter()
            .enumerate()
            .filter(|(_, v)| **v != 0.0)
            .map(|(i, v)| (i as u32, *v))
            .unzip();
        dense_pts.push(LabeledPoint::new(label, FeatureVec::dense(xs)));
        sparse_pts.push(LabeledPoint::new(
            label,
            FeatureVec::Sparse(SparseVector::new(dims, idx, val).unwrap()),
        ));
    }
    let cluster = ClusterSpec::paper_testbed();
    let dense_ds =
        PartitionedDataset::from_points("dense", dense_pts, PartitionScheme::RoundRobin, &cluster)
            .unwrap();
    let sparse_ds = PartitionedDataset::from_points(
        "sparse",
        sparse_pts,
        PartitionScheme::RoundRobin,
        &cluster,
    )
    .unwrap();

    let sampling = [
        SamplingMethod::Bernoulli,
        SamplingMethod::RandomPartition,
        SamplingMethod::ShuffledPartition,
    ][sampler_ix];
    let plan = GdPlan::mgd(16, TransformPolicy::Eager, sampling).unwrap();
    let mut params = TrainParams::paper_defaults(GradientKind::LogisticRegression);
    params.seed = seed ^ 0xC0FFEE;
    params.tolerance = 0.0;
    params.max_iter = iters;

    let mut env_d = SimEnv::new(cluster.clone());
    let d = execute_plan(&plan, &dense_ds, &params, &mut env_d).unwrap();
    let mut env_s = SimEnv::new(cluster);
    let s = execute_plan(&plan, &sparse_ds, &params, &mut env_s).unwrap();
    for (a, b) in d.weights.as_slice().iter().zip(s.weights.as_slice()) {
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() <= 1e-9 * scale,
            "dense {a} vs csr {b} diverged beyond rounding noise"
        );
    }
    assert_eq!(d.iterations, s.iterations);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dense_slab_and_csr_train_equivalent_weights(
        seed in 0u64..500,
        sampler_ix in 0usize..3,
        iters in 5u64..40,
    ) {
        check_dense_slab_vs_csr(seed, sampler_ix, iters);
    }
}

/// Restores the default SIMD dispatch even if an assertion unwinds, so a
/// failure in one combination cannot leak forced-scalar mode into the rest
/// of the test binary.
struct ScalarGuard;

impl ScalarGuard {
    fn engage() -> Self {
        ml4all_linalg::simd::force_scalar(true);
        ScalarGuard
    }
}

impl Drop for ScalarGuard {
    fn drop(&mut self) {
        ml4all_linalg::simd::force_scalar(false);
    }
}

/// Two small datasets with the same rows in dense and CSR storage.
fn paired_datasets(n: usize, dims: usize, seed: u64) -> (PartitionedDataset, PartitionedDataset) {
    use ml4all_linalg::SparseVector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dense_pts = Vec::with_capacity(n);
    let mut sparse_pts = Vec::with_capacity(n);
    for _ in 0..n {
        let xs: Vec<f64> = (0..dims)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    rng.gen_range(-1.0..1.0)
                } else {
                    0.0
                }
            })
            .collect();
        let label = if xs.iter().sum::<f64>() > 0.0 {
            1.0
        } else {
            -1.0
        };
        let (idx, val): (Vec<u32>, Vec<f64>) = xs
            .iter()
            .enumerate()
            .filter(|(_, v)| **v != 0.0)
            .map(|(i, v)| (i as u32, *v))
            .unzip();
        dense_pts.push(LabeledPoint::new(label, FeatureVec::dense(xs)));
        sparse_pts.push(LabeledPoint::new(
            label,
            FeatureVec::Sparse(SparseVector::new(dims, idx, val).unwrap()),
        ));
    }
    let cluster = ClusterSpec::paper_testbed();
    let dense =
        PartitionedDataset::from_points("d", dense_pts, PartitionScheme::RoundRobin, &cluster)
            .unwrap();
    let sparse =
        PartitionedDataset::from_points("s", sparse_pts, PartitionScheme::RoundRobin, &cluster)
            .unwrap();
    (dense, sparse)
}

/// The SIMD kernels use fixed, ISA-independent reduction orders, so a model
/// trained with the active ISA (AVX2 here, NEON on aarch64) must reproduce
/// the forced-scalar weights **bit for bit** — across storage layouts,
/// samplers, and worker counts. This is the contract that makes
/// `ML4ALL_FORCE_SCALAR=1` a valid debugging switch: it changes speed,
/// never results.
#[test]
fn simd_and_forced_scalar_weights_are_bit_identical() {
    use ml4all_dataflow::Runtime;
    use std::sync::Arc;

    let (dense, sparse) = paired_datasets(400, 12, 11);
    let cluster = ClusterSpec::paper_testbed();
    let samplers = [
        SamplingMethod::Bernoulli,
        SamplingMethod::RandomPartition,
        SamplingMethod::ShuffledPartition,
    ];
    for data in [&dense, &sparse] {
        for sampling in samplers {
            for workers in [1usize, 2, 8] {
                let plan = GdPlan::mgd(24, TransformPolicy::Eager, sampling).unwrap();
                let mut params = TrainParams::paper_defaults(GradientKind::LogisticRegression);
                params.seed = 7;
                params.tolerance = 0.0;
                params.max_iter = 25;

                let mut env =
                    SimEnv::with_runtime(cluster.clone(), Arc::new(Runtime::new(workers)));
                let vector = execute_plan(&plan, data, &params, &mut env).unwrap();

                let scalar = {
                    let _guard = ScalarGuard::engage();
                    let mut env =
                        SimEnv::with_runtime(cluster.clone(), Arc::new(Runtime::new(workers)));
                    execute_plan(&plan, data, &params, &mut env).unwrap()
                };

                assert_eq!(
                    vector.weights,
                    scalar.weights,
                    "simd/scalar divergence: layout={} sampler={sampling:?} workers={workers}",
                    data.descriptor().name
                );
                assert_eq!(vector.iterations, scalar.iterations);
            }
        }
    }
}

/// Training on a memory-mapped slab file must be indistinguishable from
/// training on the same rows held in RAM: identical fingerprint (so the
/// plan cache may share entries) and bit-identical weights.
#[test]
fn mapped_slab_training_matches_in_memory() {
    use ml4all_dataflow::{open_slab, write_slab, ColumnarBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(23);
    let mut builder = ColumnarBuilder::new();
    let dims = 8;
    let mut row = vec![0.0f64; dims];
    for _ in 0..600 {
        for v in row.iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let label = if row.iter().sum::<f64>() > 0.0 {
            1.0
        } else {
            -1.0
        };
        builder.push_dense(label, &row);
    }
    let rows = builder.finish();

    let path = std::env::temp_dir().join(format!("ml4all-prop-slab-{}.slab", std::process::id()));
    write_slab(&path, &rows).unwrap();
    let mapped = open_slab(&path).unwrap();
    // The mapping keeps its pages alive after the unlink (unix) or owns a
    // heap copy (elsewhere), so the file itself can go away immediately.
    let _ = std::fs::remove_file(&path);
    assert!(mapped.is_mapped() || cfg!(not(unix)));

    let cluster = ClusterSpec::paper_testbed();
    let in_mem =
        PartitionedDataset::from_columns("slab-prop", &rows, PartitionScheme::Contiguous, &cluster)
            .unwrap();
    let on_disk = PartitionedDataset::from_mapped("slab-prop", &mapped, &cluster).unwrap();
    assert_eq!(in_mem.fingerprint(), on_disk.fingerprint());

    for sampling in [SamplingMethod::Bernoulli, SamplingMethod::ShuffledPartition] {
        let plan = GdPlan::mgd(32, TransformPolicy::Eager, sampling).unwrap();
        let mut params = TrainParams::paper_defaults(GradientKind::LogisticRegression);
        params.seed = 41;
        params.tolerance = 0.0;
        params.max_iter = 30;

        let mut env_m = SimEnv::new(cluster.clone());
        let mem = execute_plan(&plan, &in_mem, &params, &mut env_m).unwrap();
        let mut env_d = SimEnv::new(cluster.clone());
        let disk = execute_plan(&plan, &on_disk, &params, &mut env_d).unwrap();

        assert_eq!(mem.weights, disk.weights, "sampler {sampling:?}");
        assert_eq!(mem.iterations, disk.iterations);
        assert_eq!(mem.sim_time_s, disk.sim_time_s);
    }
}
