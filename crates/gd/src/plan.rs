//! The GD plan vocabulary of Figure 5: algorithm variant × transformation
//! policy × sampling strategy.

use ml4all_dataflow::SamplingMethod;
use serde::{Deserialize, Serialize};

use crate::GdError;

/// Which fundamental GD algorithm the plan runs (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GdVariant {
    /// Batch GD — every iteration scans all `n` data units.
    Batch,
    /// Stochastic GD — one random unit per iteration.
    Stochastic,
    /// Mini-batch GD — `batch` random units per iteration.
    MiniBatch {
        /// Mini-batch size `b` (the paper uses 1 000 and 10 000).
        batch: usize,
    },
}

impl GdVariant {
    /// Units consumed per iteration, given the dataset size.
    pub fn sample_size(&self, n: u64) -> u64 {
        match self {
            Self::Batch => n,
            Self::Stochastic => 1,
            Self::MiniBatch { batch } => (*batch as u64).min(n),
        }
    }

    /// Canonical name (`BGD`, `SGD`, `MGD`).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Batch => "BGD",
            Self::Stochastic => "SGD",
            Self::MiniBatch { .. } => "MGD",
        }
    }
}

impl std::fmt::Display for GdVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MiniBatch { batch } => write!(f, "MGD(b={batch})"),
            _ => f.write_str(self.name()),
        }
    }
}

/// When input data units are transformed (Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransformPolicy {
    /// Transform the whole dataset up front, before the loop.
    Eager,
    /// Commute `Transform` inside the loop, after `Sample`: only sampled
    /// units are ever transformed.
    Lazy,
}

impl TransformPolicy {
    /// Short label used in plan names.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Eager => "eager",
            Self::Lazy => "lazy",
        }
    }
}

/// A complete execution plan: one node of the Figure 5 tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GdPlan {
    /// GD algorithm.
    pub variant: GdVariant,
    /// Eager or lazy transformation.
    pub transform: TransformPolicy,
    /// Sampling strategy; `None` only for BGD.
    pub sampling: Option<SamplingMethod>,
}

impl GdPlan {
    /// The single BGD plan (eager, no sampling).
    pub fn bgd() -> Self {
        Self {
            variant: GdVariant::Batch,
            transform: TransformPolicy::Eager,
            sampling: None,
        }
    }

    /// An SGD plan; validated against the Figure 5 search space.
    pub fn sgd(transform: TransformPolicy, sampling: SamplingMethod) -> Result<Self, GdError> {
        Self::stochastic_like(GdVariant::Stochastic, transform, sampling)
    }

    /// An MGD plan; validated against the Figure 5 search space.
    pub fn mgd(
        batch: usize,
        transform: TransformPolicy,
        sampling: SamplingMethod,
    ) -> Result<Self, GdError> {
        if batch == 0 {
            return Err(GdError::InvalidPlan(
                "mini-batch size must be positive".into(),
            ));
        }
        Self::stochastic_like(GdVariant::MiniBatch { batch }, transform, sampling)
    }

    fn stochastic_like(
        variant: GdVariant,
        transform: TransformPolicy,
        sampling: SamplingMethod,
    ) -> Result<Self, GdError> {
        if transform == TransformPolicy::Lazy && sampling == SamplingMethod::Bernoulli {
            // Discarded by the optimizer: Bernoulli scans everything anyway,
            // so delaying transformation buys nothing (Section 6).
            return Err(GdError::InvalidPlan(
                "lazy transformation with Bernoulli sampling is never beneficial".into(),
            ));
        }
        Ok(Self {
            variant,
            transform,
            sampling: Some(sampling),
        })
    }

    /// Plan name in the paper's notation, e.g. `SGD-lazy-shuffle`.
    pub fn name(&self) -> String {
        match self.sampling {
            None => self.variant.name().to_string(),
            Some(s) => format!(
                "{}-{}-{}",
                self.variant.name(),
                self.transform.label(),
                s.label()
            ),
        }
    }

    /// `true` if this plan samples (SGD/MGD).
    pub fn is_stochastic(&self) -> bool {
        self.sampling.is_some()
    }
}

impl std::fmt::Display for GdPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgd_plan_has_no_sampling() {
        let p = GdPlan::bgd();
        assert_eq!(p.name(), "BGD");
        assert!(!p.is_stochastic());
        assert_eq!(p.variant.sample_size(1000), 1000);
    }

    #[test]
    fn lazy_bernoulli_is_rejected() {
        let err = GdPlan::sgd(TransformPolicy::Lazy, SamplingMethod::Bernoulli).unwrap_err();
        assert!(matches!(err, GdError::InvalidPlan(_)));
        let err = GdPlan::mgd(100, TransformPolicy::Lazy, SamplingMethod::Bernoulli).unwrap_err();
        assert!(matches!(err, GdError::InvalidPlan(_)));
    }

    #[test]
    fn zero_batch_is_rejected() {
        assert!(GdPlan::mgd(0, TransformPolicy::Eager, SamplingMethod::Bernoulli).is_err());
    }

    #[test]
    fn plan_names_match_paper_notation() {
        let p = GdPlan::sgd(TransformPolicy::Lazy, SamplingMethod::ShuffledPartition).unwrap();
        assert_eq!(p.name(), "SGD-lazy-shuffle");
        let p = GdPlan::mgd(1000, TransformPolicy::Eager, SamplingMethod::Bernoulli).unwrap();
        assert_eq!(p.name(), "MGD-eager-bernoulli");
    }

    #[test]
    fn sample_sizes_follow_variant() {
        assert_eq!(GdVariant::Stochastic.sample_size(10), 1);
        assert_eq!(
            GdVariant::MiniBatch { batch: 1000 }.sample_size(10_000),
            1000
        );
        // Mini-batch larger than the dataset degrades to full batch.
        assert_eq!(GdVariant::MiniBatch { batch: 1000 }.sample_size(10), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(GdVariant::MiniBatch { batch: 5 }.to_string(), "MGD(b=5)");
        assert_eq!(GdVariant::Batch.to_string(), "BGD");
        assert_eq!(GdPlan::bgd().to_string(), "BGD");
    }
}
