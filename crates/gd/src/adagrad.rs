//! AdaGrad expressed in the seven-operator abstraction — per-coordinate
//! adaptive steps through a custom `Update`, everything else stock.
//!
//! Update rule: `G ← G + ḡ²` (elementwise); `w ← w − (α/√(G + ε)) ḡ`.

use ml4all_dataflow::{PartitionedDataset, SamplingMethod, SimEnv};
use ml4all_linalg::DenseVector;

use crate::context::{Context, Extra};
use crate::executor::{execute_with_operators, TrainParams, TrainResult};
use crate::gradient::GradientKind;
use crate::operators::{
    ComputeAcc, FixedSample, GdOperators, GradientCompute, IdentityTransform, L1Converge,
    SampleSize, StageOp, ToleranceLoop, UpdateOp, UpdateOutcome,
};
use crate::plan::{GdPlan, GdVariant, TransformPolicy};
use crate::GdError;

const ADAGRAD_EPS: f64 = 1e-8;

/// `Stage` for AdaGrad: zero model and zero accumulated squared gradient.
#[derive(Debug, Clone, Copy)]
pub struct AdagradStage {
    /// Model dimensionality.
    pub dims: usize,
    /// Base step α.
    pub alpha: f64,
}

impl StageOp for AdagradStage {
    fn stage(&self, ctx: &mut Context, _staged: &[ml4all_linalg::LabeledPoint]) {
        ctx.dims = self.dims;
        ctx.weights = DenseVector::zeros(self.dims);
        ctx.iteration = 0;
        ctx.put("alpha", Extra::Scalar(self.alpha));
        ctx.put("grad_sq", Extra::Vector(DenseVector::zeros(self.dims)));
    }
}

/// `Update` for AdaGrad.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdagradUpdate;

impl UpdateOp for AdagradUpdate {
    fn update(&self, acc: &ComputeAcc, ctx: &mut Context) -> UpdateOutcome {
        if acc.count == 0 {
            return UpdateOutcome::InternalOnly;
        }
        let alpha = ctx.scalar("alpha").unwrap_or(0.1);
        let inv = 1.0 / acc.count as f64;
        let mut grad_sq = ctx
            .vector("grad_sq")
            .expect("AdagradStage installs grad_sq")
            .clone();
        let w = ctx.weights.as_mut_slice();
        for ((wi, gi), gsq) in w
            .iter_mut()
            .zip(acc.primary.as_slice())
            .zip(grad_sq.as_mut_slice())
        {
            let g = gi * inv;
            *gsq += g * g;
            *wi -= alpha / (gsq.sqrt() + ADAGRAD_EPS) * g;
        }
        ctx.put("grad_sq", Extra::Vector(grad_sq));
        UpdateOutcome::Updated
    }
}

/// Build the AdaGrad operator bundle for any plan shape.
pub fn adagrad_operators(
    gradient: GradientKind,
    dims: usize,
    alpha: f64,
    tolerance: f64,
    max_iter: u64,
    sample: SampleSize,
) -> GdOperators {
    GdOperators {
        transform: Box::new(IdentityTransform),
        stage: Box::new(AdagradStage { dims, alpha }),
        compute: Box::new(GradientCompute::of(gradient)),
        update: Box::new(AdagradUpdate),
        sample: Box::new(FixedSample { size: sample }),
        converge: Box::new(L1Converge),
        loop_op: Box::new(ToleranceLoop {
            tolerance,
            max_iter,
        }),
    }
}

/// Run mini-batch AdaGrad over a dataset.
pub fn execute_adagrad(
    data: &PartitionedDataset,
    alpha: f64,
    batch: usize,
    sampling: SamplingMethod,
    params: &TrainParams,
    env: &mut SimEnv,
) -> Result<TrainResult, GdError> {
    let plan = GdPlan {
        variant: GdVariant::MiniBatch { batch },
        transform: TransformPolicy::Eager,
        sampling: Some(sampling),
    };
    let ops = adagrad_operators(
        params.gradient,
        data.descriptor().dims,
        alpha,
        params.tolerance,
        params.max_iter,
        SampleSize::Units(batch),
    );
    execute_with_operators(&plan, data, &ops, params, env)
}
