//! Objective-value evaluation: `f(w) = Σ ℓ(x_i, y_i, w)/n + R(w)`
//! (Equation 1), used by line search, diagnostics, and test-error
//! reporting.

use ml4all_dataflow::PartitionedDataset;
use ml4all_linalg::{LabeledPoint, PointView};

use crate::gradient::{Gradient, Regularizer};

/// Mean loss over a point slice plus the regularizer penalty.
pub fn dataset_loss(
    gradient: &dyn Gradient,
    regularizer: &Regularizer,
    w: &[f64],
    points: &[LabeledPoint],
) -> f64 {
    stream_loss(gradient, regularizer, w, points.iter().map(|p| p.view()))
}

/// Mean loss over an iterator of zero-copy views (streamed, for
/// partitioned/columnar data).
pub fn stream_loss<'a>(
    gradient: &dyn Gradient,
    regularizer: &Regularizer,
    w: &[f64],
    points: impl Iterator<Item = PointView<'a>>,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in points {
        sum += gradient.loss_view(w, v);
        n += 1;
    }
    if n == 0 {
        regularizer.penalty(w)
    } else {
        sum / n as f64 + regularizer.penalty(w)
    }
}

/// Mean loss over every physical row of a partitioned dataset, straight
/// off the columnar storage — no materialization.
pub fn partitioned_loss(
    gradient: &dyn Gradient,
    regularizer: &Regularizer,
    w: &[f64],
    data: &PartitionedDataset,
) -> f64 {
    stream_loss(gradient, regularizer, w, data.iter_views())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::GradientKind;
    use ml4all_linalg::FeatureVec;

    fn pts() -> Vec<LabeledPoint> {
        vec![
            LabeledPoint::new(1.0, FeatureVec::dense(vec![1.0])),
            LabeledPoint::new(-1.0, FeatureVec::dense(vec![1.0])),
        ]
    }

    #[test]
    fn svm_loss_at_zero_weights_is_one() {
        // hinge(0) = 1 for every point.
        let loss = dataset_loss(&GradientKind::Svm, &Regularizer::None, &[0.0], &pts());
        assert!((loss - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_yields_penalty_only() {
        let reg = Regularizer::L2 { lambda: 2.0 };
        let loss = dataset_loss(&GradientKind::Svm, &reg, &[3.0], &[]);
        assert!((loss - 9.0).abs() < 1e-12);
    }

    #[test]
    fn stream_and_slice_agree() {
        let points = pts();
        let a = dataset_loss(
            &GradientKind::LogisticRegression,
            &Regularizer::None,
            &[0.5],
            &points,
        );
        let b = stream_loss(
            &GradientKind::LogisticRegression,
            &Regularizer::None,
            &[0.5],
            points.iter().map(|p| p.view()),
        );
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn partitioned_loss_matches_materialized_loss() {
        use ml4all_dataflow::{ClusterSpec, PartitionScheme};
        let points = pts();
        let data = PartitionedDataset::from_points(
            "obj",
            points.clone(),
            PartitionScheme::RoundRobin,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap();
        let a = dataset_loss(&GradientKind::Svm, &Regularizer::None, &[0.25], &points);
        let b = partitioned_loss(&GradientKind::Svm, &Regularizer::None, &[0.25], &data);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
