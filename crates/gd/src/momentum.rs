//! Momentum (heavy-ball) gradient descent expressed in the seven-operator
//! abstraction — an extension in the spirit of Appendix C: only the
//! `Stage` and `Update` operators change; Sample/Compute/Converge/Loop are
//! the stock implementations, and the executor is untouched.
//!
//! Update rule: `v ← μ v − α ḡ;  w ← w + v`.

use ml4all_dataflow::{PartitionedDataset, SamplingMethod, SimEnv};
use ml4all_linalg::DenseVector;

use crate::context::{Context, Extra};
use crate::executor::{execute_with_operators, TrainParams, TrainResult};
use crate::gradient::GradientKind;
use crate::operators::{
    ComputeAcc, FixedSample, GdOperators, GradientCompute, IdentityTransform, L1Converge,
    SampleSize, StageOp, ToleranceLoop, UpdateOp, UpdateOutcome,
};
use crate::plan::{GdPlan, GdVariant, TransformPolicy};
use crate::step::StepSize;
use crate::GdError;

/// `Stage` for momentum GD: zero model and zero velocity.
#[derive(Debug, Clone, Copy)]
pub struct MomentumStage {
    /// Model dimensionality.
    pub dims: usize,
    /// Momentum coefficient μ ∈ [0, 1).
    pub mu: f64,
}

impl StageOp for MomentumStage {
    fn stage(&self, ctx: &mut Context, _staged: &[ml4all_linalg::LabeledPoint]) {
        ctx.dims = self.dims;
        ctx.weights = DenseVector::zeros(self.dims);
        ctx.iteration = 0;
        ctx.put("mu", Extra::Scalar(self.mu));
        ctx.put("velocity", Extra::Vector(DenseVector::zeros(self.dims)));
    }
}

/// `Update` for momentum GD.
#[derive(Debug, Clone, Copy)]
pub struct MomentumUpdate {
    /// Step schedule for α.
    pub step: StepSize,
}

impl UpdateOp for MomentumUpdate {
    fn update(&self, acc: &ComputeAcc, ctx: &mut Context) -> UpdateOutcome {
        if acc.count == 0 {
            return UpdateOutcome::InternalOnly;
        }
        let alpha = self.step.at(ctx.iteration);
        let mu = ctx.scalar("mu").unwrap_or(0.9);
        let inv = 1.0 / acc.count as f64;
        let mut velocity = ctx
            .vector("velocity")
            .expect("MomentumStage installs velocity")
            .clone();
        for (vi, gi) in velocity
            .as_mut_slice()
            .iter_mut()
            .zip(acc.primary.as_slice())
        {
            *vi = mu * *vi - alpha * gi * inv;
        }
        ctx.weights.add_assign(&velocity);
        ctx.put("velocity", Extra::Vector(velocity));
        UpdateOutcome::Updated
    }
}

/// Build the momentum operator bundle for any plan shape.
pub fn momentum_operators(
    gradient: GradientKind,
    dims: usize,
    mu: f64,
    step: StepSize,
    tolerance: f64,
    max_iter: u64,
    sample: SampleSize,
) -> GdOperators {
    GdOperators {
        transform: Box::new(IdentityTransform),
        stage: Box::new(MomentumStage { dims, mu }),
        compute: Box::new(GradientCompute::of(gradient)),
        update: Box::new(MomentumUpdate { step }),
        sample: Box::new(FixedSample { size: sample }),
        converge: Box::new(L1Converge),
        loop_op: Box::new(ToleranceLoop {
            tolerance,
            max_iter,
        }),
    }
}

/// Run batch momentum GD over a dataset.
pub fn execute_momentum_bgd(
    data: &PartitionedDataset,
    mu: f64,
    params: &TrainParams,
    env: &mut SimEnv,
) -> Result<TrainResult, GdError> {
    let ops = momentum_operators(
        params.gradient,
        data.descriptor().dims,
        mu,
        params.step,
        params.tolerance,
        params.max_iter,
        SampleSize::All,
    );
    execute_with_operators(&GdPlan::bgd(), data, &ops, params, env)
}

/// Run stochastic momentum GD (one sample per iteration).
pub fn execute_momentum_sgd(
    data: &PartitionedDataset,
    mu: f64,
    sampling: SamplingMethod,
    params: &TrainParams,
    env: &mut SimEnv,
) -> Result<TrainResult, GdError> {
    let plan = GdPlan {
        variant: GdVariant::Stochastic,
        transform: TransformPolicy::Eager,
        sampling: Some(sampling),
    };
    let ops = momentum_operators(
        params.gradient,
        data.descriptor().dims,
        mu,
        params.step,
        params.tolerance,
        params.max_iter,
        SampleSize::Units(1),
    );
    execute_with_operators(&plan, data, &ops, params, env)
}
