//! BGD with backtracking line search expressed in the seven-operator
//! abstraction — Appendix C, Listings 9–10.
//!
//! The nested line-search loop flattens into the plan loop: iterations
//! alternate between a *gradient* phase (compute `∇f(w)` and `f(w)`) and a
//! *probe* phase (evaluate `f(w − α∇f(w))` for the current candidate step).
//! `Update` either shrinks the step (`α ← βα`, Listing 10's `return null`
//! branch → [`UpdateOutcome::InternalOnly`]) or accepts the move. We use
//! the standard Armijo sufficient-decrease condition
//! `f(w) − f(w − αg) ≥ c·α·‖g‖²` (the paper's listing sketches the same
//! shrink-until-acceptable structure).

use ml4all_dataflow::{PartitionedDataset, SimEnv};
use ml4all_linalg::{DenseVector, LabeledPoint};

use crate::context::{Context, Extra};
use crate::executor::{execute_with_operators, TrainParams, TrainResult};
use crate::gradient::{Gradient, GradientKind};
use crate::operators::{
    ComputeAcc, ComputeOp, FixedSample, GdOperators, IdentityTransform, L1Converge, SampleSize,
    StageOp, ToleranceLoop, UpdateOp, UpdateOutcome,
};
use crate::plan::GdPlan;
use crate::GdError;

/// Armijo constant `c` in the sufficient-decrease test.
const ARMIJO_C: f64 = 1e-4;
/// Step floor: below this the candidate is accepted unconditionally to
/// guarantee progress.
const MIN_STEP: f64 = 1e-12;

/// `Stage` for line-search BGD.
#[derive(Debug, Clone, Copy)]
pub struct LineSearchStage {
    /// Model dimensionality.
    pub dims: usize,
    /// Initial step size α₀.
    pub initial_step: f64,
    /// Shrink factor β ∈ (0, 1).
    pub beta: f64,
}

impl StageOp for LineSearchStage {
    fn stage(&self, ctx: &mut Context, _staged: &[LabeledPoint]) {
        ctx.dims = self.dims;
        ctx.weights = DenseVector::zeros(self.dims);
        ctx.iteration = 0;
        ctx.put("step", Extra::Scalar(self.initial_step));
        ctx.put("step0", Extra::Scalar(self.initial_step));
        ctx.put("beta", Extra::Scalar(self.beta));
        ctx.put("isStepSizeIter", Extra::Flag(false));
    }
}

/// `Compute` for line-search BGD (Listing 9): gradient + objective in the
/// gradient phase; probe objective in the step-size phase. The gradient
/// phase runs the *fused* gradient+objective pass
/// ([`Gradient::accumulate_with_loss`]), sharing one `w·x` dot product
/// between the two outputs.
pub struct LineSearchCompute {
    /// Underlying gradient function.
    pub gradient: Box<dyn Gradient>,
}

impl ComputeOp for LineSearchCompute {
    fn compute(&self, point: ml4all_linalg::PointView<'_>, ctx: &Context, acc: &mut ComputeAcc) {
        if ctx.flag("isStepSizeIter").unwrap_or(false) {
            let probe = ctx.vector("ls_w_probe").expect("probe weights staged");
            acc.scalar += self.gradient.loss_view(probe.as_slice(), point);
        } else {
            acc.scalar += self.gradient.accumulate_with_loss(
                ctx.weights.as_slice(),
                point,
                acc.primary.as_mut_slice(),
            );
        }
        acc.count += 1;
    }

    /// Batched line-search compute: probe iterations evaluate four losses
    /// per batched `w·x` pass, gradient iterations run the fused batched
    /// gradient+objective kernel. Bit-identical to four sequential
    /// [`ComputeOp::compute`] calls.
    fn compute4(
        &self,
        points: [ml4all_linalg::PointView<'_>; 4],
        ctx: &Context,
        acc: &mut ComputeAcc,
    ) {
        if ctx.flag("isStepSizeIter").unwrap_or(false) {
            let probe = ctx.vector("ls_w_probe").expect("probe weights staged");
            self.gradient
                .loss_view4(probe.as_slice(), points, &mut acc.scalar);
        } else {
            self.gradient.accumulate_with_loss4(
                ctx.weights.as_slice(),
                points,
                acc.primary.as_mut_slice(),
                &mut acc.scalar,
            );
        }
        acc.count += 4;
    }

    /// Eight-row sibling of [`LineSearchCompute::compute4`] — the SIMD
    /// batch width the executor's full-scan waves feed.
    fn compute8(
        &self,
        points: [ml4all_linalg::PointView<'_>; 8],
        ctx: &Context,
        acc: &mut ComputeAcc,
    ) {
        if ctx.flag("isStepSizeIter").unwrap_or(false) {
            let probe = ctx.vector("ls_w_probe").expect("probe weights staged");
            self.gradient
                .loss_view8(probe.as_slice(), points, &mut acc.scalar);
        } else {
            self.gradient.accumulate_with_loss8(
                ctx.weights.as_slice(),
                points,
                acc.primary.as_mut_slice(),
                &mut acc.scalar,
            );
        }
        acc.count += 8;
    }
}

/// `Update` for line-search BGD (Listing 10).
#[derive(Debug, Clone, Copy)]
pub struct LineSearchUpdate;

impl LineSearchUpdate {
    fn probe_weights(w: &DenseVector, g: &DenseVector, step: f64) -> DenseVector {
        let mut probe = w.clone();
        probe.axpy(-step, g);
        probe
    }
}

impl UpdateOp for LineSearchUpdate {
    fn update(&self, acc: &ComputeAcc, ctx: &mut Context) -> UpdateOutcome {
        if acc.count == 0 {
            return UpdateOutcome::InternalOnly;
        }
        let inv = 1.0 / acc.count as f64;
        if !ctx.flag("isStepSizeIter").unwrap_or(false) {
            // Gradient phase: stash g, f(w), and the first probe point.
            let mut g = acc.primary.clone();
            g.scale(inv);
            let f_w = acc.scalar * inv;
            let step = ctx.scalar("step").expect("stage sets step");
            let probe = Self::probe_weights(&ctx.weights, &g, step);
            ctx.put("ls_f_w", Extra::Scalar(f_w));
            ctx.put("ls_grad_norm2", Extra::Scalar(g.l2_norm_squared()));
            ctx.put("ls_grad", Extra::Vector(g));
            ctx.put("ls_w_probe", Extra::Vector(probe));
            ctx.put("isStepSizeIter", Extra::Flag(true));
            UpdateOutcome::InternalOnly
        } else {
            // Probe phase: Armijo test on the candidate step.
            let f_probe = acc.scalar * inv;
            let f_w = ctx.scalar("ls_f_w").expect("gradient phase ran");
            let g_norm2 = ctx.scalar("ls_grad_norm2").expect("gradient phase ran");
            let step = ctx.scalar("step").expect("stage sets step");
            let sufficient = f_w - f_probe >= ARMIJO_C * step * g_norm2;
            if sufficient || step <= MIN_STEP || g_norm2 == 0.0 {
                // Accept: w ← w − α g; reset the step for the next round.
                let probe = ctx.vector("ls_w_probe").expect("probe staged").clone();
                ctx.weights = probe;
                let step0 = ctx.scalar("step0").expect("stage sets step0");
                ctx.put("step", Extra::Scalar(step0));
                ctx.put("isStepSizeIter", Extra::Flag(false));
                UpdateOutcome::Updated
            } else {
                // Shrink: α ← βα, recompute the probe point, stay probing.
                let beta = ctx.scalar("beta").expect("stage sets beta");
                let new_step = beta * step;
                let g = ctx.vector("ls_grad").expect("gradient phase ran").clone();
                let probe = Self::probe_weights(&ctx.weights, &g, new_step);
                ctx.put("step", Extra::Scalar(new_step));
                ctx.put("ls_w_probe", Extra::Vector(probe));
                UpdateOutcome::InternalOnly
            }
        }
    }
}

/// Build the line-search BGD operator bundle.
pub fn line_search_operators(
    gradient: GradientKind,
    dims: usize,
    initial_step: f64,
    beta: f64,
    tolerance: f64,
    max_iter: u64,
) -> GdOperators {
    GdOperators {
        transform: Box::new(IdentityTransform),
        stage: Box::new(LineSearchStage {
            dims,
            initial_step,
            beta,
        }),
        compute: Box::new(LineSearchCompute {
            gradient: Box::new(gradient),
        }),
        update: Box::new(LineSearchUpdate),
        sample: Box::new(FixedSample {
            size: SampleSize::All,
        }),
        converge: Box::new(L1Converge),
        loop_op: Box::new(ToleranceLoop {
            tolerance,
            max_iter,
        }),
    }
}

/// Run BGD with backtracking line search. `max_iter` counts *phases*
/// (gradient evaluations and probes alike), each of which scans the data —
/// exactly the cost structure the paper's footnote warns about for
/// stochastic algorithms.
pub fn execute_line_search_bgd(
    data: &PartitionedDataset,
    initial_step: f64,
    beta: f64,
    params: &TrainParams,
    env: &mut SimEnv,
) -> Result<TrainResult, GdError> {
    let ops = line_search_operators(
        params.gradient,
        data.descriptor().dims,
        initial_step,
        beta,
        params.tolerance,
        params.max_iter,
    );
    execute_with_operators(&GdPlan::bgd(), data, &ops, params, env)
}
