//! SVRG (stochastic variance-reduced gradient, Johnson & Zhang) expressed
//! in the seven-operator abstraction — Appendix C, Algorithm 2, Listing 8.
//!
//! SVRG interleaves an *anchor* (batch) iteration every `m` iterations with
//! stochastic iterations in between. The paper's point is that the nested
//! loop "flattens" into the standard plan by putting if/else logic inside
//! `Sample`, `Compute`, and `Update`:
//!
//! - `Sample` returns *all* units on anchor iterations and one unit
//!   otherwise;
//! - `Compute` emits a single gradient on anchor iterations and a
//!   *pair* `(∇f_i(w), ∇f_i(w̃))` otherwise (the `Pair<double[],double[]>`
//!   of Listing 8);
//! - `Update` either refreshes the anchor `w̃` and full gradient `µ`, or
//!   applies the variance-reduced step `w ← w − α(∇f_i(w) − ∇f_i(w̃) + µ)`.

use ml4all_dataflow::{PartitionedDataset, SamplingMethod, SimEnv};
use ml4all_linalg::DenseVector;

use crate::context::{Context, Extra};
use crate::executor::{execute_with_operators, TrainParams, TrainResult};
use crate::gradient::{Gradient, GradientKind};
use crate::operators::{
    ComputeAcc, ComputeOp, GdOperators, IdentityTransform, L1Converge, SampleOp, SampleSize,
    StageOp, ToleranceLoop, UpdateOp, UpdateOutcome,
};
use crate::plan::{GdPlan, GdVariant, TransformPolicy};
use crate::GdError;

/// `Stage` for SVRG: zero model, anchor copy, zero full gradient.
#[derive(Debug, Clone, Copy)]
pub struct SvrgStage {
    /// Model dimensionality.
    pub dims: usize,
    /// Anchor refresh frequency `m`.
    pub update_frequency: u64,
    /// Constant step size α (SVRG's analysis requires a constant step).
    pub alpha: f64,
}

impl StageOp for SvrgStage {
    fn stage(&self, ctx: &mut Context, _staged: &[ml4all_linalg::LabeledPoint]) {
        ctx.dims = self.dims;
        ctx.weights = DenseVector::zeros(self.dims);
        ctx.iteration = 0;
        ctx.put("m", Extra::Int(self.update_frequency));
        ctx.put("alpha", Extra::Scalar(self.alpha));
        ctx.put("weightsBar", Extra::Vector(DenseVector::zeros(self.dims)));
        ctx.put("mu", Extra::Vector(DenseVector::zeros(self.dims)));
    }
}

/// `Sample` for SVRG: all units on anchor iterations, one otherwise.
#[derive(Debug, Clone, Copy)]
pub struct SvrgSample;

impl SampleOp for SvrgSample {
    fn size(&self, ctx: &Context) -> SampleSize {
        let m = ctx.int("m").unwrap_or(1).max(1);
        if (ctx.iteration % m) == 1 || m == 1 {
            SampleSize::All
        } else {
            SampleSize::Units(1)
        }
    }
}

/// `Compute` for SVRG (Listing 8): single gradient on anchor iterations,
/// pair of gradients otherwise.
pub struct SvrgCompute {
    /// Underlying gradient function.
    pub gradient: Box<dyn Gradient>,
}

impl ComputeOp for SvrgCompute {
    fn compute(&self, point: ml4all_linalg::PointView<'_>, ctx: &Context, acc: &mut ComputeAcc) {
        let m = ctx.int("m").unwrap_or(1).max(1);
        self.gradient
            .accumulate_view(ctx.weights.as_slice(), point, acc.primary.as_mut_slice());
        let anchor = (ctx.iteration % m) == 1 || m == 1;
        if !anchor {
            let w_bar = ctx
                .vector("weightsBar")
                .expect("SvrgStage installs weightsBar");
            self.gradient.accumulate_view(
                w_bar.as_slice(),
                point,
                acc.secondary_mut().as_mut_slice(),
            );
        }
        acc.count += 1;
    }
}

/// `Update` for SVRG (Algorithm 2).
#[derive(Debug, Clone, Copy)]
pub struct SvrgUpdate;

impl UpdateOp for SvrgUpdate {
    fn update(&self, acc: &ComputeAcc, ctx: &mut Context) -> UpdateOutcome {
        if acc.count == 0 {
            return UpdateOutcome::InternalOnly;
        }
        let m = ctx.int("m").unwrap_or(1).max(1);
        let alpha = ctx.scalar("alpha").unwrap_or(0.1);
        let anchor = (ctx.iteration % m) == 1 || m == 1;
        if anchor {
            // µ := (1/n) Σ ∇f_i(w̃ := w);  w := w − α µ.
            let mut mu = acc.primary.clone();
            mu.scale(1.0 / acc.count as f64);
            ctx.put("weightsBar", Extra::Vector(ctx.weights.clone()));
            let w = ctx.weights.as_mut_slice();
            for (wi, mi) in w.iter_mut().zip(mu.as_slice()) {
                *wi -= alpha * mi;
            }
            ctx.put("mu", Extra::Vector(mu));
        } else {
            // w := w − α (∇f_i(w) − ∇f_i(w̃) + µ).
            let mu = ctx
                .vector("mu")
                .expect("anchor iteration ran first")
                .clone();
            let inv = 1.0 / acc.count as f64;
            let secondary = acc
                .secondary
                .as_ref()
                .expect("stochastic compute emits pairs");
            let w = ctx.weights.as_mut_slice();
            for (((wi, gi), bi), mi) in w
                .iter_mut()
                .zip(acc.primary.as_slice())
                .zip(secondary.as_slice())
                .zip(mu.as_slice())
            {
                *wi -= alpha * (gi * inv - bi * inv + mi);
            }
        }
        UpdateOutcome::Updated
    }
}

/// Build the SVRG operator bundle.
pub fn svrg_operators(
    gradient: GradientKind,
    dims: usize,
    update_frequency: u64,
    alpha: f64,
    tolerance: f64,
    max_iter: u64,
) -> GdOperators {
    GdOperators {
        transform: Box::new(IdentityTransform),
        stage: Box::new(SvrgStage {
            dims,
            update_frequency,
            alpha,
        }),
        compute: Box::new(SvrgCompute {
            gradient: Box::new(gradient),
        }),
        update: Box::new(SvrgUpdate),
        sample: Box::new(SvrgSample),
        converge: Box::new(L1Converge),
        loop_op: Box::new(ToleranceLoop {
            tolerance,
            max_iter,
        }),
    }
}

/// Run SVRG over a dataset: the same executor and plan shape as SGD
/// (Figure 3a), with the SVRG operator implementations plugged in.
pub fn execute_svrg(
    data: &PartitionedDataset,
    sampling: SamplingMethod,
    update_frequency: u64,
    alpha: f64,
    params: &TrainParams,
    env: &mut SimEnv,
) -> Result<TrainResult, GdError> {
    let plan = GdPlan {
        variant: GdVariant::Stochastic,
        transform: TransformPolicy::Eager,
        sampling: Some(sampling),
    };
    let ops = svrg_operators(
        params.gradient,
        data.descriptor().dims,
        update_frequency,
        alpha,
        params.tolerance,
        params.max_iter,
    );
    execute_with_operators(&plan, data, &ops, params, env)
}
