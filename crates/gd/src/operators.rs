//! The seven GD operators (Section 4) as traits, plus the reference
//! implementations the system ships (the paper: "we provide reference
//! implementations for all the common use cases; expert users could readily
//! customize or override them").

use ml4all_linalg::{DenseVector, FeatureVec, LabeledPoint, PointView, SparseVector};

use crate::context::{Context, Extra};
use crate::gradient::{Gradient, GradientKind, Regularizer};
use crate::step::StepSize;
use crate::GdError;

/// A raw input data unit, before `Transform`.
#[derive(Debug, Clone, Copy)]
pub enum RawUnit<'a> {
    /// A text line from the input file (CSV or LIBSVM).
    Text(&'a str),
    /// An already-materialized point (the in-memory fast path).
    Point(&'a LabeledPoint),
    /// A zero-copy row borrowed from columnar storage — the shape the
    /// executor's lazy-transform paths hand over without materializing a
    /// point per row.
    View(PointView<'a>),
}

/// **Operator 1 — `Transform(U) → U_T`**: parse/normalize one input unit.
pub trait TransformOp: Send + Sync {
    /// Produce a parsed data unit.
    fn transform(&self, unit: RawUnit<'_>, ctx: &Context) -> Result<LabeledPoint, GdError>;

    /// `true` when `transform` is the identity on already-parsed points,
    /// letting the executor skip materializing a transformed copy.
    fn is_identity(&self) -> bool {
        false
    }
}

/// **Operator 2 — `Stage`**: set initial values for all algorithm-specific
/// parameters. May receive a (possibly empty) staged sample of data units
/// for initialization or global statistics (Figure 3b).
pub trait StageOp: Send + Sync {
    /// Initialize the context.
    fn stage(&self, ctx: &mut Context, staged: &[LabeledPoint]);

    /// `true` if this operator needs a pass over the full dataset for
    /// global statistics (forces the executor to charge a scan even under
    /// lazy transformation — Section 6).
    fn needs_full_scan(&self) -> bool {
        false
    }
}

/// Accumulated output of `Compute` over the units of one iteration: the
/// aggregated `U_C`. `primary` is the gradient sum; `secondary` carries the
/// second component of pair-valued computes (SVRG's full-model gradient,
/// Listing 8); `scalar` carries scalar sums (line search's objective
/// difference, Listing 9).
#[derive(Debug, Clone)]
pub struct ComputeAcc {
    /// Sum of per-unit primary vectors.
    pub primary: DenseVector,
    /// Sum of per-unit secondary vectors, if the compute emits pairs.
    pub secondary: Option<DenseVector>,
    /// Sum of per-unit scalars.
    pub scalar: f64,
    /// Number of units accumulated.
    pub count: u64,
}

impl ComputeAcc {
    /// Fresh accumulator for a `dims`-dimensional model.
    pub fn new(dims: usize) -> Self {
        Self {
            primary: DenseVector::zeros(dims),
            secondary: None,
            scalar: 0.0,
            count: 0,
        }
    }

    /// Reset for reuse across iterations (keeps allocations).
    pub fn reset(&mut self) {
        self.primary.fill_zero();
        if let Some(s) = &mut self.secondary {
            s.fill_zero();
        }
        self.scalar = 0.0;
        self.count = 0;
    }

    /// Lazily materialize the secondary accumulator.
    pub fn secondary_mut(&mut self) -> &mut DenseVector {
        let dims = self.primary.dim();
        self.secondary
            .get_or_insert_with(|| DenseVector::zeros(dims))
    }

    /// Fold another accumulator (one partition's partial aggregate) into
    /// this one — the reduce side of the wave-parallel executor. Partial
    /// aggregates must be merged in partition order so the reduced sum is
    /// identical at any worker count.
    pub fn merge(&mut self, other: &ComputeAcc) {
        self.primary.add_assign(&other.primary);
        if let Some(s) = &other.secondary {
            self.secondary_mut().add_assign(s);
        }
        self.scalar += other.scalar;
        self.count += other.count;
    }
}

/// **Operator 3 — `Compute(U_T) → U_C`**: the core per-unit computation.
/// Units arrive as zero-copy [`PointView`]s borrowed from the columnar
/// storage — the hot loop never materializes a point.
pub trait ComputeOp: Send + Sync {
    /// Accumulate this unit's contribution.
    fn compute(&self, point: PointView<'_>, ctx: &Context, acc: &mut ComputeAcc);

    /// Accumulate four units in order. The default performs exactly four
    /// [`ComputeOp::compute`] calls; the executor feeds the hot loop
    /// through this hook so gradient implementations can overlap the
    /// units' independent dot products, with the batched dense scoring
    /// order of [`crate::gradient::Gradient::accumulate_view4`].
    fn compute4(&self, points: [PointView<'_>; 4], ctx: &Context, acc: &mut ComputeAcc) {
        for p in points {
            self.compute(p, ctx, acc);
        }
    }

    /// Accumulate eight units in order — the wider sibling of
    /// [`ComputeOp::compute4`], sized for the 2×4-lane SIMD batch of
    /// [`crate::gradient::Gradient::accumulate_view8`].
    fn compute8(&self, points: [PointView<'_>; 8], ctx: &Context, acc: &mut ComputeAcc) {
        let [p0, p1, p2, p3, p4, p5, p6, p7] = points;
        self.compute4([p0, p1, p2, p3], ctx, acc);
        self.compute4([p4, p5, p6, p7], ctx, acc);
    }
}

/// Result of an `Update` application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The model advanced; run `Converge`/`Loop` as usual.
    Updated,
    /// The iteration adjusted internal state only (e.g. a line-search step
    /// shrink, Listing 10 returning `null`); skip convergence checking.
    InternalOnly,
}

/// **Operator 4 — `Update(U_C) → U_U`**: fold the aggregated compute output
/// into the global parameters.
pub trait UpdateOp: Send + Sync {
    /// Apply the aggregate.
    fn update(&self, acc: &ComputeAcc, ctx: &mut Context) -> UpdateOutcome;
}

/// How many units the next iteration should consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleSize {
    /// The whole dataset (batch iteration).
    All,
    /// `m` sampled units.
    Units(usize),
}

/// **Operator 5 — `Sample`**: scopes the iteration to parts of the input.
/// The physical draw is performed by the substrate's sampler; this trait
/// only decides the per-iteration sample size, which is what lets SVRG
/// interleave batch and stochastic iterations inside one plan (Appendix C).
pub trait SampleOp: Send + Sync {
    /// Sample size for the iteration about to run (`ctx.iteration` is
    /// already advanced).
    fn size(&self, ctx: &Context) -> SampleSize;
}

/// **Operator 6 — `Converge(U_U) → U_Δ`**: produce the convergence delta.
pub trait ConvergeOp: Send + Sync {
    /// Delta between the previous and current model.
    fn converge(&self, previous: &DenseVector, ctx: &Context) -> f64;
}

/// **Operator 7 — `Loop(U_Δ) → bool`**: decide whether to keep iterating.
pub trait LoopOp: Send + Sync {
    /// `true` to run another iteration.
    fn should_continue(&self, delta: f64, ctx: &Context) -> bool;
}

/// The full operator bundle executing one GD plan.
pub struct GdOperators {
    /// Parse/normalize input units.
    pub transform: Box<dyn TransformOp>,
    /// Initialize global parameters.
    pub stage: Box<dyn StageOp>,
    /// Per-unit core computation.
    pub compute: Box<dyn ComputeOp>,
    /// Fold aggregates into the model.
    pub update: Box<dyn UpdateOp>,
    /// Per-iteration sample-size policy.
    pub sample: Box<dyn SampleOp>,
    /// Convergence delta.
    pub converge: Box<dyn ConvergeOp>,
    /// Stopping condition.
    pub loop_op: Box<dyn LoopOp>,
}

// ---------------------------------------------------------------------
// Reference implementations
// ---------------------------------------------------------------------

/// Identity transform for already-parsed in-memory points.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityTransform;

impl TransformOp for IdentityTransform {
    fn transform(&self, unit: RawUnit<'_>, _ctx: &Context) -> Result<LabeledPoint, GdError> {
        match unit {
            RawUnit::Point(p) => Ok(p.clone()),
            RawUnit::View(v) => Ok(v.to_point()),
            RawUnit::Text(line) => Err(GdError::Parse {
                line: line.to_string(),
                reason: "identity transform cannot parse text".into(),
            }),
        }
    }

    fn is_identity(&self) -> bool {
        true
    }
}

/// CSV transform (Listing 1): `label,x1,x2,…` → dense point.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvTransform;

impl TransformOp for CsvTransform {
    fn transform(&self, unit: RawUnit<'_>, _ctx: &Context) -> Result<LabeledPoint, GdError> {
        match unit {
            RawUnit::Point(p) => Ok(p.clone()),
            RawUnit::View(v) => Ok(v.to_point()),
            RawUnit::Text(line) => {
                let mut values = Vec::new();
                for tok in line.trim().split(',') {
                    let v: f64 = tok.trim().parse().map_err(|e| GdError::Parse {
                        line: line.to_string(),
                        reason: format!("bad float {tok:?}: {e}"),
                    })?;
                    values.push(v);
                }
                if values.len() < 2 {
                    return Err(GdError::Parse {
                        line: line.to_string(),
                        reason: "need a label and at least one feature".into(),
                    });
                }
                let label = values.remove(0);
                Ok(LabeledPoint::new(label, FeatureVec::dense(values)))
            }
        }
    }
}

/// LIBSVM transform (Figure 3a): `±1 idx:val idx:val …` → sparse point.
/// Indices in the file are 1-based, as in the LIBSVM format.
#[derive(Debug, Clone, Copy)]
pub struct LibsvmTransform {
    /// Feature-space dimensionality of the dataset.
    pub dims: usize,
}

impl TransformOp for LibsvmTransform {
    fn transform(&self, unit: RawUnit<'_>, _ctx: &Context) -> Result<LabeledPoint, GdError> {
        match unit {
            RawUnit::Point(p) => Ok(p.clone()),
            RawUnit::View(v) => Ok(v.to_point()),
            RawUnit::Text(line) => {
                let mut parts = line.split_whitespace();
                let label: f64 = parts
                    .next()
                    .ok_or_else(|| GdError::Parse {
                        line: line.to_string(),
                        reason: "empty line".into(),
                    })?
                    .parse()
                    .map_err(|e| GdError::Parse {
                        line: line.to_string(),
                        reason: format!("bad label: {e}"),
                    })?;
                let mut indices = Vec::new();
                let mut values = Vec::new();
                for tok in parts {
                    let (i, v) = tok.split_once(':').ok_or_else(|| GdError::Parse {
                        line: line.to_string(),
                        reason: format!("feature {tok:?} is not idx:val"),
                    })?;
                    let idx: u32 = i.parse().map_err(|e| GdError::Parse {
                        line: line.to_string(),
                        reason: format!("bad index {i:?}: {e}"),
                    })?;
                    if idx == 0 {
                        return Err(GdError::Parse {
                            line: line.to_string(),
                            reason: "LIBSVM indices are 1-based".into(),
                        });
                    }
                    let val: f64 = v.parse().map_err(|e| GdError::Parse {
                        line: line.to_string(),
                        reason: format!("bad value {v:?}: {e}"),
                    })?;
                    indices.push(idx - 1);
                    values.push(val);
                }
                let features =
                    SparseVector::new(self.dims, indices, values).map_err(GdError::Linalg)?;
                Ok(LabeledPoint::new(label, FeatureVec::Sparse(features)))
            }
        }
    }
}

/// A `Transform` that mean-centers dense features using the
/// dataset-wide statistics a [`StatsStage`] computed — the Section 6
/// escape hatch in action: even under *lazy* transformation, transforms
/// that need global statistics stay sound because `Stage` saw the data
/// first ("such possible cases are handled by passing the dataset to the
/// Stage operator beforehand").
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanCenterTransform;

impl TransformOp for MeanCenterTransform {
    fn transform(&self, unit: RawUnit<'_>, ctx: &Context) -> Result<LabeledPoint, GdError> {
        // Only the dense output buffer is allocated; borrowed views are
        // centered without materializing an intermediate point.
        let (label, mut dense) = match unit {
            RawUnit::Point(p) => (p.label, p.features.to_dense()),
            RawUnit::View(v) => (v.label, DenseVector::new(v.features.to_dense_vec())),
            RawUnit::Text(line) => {
                let p = CsvTransform.transform(RawUnit::Text(line), ctx)?;
                (p.label, p.features.to_dense())
            }
        };
        let Some(means) = ctx.vector("feature_means") else {
            return Err(GdError::InvalidPlan(
                "MeanCenterTransform requires a StatsStage to compute feature_means".into(),
            ));
        };
        debug_assert_eq!(dense.dim(), means.dim());
        for (x, m) in dense.as_mut_slice().iter_mut().zip(means.as_slice()) {
            *x -= m;
        }
        Ok(LabeledPoint::new(label, FeatureVec::Dense(dense)))
    }
}

/// Reference `Stage` (Listing 4): zero weights, `step := 1.0`, `iter := 0`.
#[derive(Debug, Clone, Copy)]
pub struct ZeroStage {
    /// Model dimensionality.
    pub dims: usize,
}

impl StageOp for ZeroStage {
    fn stage(&self, ctx: &mut Context, _staged: &[LabeledPoint]) {
        ctx.dims = self.dims;
        ctx.weights = DenseVector::zeros(self.dims);
        ctx.iteration = 0;
        ctx.put("step", Extra::Scalar(1.0));
    }
}

/// A `Stage` that additionally requires a full pass for global statistics
/// (feature means), demonstrating the Section 6 escape hatch that keeps
/// lazy transformation sound when `Transform` needs dataset-wide values.
#[derive(Debug, Clone, Copy)]
pub struct StatsStage {
    /// Model dimensionality.
    pub dims: usize,
}

impl StageOp for StatsStage {
    fn stage(&self, ctx: &mut Context, staged: &[LabeledPoint]) {
        ctx.dims = self.dims;
        ctx.weights = DenseVector::zeros(self.dims);
        ctx.iteration = 0;
        ctx.put("step", Extra::Scalar(1.0));
        let mut means = DenseVector::zeros(self.dims);
        if !staged.is_empty() {
            for p in staged {
                p.features.axpy_into(means.as_mut_slice(), 1.0);
            }
            means.scale(1.0 / staged.len() as f64);
        }
        ctx.put("feature_means", Extra::Vector(means));
    }

    fn needs_full_scan(&self) -> bool {
        true
    }
}

/// Reference `Compute` (Listing 2): accumulate the task's gradient.
pub struct GradientCompute {
    /// The gradient function (Table 3) or a custom UDF.
    pub gradient: Box<dyn Gradient>,
}

impl GradientCompute {
    /// Compute for one of the built-in tasks.
    pub fn of(kind: GradientKind) -> Self {
        Self {
            gradient: Box::new(kind),
        }
    }
}

impl ComputeOp for GradientCompute {
    fn compute(&self, point: PointView<'_>, ctx: &Context, acc: &mut ComputeAcc) {
        self.gradient
            .accumulate_view(ctx.weights.as_slice(), point, acc.primary.as_mut_slice());
        acc.count += 1;
    }

    fn compute4(&self, points: [PointView<'_>; 4], ctx: &Context, acc: &mut ComputeAcc) {
        self.gradient
            .accumulate_view4(ctx.weights.as_slice(), points, acc.primary.as_mut_slice());
        acc.count += 4;
    }

    fn compute8(&self, points: [PointView<'_>; 8], ctx: &Context, acc: &mut ComputeAcc) {
        self.gradient
            .accumulate_view8(ctx.weights.as_slice(), points, acc.primary.as_mut_slice());
        acc.count += 8;
    }
}

/// Reference `Update` (Listing 3): `w ← w − α_i ( Σg / count + ∇R(w) )`.
///
/// The `1/count` averaging matches MLlib's mini-batch semantics, which the
/// paper replicates so that the same step size behaves comparably across
/// BGD/MGD/SGD (Section 8.1).
#[derive(Debug, Clone, Copy)]
pub struct StepUpdate {
    /// Step schedule.
    pub step: StepSize,
    /// Regularizer term of Equation 1.
    pub regularizer: Regularizer,
}

impl UpdateOp for StepUpdate {
    fn update(&self, acc: &ComputeAcc, ctx: &mut Context) -> UpdateOutcome {
        if acc.count == 0 {
            return UpdateOutcome::InternalOnly;
        }
        let alpha = self.step.at(ctx.iteration);
        let scale = -alpha / acc.count as f64;
        let w = ctx.weights.as_mut_slice();
        match self.regularizer {
            // Fast path: no per-iteration regularizer buffer (this loop
            // runs once per iteration over the full model vector).
            Regularizer::None => {
                for (wi, gi) in w.iter_mut().zip(acc.primary.as_slice()) {
                    *wi += scale * gi;
                }
            }
            Regularizer::L2 { lambda } => {
                // The regularizer gradient `λw` applies at full strength
                // regardless of the sample size.
                for (wi, gi) in w.iter_mut().zip(acc.primary.as_slice()) {
                    *wi += scale * gi - alpha * lambda * *wi;
                }
            }
        }
        UpdateOutcome::Updated
    }
}

/// Fixed-size sampling policy for plain BGD/SGD/MGD plans.
#[derive(Debug, Clone, Copy)]
pub struct FixedSample {
    /// `All` for BGD; `Units(1)` for SGD; `Units(b)` for MGD.
    pub size: SampleSize,
}

impl SampleOp for FixedSample {
    fn size(&self, _ctx: &Context) -> SampleSize {
        self.size
    }
}

/// Reference `Converge` (Listing 5): L1 norm of the weight delta.
#[derive(Debug, Clone, Copy, Default)]
pub struct L1Converge;

impl ConvergeOp for L1Converge {
    fn converge(&self, previous: &DenseVector, ctx: &Context) -> f64 {
        ctx.weights
            .l1_distance(previous)
            .expect("weights dimensionality is fixed for a run")
    }
}

/// L2 variant of `Converge`.
#[derive(Debug, Clone, Copy, Default)]
pub struct L2Converge;

impl ConvergeOp for L2Converge {
    fn converge(&self, previous: &DenseVector, ctx: &Context) -> f64 {
        ctx.weights
            .l2_distance(previous)
            .expect("weights dimensionality is fixed for a run")
    }
}

/// Reference `Loop` (Listing 6): run until `delta < tolerance` or
/// `max_iter` iterations.
#[derive(Debug, Clone, Copy)]
pub struct ToleranceLoop {
    /// Convergence tolerance ε.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iter: u64,
}

impl LoopOp for ToleranceLoop {
    fn should_continue(&self, delta: f64, ctx: &Context) -> bool {
        delta >= self.tolerance && ctx.iteration < self.max_iter
    }
}

/// `Loop` running a fixed number of iterations (Figure 3a's `i < 100`).
#[derive(Debug, Clone, Copy)]
pub struct FixedLoop {
    /// Number of iterations to run.
    pub iterations: u64,
}

impl LoopOp for FixedLoop {
    fn should_continue(&self, _delta: f64, ctx: &Context) -> bool {
        ctx.iteration < self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(dims: usize) -> Context {
        let mut c = Context::new(dims);
        ZeroStage { dims }.stage(&mut c, &[]);
        c
    }

    #[test]
    fn csv_transform_parses_listing1_format() {
        let t = CsvTransform;
        let p = t
            .transform(RawUnit::Text("1.0, 0.5, -2.0"), &ctx(2))
            .unwrap();
        assert_eq!(p.label, 1.0);
        assert_eq!(p.features.dot(&[1.0, 0.0]), 0.5);
        assert_eq!(p.features.dot(&[0.0, 1.0]), -2.0);
    }

    #[test]
    fn csv_transform_rejects_garbage() {
        let t = CsvTransform;
        assert!(t.transform(RawUnit::Text("a,b"), &ctx(1)).is_err());
        assert!(t.transform(RawUnit::Text("1.0"), &ctx(1)).is_err());
    }

    #[test]
    fn libsvm_transform_parses_figure3_format() {
        let t = LibsvmTransform { dims: 10 };
        let p = t
            .transform(RawUnit::Text("+1 2:0.1 4:0.4 10:0.3"), &ctx(10))
            .unwrap();
        assert_eq!(p.label, 1.0);
        // 1-based file indices → 0-based storage.
        assert_eq!(
            p.features
                .dot(&[0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            0.1
        );
        assert_eq!(p.features.nnz(), 3);
    }

    #[test]
    fn libsvm_transform_rejects_zero_index_and_bad_pairs() {
        let t = LibsvmTransform { dims: 4 };
        assert!(t.transform(RawUnit::Text("1 0:0.5"), &ctx(4)).is_err());
        assert!(t.transform(RawUnit::Text("1 3"), &ctx(4)).is_err());
        assert!(t.transform(RawUnit::Text(""), &ctx(4)).is_err());
    }

    #[test]
    fn zero_stage_initializes_listing4_state() {
        let mut c = Context::new(0);
        ZeroStage { dims: 3 }.stage(&mut c, &[]);
        assert_eq!(c.weights.dim(), 3);
        assert_eq!(c.scalar("step"), Some(1.0));
        assert_eq!(c.iteration, 0);
    }

    #[test]
    fn stats_stage_computes_means_and_demands_scan() {
        let s = StatsStage { dims: 2 };
        assert!(s.needs_full_scan());
        let pts = vec![
            LabeledPoint::new(1.0, FeatureVec::dense(vec![2.0, 0.0])),
            LabeledPoint::new(1.0, FeatureVec::dense(vec![4.0, 2.0])),
        ];
        let mut c = Context::new(0);
        s.stage(&mut c, &pts);
        let means = c.vector("feature_means").unwrap();
        assert_eq!(means.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn gradient_compute_accumulates_counts() {
        let compute = GradientCompute::of(GradientKind::Svm);
        let c = ctx(1);
        let mut acc = ComputeAcc::new(1);
        let p = LabeledPoint::new(1.0, FeatureVec::dense(vec![2.0]));
        compute.compute(p.view(), &c, &mut acc);
        compute.compute(p.view(), &c, &mut acc);
        assert_eq!(acc.count, 2);
        assert_eq!(acc.primary.as_slice(), &[-4.0]); // two hinge subgradients
    }

    #[test]
    fn step_update_averages_and_steps() {
        let update = StepUpdate {
            step: StepSize::Constant(0.5),
            regularizer: Regularizer::None,
        };
        let mut c = ctx(1);
        c.iteration = 1;
        let mut acc = ComputeAcc::new(1);
        acc.primary[0] = 4.0;
        acc.count = 2; // average gradient = 2.0
        assert_eq!(update.update(&acc, &mut c), UpdateOutcome::Updated);
        assert!((c.weights[0] + 1.0).abs() < 1e-12); // 0 − 0.5×2
    }

    #[test]
    fn step_update_on_empty_sample_is_internal_only() {
        let update = StepUpdate {
            step: StepSize::Constant(0.5),
            regularizer: Regularizer::None,
        };
        let mut c = ctx(2);
        let acc = ComputeAcc::new(2);
        assert_eq!(update.update(&acc, &mut c), UpdateOutcome::InternalOnly);
        assert_eq!(c.weights.l1_norm(), 0.0);
    }

    #[test]
    fn l2_regularized_update_shrinks_weights() {
        let update = StepUpdate {
            step: StepSize::Constant(0.1),
            regularizer: Regularizer::L2 { lambda: 1.0 },
        };
        let mut c = ctx(1);
        c.iteration = 1;
        c.weights[0] = 1.0;
        let mut acc = ComputeAcc::new(1);
        acc.count = 1; // zero gradient, only the regularizer acts
        update.update(&acc, &mut c);
        assert!((c.weights[0] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn converge_ops_measure_distance() {
        let mut c = ctx(2);
        c.weights[0] = 3.0;
        c.weights[1] = -4.0;
        let prev = DenseVector::zeros(2);
        assert_eq!(L1Converge.converge(&prev, &c), 7.0);
        assert!((L2Converge.converge(&prev, &c) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn tolerance_loop_stops_on_either_condition() {
        let l = ToleranceLoop {
            tolerance: 0.01,
            max_iter: 10,
        };
        let mut c = ctx(1);
        c.iteration = 5;
        assert!(l.should_continue(0.1, &c));
        assert!(!l.should_continue(0.001, &c));
        c.iteration = 10;
        assert!(!l.should_continue(0.1, &c));
    }

    #[test]
    fn fixed_loop_counts_iterations() {
        let l = FixedLoop { iterations: 100 };
        let mut c = ctx(1);
        c.iteration = 99;
        assert!(l.should_continue(f64::INFINITY, &c));
        c.iteration = 100;
        assert!(!l.should_continue(0.0, &c));
    }

    #[test]
    fn compute_acc_reset_keeps_allocation() {
        let mut acc = ComputeAcc::new(3);
        acc.primary[0] = 1.0;
        acc.scalar = 5.0;
        acc.count = 9;
        acc.secondary_mut()[1] = 2.0;
        acc.reset();
        assert_eq!(acc.primary.l1_norm(), 0.0);
        assert_eq!(acc.scalar, 0.0);
        assert_eq!(acc.count, 0);
        assert_eq!(acc.secondary.as_ref().unwrap().l1_norm(), 0.0);
    }
}

#[cfg(test)]
mod mean_center_tests {
    use super::*;

    #[test]
    fn mean_center_requires_stats_stage() {
        let ctx = Context::new(2);
        let p = LabeledPoint::new(1.0, FeatureVec::dense(vec![1.0, 2.0]));
        assert!(matches!(
            MeanCenterTransform.transform(RawUnit::Point(&p), &ctx),
            Err(GdError::InvalidPlan(_))
        ));
    }

    #[test]
    fn mean_center_subtracts_global_means() {
        let stage = StatsStage { dims: 2 };
        let pts = vec![
            LabeledPoint::new(1.0, FeatureVec::dense(vec![2.0, 10.0])),
            LabeledPoint::new(-1.0, FeatureVec::dense(vec![4.0, 30.0])),
        ];
        let mut ctx = Context::new(0);
        stage.stage(&mut ctx, &pts); // means = [3, 20]
        let out = MeanCenterTransform
            .transform(RawUnit::Point(&pts[0]), &ctx)
            .unwrap();
        assert_eq!(out.features.to_dense().as_slice(), &[-1.0, -10.0]);
        assert!(!MeanCenterTransform.is_identity());
    }

    #[test]
    fn mean_center_parses_text_first() {
        let stage = StatsStage { dims: 2 };
        let pts = vec![LabeledPoint::new(1.0, FeatureVec::dense(vec![1.0, 1.0]))];
        let mut ctx = Context::new(0);
        stage.stage(&mut ctx, &pts); // means = [1, 1]
        let out = MeanCenterTransform
            .transform(RawUnit::Text("1.0, 3.0, 5.0"), &ctx)
            .unwrap();
        assert_eq!(out.features.to_dense().as_slice(), &[2.0, 4.0]);
    }
}
