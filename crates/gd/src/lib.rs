//! The gradient-descent abstraction of the paper (Section 4) and the plan
//! executor that runs it over the dataflow substrate.
//!
//! The paper observes that GD algorithms share three phases — preparation,
//! processing, convergence — and abstracts them with **seven operators**:
//!
//! | Operator    | Phase        | Signature (paper)                  |
//! |-------------|--------------|------------------------------------|
//! | `Transform` | preparation  | `U → U_T`                          |
//! | `Stage`     | preparation  | `∅ \| U_T \| list⟨U_T⟩ → …`        |
//! | `Compute`   | processing   | `U_T → U_C`                        |
//! | `Update`    | processing   | `U_C → U_U`                        |
//! | `Sample`    | processing   | `n \| list⟨U⟩ → list⟨nb⟩ \| …`     |
//! | `Converge`  | convergence  | `U_U → U_Δ`                        |
//! | `Loop`      | convergence  | `U_Δ → true \| false`              |
//!
//! Those appear here as traits ([`operators`]) with reference
//! implementations, a [`plan::GdPlan`] vocabulary (BGD/SGD/MGD ×
//! eager/lazy × sampling strategy — Figure 5), and an [`executor`] that
//! wires them together over a [`ml4all_dataflow::PartitionedDataset`],
//! charging the simulated cost ledger while genuinely iterating the math.
//!
//! Accelerated algorithms are expressed *in the same abstraction*, exactly
//! as Appendix C shows: [`svrg`] flattens SVRG's nested loop through
//! if/else operators, and [`linesearch`] implements BGD with backtracking
//! line search through a scalar-carrying `Compute`/`Update` pair.

pub mod adagrad;
pub mod context;
pub mod executor;
pub mod gradient;
pub mod linesearch;
pub mod momentum;
pub mod objective;
pub mod operators;
pub mod plan;
pub mod step;
pub mod svrg;

pub use context::{Context, Extra};
pub use executor::{
    execute_plan, execute_plan_observed, execute_with_operators, execute_with_operators_observed,
    ExecHooks, IterationTick, StopReason, TrainParams, TrainResult,
};
pub use gradient::{Gradient, GradientKind, Regularizer};
pub use objective::{dataset_loss, partitioned_loss};
pub use operators::{
    ComputeAcc, ComputeOp, ConvergeOp, GdOperators, LoopOp, RawUnit, SampleOp, SampleSize, StageOp,
    TransformOp, UpdateOp, UpdateOutcome,
};
pub use plan::{GdPlan, GdVariant, TransformPolicy};
pub use step::StepSize;

/// Errors raised while constructing or executing GD plans.
#[derive(Debug, Clone, PartialEq)]
pub enum GdError {
    /// A raw text unit could not be parsed into a data unit.
    Parse { line: String, reason: String },
    /// The plan combination is outside the Figure 5 search space
    /// (e.g. BGD with sampling, or lazy transformation with Bernoulli).
    InvalidPlan(String),
    /// The model diverged (non-finite weights) — typically a step size too
    /// large for the objective.
    Diverged { iteration: u64 },
    /// Substrate error.
    Dataflow(ml4all_dataflow::DataflowError),
    /// Operand shapes disagree.
    Linalg(ml4all_linalg::LinalgError),
}

impl std::fmt::Display for GdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Parse { line, reason } => write!(f, "cannot parse {line:?}: {reason}"),
            Self::InvalidPlan(msg) => write!(f, "invalid GD plan: {msg}"),
            Self::Diverged { iteration } => {
                write!(
                    f,
                    "model diverged (non-finite weights) at iteration {iteration}"
                )
            }
            Self::Dataflow(e) => write!(f, "dataflow error: {e}"),
            Self::Linalg(e) => write!(f, "linalg error: {e}"),
        }
    }
}

impl std::error::Error for GdError {}

impl From<ml4all_dataflow::DataflowError> for GdError {
    fn from(e: ml4all_dataflow::DataflowError) -> Self {
        Self::Dataflow(e)
    }
}

impl From<ml4all_linalg::LinalgError> for GdError {
    fn from(e: ml4all_linalg::LinalgError) -> Self {
        Self::Linalg(e)
    }
}
