//! The operator context: the paper's string-keyed global-variable store
//! (`context.getByKey("weights")` in Listings 1–10), given typed fast paths
//! for the fields every GD algorithm touches.

use std::collections::HashMap;

use ml4all_linalg::DenseVector;

/// A value stored in the context's extras map.
#[derive(Debug, Clone, PartialEq)]
pub enum Extra {
    /// Scalar parameter (e.g. the line-search `step`).
    Scalar(f64),
    /// Vector parameter (e.g. SVRG's `weightsBar`).
    Vector(DenseVector),
    /// Boolean flag (e.g. line search's `isStepSizeIter`).
    Flag(bool),
    /// Integer parameter (e.g. SVRG's update frequency `m`).
    Int(u64),
}

/// Global state shared by the seven operators during one GD run.
///
/// The hot fields — model vector, iteration counter, dimensionality — are
/// typed struct members; algorithm-specific parameters (SVRG's `weightsBar`,
/// line search's `beta`) live in the string-keyed extras map, mirroring the
/// paper's `Context` UDF API.
#[derive(Debug, Clone)]
pub struct Context {
    /// The model vector `w`.
    pub weights: DenseVector,
    /// Current iteration, 1-based during the loop (0 before the first).
    pub iteration: u64,
    /// Feature-space dimensionality.
    pub dims: usize,
    extras: HashMap<String, Extra>,
}

impl Context {
    /// Fresh context for a `dims`-dimensional model, weights at zero.
    pub fn new(dims: usize) -> Self {
        Self {
            weights: DenseVector::zeros(dims),
            iteration: 0,
            dims,
            extras: HashMap::new(),
        }
    }

    /// Store an extra by key (paper: `context.put(key, value)`).
    pub fn put(&mut self, key: impl Into<String>, value: Extra) {
        self.extras.insert(key.into(), value);
    }

    /// Fetch an extra by key (paper: `context.getByKey(key)`).
    pub fn get(&self, key: &str) -> Option<&Extra> {
        self.extras.get(key)
    }

    /// Typed scalar accessor.
    pub fn scalar(&self, key: &str) -> Option<f64> {
        match self.extras.get(key) {
            Some(Extra::Scalar(v)) => Some(*v),
            _ => None,
        }
    }

    /// Typed vector accessor.
    pub fn vector(&self, key: &str) -> Option<&DenseVector> {
        match self.extras.get(key) {
            Some(Extra::Vector(v)) => Some(v),
            _ => None,
        }
    }

    /// Typed flag accessor.
    pub fn flag(&self, key: &str) -> Option<bool> {
        match self.extras.get(key) {
            Some(Extra::Flag(v)) => Some(*v),
            _ => None,
        }
    }

    /// Typed integer accessor.
    pub fn int(&self, key: &str) -> Option<u64> {
        match self.extras.get(key) {
            Some(Extra::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// `true` once any weight is non-finite — the divergence detector.
    pub fn weights_diverged(&self) -> bool {
        self.weights.as_slice().iter().any(|w| !w.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_context_is_zeroed() {
        let ctx = Context::new(5);
        assert_eq!(ctx.weights.dim(), 5);
        assert_eq!(ctx.weights.l1_norm(), 0.0);
        assert_eq!(ctx.iteration, 0);
        assert!(!ctx.weights_diverged());
    }

    #[test]
    fn extras_round_trip_by_type() {
        let mut ctx = Context::new(2);
        ctx.put("step", Extra::Scalar(1.0));
        ctx.put("weightsBar", Extra::Vector(DenseVector::zeros(2)));
        ctx.put("isStepSizeIter", Extra::Flag(true));
        ctx.put("m", Extra::Int(50));
        assert_eq!(ctx.scalar("step"), Some(1.0));
        assert_eq!(ctx.vector("weightsBar").unwrap().dim(), 2);
        assert_eq!(ctx.flag("isStepSizeIter"), Some(true));
        assert_eq!(ctx.int("m"), Some(50));
        // Wrong-type access returns None instead of panicking.
        assert_eq!(ctx.scalar("m"), None);
        assert_eq!(ctx.int("step"), None);
        assert_eq!(ctx.scalar("missing"), None);
    }

    #[test]
    fn divergence_is_detected() {
        let mut ctx = Context::new(2);
        ctx.weights[0] = f64::NAN;
        assert!(ctx.weights_diverged());
        ctx.weights[0] = f64::INFINITY;
        assert!(ctx.weights_diverged());
    }
}
