//! The GD plan executor: wires the seven operators over a partitioned
//! dataset, genuinely iterating the optimization while charging the
//! simulated cost ledger (Equations 3–5) for every phase the paper's cost
//! model accounts for (Equations 7–9).

use std::time::{Duration, Instant};

use ml4all_dataflow::{
    CancelToken, ColumnStore, ColumnarBuilder, CostBreakdown, ExecState, PartitionedDataset,
    SamplerState, SimEnv, StorageMedium, UsageMeter, RNG_STREAM_VERSION,
};
use ml4all_linalg::{DenseVector, FeatureView, LabeledPoint, PointView};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Placeholder for initializing fixed-size view batches before they are
/// filled from sampled coordinates.
const EMPTY_FEATURES: FeatureView<'static> = FeatureView::Dense(&[]);

use crate::context::Context;
use crate::gradient::{GradientKind, Regularizer};
use crate::operators::{
    ComputeAcc, FixedSample, GdOperators, GradientCompute, IdentityTransform, L1Converge, RawUnit,
    SampleSize, StepUpdate, ToleranceLoop, UpdateOutcome, ZeroStage,
};
use crate::plan::{GdPlan, GdVariant, TransformPolicy};
use crate::step::StepSize;
use crate::GdError;

/// Hyper-parameters and stopping criteria of one training run.
#[derive(Debug, Clone)]
pub struct TrainParams {
    /// Gradient function (Table 3 task).
    pub gradient: GradientKind,
    /// Step-size schedule.
    pub step: StepSize,
    /// Regularizer of Equation 1.
    pub regularizer: Regularizer,
    /// Convergence tolerance ε on the weight delta.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iter: u64,
    /// RNG seed for sampling.
    pub seed: u64,
    /// Record the `(iteration, delta)` error sequence (needed by the
    /// iterations estimator; costs memory on long runs).
    pub record_error_seq: bool,
    /// Optional real wall-clock budget: the speculation stage of
    /// Algorithm 1 stops the run when this is exhausted.
    pub wall_budget: Option<Duration>,
}

impl TrainParams {
    /// Defaults matching the paper's cross-system experiments: `β/√i` step
    /// with β = 1, no regularizer, tolerance 1e-3, max 1 000 iterations.
    pub fn paper_defaults(gradient: GradientKind) -> Self {
        Self {
            gradient,
            step: StepSize::paper_default(),
            regularizer: Regularizer::None,
            tolerance: 1e-3,
            max_iter: 1000,
            seed: 0,
            record_error_seq: true,
            wall_budget: None,
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The convergence delta fell below the tolerance.
    Converged,
    /// The iteration cap was reached.
    MaxIterations,
    /// The wall-clock speculation budget ran out.
    WallBudget,
    /// A cooperative cancellation request ([`ExecHooks::cancel`]) was
    /// observed at a wave boundary. The result carries the state as of
    /// the last completed iteration — bit-identical to an uninterrupted
    /// run capped at that iteration count.
    Cancelled,
    /// The replan predicate ([`ExecHooks::replan`]) requested a yield at a
    /// tick boundary: the caller wants to re-run the plan chooser with
    /// fresh cost observations and possibly continue under a different
    /// plan. The result carries the full resume state
    /// ([`TrainResult::resume_state`]) of the boundary, so the continued
    /// run — same plan or not — is bit-identical to one that had chosen
    /// that continuation from the start.
    Replan,
}

/// One convergence checkpoint handed to [`ExecHooks::on_tick`]: the
/// iteration just completed, its convergence delta, and a snapshot of the
/// simulated cost ledger at that point.
#[derive(Debug, Clone)]
pub struct IterationTick {
    /// Iteration that just completed (1-based).
    pub iteration: u64,
    /// Convergence delta of that iteration.
    pub delta: f64,
    /// Simulated seconds elapsed so far.
    pub sim_time_s: f64,
    /// Cost ledger snapshot at the checkpoint.
    pub cost: CostBreakdown,
}

/// Cooperative observation hooks, checked at iteration (wave) boundaries:
/// the executor never interrupts a wave in flight, so a cancelled run
/// stops within one wave and its result is exactly the prefix an
/// uninterrupted run would have produced.
#[derive(Default)]
pub struct ExecHooks<'a> {
    /// Cancellation token. When latched, the loop breaks at the next
    /// iteration boundary with [`StopReason::Cancelled`].
    pub cancel: Option<CancelToken>,
    /// Emit an [`IterationTick`] every this many *converged-checked*
    /// iterations (0 = never). Internal-only iterations (line-search
    /// shrinks) do not tick.
    pub tick_every: u64,
    /// Checkpoint callback (progress streaming).
    pub on_tick: Option<&'a (dyn Fn(IterationTick) + Sync)>,
    /// Capture an [`ExecState`] durability checkpoint every this many
    /// converge-checked iterations (0 = never). Checkpoints are taken at
    /// wave boundaries, after the iteration's update and tick.
    pub checkpoint_every: u64,
    /// Durability-checkpoint callback: receives the full executor state at
    /// the boundary, sufficient to resume the run bit-identically.
    pub on_checkpoint: Option<&'a (dyn Fn(ExecState) + Sync)>,
    /// Resume from a previously captured [`ExecState`] instead of starting
    /// at iteration 0. The preparation phase (stage/transform) re-runs —
    /// it is deterministic — and then the ledger, RNG, sampler, and model
    /// state are restored to the boundary, so the continued run is
    /// bit-identical to the uninterrupted one. A cancel latched before the
    /// first resumed wave returns the checkpoint's exact prefix
    /// (iteration count unchanged), unlike a cold start which always runs
    /// one wave first.
    pub resume: Option<ExecState>,
    /// Mid-flight replanning predicate, evaluated on exactly the ticks
    /// [`ExecHooks::on_tick`] sees (so the decision is a pure function of
    /// the tick stream — deterministic across worker counts, backends, and
    /// kill/resume). Returning `true` stops the loop at that wave boundary
    /// with [`StopReason::Replan`] and the boundary's full
    /// [`ExecState`] in [`TrainResult::resume_state`]. Cancellation and
    /// natural convergence take precedence over a pending replan.
    pub replan: Option<&'a (dyn Fn(&IterationTick) -> bool + Sync)>,
}

/// Outcome of one training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Final model vector.
    pub weights: DenseVector,
    /// Iterations executed.
    pub iterations: u64,
    /// Why the loop stopped.
    pub stop: StopReason,
    /// Final convergence delta.
    pub final_delta: f64,
    /// Simulated cost breakdown charged during the run.
    pub cost: CostBreakdown,
    /// Total simulated seconds (the paper's "training time").
    pub sim_time_s: f64,
    /// Real wall-clock the run took on this machine.
    pub wall_time: Duration,
    /// `(iteration, delta)` pairs (empty unless requested).
    pub error_seq: Vec<(u64, f64)>,
    /// Partition shuffles triggered by the shuffled-partition sampler.
    pub sampler_shuffles: usize,
    /// Physical usage metered by the backend (empty on the local backend):
    /// tuples scanned, bytes shuffled, busy seconds per simulated node.
    pub usage: UsageMeter,
    /// Stable label of the backend the run executed on.
    pub backend: &'static str,
    /// RNG stream layout this run's seed reproduces under (see
    /// [`ml4all_dataflow::RNG_STREAM_VERSION`]): same-seed runs are bit
    /// identical only within one stream version.
    pub rng_stream_version: u32,
    /// Full resume state of the final wave boundary, captured only when
    /// the run yielded with [`StopReason::Replan`]: hand it back via
    /// [`ExecHooks::resume`] (under the same or a different plan) to
    /// continue bit-identically from the yield point.
    pub resume_state: Option<Box<ExecState>>,
}

impl TrainResult {
    /// `true` when the run hit the tolerance.
    pub fn converged(&self) -> bool {
        self.stop == StopReason::Converged
    }
}

/// Build the reference operator bundle for a plan (Figures 3a/3b wiring).
pub fn reference_operators(plan: &GdPlan, params: &TrainParams, dims: usize) -> GdOperators {
    let sample_size = match plan.variant {
        GdVariant::Batch => SampleSize::All,
        GdVariant::Stochastic => SampleSize::Units(1),
        GdVariant::MiniBatch { batch } => SampleSize::Units(batch),
    };
    GdOperators {
        transform: Box::new(IdentityTransform),
        stage: Box::new(ZeroStage { dims }),
        compute: Box::new(GradientCompute::of(params.gradient)),
        update: Box::new(StepUpdate {
            step: params.step,
            regularizer: params.regularizer,
        }),
        sample: Box::new(FixedSample { size: sample_size }),
        converge: Box::new(L1Converge),
        loop_op: Box::new(ToleranceLoop {
            tolerance: params.tolerance,
            max_iter: params.max_iter,
        }),
    }
}

/// Execute a plan with the reference operators.
pub fn execute_plan(
    plan: &GdPlan,
    data: &PartitionedDataset,
    params: &TrainParams,
    env: &mut SimEnv,
) -> Result<TrainResult, GdError> {
    execute_plan_observed(plan, data, params, env, &ExecHooks::default())
}

/// Execute a plan with the reference operators under observation hooks:
/// per-K-iteration convergence ticks and cooperative cancellation, both
/// honoured at wave boundaries.
pub fn execute_plan_observed(
    plan: &GdPlan,
    data: &PartitionedDataset,
    params: &TrainParams,
    env: &mut SimEnv,
    hooks: &ExecHooks<'_>,
) -> Result<TrainResult, GdError> {
    let dims = data.descriptor().dims;
    let ops = reference_operators(plan, params, dims);
    execute_with_operators_observed(plan, data, &ops, params, env, hooks)
}

/// Transformed-view storage: either the original columnar partitions or a
/// materialized transformed copy (also columnar) with the same
/// `(partition, offset)` coordinates.
enum Store<'a> {
    Original(&'a PartitionedDataset),
    Transformed { parts: Vec<ColumnStore> },
}

impl Store<'_> {
    #[inline]
    fn view(&self, pi: usize, oi: usize) -> Option<PointView<'_>> {
        match self {
            Store::Original(d) => d.view(pi, oi),
            Store::Transformed { parts } => parts.get(pi)?.view(oi),
        }
    }

    fn num_partitions(&self) -> usize {
        match self {
            Store::Original(d) => d.num_partitions(),
            Store::Transformed { parts } => parts.len(),
        }
    }

    #[inline]
    fn columns(&self, pi: usize) -> &ColumnStore {
        match self {
            Store::Original(d) => d.partitions()[pi].columns(),
            Store::Transformed { parts } => &parts[pi],
        }
    }
}

/// One partition's reusable compute state: the partial aggregate plus an
/// error slot for transforms that fail mid-wave.
struct PartialSlot {
    acc: ComputeAcc,
    error: Option<GdError>,
}

/// Per-partition scratch accumulators, allocated once per run and reused
/// by every compute wave: the wave performs no per-row or per-result heap
/// allocation for dense data (strictly allocation-free on a single-worker
/// runtime; the pooled path boxes one job envelope per busy worker).
struct WaveScratch {
    slots: Vec<PartialSlot>,
}

impl WaveScratch {
    fn new(partitions: usize, dims: usize) -> Self {
        Self {
            slots: (0..partitions)
                .map(|_| PartialSlot {
                    acc: ComputeAcc::new(dims),
                    error: None,
                })
                .collect(),
        }
    }

    fn slots_mut(&mut self) -> &mut [PartialSlot] {
        &mut self.slots
    }

    /// Reduce the wave: surface the first error in partition order, then
    /// merge partials left-to-right (bit-identical at any worker count).
    fn merge_into(&mut self, acc: &mut ComputeAcc) -> Result<(), GdError> {
        for slot in &mut self.slots {
            if let Some(e) = slot.error.take() {
                return Err(e);
            }
        }
        for slot in &self.slots {
            acc.merge(&slot.acc);
        }
        Ok(())
    }
}

/// Transforms must preserve the dataset's declared dimensionality: the
/// model vector is sized from the descriptor, so a wider unit would index
/// past the weights (and a narrower one silently drop features).
fn check_transformed_dims(unit_dims: usize, dims: usize) -> Result<(), GdError> {
    if unit_dims != dims {
        return Err(GdError::InvalidPlan(format!(
            "transform produced a {unit_dims}-dimensional unit but the dataset declares {dims}"
        )));
    }
    Ok(())
}

/// Run the compute operator over every row of a columnar partition,
/// feeding 8-row batches through [`ComputeOp::compute8`] (the SIMD batch
/// width of the dense gradient kernels), a final quad through
/// [`ComputeOp::compute4`], and the remainder one by one. The batch
/// boundaries depend only on the partition's row count, so the pass is
/// deterministic and worker-count-independent; batched dense rows are
/// scored in the fixed blocked order (see [`crate::gradient`]).
fn compute_over_columns(
    cols: &ColumnStore,
    ops: &GdOperators,
    ctx: &Context,
    acc: &mut ComputeAcc,
) {
    let n = cols.len();
    let mut oi = 0usize;
    // Dense slabs build the batch views straight off the raw columns —
    // one enum match per partition instead of one per row.
    if let Some((labels, values, dims)) = cols.as_dense() {
        while oi + 8 <= n {
            let views = std::array::from_fn(|k| {
                let i = oi + k;
                PointView::new(
                    labels[i],
                    FeatureView::Dense(&values[i * dims..(i + 1) * dims]),
                )
            });
            ops.compute.compute8(views, ctx, acc);
            oi += 8;
        }
    }
    while oi + 8 <= n {
        let views = std::array::from_fn(|k| cols.view(oi + k).expect("row in range"));
        ops.compute.compute8(views, ctx, acc);
        oi += 8;
    }
    if oi + 4 <= n {
        let views = std::array::from_fn(|k| cols.view(oi + k).expect("row in range"));
        ops.compute.compute4(views, ctx, acc);
        oi += 4;
    }
    while oi < n {
        ops.compute
            .compute(cols.view(oi).expect("row in range"), ctx, acc);
        oi += 1;
    }
}

/// Execute a plan with a custom operator bundle — the extension point that
/// SVRG, line search, and user-defined algorithms plug into.
pub fn execute_with_operators(
    plan: &GdPlan,
    data: &PartitionedDataset,
    ops: &GdOperators,
    params: &TrainParams,
    env: &mut SimEnv,
) -> Result<TrainResult, GdError> {
    execute_with_operators_observed(plan, data, ops, params, env, &ExecHooks::default())
}

/// [`execute_with_operators`] under observation hooks (ticks +
/// cancellation at wave boundaries).
pub fn execute_with_operators_observed(
    plan: &GdPlan,
    data: &PartitionedDataset,
    ops: &GdOperators,
    params: &TrainParams,
    env: &mut SimEnv,
    hooks: &ExecHooks<'_>,
) -> Result<TrainResult, GdError> {
    validate(plan)?;
    let start = Instant::now();
    let desc = data.descriptor().clone();
    let dims = desc.dims;
    let avg_nnz = desc.avg_nnz();
    let distributed = !desc.fits_one_partition(&env.spec);
    let mut rng = StdRng::seed_from_u64(params.seed);

    env.charge_job_init();

    // ---- Preparation phase: Stage (+ optional global-stats scan) ----
    let mut ctx = Context::new(dims);
    let staged: Vec<LabeledPoint> = if ops.stage.needs_full_scan() {
        env.charge_full_scan_io(&desc, StorageMedium::Disk);
        env.charge_wave_cpu(&desc, env.spec.cpu_transform_s(avg_nnz));
        data.sample_points(4096, params.seed ^ 0x5747_4167)
    } else {
        Vec::new()
    };
    ops.stage.stage(&mut ctx, &staged);
    env.charge_serial_cpu(1, env.spec.cpu_stage_s(dims));
    if ctx.dims != dims {
        return Err(GdError::InvalidPlan(format!(
            "stage set dims {} but dataset has {}",
            ctx.dims, dims
        )));
    }

    // ---- Preparation phase: eager Transform ----
    let store = if plan.transform == TransformPolicy::Eager {
        env.charge_full_scan_io(&desc, StorageMedium::Disk);
        env.charge_wave_cpu(&desc, env.spec.cpu_transform_s(avg_nnz));
        if ops.transform.is_identity() {
            Store::Original(data)
        } else {
            // The transform pass is a wave over the partitions (the CPU
            // charge above models exactly that); materialize each
            // partition's transformed copy — in columnar form — on the
            // shared worker pool.
            let transformed: Vec<Result<ColumnStore, GdError>> =
                env.runtime().map_indexed(data.partitions(), |_pi, part| {
                    let part_dims = part.columns().dims();
                    // Dense pre-sizing only for dense sources: a dense
                    // pre-allocation would outlive a CSR layout upgrade.
                    let mut b = if part.columns().as_dense().is_some() {
                        ColumnarBuilder::with_dense_capacity(part.len(), part_dims)
                    } else {
                        ColumnarBuilder::new()
                    };
                    for v in part.iter() {
                        let t = ops.transform.transform(RawUnit::View(v), &ctx)?;
                        check_transformed_dims(t.dim(), dims)?;
                        b.push_point(&t);
                    }
                    Ok(b.finish_with_dims(part_dims))
                });
            let mut parts = Vec::with_capacity(transformed.len());
            for partition in transformed {
                parts.push(partition?);
            }
            Store::Transformed { parts }
        }
    } else {
        Store::Original(data)
    };

    // ---- Iterative phases: processing + convergence ----
    let mut sampler = plan.sampling.map(SamplerState::new);
    let mut prev_weights = ctx.weights.clone();
    let mut acc = ComputeAcc::new(dims);
    // Resume: the deterministic preparation above re-ran from scratch;
    // now jump the mutable loop state to the checkpointed boundary. The
    // restored ledger already contains the original run's preparation
    // charges, so totals continue bit-identically.
    if let Some(rs) = &hooks.resume {
        if rs.weights.len() != dims {
            return Err(GdError::InvalidPlan(format!(
                "resume state has {} weights but the dataset declares {dims} dims",
                rs.weights.len()
            )));
        }
        ctx.iteration = rs.iteration;
        ctx.weights = DenseVector::new(rs.weights.clone());
        prev_weights = DenseVector::new(rs.prev_weights.clone());
        rng = StdRng::from_state(rs.rng_state);
        if let Some(snap) = &rs.sampler {
            sampler = Some(SamplerState::restore(snap));
        }
        env.ledger.restore(rs.cost, rs.usage.clone());
    }
    // Reused across every iteration: per-partition wave scratch, the
    // sampled-coordinate buffer, and the error sequence's backing storage
    // — the steady-state loop allocates nothing per iteration.
    let mut scratch = WaveScratch::new(store.num_partitions(), dims);
    // Physical rows per partition, fixed for the whole run: the
    // simulated-cluster backend meters each batch wave against this
    // placement (computed once — the loop stays allocation-free).
    let wave_units: Vec<u64> = (0..store.num_partitions())
        .map(|pi| store.columns(pi).len() as u64)
        .collect();
    let model_bytes = (dims as u64) * 8;
    let mut coords: Vec<(usize, usize)> = Vec::new();
    let mut error_seq = Vec::new();
    if params.record_error_seq {
        error_seq.reserve(params.max_iter.min(8192) as usize);
    }
    let mut final_delta = f64::INFINITY;
    if let Some(rs) = &hooks.resume {
        final_delta = rs.final_delta;
        if params.record_error_seq {
            error_seq.extend_from_slice(&rs.error_seq);
        }
    }
    // A resumed run re-checks the boundary conditions *before* running a
    // wave: a cancel latched between restore and the first wave yields the
    // checkpoint's exact prefix, and a checkpoint taken at a stopping
    // condition does not run extra iterations.
    let mut resume_boundary = hooks.resume.is_some();
    let mut replan_requested = false;
    let mut resume_state: Option<Box<ExecState>> = None;
    let stop;
    let unit_bytes = desc.unit_bytes().ceil() as u64;
    let lazy_parse = plan.transform == TransformPolicy::Lazy && !ops.transform.is_identity();

    loop {
        if resume_boundary {
            resume_boundary = false;
            if hooks.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                stop = StopReason::Cancelled;
                break;
            }
            if !ops.loop_op.should_continue(final_delta, &ctx) {
                stop = if final_delta < params.tolerance {
                    StopReason::Converged
                } else {
                    StopReason::MaxIterations
                };
                break;
            }
        }
        ctx.iteration += 1;
        let size = ops.sample.size(&ctx);
        // On multi-partition data every iteration drives at least one
        // distributed action (a scan, a sample job, or a block fetch), so
        // it pays a stage launch; single-partition data loops at the
        // driver.
        env.charge_iteration_overhead(distributed);
        acc.reset();

        match size {
            SampleSize::All => {
                // Full scan: IO (cache-aware), wave-parallel gradient CPU,
                // then per-partition partial aggregates over the network.
                env.charge_full_scan_io(&desc, StorageMedium::Auto);
                if plan.transform == TransformPolicy::Lazy {
                    // Batch iteration under lazy transformation (SVRG's
                    // anchor iterations): transform on the fly.
                    env.charge_wave_cpu(&desc, env.spec.cpu_transform_s(avg_nnz));
                }
                env.charge_wave_cpu(&desc, env.spec.cpu_gradient_s(avg_nnz));
                // The gradient wave the CPU charge models, executed for
                // real: each partition accumulates into its reused scratch
                // slot on the shared worker pool, and the partials reduce
                // in partition order — bit-identical at any worker count.
                let ctx_ref = &ctx;
                env.runtime()
                    .scatter_indexed(scratch.slots_mut(), |pi, slot| {
                        slot.acc.reset();
                        slot.error = None;
                        let cols = store.columns(pi);
                        if lazy_parse {
                            for v in cols.iter() {
                                let transformed = ops
                                    .transform
                                    .transform(RawUnit::View(v), ctx_ref)
                                    .and_then(|t| check_transformed_dims(t.dim(), dims).map(|_| t));
                                match transformed {
                                    Ok(t) => ops.compute.compute(t.view(), ctx_ref, &mut slot.acc),
                                    Err(e) => {
                                        slot.error = Some(e);
                                        return;
                                    }
                                }
                            }
                        } else {
                            compute_over_columns(cols, ops, ctx_ref, &mut slot.acc);
                        }
                    });
                scratch.merge_into(&mut acc)?;
                if distributed {
                    let active = desc.partitions(&env.spec);
                    env.charge_network(active * (dims as u64) * 8);
                }
                // One broadcast/aggregate wave on the cluster backend:
                // meter the physical work each node just performed —
                // including the on-the-fly transform of lazy batch waves,
                // mirroring the CPU charges above.
                let mut per_unit_s = env.spec.cpu_gradient_s(avg_nnz);
                if plan.transform == TransformPolicy::Lazy {
                    per_unit_s += env.spec.cpu_transform_s(avg_nnz);
                }
                env.meter_cluster_wave(&wave_units, per_unit_s, model_bytes);
            }
            SampleSize::Units(m) => {
                let sampler = sampler.as_mut().ok_or_else(|| {
                    GdError::InvalidPlan(
                        "plan has no sampling strategy but the sample operator requested units"
                            .into(),
                    )
                })?;
                sampler.draw_into(data, m, env, &mut rng, &mut coords)?;
                let drawn = coords.len();
                if plan.transform == TransformPolicy::Lazy {
                    env.charge_serial_cpu(drawn as u64, env.spec.cpu_transform_s(avg_nnz));
                }
                // Hybrid execution: the (small) sample is shipped to the
                // driver, computed and updated there (Appendix D).
                if distributed {
                    env.charge_network(unit_bytes * drawn as u64);
                }
                env.meter_cluster_sample(drawn as u64, unit_bytes);
                env.charge_serial_cpu(drawn as u64, env.spec.cpu_gradient_s(avg_nnz));
                let lookup = |pi: usize, oi: usize| {
                    store
                        .view(pi, oi)
                        .ok_or(ml4all_dataflow::DataflowError::PartitionOutOfBounds {
                            index: pi,
                            partitions: data.num_partitions(),
                        })
                };
                if lazy_parse {
                    for &(pi, oi) in &coords {
                        let t = ops
                            .transform
                            .transform(RawUnit::View(lookup(pi, oi)?), &ctx)?;
                        check_transformed_dims(t.dim(), dims)?;
                        ops.compute.compute(t.view(), &ctx, &mut acc);
                    }
                } else {
                    // Fused sampler→gradient pass: the freshly drawn
                    // coordinates feed straight into batched gradient
                    // accumulation — 8-row SIMD batches, one quad, then
                    // singles — with no intermediate materialization.
                    let mut octets = coords.chunks_exact(8);
                    for oct in octets.by_ref() {
                        let mut views = [PointView::new(0.0, EMPTY_FEATURES); 8];
                        for (v, &(pi, oi)) in views.iter_mut().zip(oct) {
                            *v = lookup(pi, oi)?;
                        }
                        ops.compute.compute8(views, &ctx, &mut acc);
                    }
                    let rest = octets.remainder();
                    let mut quads = rest.chunks_exact(4);
                    for quad in quads.by_ref() {
                        let mut views = [PointView::new(0.0, EMPTY_FEATURES); 4];
                        for (v, &(pi, oi)) in views.iter_mut().zip(quad) {
                            *v = lookup(pi, oi)?;
                        }
                        ops.compute.compute4(views, &ctx, &mut acc);
                    }
                    for &(pi, oi) in quads.remainder() {
                        ops.compute.compute(lookup(pi, oi)?, &ctx, &mut acc);
                    }
                }
            }
        }

        let outcome = ops.update.update(&acc, &mut ctx);
        env.charge_serial_cpu(1, env.spec.cpu_update_s(dims));
        if ctx.weights_diverged() {
            return Err(GdError::Diverged {
                iteration: ctx.iteration,
            });
        }

        let delta = match outcome {
            UpdateOutcome::Updated => {
                let d = ops.converge.converge(&prev_weights, &ctx);
                env.charge_serial_cpu(1, env.spec.cpu_converge_s(dims));
                prev_weights.clone_from(&ctx.weights);
                final_delta = d;
                if params.record_error_seq {
                    error_seq.push((ctx.iteration, d));
                }
                if hooks.tick_every > 0 && ctx.iteration.is_multiple_of(hooks.tick_every) {
                    let tick = IterationTick {
                        iteration: ctx.iteration,
                        delta: d,
                        sim_time_s: env.elapsed_s(),
                        cost: env.snapshot(),
                    };
                    if let Some(on_tick) = hooks.on_tick {
                        on_tick(tick.clone());
                    }
                    // The replan predicate sees exactly the tick stream,
                    // so its verdict is identical on every worker count,
                    // backend, and resumed continuation of this run.
                    if let Some(replan) = hooks.replan {
                        replan_requested = replan(&tick);
                    }
                }
                // Durability checkpoint at the wave boundary: everything
                // the loop mutates, captured after this iteration's
                // update, tick, and convergence bookkeeping.
                if hooks.checkpoint_every > 0
                    && ctx.iteration.is_multiple_of(hooks.checkpoint_every)
                {
                    if let Some(on_checkpoint) = hooks.on_checkpoint {
                        on_checkpoint(ExecState {
                            iteration: ctx.iteration,
                            weights: ctx.weights.as_slice().to_vec(),
                            prev_weights: prev_weights.as_slice().to_vec(),
                            final_delta: d,
                            error_seq: error_seq.clone(),
                            rng_state: rng.state(),
                            sampler: sampler.as_ref().map(SamplerState::snapshot),
                            cost: env.snapshot(),
                            usage: env.ledger.usage().clone(),
                        });
                    }
                }
                d
            }
            // Internal-only iterations (line-search shrinks) skip the
            // convergence check; an infinite delta keeps the loop going.
            UpdateOutcome::InternalOnly => f64::INFINITY,
        };

        // Cooperative cancellation: observed once per iteration, after
        // the wave in flight completed — never mid-wave — so the result
        // is the exact prefix of an uninterrupted run.
        if hooks.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            stop = StopReason::Cancelled;
            break;
        }

        if !ops.loop_op.should_continue(delta, &ctx) {
            stop = if delta < params.tolerance {
                StopReason::Converged
            } else {
                StopReason::MaxIterations
            };
            break;
        }
        // Replan yield: only after cancellation and natural stopping have
        // had their say — a converged run never replans. The captured
        // state is exactly what a durability checkpoint at this boundary
        // would hold.
        if replan_requested {
            resume_state = Some(Box::new(ExecState {
                iteration: ctx.iteration,
                weights: ctx.weights.as_slice().to_vec(),
                prev_weights: prev_weights.as_slice().to_vec(),
                final_delta,
                error_seq: error_seq.clone(),
                rng_state: rng.state(),
                sampler: sampler.as_ref().map(SamplerState::snapshot),
                cost: env.snapshot(),
                usage: env.ledger.usage().clone(),
            }));
            stop = StopReason::Replan;
            break;
        }
        if let Some(budget) = params.wall_budget {
            if start.elapsed() >= budget {
                stop = StopReason::WallBudget;
                break;
            }
        }
    }

    Ok(TrainResult {
        weights: ctx.weights,
        iterations: ctx.iteration,
        stop,
        final_delta,
        cost: env.snapshot(),
        sim_time_s: env.elapsed_s(),
        wall_time: start.elapsed(),
        error_seq,
        sampler_shuffles: sampler.map(|s| s.shuffles()).unwrap_or(0),
        usage: env.ledger.usage().clone(),
        backend: env.backend().name(),
        rng_stream_version: RNG_STREAM_VERSION,
        resume_state,
    })
}

fn validate(plan: &GdPlan) -> Result<(), GdError> {
    match plan.variant {
        GdVariant::Batch => {
            if plan.sampling.is_some() {
                return Err(GdError::InvalidPlan("BGD does not sample".into()));
            }
            if plan.transform == TransformPolicy::Lazy {
                return Err(GdError::InvalidPlan(
                    "BGD touches every unit every iteration; lazy transformation never pays off"
                        .into(),
                ));
            }
        }
        GdVariant::Stochastic | GdVariant::MiniBatch { .. } => {
            if plan.sampling.is_none() {
                return Err(GdError::InvalidPlan(
                    "stochastic variants need a sampling strategy".into(),
                ));
            }
            if plan.transform == TransformPolicy::Lazy
                && plan.sampling == Some(ml4all_dataflow::SamplingMethod::Bernoulli)
            {
                return Err(GdError::InvalidPlan(
                    "lazy transformation with Bernoulli sampling is never beneficial".into(),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod scratch_tests {
    use super::*;

    #[test]
    fn wave_scratch_accumulators_are_reused_across_waves() {
        let mut scratch = WaveScratch::new(4, 8);
        let ptrs: Vec<*const f64> = scratch
            .slots
            .iter()
            .map(|s| s.acc.primary.as_slice().as_ptr())
            .collect();
        let mut acc = ComputeAcc::new(8);
        for wave in 0..5 {
            for (pi, slot) in scratch.slots_mut().iter_mut().enumerate() {
                slot.acc.reset();
                slot.error = None;
                slot.acc.primary[0] = (wave * 10 + pi) as f64;
                slot.acc.count = 1;
            }
            acc.reset();
            scratch.merge_into(&mut acc).unwrap();
            assert_eq!(acc.count, 4);
            assert_eq!(acc.primary[0], (4 * (wave * 10) + 6) as f64);
        }
        let after: Vec<*const f64> = scratch
            .slots
            .iter()
            .map(|s| s.acc.primary.as_slice().as_ptr())
            .collect();
        assert_eq!(ptrs, after, "scratch accumulators must not reallocate");
    }

    #[test]
    fn wave_scratch_surfaces_errors_in_partition_order() {
        let mut scratch = WaveScratch::new(3, 2);
        scratch.slots[2].error = Some(GdError::InvalidPlan("later".into()));
        scratch.slots[1].error = Some(GdError::InvalidPlan("first".into()));
        let mut acc = ComputeAcc::new(2);
        match scratch.merge_into(&mut acc) {
            Err(GdError::InvalidPlan(msg)) => assert_eq!(msg, "first"),
            other => panic!("expected the earliest partition's error, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_dataflow::{ClusterSpec, PartitionScheme, SamplingMethod};
    use ml4all_linalg::FeatureVec;
    use rand::Rng;

    /// Linearly separable 2-D classification points around the separator
    /// x0 - x1 = 0, with an always-on bias feature.
    fn separable_points(n: usize, seed: u64) -> Vec<LabeledPoint> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x0: f64 = rng.gen_range(-1.0..1.0);
                let x1: f64 = rng.gen_range(-1.0..1.0);
                let label = if x0 - x1 > 0.0 { 1.0 } else { -1.0 };
                LabeledPoint::new(label, FeatureVec::dense(vec![x0, x1, 1.0]))
            })
            .collect()
    }

    fn dataset(n: usize) -> PartitionedDataset {
        PartitionedDataset::from_points(
            "separable",
            separable_points(n, 7),
            PartitionScheme::RoundRobin,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap()
    }

    fn env() -> SimEnv {
        SimEnv::new(ClusterSpec::paper_testbed())
    }

    fn accuracy(weights: &DenseVector, points: &[LabeledPoint]) -> f64 {
        let correct = points
            .iter()
            .filter(|p| {
                let score = p.features.dot(weights.as_slice());
                (score >= 0.0) == (p.label > 0.0)
            })
            .count();
        correct as f64 / points.len() as f64
    }

    #[test]
    fn bgd_converges_on_separable_svm() {
        let data = dataset(2000);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.tolerance = 0.01;
        params.max_iter = 2000;
        let mut env = env();
        let result = execute_plan(&GdPlan::bgd(), &data, &params, &mut env).unwrap();
        assert!(result.converged(), "stop = {:?}", result.stop);
        let pts = separable_points(500, 99);
        assert!(accuracy(&result.weights, &pts) > 0.9);
        assert!(result.sim_time_s > 0.0);
        assert_eq!(result.error_seq.len() as u64, result.iterations);
    }

    #[test]
    fn sgd_trains_a_usable_model() {
        let data = dataset(2000);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        // Tolerance 0 forces the full iteration budget: with a hinge loss a
        // single zero-gradient sample would otherwise stop SGD immediately
        // (the same effect behind the paper's 4-8 iteration SGD runs on the
        // dense synthetic datasets, Table 4).
        params.tolerance = 0.0;
        params.max_iter = 3000;
        let plan = GdPlan::sgd(TransformPolicy::Lazy, SamplingMethod::ShuffledPartition).unwrap();
        let mut env = env();
        let result = execute_plan(&plan, &data, &params, &mut env).unwrap();
        let pts = separable_points(500, 99);
        assert!(
            accuracy(&result.weights, &pts) > 0.85,
            "accuracy {}",
            accuracy(&result.weights, &pts)
        );
    }

    #[test]
    fn mgd_converges_with_all_samplers() {
        for sampling in [
            SamplingMethod::Bernoulli,
            SamplingMethod::RandomPartition,
            SamplingMethod::ShuffledPartition,
        ] {
            let data = dataset(2000);
            let mut params = TrainParams::paper_defaults(GradientKind::Svm);
            params.max_iter = 500;
            params.tolerance = 1e-3;
            let plan = GdPlan::mgd(100, TransformPolicy::Eager, sampling).unwrap();
            let mut env = env();
            let result = execute_plan(&plan, &data, &params, &mut env).unwrap();
            let pts = separable_points(500, 99);
            assert!(
                accuracy(&result.weights, &pts) > 0.85,
                "{sampling:?}: accuracy {}",
                accuracy(&result.weights, &pts)
            );
        }
    }

    #[test]
    fn logistic_regression_reduces_loss() {
        let data = dataset(1000);
        let params = TrainParams::paper_defaults(GradientKind::LogisticRegression);
        let mut env = env();
        let result = execute_plan(&GdPlan::bgd(), &data, &params, &mut env).unwrap();
        let initial = crate::objective::partitioned_loss(
            &GradientKind::LogisticRegression,
            &Regularizer::None,
            &[0.0; 3],
            &data,
        );
        let trained = crate::objective::partitioned_loss(
            &GradientKind::LogisticRegression,
            &Regularizer::None,
            result.weights.as_slice(),
            &data,
        );
        assert!(trained < initial * 0.7, "loss {initial} -> {trained}");
    }

    #[test]
    fn linear_regression_fits_a_line() {
        // y = 3 x + 1 with slight noise.
        let mut rng = StdRng::seed_from_u64(11);
        let points: Vec<LabeledPoint> = (0..500)
            .map(|_| {
                let x: f64 = rng.gen_range(-1.0..1.0);
                let y = 3.0 * x + 1.0 + rng.gen_range(-0.01..0.01);
                LabeledPoint::new(y, FeatureVec::dense(vec![x, 1.0]))
            })
            .collect();
        let data = PartitionedDataset::from_points(
            "line",
            points,
            PartitionScheme::RoundRobin,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap();
        let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
        params.max_iter = 2000;
        params.tolerance = 1e-6;
        params.step = StepSize::Constant(0.25);
        let mut env = env();
        let result = execute_plan(&GdPlan::bgd(), &data, &params, &mut env).unwrap();
        assert!(
            (result.weights[0] - 3.0).abs() < 0.05,
            "slope {}",
            result.weights[0]
        );
        assert!(
            (result.weights[1] - 1.0).abs() < 0.05,
            "intercept {}",
            result.weights[1]
        );
    }

    #[test]
    fn divergence_is_reported_as_error() {
        let data = dataset(100);
        let mut params = TrainParams::paper_defaults(GradientKind::LinearRegression);
        params.step = StepSize::Constant(1e6); // absurd step → blow-up
        let mut env = env();
        let err = execute_plan(&GdPlan::bgd(), &data, &params, &mut env).unwrap_err();
        assert!(matches!(err, GdError::Diverged { .. }));
    }

    #[test]
    fn invalid_plans_are_rejected_by_executor() {
        let data = dataset(10);
        let params = TrainParams::paper_defaults(GradientKind::Svm);
        let mut env = env();
        let bad = GdPlan {
            variant: GdVariant::Batch,
            transform: TransformPolicy::Lazy,
            sampling: None,
        };
        assert!(matches!(
            execute_plan(&bad, &data, &params, &mut env),
            Err(GdError::InvalidPlan(_))
        ));
        let bad2 = GdPlan {
            variant: GdVariant::Stochastic,
            transform: TransformPolicy::Eager,
            sampling: None,
        };
        assert!(matches!(
            execute_plan(&bad2, &data, &params, &mut env),
            Err(GdError::InvalidPlan(_))
        ));
    }

    #[test]
    fn max_iterations_stop_is_reported() {
        let data = dataset(500);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.tolerance = 0.0; // unreachable
        params.max_iter = 10;
        let mut env = env();
        let result = execute_plan(&GdPlan::bgd(), &data, &params, &mut env).unwrap();
        assert_eq!(result.iterations, 10);
        assert_eq!(result.stop, StopReason::MaxIterations);
        assert!(!result.converged());
    }

    #[test]
    fn ticks_fire_every_k_checked_iterations_with_ledger_snapshots() {
        let data = dataset(500);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.tolerance = 0.0;
        params.max_iter = 25;
        let ticks = std::sync::Mutex::new(Vec::new());
        let on_tick = |t: IterationTick| ticks.lock().unwrap().push(t);
        let hooks = ExecHooks {
            cancel: None,
            tick_every: 10,
            on_tick: Some(&on_tick),
            ..Default::default()
        };
        let mut env = env();
        let result =
            execute_plan_observed(&GdPlan::bgd(), &data, &params, &mut env, &hooks).unwrap();
        let ticks = ticks.into_inner().unwrap();
        assert_eq!(
            ticks.iter().map(|t| t.iteration).collect::<Vec<_>>(),
            vec![10, 20]
        );
        // Ticks snapshot a monotonically advancing ledger, and the
        // reported deltas are the error sequence's entries.
        assert!(ticks[0].sim_time_s < ticks[1].sim_time_s);
        assert!(ticks[1].sim_time_s <= result.sim_time_s);
        for t in &ticks {
            let (_, d) = result.error_seq[t.iteration as usize - 1];
            assert_eq!(t.delta.to_bits(), d.to_bits());
            assert!(t.cost.total_s() > 0.0);
        }
    }

    #[test]
    fn cancellation_stops_at_the_next_wave_boundary_with_an_exact_prefix() {
        let data = dataset(800);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.tolerance = 0.0;
        params.max_iter = 50;

        let mut env_full = env();
        let full = execute_plan(&GdPlan::bgd(), &data, &params, &mut env_full).unwrap();

        // Cancel from inside the tick at iteration 12: deterministic.
        let token = CancelToken::new();
        let tick_token = token.clone();
        let on_tick = move |t: IterationTick| {
            if t.iteration == 12 {
                tick_token.cancel();
            }
        };
        let hooks = ExecHooks {
            cancel: Some(token),
            tick_every: 1,
            on_tick: Some(&on_tick),
            ..Default::default()
        };
        let mut env_cancelled = env();
        let cancelled =
            execute_plan_observed(&GdPlan::bgd(), &data, &params, &mut env_cancelled, &hooks)
                .unwrap();
        assert_eq!(cancelled.stop, StopReason::Cancelled);
        assert_eq!(cancelled.iterations, 12);
        assert!(!cancelled.converged());
        // The cancelled run is the exact prefix of the uninterrupted one...
        assert_eq!(cancelled.error_seq[..], full.error_seq[..12]);
        // ...and bit-identical to an uninterrupted run capped at the
        // cancellation iteration.
        let mut params_capped = params.clone();
        params_capped.max_iter = 12;
        let mut env_capped = env();
        let capped = execute_plan(&GdPlan::bgd(), &data, &params_capped, &mut env_capped).unwrap();
        assert_eq!(cancelled.weights, capped.weights);
        assert_eq!(cancelled.error_seq, capped.error_seq);
        assert_eq!(cancelled.cost, capped.cost);
        assert_eq!(cancelled.sim_time_s.to_bits(), capped.sim_time_s.to_bits());
    }

    #[test]
    fn replan_yield_resumes_bit_identically_under_the_same_plan() {
        let data = dataset(800);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.tolerance = 0.0;
        params.max_iter = 40;
        let plan = GdPlan::mgd(
            32,
            TransformPolicy::Eager,
            SamplingMethod::ShuffledPartition,
        )
        .unwrap();

        let mut env_full = env();
        let full = execute_plan(&plan, &data, &params, &mut env_full).unwrap();
        assert!(full.resume_state.is_none(), "no yield without a predicate");

        let trigger = |t: &IterationTick| t.iteration == 12;
        let hooks = ExecHooks {
            tick_every: 4,
            replan: Some(&trigger),
            ..Default::default()
        };
        let mut env_yield = env();
        let yielded = execute_plan_observed(&plan, &data, &params, &mut env_yield, &hooks).unwrap();
        assert_eq!(yielded.stop, StopReason::Replan);
        assert_eq!(yielded.iterations, 12);
        let state = *yielded.resume_state.expect("replan carries resume state");
        assert_eq!(state.iteration, 12);

        // Continuing from the yield (no predicate this time) is the
        // uninterrupted run, bit for bit.
        let hooks = ExecHooks {
            resume: Some(state),
            ..Default::default()
        };
        let mut env_res = env();
        let resumed = execute_plan_observed(&plan, &data, &params, &mut env_res, &hooks).unwrap();
        assert_eq!(resumed.weights, full.weights);
        assert_eq!(resumed.error_seq, full.error_seq);
        assert_eq!(resumed.cost, full.cost);
        assert_eq!(resumed.sim_time_s.to_bits(), full.sim_time_s.to_bits());
    }

    #[test]
    fn convergence_beats_a_pending_replan() {
        let data = dataset(2000);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.tolerance = 0.01;
        params.max_iter = 2000;
        // A predicate that always fires: the run must still converge
        // normally on the iteration where the tolerance is hit.
        let mut env_full = env();
        let full = execute_plan(&GdPlan::bgd(), &data, &params, &mut env_full).unwrap();
        assert!(full.converged());
        let trigger = |t: &IterationTick| t.iteration == full.iterations;
        let hooks = ExecHooks {
            tick_every: 1,
            replan: Some(&trigger),
            ..Default::default()
        };
        let mut env_r = env();
        let r = execute_plan_observed(&GdPlan::bgd(), &data, &params, &mut env_r, &hooks).unwrap();
        assert_eq!(r.stop, StopReason::Converged);
        assert!(r.resume_state.is_none());
    }

    #[test]
    fn pre_latched_token_cancels_after_the_first_wave() {
        let data = dataset(300);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.tolerance = 0.0;
        params.max_iter = 1000;
        let token = CancelToken::new();
        token.cancel();
        let hooks = ExecHooks {
            cancel: Some(token),
            tick_every: 0,
            on_tick: None,
            ..Default::default()
        };
        let mut env = env();
        let result =
            execute_plan_observed(&GdPlan::bgd(), &data, &params, &mut env, &hooks).unwrap();
        assert_eq!(result.stop, StopReason::Cancelled);
        assert_eq!(result.iterations, 1, "stops within one wave");
    }

    #[test]
    fn checkpointed_runs_resume_bit_identically_from_every_boundary() {
        // Mini-batch + shuffled-partition sampling exercises the hardest
        // state to restore: the training RNG stream and the shuffle
        // cursor, on top of weights and the ledger.
        let data = dataset(800);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.tolerance = 0.0;
        params.max_iter = 40;
        for plan in [
            GdPlan::bgd(),
            GdPlan::mgd(
                32,
                TransformPolicy::Eager,
                SamplingMethod::ShuffledPartition,
            )
            .unwrap(),
            GdPlan::mgd(16, TransformPolicy::Eager, SamplingMethod::Bernoulli).unwrap(),
        ] {
            let mut env_full = env();
            let full = execute_plan(&plan, &data, &params, &mut env_full).unwrap();

            let captured = std::sync::Mutex::new(Vec::new());
            let on_checkpoint = |s: ExecState| captured.lock().unwrap().push(s);
            let hooks = ExecHooks {
                checkpoint_every: 7,
                on_checkpoint: Some(&on_checkpoint),
                ..Default::default()
            };
            let mut env_chk = env();
            let chk = execute_plan_observed(&plan, &data, &params, &mut env_chk, &hooks).unwrap();
            assert_eq!(chk.weights, full.weights, "capturing must not perturb");
            let captured = captured.into_inner().unwrap();
            assert_eq!(captured.len(), 5, "40 iterations / every 7");

            for state in captured {
                let hooks = ExecHooks {
                    resume: Some(state),
                    ..Default::default()
                };
                let mut env_res = env();
                let resumed =
                    execute_plan_observed(&plan, &data, &params, &mut env_res, &hooks).unwrap();
                assert_eq!(resumed.iterations, full.iterations);
                assert_eq!(resumed.weights, full.weights);
                assert_eq!(resumed.error_seq, full.error_seq);
                assert_eq!(resumed.cost, full.cost);
                assert_eq!(resumed.sim_time_s.to_bits(), full.sim_time_s.to_bits());
                assert_eq!(resumed.sampler_shuffles, full.sampler_shuffles);
            }
        }
    }

    #[test]
    fn cancel_latched_before_the_first_resumed_wave_returns_the_exact_prefix() {
        let data = dataset(600);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.tolerance = 0.0;
        params.max_iter = 30;
        let plan = GdPlan::mgd(
            32,
            TransformPolicy::Eager,
            SamplingMethod::ShuffledPartition,
        )
        .unwrap();
        let captured = std::sync::Mutex::new(Vec::new());
        let on_checkpoint = |s: ExecState| captured.lock().unwrap().push(s);
        let hooks = ExecHooks {
            checkpoint_every: 10,
            on_checkpoint: Some(&on_checkpoint),
            ..Default::default()
        };
        let mut env_chk = env();
        execute_plan_observed(&plan, &data, &params, &mut env_chk, &hooks).unwrap();
        let state = captured.into_inner().unwrap().remove(0);
        assert_eq!(state.iteration, 10);

        let token = CancelToken::new();
        token.cancel();
        let hooks = ExecHooks {
            cancel: Some(token),
            resume: Some(state.clone()),
            ..Default::default()
        };
        let mut env_res = env();
        let resumed = execute_plan_observed(&plan, &data, &params, &mut env_res, &hooks).unwrap();
        // Unlike a cold pre-latched start (which runs one wave), a resumed
        // run re-checks the token at the restored boundary: not a single
        // extra iteration runs, and the state is the checkpoint's, bit for
        // bit.
        assert_eq!(resumed.stop, StopReason::Cancelled);
        assert_eq!(resumed.iterations, 10);
        assert_eq!(resumed.weights.as_slice(), state.weights.as_slice());
        assert_eq!(resumed.final_delta.to_bits(), state.final_delta.to_bits());
        assert_eq!(resumed.cost, state.cost);
    }

    #[test]
    fn wall_budget_stops_long_runs() {
        let data = dataset(500);
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.tolerance = 0.0;
        params.max_iter = u64::MAX;
        params.wall_budget = Some(Duration::from_millis(50));
        let mut env = env();
        let result = execute_plan(&GdPlan::bgd(), &data, &params, &mut env).unwrap();
        assert_eq!(result.stop, StopReason::WallBudget);
        assert!(result.wall_time >= Duration::from_millis(50));
    }

    #[test]
    fn lazy_sgd_is_cheaper_than_eager_sgd_for_few_iterations() {
        // Big logical dataset, few iterations: skipping the up-front
        // transform dominates — the Section 6 lazy-transformation argument.
        let spec = ClusterSpec::paper_testbed();
        let desc = ml4all_dataflow::DatasetDescriptor::new(
            "big",
            1_000_000,
            3,
            20 * 1024 * 1024 * 1024,
            1.0,
        );
        let data = PartitionedDataset::with_descriptor(
            desc,
            separable_points(5000, 3),
            PartitionScheme::RoundRobin,
            &spec,
        )
        .unwrap();
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.max_iter = 20;
        params.tolerance = 0.0;

        let lazy = GdPlan::sgd(TransformPolicy::Lazy, SamplingMethod::ShuffledPartition).unwrap();
        let mut env_lazy = SimEnv::new(spec.clone());
        let lazy_result = execute_plan(&lazy, &data, &params, &mut env_lazy).unwrap();

        let eager = GdPlan::sgd(TransformPolicy::Eager, SamplingMethod::ShuffledPartition).unwrap();
        let mut env_eager = SimEnv::new(spec.clone());
        let eager_result = execute_plan(&eager, &data, &params, &mut env_eager).unwrap();

        assert!(
            lazy_result.sim_time_s * 2.0 < eager_result.sim_time_s,
            "lazy {} vs eager {}",
            lazy_result.sim_time_s,
            eager_result.sim_time_s
        );
    }

    #[test]
    fn cluster_backend_meters_usage_and_stays_bit_identical_to_local() {
        use ml4all_dataflow::Backend;
        let spec = ClusterSpec::paper_testbed();
        // 2 GB logical → 16 partitions → genuinely distributed waves.
        let desc = ml4all_dataflow::DatasetDescriptor::new(
            "big",
            1_000_000,
            3,
            2 * 1024 * 1024 * 1024,
            1.0,
        );
        let data = PartitionedDataset::with_descriptor(
            desc,
            separable_points(1000, 3),
            PartitionScheme::RoundRobin,
            &spec,
        )
        .unwrap();
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.max_iter = 5;
        params.tolerance = 0.0;

        let mut env_local = SimEnv::new(spec.clone());
        let local = execute_plan(&GdPlan::bgd(), &data, &params, &mut env_local).unwrap();
        let mut env_cluster =
            SimEnv::new(spec.clone()).with_backend(Backend::simulated_cluster(&spec));
        let cluster = execute_plan(&GdPlan::bgd(), &data, &params, &mut env_cluster).unwrap();

        // The backend is an accounting overlay: math and charges identical.
        assert_eq!(local.weights, cluster.weights);
        assert_eq!(local.cost, cluster.cost);
        assert_eq!(local.sim_time_s.to_bits(), cluster.sim_time_s.to_bits());
        assert_eq!(local.backend, "local");
        assert_eq!(cluster.backend, "simulated-cluster");
        assert!(local.usage.is_empty());

        // The cluster run measured its physical work: one wave per
        // iteration, every physical row scanned per wave, the 3-dim model
        // broadcast to and aggregated from all 4 nodes.
        assert_eq!(cluster.usage.waves, 5);
        assert_eq!(cluster.usage.tuples_scanned, 5 * 1000);
        assert_eq!(cluster.usage.bytes_shuffled, 5 * 2 * (3 * 8) * 4);
        assert_eq!(cluster.usage.node_compute_s.len(), 4);
        assert!(cluster.usage.node_compute_s.iter().all(|&s| s > 0.0));
        assert_eq!(cluster.rng_stream_version, RNG_STREAM_VERSION);
    }

    #[test]
    fn sampled_plans_meter_driver_shipping_on_the_cluster_backend() {
        use ml4all_dataflow::Backend;
        let spec = ClusterSpec::paper_testbed();
        let desc = ml4all_dataflow::DatasetDescriptor::new(
            "big",
            1_000_000,
            3,
            2 * 1024 * 1024 * 1024,
            1.0,
        );
        let data = PartitionedDataset::with_descriptor(
            desc,
            separable_points(1000, 3),
            PartitionScheme::RoundRobin,
            &spec,
        )
        .unwrap();
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.max_iter = 10;
        params.tolerance = 0.0;
        let plan = GdPlan::mgd(
            32,
            TransformPolicy::Eager,
            SamplingMethod::ShuffledPartition,
        )
        .unwrap();
        let mut env = SimEnv::new(spec.clone()).with_backend(Backend::simulated_cluster(&spec));
        let result = execute_plan(&plan, &data, &params, &mut env).unwrap();
        // 32 units × 10 iterations shipped to the driver; no batch waves.
        assert_eq!(result.usage.tuples_scanned, 320);
        assert!(result.usage.bytes_shuffled > 0);
        assert_eq!(result.usage.waves, 0);
        assert!(result.usage.node_compute_s.is_empty());
    }

    #[test]
    fn bgd_sim_time_scales_with_logical_size() {
        let spec = ClusterSpec::paper_testbed();
        let points = separable_points(2000, 3);
        let small_desc =
            ml4all_dataflow::DatasetDescriptor::new("s", 100_000, 3, 50 * 1024 * 1024, 1.0);
        let big_desc = ml4all_dataflow::DatasetDescriptor::new(
            "b",
            10_000_000,
            3,
            5 * 1024 * 1024 * 1024,
            1.0,
        );
        let mut params = TrainParams::paper_defaults(GradientKind::Svm);
        params.max_iter = 5;
        params.tolerance = 0.0;

        let small = PartitionedDataset::with_descriptor(
            small_desc,
            points.clone(),
            PartitionScheme::RoundRobin,
            &spec,
        )
        .unwrap();
        let big = PartitionedDataset::with_descriptor(
            big_desc,
            points,
            PartitionScheme::RoundRobin,
            &spec,
        )
        .unwrap();

        let mut env_s = SimEnv::new(spec.clone());
        let r_small = execute_plan(&GdPlan::bgd(), &small, &params, &mut env_s).unwrap();
        let mut env_b = SimEnv::new(spec);
        let r_big = execute_plan(&GdPlan::bgd(), &big, &params, &mut env_b).unwrap();
        // Compare data-dependent costs; fixed job-init overhead would
        // otherwise mask the scaling on these short runs.
        let work = |r: &TrainResult| r.cost.io_s + r.cost.cpu_s + r.cost.net_s;
        assert!(
            work(&r_big) > 5.0 * work(&r_small),
            "big {} vs small {}",
            work(&r_big),
            work(&r_small)
        );
    }
}
