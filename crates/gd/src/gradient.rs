//! The gradient functions of Table 3 and the regularizers of Equation 1.

use ml4all_linalg::LabeledPoint;
use serde::{Deserialize, Serialize};

/// A per-point (sub)gradient of a convex loss: the `∇f_i(w)` of Section 2.
///
/// Implementations accumulate `∇f_i(w)` into `acc` instead of allocating a
/// vector per point — the `Compute` operator calls this once per data unit
/// on the hot path.
pub trait Gradient: Send + Sync {
    /// Accumulate the gradient of the point's loss at `w` into `acc`.
    fn accumulate(&self, w: &[f64], point: &LabeledPoint, acc: &mut [f64]);

    /// The point's loss at `w` (used by line search, the objective-value
    /// diagnostics, and test-error reporting).
    fn loss(&self, w: &[f64], point: &LabeledPoint) -> f64;

    /// Predict a label for a feature vector (for test-error measurement):
    /// the raw score for regression, its sign for classification.
    fn predict(&self, w: &[f64], point: &LabeledPoint) -> f64;
}

/// The ML tasks / gradient functions the system supports out of the box
/// (Table 3). Users can also implement [`Gradient`] directly, mirroring the
/// paper's UDF escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GradientKind {
    /// Linear regression: `g = 2 (wᵀx − y) x`.
    LinearRegression,
    /// Logistic regression: `g = (−1 / (1 + e^{y wᵀx})) y x`.
    LogisticRegression,
    /// SVM (hinge): `g = −y x` if `y wᵀx < 1`, else `0`.
    Svm,
}

impl GradientKind {
    /// Short lowercase name as used in the declarative language
    /// (`squared()`, `logistic()`, `hinge()`).
    pub fn function_name(&self) -> &'static str {
        match self {
            Self::LinearRegression => "squared",
            Self::LogisticRegression => "logistic",
            Self::Svm => "hinge",
        }
    }

    /// `true` for classification tasks (labels in `{−1, +1}`).
    pub fn is_classification(&self) -> bool {
        !matches!(self, Self::LinearRegression)
    }
}

impl Gradient for GradientKind {
    fn accumulate(&self, w: &[f64], point: &LabeledPoint, acc: &mut [f64]) {
        let y = point.label;
        match self {
            Self::LinearRegression => {
                let pred = point.features.dot(w);
                point.features.axpy_into(acc, 2.0 * (pred - y));
            }
            Self::LogisticRegression => {
                let margin = y * point.features.dot(w);
                // −y x / (1 + e^{margin}); guard the exponential against
                // overflow for strongly-classified points.
                let factor = if margin > 35.0 {
                    0.0
                } else if margin < -35.0 {
                    -y
                } else {
                    -y / (1.0 + margin.exp())
                };
                if factor != 0.0 {
                    point.features.axpy_into(acc, factor);
                }
            }
            Self::Svm => {
                if y * point.features.dot(w) < 1.0 {
                    point.features.axpy_into(acc, -y);
                }
            }
        }
    }

    fn loss(&self, w: &[f64], point: &LabeledPoint) -> f64 {
        let y = point.label;
        match self {
            Self::LinearRegression => {
                let diff = point.features.dot(w) - y;
                diff * diff
            }
            Self::LogisticRegression => {
                let margin = y * point.features.dot(w);
                if margin > 35.0 {
                    0.0
                } else if margin < -35.0 {
                    -margin
                } else {
                    (1.0 + (-margin).exp()).ln()
                }
            }
            Self::Svm => (1.0 - y * point.features.dot(w)).max(0.0),
        }
    }

    fn predict(&self, w: &[f64], point: &LabeledPoint) -> f64 {
        let score = point.features.dot(w);
        if self.is_classification() {
            if score >= 0.0 {
                1.0
            } else {
                -1.0
            }
        } else {
            score
        }
    }
}

/// The `R(w)` term of Equation 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Regularizer {
    /// No regularization (the paper's cross-system experiments fix all
    /// hyper-parameters identically and train unregularized).
    None,
    /// Ridge: `R(w) = (λ/2) ‖w‖²`, gradient `λ w`.
    L2 { lambda: f64 },
}

impl Regularizer {
    /// Gradient contribution added to the averaged data gradient.
    pub fn accumulate(&self, w: &[f64], acc: &mut [f64]) {
        if let Self::L2 { lambda } = self {
            for (a, wi) in acc.iter_mut().zip(w) {
                *a += lambda * wi;
            }
        }
    }

    /// Penalty value at `w`.
    pub fn penalty(&self, w: &[f64]) -> f64 {
        match self {
            Self::None => 0.0,
            Self::L2 { lambda } => 0.5 * lambda * w.iter().map(|x| x * x).sum::<f64>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_linalg::FeatureVec;

    fn pt(label: f64, xs: Vec<f64>) -> LabeledPoint {
        LabeledPoint::new(label, FeatureVec::dense(xs))
    }

    #[test]
    fn linreg_gradient_is_residual_scaled_features() {
        let g = GradientKind::LinearRegression;
        let p = pt(3.0, vec![1.0, 2.0]);
        let w = [1.0, 0.0]; // pred = 1, residual = -2
        let mut acc = vec![0.0; 2];
        g.accumulate(&w, &p, &mut acc);
        assert_eq!(acc, vec![-4.0, -8.0]);
        assert_eq!(g.loss(&w, &p), 4.0);
    }

    #[test]
    fn svm_gradient_is_zero_outside_margin() {
        let g = GradientKind::Svm;
        let p = pt(1.0, vec![2.0]);
        let mut acc = vec![0.0];
        g.accumulate(&[1.0], &p, &mut acc); // margin = 2 ≥ 1 → no gradient
        assert_eq!(acc, vec![0.0]);
        assert_eq!(g.loss(&[1.0], &p), 0.0);
        g.accumulate(&[0.0], &p, &mut acc); // margin = 0 < 1 → −y x
        assert_eq!(acc, vec![-2.0]);
        assert_eq!(g.loss(&[0.0], &p), 1.0);
    }

    #[test]
    fn logistic_gradient_has_correct_sign_and_magnitude() {
        let g = GradientKind::LogisticRegression;
        let p = pt(1.0, vec![1.0]);
        let mut acc = vec![0.0];
        g.accumulate(&[0.0], &p, &mut acc); // factor = −1/2
        assert!((acc[0] + 0.5).abs() < 1e-12);
        // Strongly correct classification → vanishing gradient, zero loss.
        let mut acc2 = vec![0.0];
        g.accumulate(&[100.0], &p, &mut acc2);
        assert_eq!(acc2[0], 0.0);
        assert_eq!(g.loss(&[100.0], &p), 0.0);
        // Strongly wrong classification → gradient −y x, loss ≈ |margin|.
        let mut acc3 = vec![0.0];
        g.accumulate(&[-100.0], &p, &mut acc3);
        assert_eq!(acc3[0], -1.0);
        assert_eq!(g.loss(&[-100.0], &p), 100.0);
    }

    #[test]
    fn logistic_loss_matches_gradient_numerically() {
        let g = GradientKind::LogisticRegression;
        let p = pt(-1.0, vec![0.7, -0.3]);
        let w = [0.2, 0.4];
        let eps = 1e-6;
        for j in 0..2 {
            let mut wp = w;
            wp[j] += eps;
            let mut wm = w;
            wm[j] -= eps;
            let numeric = (g.loss(&wp, &p) - g.loss(&wm, &p)) / (2.0 * eps);
            let mut acc = vec![0.0; 2];
            g.accumulate(&w, &p, &mut acc);
            assert!(
                (numeric - acc[j]).abs() < 1e-5,
                "dim {j}: numeric {numeric} vs analytic {}",
                acc[j]
            );
        }
    }

    #[test]
    fn linreg_loss_matches_gradient_numerically() {
        let g = GradientKind::LinearRegression;
        let p = pt(2.5, vec![1.5, -0.5]);
        let w = [0.3, 0.9];
        let eps = 1e-6;
        for j in 0..2 {
            let mut wp = w;
            wp[j] += eps;
            let mut wm = w;
            wm[j] -= eps;
            let numeric = (g.loss(&wp, &p) - g.loss(&wm, &p)) / (2.0 * eps);
            let mut acc = vec![0.0; 2];
            g.accumulate(&w, &p, &mut acc);
            assert!((numeric - acc[j]).abs() < 1e-4);
        }
    }

    #[test]
    fn classification_predicts_sign_regression_predicts_score() {
        let p = pt(1.0, vec![2.0]);
        assert_eq!(GradientKind::Svm.predict(&[-1.0], &p), -1.0);
        assert_eq!(GradientKind::LogisticRegression.predict(&[1.0], &p), 1.0);
        assert_eq!(GradientKind::LinearRegression.predict(&[1.5], &p), 3.0);
    }

    #[test]
    fn l2_regularizer_adds_lambda_w() {
        let r = Regularizer::L2 { lambda: 0.1 };
        let mut acc = vec![0.0, 0.0];
        r.accumulate(&[1.0, -2.0], &mut acc);
        assert!((acc[0] - 0.1).abs() < 1e-12);
        assert!((acc[1] + 0.2).abs() < 1e-12);
        assert!((r.penalty(&[3.0, 4.0]) - 0.5 * 0.1 * 25.0).abs() < 1e-12);
        assert_eq!(Regularizer::None.penalty(&[3.0, 4.0]), 0.0);
    }

    #[test]
    fn function_names_match_language() {
        assert_eq!(GradientKind::Svm.function_name(), "hinge");
        assert_eq!(GradientKind::LogisticRegression.function_name(), "logistic");
        assert_eq!(GradientKind::LinearRegression.function_name(), "squared");
    }
}
