//! The gradient functions of Table 3 and the regularizers of Equation 1.

use ml4all_linalg::{LabeledPoint, PointView};
use serde::{Deserialize, Serialize};

/// A per-point (sub)gradient of a convex loss: the `∇f_i(w)` of Section 2.
///
/// The required methods take zero-copy [`PointView`]s — the shape the
/// columnar hot loop hands out — and accumulate `∇f_i(w)` into `acc`
/// instead of allocating a vector per point. Owned-[`LabeledPoint`]
/// conveniences are provided for API-boundary callers.
pub trait Gradient: Send + Sync {
    /// Accumulate the gradient of the point's loss at `w` into `acc`.
    fn accumulate_view(&self, w: &[f64], point: PointView<'_>, acc: &mut [f64]);

    /// The point's loss at `w` (used by line search, the objective-value
    /// diagnostics, and test-error reporting).
    fn loss_view(&self, w: &[f64], point: PointView<'_>) -> f64;

    /// Predict a label for a feature vector (for test-error measurement):
    /// the raw score for regression, its sign for classification.
    fn predict_view(&self, w: &[f64], point: PointView<'_>) -> f64;

    /// Fused gradient + objective pass: accumulate the gradient into `acc`
    /// and return the point's loss. Implementations that share the
    /// `w·x` dot product between the two (all of Table 3 do) override this
    /// to halve the hot-loop memory traffic; the default performs the two
    /// passes separately.
    fn accumulate_with_loss(&self, w: &[f64], point: PointView<'_>, acc: &mut [f64]) -> f64 {
        self.accumulate_view(w, point, acc);
        self.loss_view(w, point)
    }

    /// Accumulate four points in order. The default performs exactly four
    /// [`Gradient::accumulate_view`] calls; batched implementations may
    /// instead score all four dense rows with the fixed blocked reduction
    /// order of [`ml4all_linalg::simd::dot_blocked`] — deterministic and
    /// ISA-independent, but rounded differently from the sequential
    /// single-row dot. Everything after scoring runs in row order.
    fn accumulate_view4(&self, w: &[f64], points: [PointView<'_>; 4], acc: &mut [f64]) {
        for p in points {
            self.accumulate_view(w, p, acc);
        }
    }

    /// Accumulate eight points in order — the wider sibling of
    /// [`Gradient::accumulate_view4`], sized for 2×4-lane SIMD
    /// accumulators, with the same scoring-order caveat.
    fn accumulate_view8(&self, w: &[f64], points: [PointView<'_>; 8], acc: &mut [f64]) {
        let [p0, p1, p2, p3, p4, p5, p6, p7] = points;
        self.accumulate_view4(w, [p0, p1, p2, p3], acc);
        self.accumulate_view4(w, [p4, p5, p6, p7], acc);
    }

    /// Sum four point losses into `loss_acc` in order. The accumulator is
    /// threaded through (rather than returning a batch total) so the
    /// batched path adds each loss to the running sum in exactly the
    /// sequential order; per-row scores may use the batched dense order
    /// (see [`Gradient::accumulate_view4`]).
    fn loss_view4(&self, w: &[f64], points: [PointView<'_>; 4], loss_acc: &mut f64) {
        for p in points {
            *loss_acc += self.loss_view(w, p);
        }
    }

    /// Eight-point sibling of [`Gradient::loss_view4`].
    fn loss_view8(&self, w: &[f64], points: [PointView<'_>; 8], loss_acc: &mut f64) {
        let [p0, p1, p2, p3, p4, p5, p6, p7] = points;
        self.loss_view4(w, [p0, p1, p2, p3], loss_acc);
        self.loss_view4(w, [p4, p5, p6, p7], loss_acc);
    }

    /// Fused batched gradient + objective pass over four points: the
    /// batched analogue of `for p in points { *loss_acc +=
    /// self.accumulate_with_loss(w, p, acc) }`, where implementations can
    /// share one batched `w·x` pass between both outputs.
    fn accumulate_with_loss4(
        &self,
        w: &[f64],
        points: [PointView<'_>; 4],
        acc: &mut [f64],
        loss_acc: &mut f64,
    ) {
        for p in points {
            *loss_acc += self.accumulate_with_loss(w, p, acc);
        }
    }

    /// Eight-point sibling of [`Gradient::accumulate_with_loss4`].
    fn accumulate_with_loss8(
        &self,
        w: &[f64],
        points: [PointView<'_>; 8],
        acc: &mut [f64],
        loss_acc: &mut f64,
    ) {
        let [p0, p1, p2, p3, p4, p5, p6, p7] = points;
        self.accumulate_with_loss4(w, [p0, p1, p2, p3], acc, loss_acc);
        self.accumulate_with_loss4(w, [p4, p5, p6, p7], acc, loss_acc);
    }

    /// Predict labels for four points at once — four
    /// [`Gradient::predict_view`] calls, except that batched dense scoring
    /// may round raw regression scores differently (classification signs
    /// are unaffected for any non-degenerate margin).
    fn predict_view4(&self, w: &[f64], points: [PointView<'_>; 4]) -> [f64; 4] {
        let [p0, p1, p2, p3] = points;
        [
            self.predict_view(w, p0),
            self.predict_view(w, p1),
            self.predict_view(w, p2),
            self.predict_view(w, p3),
        ]
    }

    /// Predict labels for eight points at once — the wider sibling of
    /// [`Gradient::predict_view4`].
    fn predict_view8(&self, w: &[f64], points: [PointView<'_>; 8]) -> [f64; 8] {
        let [p0, p1, p2, p3, p4, p5, p6, p7] = points;
        let lo = self.predict_view4(w, [p0, p1, p2, p3]);
        let hi = self.predict_view4(w, [p4, p5, p6, p7]);
        [lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]]
    }

    /// Owned-point convenience for [`Gradient::accumulate_view`].
    fn accumulate(&self, w: &[f64], point: &LabeledPoint, acc: &mut [f64]) {
        self.accumulate_view(w, point.view(), acc);
    }

    /// Owned-point convenience for [`Gradient::loss_view`].
    fn loss(&self, w: &[f64], point: &LabeledPoint) -> f64 {
        self.loss_view(w, point.view())
    }

    /// Owned-point convenience for [`Gradient::predict_view`].
    fn predict(&self, w: &[f64], point: &LabeledPoint) -> f64 {
        self.predict_view(w, point.view())
    }
}

/// The ML tasks / gradient functions the system supports out of the box
/// (Table 3). Users can also implement [`Gradient`] directly, mirroring the
/// paper's UDF escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GradientKind {
    /// Linear regression: `g = 2 (wᵀx − y) x`.
    LinearRegression,
    /// Logistic regression: `g = (−1 / (1 + e^{y wᵀx})) y x`.
    LogisticRegression,
    /// SVM (hinge): `g = −y x` if `y wᵀx < 1`, else `0`.
    Svm,
}

impl GradientKind {
    /// Short lowercase name as used in the declarative language
    /// (`squared()`, `logistic()`, `hinge()`).
    pub fn function_name(&self) -> &'static str {
        match self {
            Self::LinearRegression => "squared",
            Self::LogisticRegression => "logistic",
            Self::Svm => "hinge",
        }
    }

    /// `true` for classification tasks (labels in `{−1, +1}`).
    pub fn is_classification(&self) -> bool {
        !matches!(self, Self::LinearRegression)
    }
}

impl GradientKind {
    /// Gradient contribution given the precomputed score `w·x`: the shared
    /// second half of the plain and fused accumulation paths.
    #[inline]
    fn accumulate_scored(&self, score: f64, point: PointView<'_>, acc: &mut [f64]) {
        let y = point.label;
        match self {
            Self::LinearRegression => {
                point.features.axpy_into(acc, 2.0 * (score - y));
            }
            Self::LogisticRegression => {
                let margin = y * score;
                // −y x / (1 + e^{margin}); guard the exponential against
                // overflow for strongly-classified points.
                let factor = if margin > 35.0 {
                    0.0
                } else if margin < -35.0 {
                    -y
                } else {
                    -y / (1.0 + margin.exp())
                };
                if factor != 0.0 {
                    point.features.axpy_into(acc, factor);
                }
            }
            Self::Svm => {
                if y * score < 1.0 {
                    point.features.axpy_into(acc, -y);
                }
            }
        }
    }

    /// Batched `w·x` for four rows when a uniform batched kernel applies:
    /// all-dense rows of matching length go through the runtime-dispatched
    /// [`ml4all_linalg::simd::dot4`], all-sparse rows of matching
    /// dimensionality through the lockstep
    /// [`ml4all_linalg::simd::sparse_dot4`]. `None` means the caller must
    /// fall back to per-point processing (mixed storage or shape
    /// mismatch). Dense lanes follow the fixed blocked reduction order of
    /// [`ml4all_linalg::simd::dot_blocked`] — identical across ISAs, but
    /// not the sequential single-row order; sparse lanes stay bit-identical
    /// to the sequential [`ml4all_linalg::FeatureView::dot`].
    #[inline]
    fn scores4(w: &[f64], feats: [ml4all_linalg::FeatureView<'_>; 4]) -> Option<[f64; 4]> {
        use ml4all_linalg::{simd, FeatureView};
        match feats {
            [FeatureView::Dense(r0), FeatureView::Dense(r1), FeatureView::Dense(r2), FeatureView::Dense(r3)] =>
            {
                let n = w.len();
                (r0.len() == n && r1.len() == n && r2.len() == n && r3.len() == n)
                    // Equal-length re-slices let the compiler elide bounds
                    // checks inside the fused loop.
                    .then(|| simd::dot4([&r0[..n], &r1[..n], &r2[..n], &r3[..n]], w))
            }
            [FeatureView::Sparse {
                dim: d0,
                indices: i0,
                values: v0,
            }, FeatureView::Sparse {
                dim: d1,
                indices: i1,
                values: v1,
            }, FeatureView::Sparse {
                dim: d2,
                indices: i2,
                values: v2,
            }, FeatureView::Sparse {
                dim: d3,
                indices: i3,
                values: v3,
            }] => {
                let n = w.len();
                (d0 == n && d1 == n && d2 == n && d3 == n)
                    .then(|| simd::sparse_dot4([i0, i1, i2, i3], [v0, v1, v2, v3], w))
            }
            _ => None,
        }
    }

    /// Eight-row sibling of [`GradientKind::scores4`]: all-dense batches
    /// use the 2×4-lane [`ml4all_linalg::simd::dot8`] (one pass over `w`
    /// for all eight rows); anything else composes two four-row batches.
    #[inline]
    fn scores8(w: &[f64], feats: [ml4all_linalg::FeatureView<'_>; 8]) -> Option<[f64; 8]> {
        use ml4all_linalg::{simd, FeatureView};
        let n = w.len();
        if feats
            .iter()
            .all(|f| matches!(f, FeatureView::Dense(r) if r.len() == n))
        {
            let rows: [&[f64]; 8] = std::array::from_fn(|k| match feats[k] {
                FeatureView::Dense(r) => &r[..n],
                FeatureView::Sparse { .. } => unreachable!("checked all-dense"),
            });
            return Some(simd::dot8(rows, w));
        }
        let lo = Self::scores4(w, [feats[0], feats[1], feats[2], feats[3]])?;
        let hi = Self::scores4(w, [feats[4], feats[5], feats[6], feats[7]])?;
        Some([lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]])
    }

    /// Predicted label given the precomputed score `w·x`: the score's sign
    /// for classification, the raw score for regression.
    #[inline]
    fn score_to_prediction(&self, score: f64) -> f64 {
        if self.is_classification() {
            if score >= 0.0 {
                1.0
            } else {
                -1.0
            }
        } else {
            score
        }
    }

    /// Loss given the precomputed score `w·x`.
    #[inline]
    fn loss_scored(&self, score: f64, label: f64) -> f64 {
        match self {
            Self::LinearRegression => {
                let diff = score - label;
                diff * diff
            }
            Self::LogisticRegression => {
                let margin = label * score;
                if margin > 35.0 {
                    0.0
                } else if margin < -35.0 {
                    -margin
                } else {
                    (1.0 + (-margin).exp()).ln()
                }
            }
            Self::Svm => (1.0 - label * score).max(0.0),
        }
    }
}

impl Gradient for GradientKind {
    fn accumulate_view(&self, w: &[f64], point: PointView<'_>, acc: &mut [f64]) {
        let score = point.features.dot(w);
        self.accumulate_scored(score, point, acc);
    }

    fn loss_view(&self, w: &[f64], point: PointView<'_>) -> f64 {
        self.loss_scored(point.features.dot(w), point.label)
    }

    /// One `w·x` dot product feeds both the gradient and the loss.
    fn accumulate_with_loss(&self, w: &[f64], point: PointView<'_>, acc: &mut [f64]) -> f64 {
        let score = point.features.dot(w);
        self.accumulate_scored(score, point, acc);
        self.loss_scored(score, point.label)
    }

    /// Four rows share one batched scoring pass (runtime-dispatched SIMD
    /// for dense, lockstep ILP for CSR); the per-row post-score logic runs
    /// scalar in row order. Dense scores use the fixed blocked reduction
    /// order, so the batch is deterministic but rounds differently from
    /// four unbatched calls.
    fn accumulate_view4(&self, w: &[f64], points: [PointView<'_>; 4], acc: &mut [f64]) {
        match Self::scores4(w, std::array::from_fn(|k| points[k].features)) {
            Some(s) => {
                for k in 0..4 {
                    self.accumulate_scored(s[k], points[k], acc);
                }
            }
            None => {
                for p in points {
                    self.accumulate_view(w, p, acc);
                }
            }
        }
    }

    /// Eight rows per batched scoring pass — the SIMD sweet spot for the
    /// dense kernels (two 4-lane accumulators hide the add latency).
    fn accumulate_view8(&self, w: &[f64], points: [PointView<'_>; 8], acc: &mut [f64]) {
        match Self::scores8(w, std::array::from_fn(|k| points[k].features)) {
            Some(s) => {
                for k in 0..8 {
                    self.accumulate_scored(s[k], points[k], acc);
                }
            }
            None => {
                let [p0, p1, p2, p3, p4, p5, p6, p7] = points;
                self.accumulate_view4(w, [p0, p1, p2, p3], acc);
                self.accumulate_view4(w, [p4, p5, p6, p7], acc);
            }
        }
    }

    fn loss_view4(&self, w: &[f64], points: [PointView<'_>; 4], loss_acc: &mut f64) {
        match Self::scores4(w, std::array::from_fn(|k| points[k].features)) {
            Some(s) => {
                for k in 0..4 {
                    *loss_acc += self.loss_scored(s[k], points[k].label);
                }
            }
            None => {
                for p in points {
                    *loss_acc += self.loss_view(w, p);
                }
            }
        }
    }

    fn loss_view8(&self, w: &[f64], points: [PointView<'_>; 8], loss_acc: &mut f64) {
        match Self::scores8(w, std::array::from_fn(|k| points[k].features)) {
            Some(s) => {
                for k in 0..8 {
                    *loss_acc += self.loss_scored(s[k], points[k].label);
                }
            }
            None => {
                let [p0, p1, p2, p3, p4, p5, p6, p7] = points;
                self.loss_view4(w, [p0, p1, p2, p3], loss_acc);
                self.loss_view4(w, [p4, p5, p6, p7], loss_acc);
            }
        }
    }

    /// One batched `w·x` pass feeds both the gradient and the loss for
    /// four rows.
    fn accumulate_with_loss4(
        &self,
        w: &[f64],
        points: [PointView<'_>; 4],
        acc: &mut [f64],
        loss_acc: &mut f64,
    ) {
        match Self::scores4(w, std::array::from_fn(|k| points[k].features)) {
            Some(s) => {
                for k in 0..4 {
                    self.accumulate_scored(s[k], points[k], acc);
                    *loss_acc += self.loss_scored(s[k], points[k].label);
                }
            }
            None => {
                for p in points {
                    *loss_acc += self.accumulate_with_loss(w, p, acc);
                }
            }
        }
    }

    /// One batched `w·x` pass feeds both the gradient and the loss for
    /// eight rows.
    fn accumulate_with_loss8(
        &self,
        w: &[f64],
        points: [PointView<'_>; 8],
        acc: &mut [f64],
        loss_acc: &mut f64,
    ) {
        match Self::scores8(w, std::array::from_fn(|k| points[k].features)) {
            Some(s) => {
                for k in 0..8 {
                    self.accumulate_scored(s[k], points[k], acc);
                    *loss_acc += self.loss_scored(s[k], points[k].label);
                }
            }
            None => {
                let [p0, p1, p2, p3, p4, p5, p6, p7] = points;
                self.accumulate_with_loss4(w, [p0, p1, p2, p3], acc, loss_acc);
                self.accumulate_with_loss4(w, [p4, p5, p6, p7], acc, loss_acc);
            }
        }
    }

    fn predict_view4(&self, w: &[f64], points: [PointView<'_>; 4]) -> [f64; 4] {
        match Self::scores4(w, std::array::from_fn(|k| points[k].features)) {
            Some(s) => std::array::from_fn(|k| self.score_to_prediction(s[k])),
            None => std::array::from_fn(|k| self.predict_view(w, points[k])),
        }
    }

    fn predict_view8(&self, w: &[f64], points: [PointView<'_>; 8]) -> [f64; 8] {
        match Self::scores8(w, std::array::from_fn(|k| points[k].features)) {
            Some(s) => std::array::from_fn(|k| self.score_to_prediction(s[k])),
            None => std::array::from_fn(|k| self.predict_view(w, points[k])),
        }
    }

    fn predict_view(&self, w: &[f64], point: PointView<'_>) -> f64 {
        self.score_to_prediction(point.features.dot(w))
    }
}

/// The `R(w)` term of Equation 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Regularizer {
    /// No regularization (the paper's cross-system experiments fix all
    /// hyper-parameters identically and train unregularized).
    None,
    /// Ridge: `R(w) = (λ/2) ‖w‖²`, gradient `λ w`.
    L2 { lambda: f64 },
}

impl Regularizer {
    /// Gradient contribution added to the averaged data gradient.
    pub fn accumulate(&self, w: &[f64], acc: &mut [f64]) {
        if let Self::L2 { lambda } = self {
            for (a, wi) in acc.iter_mut().zip(w) {
                *a += lambda * wi;
            }
        }
    }

    /// Penalty value at `w`.
    pub fn penalty(&self, w: &[f64]) -> f64 {
        match self {
            Self::None => 0.0,
            Self::L2 { lambda } => 0.5 * lambda * w.iter().map(|x| x * x).sum::<f64>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_linalg::FeatureVec;

    fn pt(label: f64, xs: Vec<f64>) -> LabeledPoint {
        LabeledPoint::new(label, FeatureVec::dense(xs))
    }

    #[test]
    fn linreg_gradient_is_residual_scaled_features() {
        let g = GradientKind::LinearRegression;
        let p = pt(3.0, vec![1.0, 2.0]);
        let w = [1.0, 0.0]; // pred = 1, residual = -2
        let mut acc = vec![0.0; 2];
        g.accumulate(&w, &p, &mut acc);
        assert_eq!(acc, vec![-4.0, -8.0]);
        assert_eq!(g.loss(&w, &p), 4.0);
    }

    #[test]
    fn svm_gradient_is_zero_outside_margin() {
        let g = GradientKind::Svm;
        let p = pt(1.0, vec![2.0]);
        let mut acc = vec![0.0];
        g.accumulate(&[1.0], &p, &mut acc); // margin = 2 ≥ 1 → no gradient
        assert_eq!(acc, vec![0.0]);
        assert_eq!(g.loss(&[1.0], &p), 0.0);
        g.accumulate(&[0.0], &p, &mut acc); // margin = 0 < 1 → −y x
        assert_eq!(acc, vec![-2.0]);
        assert_eq!(g.loss(&[0.0], &p), 1.0);
    }

    #[test]
    fn logistic_gradient_has_correct_sign_and_magnitude() {
        let g = GradientKind::LogisticRegression;
        let p = pt(1.0, vec![1.0]);
        let mut acc = vec![0.0];
        g.accumulate(&[0.0], &p, &mut acc); // factor = −1/2
        assert!((acc[0] + 0.5).abs() < 1e-12);
        // Strongly correct classification → vanishing gradient, zero loss.
        let mut acc2 = vec![0.0];
        g.accumulate(&[100.0], &p, &mut acc2);
        assert_eq!(acc2[0], 0.0);
        assert_eq!(g.loss(&[100.0], &p), 0.0);
        // Strongly wrong classification → gradient −y x, loss ≈ |margin|.
        let mut acc3 = vec![0.0];
        g.accumulate(&[-100.0], &p, &mut acc3);
        assert_eq!(acc3[0], -1.0);
        assert_eq!(g.loss(&[-100.0], &p), 100.0);
    }

    #[test]
    fn logistic_loss_matches_gradient_numerically() {
        let g = GradientKind::LogisticRegression;
        let p = pt(-1.0, vec![0.7, -0.3]);
        let w = [0.2, 0.4];
        let eps = 1e-6;
        for j in 0..2 {
            let mut wp = w;
            wp[j] += eps;
            let mut wm = w;
            wm[j] -= eps;
            let numeric = (g.loss(&wp, &p) - g.loss(&wm, &p)) / (2.0 * eps);
            let mut acc = vec![0.0; 2];
            g.accumulate(&w, &p, &mut acc);
            assert!(
                (numeric - acc[j]).abs() < 1e-5,
                "dim {j}: numeric {numeric} vs analytic {}",
                acc[j]
            );
        }
    }

    #[test]
    fn linreg_loss_matches_gradient_numerically() {
        let g = GradientKind::LinearRegression;
        let p = pt(2.5, vec![1.5, -0.5]);
        let w = [0.3, 0.9];
        let eps = 1e-6;
        for j in 0..2 {
            let mut wp = w;
            wp[j] += eps;
            let mut wm = w;
            wm[j] -= eps;
            let numeric = (g.loss(&wp, &p) - g.loss(&wm, &p)) / (2.0 * eps);
            let mut acc = vec![0.0; 2];
            g.accumulate(&w, &p, &mut acc);
            assert!((numeric - acc[j]).abs() < 1e-4);
        }
    }

    #[test]
    fn fused_gradient_and_loss_matches_separate_passes() {
        let w = [0.3, -0.7];
        for kind in [
            GradientKind::LinearRegression,
            GradientKind::LogisticRegression,
            GradientKind::Svm,
        ] {
            for label in [1.0, -1.0] {
                let p = pt(label, vec![0.4, 1.2]);
                let mut acc_sep = vec![0.0; 2];
                kind.accumulate(&w, &p, &mut acc_sep);
                let loss_sep = kind.loss(&w, &p);
                let mut acc_fused = vec![0.0; 2];
                let loss_fused = kind.accumulate_with_loss(&w, p.view(), &mut acc_fused);
                assert_eq!(acc_sep, acc_fused, "{kind:?}");
                assert_eq!(loss_sep.to_bits(), loss_fused.to_bits(), "{kind:?}");
            }
        }
    }

    #[test]
    fn classification_predicts_sign_regression_predicts_score() {
        let p = pt(1.0, vec![2.0]);
        assert_eq!(GradientKind::Svm.predict(&[-1.0], &p), -1.0);
        assert_eq!(GradientKind::LogisticRegression.predict(&[1.0], &p), 1.0);
        assert_eq!(GradientKind::LinearRegression.predict(&[1.5], &p), 3.0);
    }

    #[test]
    fn l2_regularizer_adds_lambda_w() {
        let r = Regularizer::L2 { lambda: 0.1 };
        let mut acc = vec![0.0, 0.0];
        r.accumulate(&[1.0, -2.0], &mut acc);
        assert!((acc[0] - 0.1).abs() < 1e-12);
        assert!((acc[1] + 0.2).abs() < 1e-12);
        assert!((r.penalty(&[3.0, 4.0]) - 0.5 * 0.1 * 25.0).abs() < 1e-12);
        assert_eq!(Regularizer::None.penalty(&[3.0, 4.0]), 0.0);
    }

    #[test]
    fn function_names_match_language() {
        assert_eq!(GradientKind::Svm.function_name(), "hinge");
        assert_eq!(GradientKind::LogisticRegression.function_name(), "logistic");
        assert_eq!(GradientKind::LinearRegression.function_name(), "squared");
    }
}
