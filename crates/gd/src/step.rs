//! Step-size (learning-rate) schedules.
//!
//! The paper's experiments use MLlib's hard-coded `β/√i` schedule across
//! all systems and algorithms (Section 8.1); the iterations-estimator
//! appendix (Figure 15) additionally exercises `1/i` and `1/i²`. Constant
//! steps and backtracking line search (Appendix C) round out the set.

use serde::{Deserialize, Serialize};

/// A deterministic step-size schedule `α_i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StepSize {
    /// `α_i = c`.
    Constant(f64),
    /// `α_i = β / √i` — the MLlib default the paper adopts everywhere.
    BetaOverSqrtI {
        /// The user-defined β (1.0 in the paper's experiments).
        beta: f64,
    },
    /// `α_i = β / i`.
    BetaOverI {
        /// Numerator β.
        beta: f64,
    },
    /// `α_i = β / i²`.
    BetaOverISquared {
        /// Numerator β.
        beta: f64,
    },
}

impl StepSize {
    /// The paper's default schedule: `1/√i`.
    pub fn paper_default() -> Self {
        Self::BetaOverSqrtI { beta: 1.0 }
    }

    /// Step size at (1-based) iteration `i`.
    pub fn at(&self, i: u64) -> f64 {
        let i = i.max(1) as f64;
        match self {
            Self::Constant(c) => *c,
            Self::BetaOverSqrtI { beta } => beta / i.sqrt(),
            Self::BetaOverI { beta } => beta / i,
            Self::BetaOverISquared { beta } => beta / (i * i),
        }
    }

    /// Human-readable label for experiment output.
    pub fn label(&self) -> String {
        match self {
            Self::Constant(c) => format!("const({c})"),
            Self::BetaOverSqrtI { beta } => format!("{beta}/sqrt(i)"),
            Self::BetaOverI { beta } => format!("{beta}/i"),
            Self::BetaOverISquared { beta } => format!("{beta}/i^2"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_decay_as_specified() {
        let sqrt = StepSize::BetaOverSqrtI { beta: 1.0 };
        assert_eq!(sqrt.at(1), 1.0);
        assert_eq!(sqrt.at(4), 0.5);
        assert_eq!(sqrt.at(100), 0.1);

        let inv = StepSize::BetaOverI { beta: 2.0 };
        assert_eq!(inv.at(1), 2.0);
        assert_eq!(inv.at(4), 0.5);

        let sq = StepSize::BetaOverISquared { beta: 1.0 };
        assert_eq!(sq.at(1), 1.0);
        assert_eq!(sq.at(10), 0.01);

        let c = StepSize::Constant(0.3);
        assert_eq!(c.at(1), 0.3);
        assert_eq!(c.at(1_000_000), 0.3);
    }

    #[test]
    fn iteration_zero_is_clamped_to_one() {
        assert_eq!(StepSize::BetaOverI { beta: 1.0 }.at(0), 1.0);
    }

    #[test]
    fn schedules_are_monotone_nonincreasing() {
        for step in [
            StepSize::Constant(1.0),
            StepSize::paper_default(),
            StepSize::BetaOverI { beta: 1.0 },
            StepSize::BetaOverISquared { beta: 1.0 },
        ] {
            let mut prev = f64::INFINITY;
            for i in 1..200 {
                let a = step.at(i);
                assert!(a <= prev + 1e-15, "{} not monotone at {i}", step.label());
                assert!(a > 0.0);
                prev = a;
            }
        }
    }
}
