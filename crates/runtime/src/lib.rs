//! The shared parallel runtime of the ml4all reproduction.
//!
//! The paper's cost model is *wave-parallel*: Equations 3–5 charge CPU for
//! waves of `cap` parallel slots working over partitions. This crate is
//! the physical counterpart — one worker pool that both the GD executor
//! (per-partition gradient waves) and the plan chooser (the three
//! speculative runs of Algorithm 1) dispatch through, instead of each
//! layer spinning its own ad-hoc threads.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism at any worker count.** [`Runtime::map_indexed`]
//!    assigns work by *item index* and returns results in item order, so a
//!    caller that reduces the returned vector left-to-right gets
//!    bit-identical output whether the pool has 1, 2, or 8 workers.
//!    Per-item randomness comes from [`derive_seed`], which mixes a base
//!    seed with the item index — never from worker identity.
//! 2. **No deadlock under nesting.** A task may itself dispatch through
//!    the runtime (the chooser's speculative runs execute full GD plans).
//!    While waiting for its tasks, the submitting thread *helps*: it pops
//!    and runs queued jobs instead of blocking, so a pool saturated with
//!    waiting parents still makes progress.
//! 3. **Panic transparency.** A panicking task poisons nothing: the first
//!    payload is captured and re-thrown on the submitting thread after
//!    the whole batch completes.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// A type-erased unit of work. Lifetimes are erased on submission; safety
/// comes from [`Runtime::map_indexed`] not returning until every job of
/// the batch has run (see `run_batch`).
type Job = Box<dyn FnOnce() + Send>;

/// The two job tiers behind one lock (one lock, one condvar: pushes and
/// pops can never miss a wakeup).
#[derive(Default)]
struct Queues {
    /// FIFO of pending batch (wave) tasks. One global queue keeps
    /// scheduling order deterministic-enough for helping and makes
    /// stealing trivial.
    batch: VecDeque<Job>,
    /// Detached jobs ([`Runtime::spawn`] /
    /// [`Runtime::spawn_in_lane`]): long-lived work that only
    /// otherwise-idle workers pick up, so a whole submitted job never
    /// delays the wave tasks of a batch already in flight. Jobs are
    /// grouped into per-lane FIFOs drained round-robin — the fairness
    /// hook a multi-tenant front end keys by tenant, so one lane queueing
    /// a burst cannot starve another lane's single job.
    lanes: Vec<(String, VecDeque<Job>)>,
    /// Next lane to serve (round-robin cursor over `lanes`).
    next_lane: usize,
}

impl Queues {
    /// Append a detached job to `lane`, creating the lane on first use
    /// (lane order is creation order, so scheduling stays deterministic
    /// for a fixed submission sequence).
    fn push_detached(&mut self, lane: &str, job: Job) {
        match self.lanes.iter_mut().find(|(name, _)| name == lane) {
            Some((_, queue)) => queue.push_back(job),
            None => {
                let mut queue = VecDeque::new();
                queue.push_back(job);
                self.lanes.push((lane.to_string(), queue));
            }
        }
    }

    /// Pop the next detached job, round-robin across non-empty lanes:
    /// each pop serves the cursor's lane and advances it, so a lane with
    /// a deep backlog yields to every other waiting lane between its own
    /// jobs. Empty lanes are retired (their slot — and cursor fairness —
    /// is reclaimed; a returning tenant simply re-registers at the tail).
    fn pop_detached(&mut self) -> Option<Job> {
        while !self.lanes.is_empty() {
            let idx = self.next_lane % self.lanes.len();
            match self.lanes[idx].1.pop_front() {
                Some(job) => {
                    if self.lanes[idx].1.is_empty() {
                        // Retire the drained lane; the lane that shifts
                        // into its slot is served next, which preserves
                        // the rotation order.
                        self.lanes.remove(idx);
                        self.next_lane = if self.lanes.is_empty() {
                            0
                        } else {
                            idx % self.lanes.len()
                        };
                    } else {
                        self.next_lane = (idx + 1) % self.lanes.len();
                    }
                    return Some(job);
                }
                // Defensive: an empty lane should have been retired on
                // its last pop; drop it and keep scanning.
                None => {
                    self.lanes.remove(idx);
                    self.next_lane = if self.lanes.is_empty() {
                        0
                    } else {
                        idx % self.lanes.len()
                    };
                }
            }
        }
        None
    }

    /// Total queued detached jobs (for observability).
    fn detached_len(&self) -> usize {
        self.lanes.iter().map(|(_, q)| q.len()).sum()
    }
}

struct Shared {
    queue: Mutex<Queues>,
    /// Signalled on job push and job completion.
    cv: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn pop(&self) -> Option<Job> {
        self.queue.lock().expect("runtime queue").batch.pop_front()
    }
}

/// Per-batch completion state, shared between the submitter and its jobs.
struct Batch {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// The worker pool. Cheap to share via [`Arc`]; see [`Runtime::global`]
/// for the process-wide instance.
pub struct Runtime {
    workers: usize,
    /// `None` when `workers == 1`: everything runs inline on the caller.
    shared: Option<Arc<Shared>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.workers)
            .finish()
    }
}

impl Runtime {
    /// A pool of `workers` threads (clamped to at least 1). One worker
    /// means strictly inline execution — no threads are spawned.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        if workers == 1 {
            return Self {
                workers,
                shared: None,
                handles: Vec::new(),
            };
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queues::default()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ml4all-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn runtime worker")
            })
            .collect();
        Self {
            workers,
            shared: Some(shared),
            handles,
        }
    }

    /// The process-wide runtime: `ML4ALL_WORKERS` workers if set,
    /// otherwise the machine's available parallelism.
    pub fn global() -> Arc<Runtime> {
        static GLOBAL: OnceLock<Arc<Runtime>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let workers = std::env::var("ML4ALL_WORKERS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(1)
                    });
                Arc::new(Runtime::new(workers))
            })
            .clone()
    }

    /// Number of worker slots (1 means inline execution).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Detached jobs queued across all lanes and not yet picked up (0 for
    /// the inline runtime, whose detached jobs start immediately on
    /// dedicated threads). Snapshot for observability — stale by the time
    /// the caller reads it.
    pub fn detached_queued(&self) -> usize {
        match &self.shared {
            Some(shared) => shared.queue.lock().expect("runtime queue").detached_len(),
            None => 0,
        }
    }

    /// Apply `f` to every item of `items`, in parallel, returning results
    /// **in item order**. `f` receives `(index, &item)`.
    ///
    /// Work is split into contiguous index chunks (at most one per
    /// worker); the output vector depends only on `items` and `f`, never
    /// on the worker count — reduce it left-to-right for results that are
    /// bit-identical at any pool size.
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run_indexed(items.len(), |i| f(i, &items[i]))
    }

    /// Run `f(index, &mut slots[index])` for every slot, in parallel, each
    /// slot visited exactly once. The scratch-buffer primitive of the GD
    /// hot loop: per-partition accumulators live in `slots` across
    /// iterations, so a compute wave reuses their allocations instead of
    /// collecting a fresh result vector.
    ///
    /// Determinism matches [`Runtime::map_indexed`]: work is assigned by
    /// slot index, never by worker identity.
    pub fn scatter_indexed<T, F>(&self, slots: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        struct SendPtr<T>(*mut T);
        // SAFETY: the pointer is only dereferenced at distinct indices
        // (each task owns exactly one slot) while `slots` is exclusively
        // borrowed by this call.
        unsafe impl<T: Send> Send for SendPtr<T> {}
        unsafe impl<T: Send> Sync for SendPtr<T> {}

        let base = SendPtr(slots.as_mut_ptr());
        let base = &base;
        self.for_each_indexed(slots.len(), |i| {
            // SAFETY: `i` is unique per task, so no two tasks alias a slot,
            // and `for_each_indexed` returns before `slots` is released.
            let slot = unsafe { &mut *base.0.add(i) };
            f(i, slot);
        });
    }

    /// Run `n` indexed tasks in parallel for their side effects only.
    ///
    /// The single-worker runtime executes inline with zero heap
    /// allocation; the multi-worker path allocates nothing per task or
    /// per result — only one job envelope per busy worker (at most
    /// `workers` boxes per call).
    pub fn for_each_indexed<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let run_inline = self.shared.is_none() || n <= 1;
        if run_inline {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let shared = self.shared.as_ref().expect("multi-worker path");

        let chunks = self.workers.min(n);
        let batch = Batch {
            remaining: AtomicUsize::new(chunks),
            panic: Mutex::new(None),
        };

        {
            let mut queue = shared.queue.lock().expect("runtime queue");
            for w in 0..chunks {
                let lo = n * w / chunks;
                let hi = n * (w + 1) / chunks;
                let f = &f;
                let batch = &batch;
                let shared_ref: &Shared = shared;
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        for i in lo..hi {
                            f(i);
                        }
                    }));
                    if let Err(payload) = out {
                        let mut p = batch.panic.lock().expect("runtime panic slot");
                        p.get_or_insert(payload);
                    }
                    batch.remaining.fetch_sub(1, Ordering::AcqRel);
                    shared_ref.cv.notify_all();
                });
                // SAFETY: `for_each_indexed` does not return until
                // `remaining` hits zero, i.e. until every job above has
                // finished executing, so the `'_` borrows of `f`, `batch`,
                // and `shared` outlive the jobs. The transmute only erases
                // those lifetimes.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
                queue.batch.push_back(job);
            }
        }
        shared.cv.notify_all();

        // Help while waiting: run queued batch jobs (ours or anyone's)
        // instead of blocking, so nested dispatch cannot deadlock the
        // pool. Helping never picks up a *detached* job — a whole
        // submitted training job must not run inside someone's wave wait.
        while batch.remaining.load(Ordering::Acquire) > 0 {
            if let Some(job) = shared.pop() {
                job();
                continue;
            }
            let guard = shared.queue.lock().expect("runtime queue");
            if batch.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            if !guard.batch.is_empty() {
                continue;
            }
            let _ = shared
                .cv
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("runtime condvar");
        }

        let payload = batch.panic.lock().expect("runtime panic slot").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Submit a detached, job-scoped unit of work: `job` runs to
    /// completion on the pool (or, for the single-worker inline runtime,
    /// on a dedicated thread) and the call returns immediately.
    ///
    /// Scheduling rules keep whole jobs from starving fine-grained waves:
    /// detached jobs sit in their own FIFO that only otherwise-idle
    /// workers pop — batch tasks from [`Runtime::for_each_indexed`]
    /// always take priority, and the helping loop of a waiting submitter
    /// never picks up a detached job. A detached job may itself dispatch
    /// waves through the runtime; the nesting guarantees of the batch
    /// path apply unchanged.
    ///
    /// Panics inside `job` are contained by the worker loop (the pool
    /// survives); callers that need to observe failure should catch
    /// panics themselves and record the outcome.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.spawn_in_lane("", job);
    }

    /// [`Runtime::spawn`] into a named fairness lane. Detached jobs are
    /// popped round-robin across lanes — one pop per lane per rotation —
    /// so a lane that queues a burst of jobs cannot starve another lane's
    /// single job: the fairness hook a serving front end keys by tenant.
    /// The empty lane name is the default lane [`Runtime::spawn`] uses.
    pub fn spawn_in_lane(&self, lane: &str, job: impl FnOnce() + Send + 'static) {
        match &self.shared {
            Some(shared) => {
                shared
                    .queue
                    .lock()
                    .expect("runtime queue")
                    .push_detached(lane, Box::new(job));
                shared.cv.notify_all();
            }
            // The inline runtime has no pool threads to host a detached
            // job; a dedicated thread keeps `spawn` non-blocking.
            None => {
                std::thread::Builder::new()
                    .name("ml4all-detached".into())
                    .spawn(job)
                    .expect("spawn detached job thread");
            }
        }
    }

    /// Run `n` indexed tasks in parallel, returning results in index
    /// order. Lower-level sibling of [`Runtime::map_indexed`]; expressed
    /// as a [`Runtime::scatter_indexed`] over per-index result slots so
    /// the batch-dispatch machinery lives in exactly one place.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.shared.is_none() || n <= 1 {
            return (0..n).map(f).collect();
        }
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        self.scatter_indexed(&mut slots, |i, slot| *slot = Some(f(i)));
        slots
            .into_iter()
            .map(|slot| slot.expect("every task completed"))
            .collect()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.shutdown.store(true, Ordering::Release);
            shared.cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("runtime queue");
            loop {
                // Batch (wave) tasks always take priority; an otherwise-
                // idle worker hosts the next detached job.
                if let Some(job) = queue.batch.pop_front() {
                    break job;
                }
                if let Some(job) = queue.pop_detached() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.cv.wait(queue).expect("runtime condvar");
            }
        };
        // Batch jobs catch their own panics (see `run_indexed`) and
        // detached jobs are wrapped by their submitters, so a worker
        // thread survives any task failure.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// A cooperative cancellation token shared between a job's owner and its
/// executor. Cancellation is a one-way latch: once set it stays set, and
/// executors observe it at wave (iteration) boundaries — a cancelled run
/// finishes the wave in flight, then stops.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latch the token: every holder observes the request from now on.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Version of the deterministic RNG stream layout: the mapping from
/// `(seed, plan)` to the sequence of sampled coordinates and generated
/// rows. Same-seed runs reproduce bit for bit **within** one stream
/// version; across versions only statistical behaviour is preserved.
///
/// History: v1 drew Bernoulli samples with a per-unit coin-flip scan;
/// v2 switched to geometric skip sampling (same distribution, different
/// stream); v3 made the shuffled-partition sampler serve draws through an
/// incremental forward Fisher–Yates cursor (one `gen_range` per served
/// unit instead of a whole-partition permutation upfront — same uniform
/// permutation distribution, different stream). Bump this whenever a
/// sampler, seed-derivation rule, or generator changes the consumed
/// random stream, so that cross-build seed compatibility is explicit
/// instead of silently broken.
pub const RNG_STREAM_VERSION: u32 = 3;

/// Mix a base seed with a partition/task index into an independent,
/// deterministic per-item seed (SplitMix64 finalizer). Identical inputs
/// give identical seeds on every platform and at every worker count.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_returns_results_in_item_order() {
        let rt = Runtime::new(4);
        let items: Vec<u64> = (0..100).collect();
        let out = rt.map_indexed(&items, |i, x| (i as u64) * 1000 + x);
        let expect: Vec<u64> = (0..100).map(|i| i * 1000 + i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn results_are_identical_across_worker_counts() {
        let items: Vec<f64> = (0..57).map(|i| i as f64 * 0.1).collect();
        let reduce = |rt: &Runtime| -> f64 {
            rt.map_indexed(&items, |_, x| x.sin())
                .into_iter()
                .fold(0.0, |a, b| a + b)
        };
        let r1 = reduce(&Runtime::new(1));
        let r2 = reduce(&Runtime::new(2));
        let r8 = reduce(&Runtime::new(8));
        assert_eq!(r1.to_bits(), r2.to_bits());
        assert_eq!(r1.to_bits(), r8.to_bits());
    }

    #[test]
    fn single_worker_runs_inline() {
        let rt = Runtime::new(1);
        assert_eq!(rt.workers(), 1);
        let caller = std::thread::current().id();
        let ids = rt.run_indexed(4, |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn nested_dispatch_does_not_deadlock() {
        let rt = Arc::new(Runtime::new(2));
        // More outer tasks than workers, each dispatching inner tasks.
        let inner = Arc::clone(&rt);
        let out = rt.run_indexed(8, move |i| {
            inner.run_indexed(8, |j| i * j).into_iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| i * 28).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let rt = Runtime::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            rt.run_indexed(8, |i| {
                if i == 5 {
                    panic!("boom {i}");
                }
                i
            })
        }));
        assert!(result.is_err());
        // The pool survives and keeps working after a panic.
        assert_eq!(rt.run_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn scatter_indexed_visits_every_slot_exactly_once() {
        for workers in [1, 4] {
            let rt = Runtime::new(workers);
            let mut slots: Vec<u64> = vec![0; 123];
            rt.scatter_indexed(&mut slots, |i, s| *s += i as u64 + 1);
            let expect: Vec<u64> = (0..123).map(|i| i + 1).collect();
            assert_eq!(slots, expect, "at {workers} workers");
        }
    }

    #[test]
    fn for_each_indexed_propagates_panics_and_recovers() {
        let rt = Runtime::new(2);
        let hits = std::sync::atomic::AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            rt.for_each_indexed(8, |i| {
                if i == 3 {
                    panic!("boom {i}");
                }
                hits.fetch_add(1, Ordering::Relaxed);
            })
        }));
        assert!(result.is_err());
        // The pool survives and keeps working after a panic.
        let ok = std::sync::atomic::AtomicUsize::new(0);
        rt.for_each_indexed(5, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn scatter_indexed_reuses_slot_allocations() {
        let rt = Runtime::new(2);
        let mut slots: Vec<Vec<f64>> = (0..8).map(|_| vec![0.0; 64]).collect();
        let ptrs: Vec<*const f64> = slots.iter().map(|s| s.as_ptr()).collect();
        for wave in 0..3 {
            rt.scatter_indexed(&mut slots, |i, s| {
                s.fill(0.0);
                s[0] = (wave * 100 + i) as f64;
            });
        }
        let after: Vec<*const f64> = slots.iter().map(|s| s.as_ptr()).collect();
        assert_eq!(ptrs, after, "slot buffers must not reallocate");
        assert_eq!(slots[3][0], 203.0);
    }

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
        assert_ne!(derive_seed(42, 3), derive_seed(42, 4));
        assert_ne!(derive_seed(42, 3), derive_seed(43, 3));
    }

    #[test]
    fn spawn_runs_detached_jobs_on_pooled_and_inline_runtimes() {
        for workers in [1usize, 4] {
            let rt = Arc::new(Runtime::new(workers));
            let (tx, rx) = std::sync::mpsc::channel();
            for i in 0..8u32 {
                let tx = tx.clone();
                let inner = Arc::clone(&rt);
                rt.spawn(move || {
                    // A detached job may itself dispatch waves.
                    let sum: u32 = inner.run_indexed(4, |j| i * j as u32).into_iter().sum();
                    tx.send(sum).unwrap();
                });
            }
            drop(tx);
            let mut got: Vec<u32> = rx.iter().collect();
            got.sort_unstable();
            let mut expect: Vec<u32> = (0..8).map(|i| i * 6).collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "at {workers} workers");
        }
    }

    #[test]
    fn lanes_are_served_round_robin_not_fifo() {
        // Single-worker semantics via direct queue manipulation: queue a
        // deep backlog in lane A, then one job in lane B. Round-robin
        // must serve B's job second, not after A's whole backlog.
        let mut queues = Queues::default();
        let order = Arc::new(Mutex::new(Vec::new()));
        let push = |queues: &mut Queues, lane: &str, tag: &'static str| {
            let order = Arc::clone(&order);
            queues.push_detached(lane, Box::new(move || order.lock().unwrap().push(tag)));
        };
        for _ in 0..4 {
            push(&mut queues, "A", "A");
        }
        push(&mut queues, "B", "B");
        push(&mut queues, "C", "C");
        assert_eq!(queues.detached_len(), 6);
        while let Some(job) = queues.pop_detached() {
            job();
        }
        assert_eq!(
            *order.lock().unwrap(),
            ["A", "B", "C", "A", "A", "A"],
            "each rotation serves every waiting lane once"
        );
        assert_eq!(queues.detached_len(), 0);
    }

    #[test]
    fn lane_fairness_holds_under_a_live_pool() {
        // Saturate a 1-worker pool's detached tier: the first job holds
        // the only worker while lane "hog" queues a backlog and lane
        // "small" queues one job. The pool must run the small lane's job
        // before the hog's backlog drains.
        let rt = Runtime::new(2);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        // Pin both workers so later spawns definitely queue.
        let gate = Arc::new(Mutex::new(gate_rx));
        for _ in 0..2 {
            let gate = Arc::clone(&gate);
            rt.spawn_in_lane("pin", move || {
                gate.lock().unwrap().recv().unwrap();
            });
        }
        for i in 0..5 {
            let order = Arc::clone(&order);
            let done = done_tx.clone();
            rt.spawn_in_lane("hog", move || {
                order.lock().unwrap().push(format!("hog{i}"));
                done.send(()).unwrap();
            });
        }
        let small_order = Arc::clone(&order);
        let done = done_tx.clone();
        rt.spawn_in_lane("small", move || {
            small_order.lock().unwrap().push("small".to_string());
            done.send(()).unwrap();
        });
        // Release the pinned workers; all six queued jobs now drain.
        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        for _ in 0..6 {
            done_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        let order = order.lock().unwrap();
        let small_at = order.iter().position(|t| t == "small").unwrap();
        assert!(
            small_at <= 2,
            "lane `small` must be served within one rotation of the hog \
             backlog, got order {order:?}"
        );
    }

    #[test]
    fn detached_panic_does_not_kill_the_pool() {
        let rt = Runtime::new(2);
        let (tx, rx) = std::sync::mpsc::channel();
        rt.spawn(|| panic!("detached boom"));
        rt.spawn(move || tx.send(7u32).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 7);
        // Batch dispatch still works afterwards.
        assert_eq!(rt.run_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn cancel_token_latches_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let rt = Runtime::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(rt.map_indexed(&empty, |_, x| *x).is_empty());
        assert_eq!(rt.map_indexed(&[7u32], |_, x| *x * 2), vec![14]);
    }
}
