//! Property-based tests for the optimizer: curve-fit recovery, cost-model
//! monotonicity, plan-space invariants, and parser robustness.

use ml4all_core::cost::PlanCostModel;
use ml4all_core::curvefit::{running_min_error_seq, CurveFit};
use ml4all_core::lang::parse_query;
use ml4all_core::planspace::enumerate_plans;
use ml4all_dataflow::{ClusterSpec, DatasetDescriptor};
use ml4all_gd::{GdPlan, TransformPolicy};
use proptest::prelude::*;

fn arb_descriptor() -> impl Strategy<Value = DatasetDescriptor> {
    (
        100u64..100_000_000,
        1usize..10_000,
        (1024u64 * 1024)..(256u64 * 1024 * 1024 * 1024),
        0.001f64..1.0,
    )
        .prop_map(|(n, dims, bytes, density)| {
            DatasetDescriptor::new("prop", n, dims, bytes, density)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn curve_fit_recovers_coefficient(a_true in 1.0f64..1e6, points in 5usize..200) {
        let pairs: Vec<(u64, f64)> = (1..=points as u64)
            .map(|i| (i, a_true / i as f64))
            .collect();
        let fit = CurveFit::fit(&pairs).unwrap();
        prop_assert!((fit.a - a_true).abs() / a_true < 1e-6);
        prop_assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn iterations_for_is_antitone_in_tolerance(
        a in 1.0f64..1e5,
        eps_lo in 1e-6f64..1e-2,
        factor in 1.5f64..100.0,
    ) {
        let fit = CurveFit { a, r_squared: 1.0, points: 10 };
        let eps_hi = eps_lo * factor;
        // Tighter tolerance never needs fewer iterations.
        prop_assert!(fit.iterations_for(eps_lo) >= fit.iterations_for(eps_hi));
    }

    #[test]
    fn running_min_is_sorted_strictly_decreasing(errors in prop::collection::vec(1e-6f64..10.0, 0..100)) {
        // Error sequences come from the executor ordered by iteration.
        let raw: Vec<(u64, f64)> = errors
            .into_iter()
            .enumerate()
            .map(|(i, e)| (i as u64 + 1, e))
            .collect();
        let cleaned = running_min_error_seq(&raw);
        for w in cleaned.windows(2) {
            prop_assert!(w[0].1 > w[1].1, "errors strictly decrease");
            prop_assert!(w[0].0 < w[1].0, "iterations strictly increase");
        }
        // The cleaned sequence starts at the first raw entry and ends at
        // the global minimum.
        if let Some(first) = raw.first() {
            prop_assert_eq!(cleaned[0], *first);
            let global_min = raw.iter().map(|(_, e)| *e).fold(f64::INFINITY, f64::min);
            prop_assert_eq!(cleaned.last().unwrap().1, global_min);
        }
    }

    #[test]
    fn plan_space_has_eleven_unique_plans_for_any_batch(batch in 1usize..100_000) {
        let plans = enumerate_plans(batch);
        prop_assert_eq!(plans.len(), 11);
        let names: std::collections::HashSet<String> =
            plans.iter().map(|p| p.name()).collect();
        prop_assert_eq!(names.len(), 11);
    }

    #[test]
    fn total_cost_is_monotone_in_iterations(desc in arb_descriptor(), t in 1u64..100_000) {
        let spec = ClusterSpec::paper_testbed();
        let model = PlanCostModel::new(&spec, &desc);
        for plan in enumerate_plans(1000) {
            let c1 = model.total_s(&plan, t);
            let c2 = model.total_s(&plan, t + 1);
            prop_assert!(c2 >= c1, "{}: {c1} -> {c2}", plan.name());
            prop_assert!(c1.is_finite() && c1 > 0.0);
        }
    }

    #[test]
    fn eager_preparation_dominates_lazy(desc in arb_descriptor()) {
        let spec = ClusterSpec::paper_testbed();
        let model = PlanCostModel::new(&spec, &desc);
        let eager = GdPlan::sgd(
            TransformPolicy::Eager,
            ml4all_dataflow::SamplingMethod::ShuffledPartition,
        )
        .unwrap();
        let lazy = GdPlan::sgd(
            TransformPolicy::Lazy,
            ml4all_dataflow::SamplingMethod::ShuffledPartition,
        )
        .unwrap();
        prop_assert!(model.preparation_s(&eager) >= model.preparation_s(&lazy));
        // And per-iteration the order flips (lazy pays per-unit transform).
        prop_assert!(model.per_iteration_s(&lazy) >= model.per_iteration_s(&eager) - 1e-12);
    }

    #[test]
    fn parser_accepts_generated_valid_queries(
        eps in 1e-6f64..1.0,
        iters in 1u64..1_000_000,
        hours in 0u64..100,
        algo_ix in 0usize..3,
        task_ix in 0usize..3,
    ) {
        let task = ["classification", "regression", "logistic()"][task_ix];
        let algo = ["BGD", "SGD", "MGD"][algo_ix];
        let q = format!(
            "run {task} on some_data.txt having time {hours}h30m, epsilon {eps}, \
             max iter {iters} using algorithm {algo}, step 1;"
        );
        let parsed = parse_query(&q);
        prop_assert!(parsed.is_ok(), "{q}: {parsed:?}");
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        // Robustness: junk must produce Err, never a panic.
        let _ = parse_query(&input);
    }
}
