//! Property-based tests for the optimizer: curve-fit recovery, cost-model
//! monotonicity, plan-space invariants, and parser robustness.

use ml4all_core::cost::PlanCostModel;
use ml4all_core::curvefit::{running_min_error_seq, CurveFit};
use ml4all_core::lang::parse_query;
use ml4all_core::planspace::enumerate_plans;
use ml4all_dataflow::{ClusterSpec, DatasetDescriptor};
use ml4all_gd::{GdPlan, TransformPolicy};
use proptest::prelude::*;

fn arb_descriptor() -> impl Strategy<Value = DatasetDescriptor> {
    (
        100u64..100_000_000,
        1usize..10_000,
        (1024u64 * 1024)..(256u64 * 1024 * 1024 * 1024),
        0.001f64..1.0,
    )
        .prop_map(|(n, dims, bytes, density)| {
            DatasetDescriptor::new("prop", n, dims, bytes, density)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn curve_fit_recovers_coefficient(a_true in 1.0f64..1e6, points in 5usize..200) {
        let pairs: Vec<(u64, f64)> = (1..=points as u64)
            .map(|i| (i, a_true / i as f64))
            .collect();
        let fit = CurveFit::fit(&pairs).unwrap();
        prop_assert!((fit.a - a_true).abs() / a_true < 1e-6);
        prop_assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn iterations_for_is_antitone_in_tolerance(
        a in 1.0f64..1e5,
        eps_lo in 1e-6f64..1e-2,
        factor in 1.5f64..100.0,
    ) {
        let fit = CurveFit { a, r_squared: 1.0, points: 10 };
        let eps_hi = eps_lo * factor;
        // Tighter tolerance never needs fewer iterations.
        prop_assert!(fit.iterations_for(eps_lo) >= fit.iterations_for(eps_hi));
    }

    #[test]
    fn running_min_is_sorted_strictly_decreasing(errors in prop::collection::vec(1e-6f64..10.0, 0..100)) {
        // Error sequences come from the executor ordered by iteration.
        let raw: Vec<(u64, f64)> = errors
            .into_iter()
            .enumerate()
            .map(|(i, e)| (i as u64 + 1, e))
            .collect();
        let cleaned = running_min_error_seq(&raw);
        for w in cleaned.windows(2) {
            prop_assert!(w[0].1 > w[1].1, "errors strictly decrease");
            prop_assert!(w[0].0 < w[1].0, "iterations strictly increase");
        }
        // The cleaned sequence starts at the first raw entry and ends at
        // the global minimum.
        if let Some(first) = raw.first() {
            prop_assert_eq!(cleaned[0], *first);
            let global_min = raw.iter().map(|(_, e)| *e).fold(f64::INFINITY, f64::min);
            prop_assert_eq!(cleaned.last().unwrap().1, global_min);
        }
    }

    #[test]
    fn plan_space_has_eleven_unique_plans_for_any_batch(batch in 1usize..100_000) {
        let plans = enumerate_plans(batch);
        prop_assert_eq!(plans.len(), 11);
        let names: std::collections::HashSet<String> =
            plans.iter().map(|p| p.name()).collect();
        prop_assert_eq!(names.len(), 11);
    }

    #[test]
    fn total_cost_is_monotone_in_iterations(desc in arb_descriptor(), t in 1u64..100_000) {
        let spec = ClusterSpec::paper_testbed();
        let model = PlanCostModel::new(&spec, &desc);
        for plan in enumerate_plans(1000) {
            let c1 = model.total_s(&plan, t);
            let c2 = model.total_s(&plan, t + 1);
            prop_assert!(c2 >= c1, "{}: {c1} -> {c2}", plan.name());
            prop_assert!(c1.is_finite() && c1 > 0.0);
        }
    }

    #[test]
    fn eager_preparation_dominates_lazy(desc in arb_descriptor()) {
        let spec = ClusterSpec::paper_testbed();
        let model = PlanCostModel::new(&spec, &desc);
        let eager = GdPlan::sgd(
            TransformPolicy::Eager,
            ml4all_dataflow::SamplingMethod::ShuffledPartition,
        )
        .unwrap();
        let lazy = GdPlan::sgd(
            TransformPolicy::Lazy,
            ml4all_dataflow::SamplingMethod::ShuffledPartition,
        )
        .unwrap();
        prop_assert!(model.preparation_s(&eager) >= model.preparation_s(&lazy));
        // And per-iteration the order flips (lazy pays per-unit transform).
        prop_assert!(model.per_iteration_s(&lazy) >= model.per_iteration_s(&eager) - 1e-12);
    }

    #[test]
    fn total_cost_is_monotone_in_dataset_size(
        n in 1_000u64..10_000_000,
        dims in 1usize..5_000,
        unit_bytes in 16u64..4_096,
        density in 0.01f64..1.0,
        factor in 1.0f64..500.0,
        t in 1u64..10_000,
    ) {
        // Scale points and bytes together (fixed bytes-per-unit, so the
        // per-partition unit count k stays put): a strictly larger dataset
        // must never be modelled as cheaper, for any plan in the space.
        let spec = ClusterSpec::paper_testbed();
        let small = DatasetDescriptor::new("small", n, dims, n * unit_bytes, density);
        let big = DatasetDescriptor::new(
            "big",
            (n as f64 * factor) as u64,
            dims,
            ((n as f64 * factor) as u64) * unit_bytes,
            density,
        );
        let small_model = PlanCostModel::new(&spec, &small);
        let big_model = PlanCostModel::new(&spec, &big);
        for plan in enumerate_plans(1000) {
            let c_small = small_model.total_s(&plan, t);
            let c_big = big_model.total_s(&plan, t);
            prop_assert!(
                c_big >= c_small * (1.0 - 1e-9),
                "{}: {c_small} -> {c_big} under ×{factor}",
                plan.name()
            );
        }
    }

    #[test]
    fn bernoulli_simulated_scan_cost_equals_modelled_scan_cost(
        n in 32usize..1_500,
        partitions in 1u64..8,
        seed in 0u64..1_000,
    ) {
        // The Bernoulli sampler *simulates* a full scan per draw; its
        // ledger charge must be identical to the cost model's Sample
        // operator (cSP, Equation 8) — the executed and the modelled
        // Figure 4 cost profile are the same quantity. m = n pins the
        // inclusion probability at 1, so exactly one scan happens.
        use ml4all_core::cost::OperatorCosts;
        use ml4all_dataflow::{PartitionScheme, PartitionedDataset, SamplerState, SimEnv};
        use ml4all_linalg::{FeatureVec, LabeledPoint};
        use rand::SeedableRng;

        let spec = ClusterSpec::paper_testbed();
        let points: Vec<LabeledPoint> = (0..n)
            .map(|i| LabeledPoint::new(1.0, FeatureVec::dense(vec![i as f64])))
            .collect();
        let desc = DatasetDescriptor::new(
            "prop",
            n as u64,
            1,
            partitions * spec.partition_bytes,
            1.0,
        );
        let data =
            PartitionedDataset::with_descriptor(desc, points, PartitionScheme::RoundRobin, &spec)
                .unwrap();
        let mut env = SimEnv::new(spec.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sampler = SamplerState::new(ml4all_dataflow::SamplingMethod::Bernoulli);
        let drawn = sampler.draw(&data, n, &mut env, &mut rng).unwrap();
        prop_assert_eq!(drawn.len(), n, "probability 1 includes every unit");
        let modelled = OperatorCosts::new(&spec, data.descriptor())
            .sample_s(ml4all_dataflow::SamplingMethod::Bernoulli, n as u64);
        let measured = env.elapsed_s();
        prop_assert!(
            (measured - modelled).abs() <= 1e-12 * modelled.max(1.0),
            "measured {measured} vs modelled {modelled}"
        );
    }

    #[test]
    fn parser_accepts_generated_valid_queries(
        eps in 1e-6f64..1.0,
        iters in 1u64..1_000_000,
        hours in 0u64..100,
        algo_ix in 0usize..3,
        task_ix in 0usize..3,
    ) {
        let task = ["classification", "regression", "logistic()"][task_ix];
        let algo = ["BGD", "SGD", "MGD"][algo_ix];
        let q = format!(
            "run {task} on some_data.txt having time {hours}h30m, epsilon {eps}, \
             max iter {iters} using algorithm {algo}, step 1;"
        );
        let parsed = parse_query(&q);
        prop_assert!(parsed.is_ok(), "{q}: {parsed:?}");
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        // Robustness: junk must produce Err, never a panic.
        let _ = parse_query(&input);
    }
}
