//! The cost-based plan chooser: speculation-estimated iterations × modelled
//! cost per iteration, argmin over the Figure 5 plan space (Sections 3, 7).

use std::sync::Arc;
use std::time::Duration;

use ml4all_dataflow::{Backend, ClusterSpec, CostBreakdown, PartitionedDataset, SimEnv};
use ml4all_gd::{
    execute_plan, GdError, GdPlan, GdVariant, GradientKind, Regularizer, StepSize, TrainParams,
    TrainResult,
};
use ml4all_runtime::Runtime;
use serde::{Deserialize, Serialize};

use crate::calibration::{plan_feature_key, CalibrationSnapshot, CalibrationStamp};
use crate::cost::PlanCostModel;
use crate::estimator::{estimate_iterations, IterationsEstimate, SpeculationConfig};
use crate::planspace::enumerate_plans;
use crate::platform::{map_plan, PlatformMapping};
use crate::OptimizerError;

/// Where the iteration counts come from.
#[derive(Debug, Clone)]
pub enum IterationsSource {
    /// Speculate per GD variant (Algorithm 1). The default.
    Speculate(SpeculationConfig),
    /// The user fixed the iteration count (`max iter` without a tolerance):
    /// no speculation is needed and optimization takes well under 100 ms —
    /// the paper's observation in Section 8.3.
    Fixed(u64),
}

/// Optimizer configuration: the task, hyper-parameters, constraints, and
/// speculation settings.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Gradient function (Table 3 task).
    pub gradient: GradientKind,
    /// Step schedule (the paper pins `β/√i`, β = 1 everywhere).
    pub step: StepSize,
    /// Regularizer.
    pub regularizer: Regularizer,
    /// Requested tolerance ε (`having epsilon …`; default 1e-3 as in
    /// Appendix A).
    pub tolerance: f64,
    /// Iteration cap (`having max iter …`).
    pub max_iter: u64,
    /// Mini-batch size used for the MGD plans.
    pub batch_size: usize,
    /// Iteration-count source.
    pub iterations: IterationsSource,
    /// Optional training-time budget (`having time …`): if even the best
    /// plan exceeds it, the optimizer reports the constraint to revisit.
    pub time_budget: Option<Duration>,
    /// Restrict the search to one GD algorithm (`using algorithm SGD`) —
    /// the optimizer then only picks sampling/transformation, as in the
    /// Figure 9 per-algorithm comparisons.
    pub pinned_variant: Option<GdVariant>,
    /// Restrict the search to one sampling strategy (`using sampler …`).
    pub pinned_sampling: Option<ml4all_dataflow::SamplingMethod>,
    /// RNG seed.
    pub seed: u64,
    /// Worker pool the per-variant speculative runs of Algorithm 1
    /// dispatch through (defaults to the process-wide runtime).
    pub runtime: Arc<Runtime>,
    /// Calibration state to price plans with ([`CalibrationSnapshot`]):
    /// per-category unit-cost scales plus the learned residual table.
    /// `None` (the default) and the identity snapshot price identically —
    /// bit for bit — to the static paper model.
    pub calibration: Option<CalibrationSnapshot>,
}

impl OptimizerConfig {
    /// Defaults: tolerance 1e-3, max 1 000 iterations, batch 1 000,
    /// speculation per Algorithm 1's defaults.
    pub fn new(gradient: GradientKind) -> Self {
        Self {
            gradient,
            step: StepSize::paper_default(),
            regularizer: Regularizer::None,
            tolerance: 1e-3,
            max_iter: 1000,
            batch_size: 1000,
            iterations: IterationsSource::Speculate(SpeculationConfig::default()),
            time_budget: None,
            pinned_variant: None,
            pinned_sampling: None,
            seed: 0,
            runtime: Runtime::global(),
            calibration: None,
        }
    }

    /// Set the tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Set the iteration cap.
    pub fn with_max_iter(mut self, max_iter: u64) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Fix the iteration count (skip speculation).
    pub fn with_fixed_iterations(mut self, iterations: u64) -> Self {
        self.iterations = IterationsSource::Fixed(iterations);
        self.max_iter = iterations;
        self
    }

    /// Set the speculation configuration.
    pub fn with_speculation(mut self, config: SpeculationConfig) -> Self {
        self.iterations = IterationsSource::Speculate(config);
        self
    }

    /// Set the MGD batch size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch;
        self
    }

    /// Set a wall training-time budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Restrict the search to one GD algorithm.
    pub fn with_pinned_variant(mut self, variant: GdVariant) -> Self {
        self.pinned_variant = Some(variant);
        if let GdVariant::MiniBatch { batch } = variant {
            self.batch_size = batch;
        }
        self
    }

    /// Restrict the search to one sampling strategy.
    pub fn with_pinned_sampling(mut self, sampling: ml4all_dataflow::SamplingMethod) -> Self {
        self.pinned_sampling = Some(sampling);
        self
    }

    /// Dispatch speculation through an explicit worker pool.
    pub fn with_runtime(mut self, runtime: Arc<Runtime>) -> Self {
        self.runtime = runtime;
        self
    }

    /// Price plans with this calibration snapshot.
    pub fn with_calibration(mut self, snapshot: CalibrationSnapshot) -> Self {
        self.calibration = Some(snapshot);
        self
    }

    /// The training parameters implied by this configuration.
    pub fn train_params(&self) -> TrainParams {
        TrainParams {
            gradient: self.gradient,
            step: self.step,
            regularizer: self.regularizer,
            tolerance: self.tolerance,
            max_iter: self.max_iter,
            seed: self.seed,
            record_error_seq: false,
            wall_budget: None,
        }
    }
}

/// One costed plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanChoice {
    /// The plan.
    pub plan: GdPlan,
    /// Iterations the optimizer expects it to run (estimate clamped by
    /// `max_iter`).
    pub estimated_iterations: u64,
    /// One-time preparation cost (job init + stage + eager transform).
    pub preparation_s: f64,
    /// Expected per-iteration cost.
    pub per_iteration_s: f64,
    /// Total estimated cost in simulated seconds.
    pub total_s: f64,
    /// Per-operator platform assignment (Appendix D) of this plan on this
    /// dataset — the `EXPLAIN` surface reports it alongside the cost.
    pub mapping: PlatformMapping,
    /// Ledger-**measured** execution cost in simulated seconds, filled
    /// when the caller profiled the plan through its mapped backend for
    /// the costed iteration count (`ExplainRequest::measured`); `None` on
    /// pure cost-model reports, or when the profiled run diverged.
    pub measured_s: Option<f64>,
    /// Total cost after calibration (unit-cost scales + residual factor),
    /// filled when the optimizer ran with a [`CalibrationSnapshot`]. This
    /// is the quantity the calibrated chooser ranks by; under the identity
    /// snapshot it equals [`PlanChoice::total_s`] bit for bit.
    pub calibrated_s: Option<f64>,
    /// Predicted one-time preparation cost as a per-category vector,
    /// filled on calibrated reports (the observation the calibrator
    /// compares against the measured ledger).
    pub prep_cost: Option<CostBreakdown>,
    /// Predicted per-iteration cost as a per-category vector, filled on
    /// calibrated reports.
    pub iter_cost: Option<CostBreakdown>,
}

impl PlanChoice {
    /// The cost the chooser ranks this plan by: calibrated when priced
    /// under a snapshot, the static model's total otherwise.
    pub fn ranking_s(&self) -> f64 {
        self.calibrated_s.unwrap_or(self.total_s)
    }
}

/// Per-variant speculation outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantEstimate {
    /// The variant speculated.
    pub variant: GdVariant,
    /// Its estimate.
    pub estimate: IterationsEstimate,
}

/// The optimizer's full report: every plan costed, cheapest first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizerReport {
    /// All plans, sorted by ascending total cost.
    pub choices: Vec<PlanChoice>,
    /// Speculation outcomes per variant (empty when iterations were fixed).
    pub estimates: Vec<VariantEstimate>,
    /// Total simulated optimizer overhead (speculation runs).
    pub speculation_sim_s: f64,
    /// Total real wall-clock the optimizer spent speculating.
    pub speculation_wall: Duration,
    /// `true` when this report was served from a plan cache instead of a
    /// fresh optimization: speculation was skipped and every field (the
    /// speculation costs included) is the cached cold run's value.
    pub cache_hit: bool,
    /// Present when the report was priced under a calibration snapshot:
    /// the generation and residual confidence `explain` renders in its
    /// footer. `None` on static-model reports.
    pub calibration: Option<CalibrationStamp>,
}

impl OptimizerReport {
    /// The chosen (cheapest) plan.
    pub fn best(&self) -> &PlanChoice {
        &self.choices[0]
    }

    /// The worst plan — what the optimizer saved the user from
    /// (Figure 8's max bar).
    pub fn worst(&self) -> &PlanChoice {
        self.choices.last().expect("search space is non-empty")
    }

    /// The cheapest plan under **measured** costs — what the argmin would
    /// be if ledger-measured execution replaced the model. `None` unless
    /// every choice carries a measurement. Ties break toward the
    /// predicted-cheaper (earlier) choice, so a measured tie never reads
    /// as an argmin flip.
    pub fn measured_best(&self) -> Option<&PlanChoice> {
        let mut best: Option<(f64, &PlanChoice)> = None;
        for choice in &self.choices {
            let measured = choice.measured_s?;
            if best.is_none_or(|(b, _)| measured < b) {
                best = Some((measured, choice));
            }
        }
        best.map(|(_, choice)| choice)
    }

    /// Estimated iterations for a given variant, if speculated.
    pub fn estimate_for(&self, variant: GdVariant) -> Option<&IterationsEstimate> {
        self.estimates
            .iter()
            .find(|e| std::mem::discriminant(&e.variant) == std::mem::discriminant(&variant))
            .map(|e| &e.estimate)
    }
}

/// The backend a plan mapping executes on (the Appendix D routing rule):
/// a mapping that places any operator on Spark runs through the simulated
/// cluster, a pure-driver mapping stays on the local runtime.
pub fn backend_for(mapping: &PlatformMapping, cluster: &ClusterSpec) -> Backend {
    if mapping.uses_cluster() {
        Backend::simulated_cluster(cluster)
    } else {
        Backend::Local
    }
}

/// Profile one costed choice: execute its plan through its mapped backend
/// — on the configuration's worker pool — for exactly the iteration count
/// the prediction was costed with (zero tolerance pins the run, so
/// measured and predicted cover the same work). This is the single
/// definition of the profiling protocol shared by `EXPLAIN`'s measured
/// column and the conformance harness. Returns `Ok(None)` when the run
/// diverges; other execution failures propagate.
pub fn profile_choice(
    choice: &PlanChoice,
    data: &PartitionedDataset,
    config: &OptimizerConfig,
    cluster: &ClusterSpec,
) -> Result<Option<TrainResult>, GdError> {
    let mut params = config.train_params();
    params.max_iter = choice.estimated_iterations;
    params.tolerance = 0.0;
    let backend = backend_for(&choice.mapping, cluster);
    let mut env =
        SimEnv::with_runtime(cluster.clone(), Arc::clone(&config.runtime)).with_backend(backend);
    match execute_plan(&choice.plan, data, &params, &mut env) {
        Ok(result) => Ok(Some(result)),
        Err(GdError::Diverged { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Run the optimizer: estimate iterations per variant, cost all 11 plans,
/// return them cheapest-first.
pub fn choose_plan(
    data: &PartitionedDataset,
    config: &OptimizerConfig,
    cluster: &ClusterSpec,
) -> Result<OptimizerReport, OptimizerError> {
    let variants = [
        GdVariant::Batch,
        GdVariant::Stochastic,
        GdVariant::MiniBatch {
            batch: config.batch_size,
        },
    ];

    let params = config.train_params();
    let mut estimates = Vec::new();
    let mut speculation_sim_s = 0.0;
    let mut speculation_wall = Duration::ZERO;

    let variant_iterations: Vec<(GdVariant, u64)> = match &config.iterations {
        IterationsSource::Fixed(t) => variants.iter().map(|v| (*v, *t)).collect(),
        IterationsSource::Speculate(spec_cfg) => {
            // One Spark job collects the sample for all three speculative
            // runs: job init plus reading a partition's worth of input and
            // parsing the sampled units (the ~4 s overhead of Section 8.3).
            {
                let mut collect_env = ml4all_dataflow::SimEnv::new(cluster.clone());
                collect_env.charge_job_init();
                let desc = data.descriptor();
                let partition_bytes = desc
                    .bytes
                    .div_ceil(desc.partitions(cluster))
                    .min(cluster.partition_bytes);
                collect_env.charge_sequential_read(
                    partition_bytes,
                    desc.bytes,
                    ml4all_dataflow::StorageMedium::Auto,
                );
                collect_env.charge_serial_cpu(
                    spec_cfg.sample_size as u64,
                    cluster.cpu_transform_s(desc.avg_nnz()),
                );
                speculation_sim_s += collect_env.elapsed_s();
            }
            // The three speculative runs are independent; dispatch them
            // through the shared runtime worker pool (each builds its own
            // environment and seed inside `estimate_iterations`). Results
            // come back in variant order, independent of the worker count.
            let results: Vec<Result<IterationsEstimate, OptimizerError>> =
                config.runtime.map_indexed(&variants, |_, variant| {
                    estimate_iterations(
                        data,
                        *variant,
                        &params,
                        config.tolerance,
                        spec_cfg,
                        cluster,
                    )
                });

            let mut out = Vec::with_capacity(variants.len());
            for (variant, result) in variants.iter().zip(results) {
                let estimate = result?;
                speculation_sim_s += estimate.speculation_sim_s;
                speculation_wall += estimate.speculation_wall;
                out.push((*variant, estimate.iterations));
                estimates.push(VariantEstimate {
                    variant: *variant,
                    estimate,
                });
            }
            out
        }
    };

    let desc = data.descriptor();
    let model = PlanCostModel::new(cluster, desc);
    let mut choices: Vec<PlanChoice> = enumerate_plans(config.batch_size)
        .into_iter()
        .filter(|plan| {
            config
                .pinned_variant
                .is_none_or(|v| std::mem::discriminant(&plan.variant) == std::mem::discriminant(&v))
                && config
                    .pinned_sampling
                    .is_none_or(|s| plan.sampling.is_none() || plan.sampling == Some(s))
        })
        .map(|plan| {
            let (_, t) = variant_iterations
                .iter()
                .find(|(v, _)| std::mem::discriminant(v) == std::mem::discriminant(&plan.variant))
                .expect("every plan variant was estimated");
            // The user's iteration cap bounds every plan.
            let t = (*t).min(config.max_iter).max(1);
            let preparation_s = model.preparation_s(&plan);
            let per_iteration_s = model.per_iteration_s(&plan);
            let mapping = map_plan(&plan, desc, cluster);
            let total_s = preparation_s + t as f64 * per_iteration_s;
            // Calibrated pricing: rescale the predicted cost vector by the
            // learned unit-cost scales, apply the residual factor for this
            // plan's feature key, and keep the vectors on the choice so
            // the post-execution observation can compare like with like.
            let (calibrated_s, prep_cost, iter_cost) = match &config.calibration {
                Some(snapshot) => {
                    let prep = model.preparation_cost(&plan);
                    let iter = model.per_iteration_cost(&plan);
                    let backend = if mapping.uses_cluster() {
                        "simulated-cluster"
                    } else {
                        "local"
                    };
                    let key =
                        plan_feature_key(&format!("{:?}", config.gradient), &plan, backend, desc);
                    let calibrated = snapshot.calibrate_total(total_s, &prep, &iter, t, &key);
                    (Some(calibrated), Some(prep), Some(iter))
                }
                None => (None, None, None),
            };
            PlanChoice {
                plan,
                estimated_iterations: t,
                preparation_s,
                per_iteration_s,
                total_s,
                mapping,
                measured_s: None,
                calibrated_s,
                prep_cost,
                iter_cost,
            }
        })
        .collect();
    // Rank by the calibrated cost when one was computed; under the
    // identity snapshot `ranking_s() == total_s` bit for bit, so cold
    // calibrated runs sort exactly like the static model.
    choices.sort_by(|a, b| {
        a.ranking_s()
            .partial_cmp(&b.ranking_s())
            .expect("costs are finite")
    });

    if let Some(budget) = config.time_budget {
        let best = &choices[0];
        if best.ranking_s() > budget.as_secs_f64() {
            return Err(OptimizerError::UnsatisfiableConstraint(format!(
                "even the best plan ({}, {:.1}s estimated) exceeds the time budget of {:?}; \
                 revisit the `time` constraint",
                best.plan,
                best.ranking_s(),
                budget
            )));
        }
    }

    let calibration = config.calibration.as_ref().map(|s| CalibrationStamp {
        generation: s.generation,
        residual_confidence: s.residual_confidence(),
    });

    Ok(OptimizerReport {
        choices,
        estimates,
        speculation_sim_s,
        speculation_wall,
        cache_hit: false,
        calibration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_dataflow::PartitionScheme;
    use ml4all_linalg::{FeatureVec, LabeledPoint};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, logical_bytes: u64) -> PartitionedDataset {
        let mut rng = StdRng::seed_from_u64(3);
        let points: Vec<LabeledPoint> = (0..n)
            .map(|_| {
                let x0: f64 = rng.gen_range(-1.0..1.0);
                let x1: f64 = rng.gen_range(-1.0..1.0);
                let label = if x0 + x1 > 0.0 { 1.0 } else { -1.0 };
                LabeledPoint::new(label, FeatureVec::dense(vec![x0, x1]))
            })
            .collect();
        let desc = ml4all_dataflow::DatasetDescriptor::new(
            "chooser-test",
            (n as u64).max(logical_bytes / 100),
            2,
            logical_bytes,
            1.0,
        );
        PartitionedDataset::with_descriptor(
            desc,
            points,
            PartitionScheme::RoundRobin,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap()
    }

    #[test]
    fn fixed_iterations_skip_speculation() {
        let data = dataset(1000, 1024 * 1024);
        let config =
            OptimizerConfig::new(GradientKind::LogisticRegression).with_fixed_iterations(1000);
        let report = choose_plan(&data, &config, &ClusterSpec::paper_testbed()).unwrap();
        assert!(report.estimates.is_empty());
        assert_eq!(report.speculation_sim_s, 0.0);
        assert_eq!(report.choices.len(), 11);
        // With 1000 iterations fixed on a small dataset, a cheap-iteration
        // plan must win over BGD.
        assert_ne!(report.best().plan.variant, GdVariant::Batch);
    }

    #[test]
    fn report_is_sorted_cheapest_first() {
        let data = dataset(1000, 1024 * 1024);
        let config =
            OptimizerConfig::new(GradientKind::LogisticRegression).with_fixed_iterations(100);
        let report = choose_plan(&data, &config, &ClusterSpec::paper_testbed()).unwrap();
        for w in report.choices.windows(2) {
            assert!(w[0].total_s <= w[1].total_s);
        }
        assert!(report.best().total_s <= report.worst().total_s);
    }

    #[test]
    fn speculation_produces_estimates_for_all_variants() {
        let data = dataset(3000, 1024 * 1024);
        let spec_cfg = SpeculationConfig {
            sample_size: 300,
            max_iterations: 2000,
            ..Default::default()
        };
        let config = OptimizerConfig::new(GradientKind::LogisticRegression)
            .with_tolerance(0.01)
            .with_speculation(spec_cfg);
        let report = choose_plan(&data, &config, &ClusterSpec::paper_testbed()).unwrap();
        assert_eq!(report.estimates.len(), 3);
        assert!(report.speculation_sim_s > 0.0);
        assert!(report.estimate_for(GdVariant::Batch).is_some());
        assert!(report.estimate_for(GdVariant::Stochastic).is_some());
        assert!(report
            .estimate_for(GdVariant::MiniBatch { batch: 1000 })
            .is_some());
    }

    #[test]
    fn huge_dataset_with_many_iterations_avoids_bernoulli() {
        // 20 GB logical dataset: per-iteration full scans are ruinous.
        let data = dataset(2000, 20 * 1024 * 1024 * 1024);
        let config = OptimizerConfig::new(GradientKind::Svm).with_fixed_iterations(1000);
        let report = choose_plan(&data, &config, &ClusterSpec::paper_testbed()).unwrap();
        assert!(report.best().plan.is_stochastic());
        assert_ne!(
            report.best().plan.sampling,
            Some(ml4all_dataflow::SamplingMethod::Bernoulli)
        );
        // And the worst plan is a full-scan-per-iteration one.
        let worst = report.worst();
        let worst_scans = worst.plan.variant == GdVariant::Batch
            || worst.plan.sampling == Some(ml4all_dataflow::SamplingMethod::Bernoulli);
        assert!(worst_scans, "worst = {}", worst.plan);
    }

    #[test]
    fn impossible_time_budget_is_reported_as_constraint() {
        let data = dataset(1000, 10 * 1024 * 1024 * 1024);
        let config = OptimizerConfig::new(GradientKind::Svm)
            .with_fixed_iterations(1000)
            .with_time_budget(Duration::from_millis(1));
        let err = choose_plan(&data, &config, &ClusterSpec::paper_testbed()).unwrap_err();
        assert!(matches!(err, OptimizerError::UnsatisfiableConstraint(_)));
    }

    #[test]
    fn measured_best_requires_every_choice_profiled() {
        let data = dataset(1000, 1024 * 1024);
        let config =
            OptimizerConfig::new(GradientKind::LogisticRegression).with_fixed_iterations(100);
        let mut report = choose_plan(&data, &config, &ClusterSpec::paper_testbed()).unwrap();
        assert!(report.measured_best().is_none());
        // Fill measurements that invert the predicted order: the measured
        // argmin must follow the measurements, not the ranking.
        let n = report.choices.len();
        for (i, choice) in report.choices.iter_mut().enumerate() {
            choice.measured_s = Some((n - i) as f64);
        }
        let best = report.measured_best().unwrap();
        assert_eq!(best.measured_s, Some(1.0));
        assert_eq!(best.plan, report.choices[n - 1].plan);
        // A measured tie breaks toward the predicted-cheaper choice, so a
        // tie never reads as an argmin flip.
        for choice in &mut report.choices {
            choice.measured_s = Some(7.0);
        }
        let best = report.measured_best().unwrap();
        assert_eq!(best.plan, report.choices[0].plan);
    }

    #[test]
    fn identity_calibration_prices_bit_identically() {
        use crate::calibration::CalibrationSnapshot;
        let data = dataset(1000, 1024 * 1024);
        let config =
            OptimizerConfig::new(GradientKind::LogisticRegression).with_fixed_iterations(100);
        let cold = choose_plan(&data, &config, &ClusterSpec::paper_testbed()).unwrap();
        let calibrated = choose_plan(
            &data,
            &config
                .clone()
                .with_calibration(CalibrationSnapshot::identity()),
            &ClusterSpec::paper_testbed(),
        )
        .unwrap();
        assert_eq!(calibrated.choices.len(), cold.choices.len());
        for (a, b) in cold.choices.iter().zip(&calibrated.choices) {
            assert_eq!(a.plan, b.plan, "identity snapshot must not reorder");
            assert_eq!(
                a.total_s.to_bits(),
                b.calibrated_s.unwrap().to_bits(),
                "{}: identity calibration must be bitwise invisible",
                a.plan
            );
            assert!(b.prep_cost.is_some() && b.iter_cost.is_some());
        }
        let stamp = calibrated.calibration.unwrap();
        assert_eq!(stamp.generation, 0);
        assert_eq!(stamp.residual_confidence, 0.0);
        assert!(cold.calibration.is_none());
    }

    #[test]
    fn residual_factors_can_flip_the_argmin() {
        use crate::calibration::{plan_feature_key, CalibrationSnapshot, ResidualEntry};
        let data = dataset(1000, 1024 * 1024);
        let config =
            OptimizerConfig::new(GradientKind::LogisticRegression).with_fixed_iterations(100);
        let cluster = ClusterSpec::paper_testbed();
        let cold = choose_plan(&data, &config, &cluster).unwrap();
        let (first, second) = (cold.choices[0].plan, cold.choices[1].plan);
        // Teach the model that the static winner actually runs 100× its
        // prediction; a confident residual must demote it.
        let key = plan_feature_key(
            &format!("{:?}", config.gradient),
            &first,
            "local",
            data.descriptor(),
        );
        let mut snapshot = CalibrationSnapshot::identity();
        snapshot.generation = 7;
        snapshot.residuals = vec![ResidualEntry {
            key,
            factor: 100.0,
            observations: 10,
        }];
        snapshot.residuals.sort_by(|a, b| a.key.cmp(&b.key));
        let calibrated =
            choose_plan(&data, &config.clone().with_calibration(snapshot), &cluster).unwrap();
        assert_ne!(calibrated.best().plan, first, "the mispriced plan loses");
        assert_eq!(calibrated.best().plan, second);
        assert_eq!(calibrated.calibration.unwrap().generation, 7);
    }

    #[test]
    fn max_iter_caps_estimated_iterations() {
        let data = dataset(1000, 1024 * 1024);
        let config =
            OptimizerConfig::new(GradientKind::LogisticRegression).with_fixed_iterations(50);
        let report = choose_plan(&data, &config, &ClusterSpec::paper_testbed()).unwrap();
        for c in &report.choices {
            assert!(c.estimated_iterations <= 50);
        }
    }
}
