//! The GD plan search space of Figure 5.
//!
//! BGD admits a single plan (eager transformation, no sampling — it needs
//! every unit every iteration). SGD and MGD each admit eager × {Bernoulli,
//! random-partition, shuffled-partition} plus lazy × {random-partition,
//! shuffled-partition} — lazy + Bernoulli is pruned because Bernoulli scans
//! everything anyway. Total: **11 plans**.

use ml4all_dataflow::SamplingMethod;
use ml4all_gd::{GdPlan, GdVariant, TransformPolicy};

/// Enumerate the full Figure 5 search space for a given mini-batch size.
pub fn enumerate_plans(batch_size: usize) -> Vec<GdPlan> {
    enumerate_plans_for_variants(&[
        GdVariant::Batch,
        GdVariant::Stochastic,
        GdVariant::MiniBatch { batch: batch_size },
    ])
}

/// Enumerate the search space over an arbitrary set of GD algorithms —
/// the paper: "there could be tens of GD algorithms that the user might
/// want to evaluate ... our search space size is fully parameterized based
/// on the number of GD algorithms and optimizations". Batch-style
/// algorithms contribute one plan each; sampling algorithms contribute the
/// five eager/lazy × sampler combinations (lazy + Bernoulli pruned,
/// Section 6).
pub fn enumerate_plans_for_variants(variants: &[GdVariant]) -> Vec<GdPlan> {
    let mut plans = Vec::with_capacity(1 + 5 * variants.len());
    for &variant in variants {
        match variant {
            GdVariant::Batch => plans.push(GdPlan::bgd()),
            _ => {
                for transform in [TransformPolicy::Eager, TransformPolicy::Lazy] {
                    for sampling in [
                        SamplingMethod::Bernoulli,
                        SamplingMethod::RandomPartition,
                        SamplingMethod::ShuffledPartition,
                    ] {
                        if transform == TransformPolicy::Lazy
                            && sampling == SamplingMethod::Bernoulli
                        {
                            continue; // pruned (Section 6)
                        }
                        plans.push(GdPlan {
                            variant,
                            transform,
                            sampling: Some(sampling),
                        });
                    }
                }
            }
        }
    }
    plans
}

/// Enumerate only the plans of one GD variant (used by Table 4's
/// per-algorithm best-plan study and the Figure 9 comparisons, where the
/// algorithm is fixed and the optimizer picks sampling/transformation).
pub fn enumerate_variant_plans(variant: GdVariant) -> Vec<GdPlan> {
    enumerate_plans(match variant {
        GdVariant::MiniBatch { batch } => batch,
        _ => 1000,
    })
    .into_iter()
    .filter(|p| {
        matches!(
            (p.variant, variant),
            (GdVariant::Batch, GdVariant::Batch)
                | (GdVariant::Stochastic, GdVariant::Stochastic)
                | (GdVariant::MiniBatch { .. }, GdVariant::MiniBatch { .. })
        )
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_space_has_exactly_eleven_plans() {
        let plans = enumerate_plans(1000);
        assert_eq!(plans.len(), 11, "Figure 5: 1 BGD + 5 SGD + 5 MGD");
    }

    #[test]
    fn plans_are_distinct() {
        let plans = enumerate_plans(1000);
        let names: std::collections::HashSet<String> = plans.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), plans.len());
    }

    #[test]
    fn no_lazy_bernoulli_plan_exists() {
        for p in enumerate_plans(1000) {
            assert!(
                !(p.transform == TransformPolicy::Lazy
                    && p.sampling == Some(SamplingMethod::Bernoulli)),
                "pruned plan leaked: {}",
                p.name()
            );
        }
    }

    #[test]
    fn exactly_one_bgd_plan() {
        let bgd: Vec<_> = enumerate_plans(1000)
            .into_iter()
            .filter(|p| p.variant == GdVariant::Batch)
            .collect();
        assert_eq!(bgd.len(), 1);
        assert_eq!(bgd[0].transform, TransformPolicy::Eager);
        assert!(bgd[0].sampling.is_none());
    }

    #[test]
    fn variant_filter_returns_five_stochastic_plans() {
        assert_eq!(enumerate_variant_plans(GdVariant::Stochastic).len(), 5);
        assert_eq!(
            enumerate_variant_plans(GdVariant::MiniBatch { batch: 500 }).len(),
            5
        );
        assert_eq!(enumerate_variant_plans(GdVariant::Batch).len(), 1);
    }

    #[test]
    fn mgd_plans_carry_the_requested_batch() {
        for p in enumerate_plans(777) {
            if let GdVariant::MiniBatch { batch } = p.variant {
                assert_eq!(batch, 777);
            }
        }
    }

    #[test]
    fn search_space_grows_proportionally_with_algorithms() {
        // The paper's extensibility claim: adding a sampled algorithm adds
        // five plans; adding a batch algorithm adds one.
        let base = enumerate_plans_for_variants(&[GdVariant::Batch, GdVariant::Stochastic]);
        assert_eq!(base.len(), 6);
        let two_batches = enumerate_plans_for_variants(&[
            GdVariant::Batch,
            GdVariant::Stochastic,
            GdVariant::MiniBatch { batch: 100 },
            GdVariant::MiniBatch { batch: 10_000 },
        ]);
        assert_eq!(two_batches.len(), 16);
        assert!(enumerate_plans_for_variants(&[]).is_empty());
    }
}
