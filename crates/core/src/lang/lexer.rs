//! Tokenizer for the Appendix A language.
//!
//! The language's "words" are deliberately liberal — dataset paths
//! (`training_data.txt`), column selections (`input.txt:4-20`), durations
//! (`1h30m`), and numbers (`0.01`) are all single words; the parser
//! interprets them contextually. Only `, ; = ( )` are punctuation.

use serde::{Deserialize, Serialize};

/// A half-open byte range `[start, end)` into the statement text.
///
/// Spans flow from the lexer through the AST into parse/lowering errors so
/// the session layer can point at the offending token when rendering an
/// error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset where the spanned text starts.
    pub start: usize,
    /// Byte offset one past the spanned text.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// An empty span at `at` (used for end-of-input errors).
    pub fn empty(at: usize) -> Self {
        Self { start: at, end: at }
    }
}

/// A token with its byte span in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Byte span of the token in the statement text.
    pub span: Span,
    /// Token kind.
    pub kind: TokenKind,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A word: keyword, identifier, path, number, or duration.
    Word(String),
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `(`
    LParen,
    /// `)`
    RParen,
}

impl TokenKind {
    /// The word's text, if this is a word.
    pub fn word(&self) -> Option<&str> {
        match self {
            Self::Word(w) => Some(w),
            _ => None,
        }
    }
}

/// Tokenize a query string. Iterates over `char_indices` so arbitrary
/// (including multi-byte) input never breaks a UTF-8 boundary.
pub fn tokenize(input: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if let Some(kind) = punct(c) {
            tokens.push(Token {
                span: Span::new(i, i + c.len_utf8()),
                kind,
            });
            chars.next();
        } else {
            let start = i;
            let mut end = input.len();
            while let Some(&(j, c)) = chars.peek() {
                if c.is_whitespace() || punct(c).is_some() {
                    end = j;
                    break;
                }
                chars.next();
            }
            tokens.push(Token {
                span: Span::new(start, end),
                kind: TokenKind::Word(input[start..end].to_string()),
            });
        }
    }
    tokens
}

fn punct(c: char) -> Option<TokenKind> {
    match c {
        ',' => Some(TokenKind::Comma),
        ';' => Some(TokenKind::Semi),
        '=' => Some(TokenKind::Eq),
        '(' => Some(TokenKind::LParen),
        ')' => Some(TokenKind::RParen),
        _ => None,
    }
}

/// Parse a duration word: `1h30m`, `45m`, `90s`, `2h`.
pub fn parse_duration(word: &str) -> Option<std::time::Duration> {
    let mut total_secs = 0u64;
    let mut number = String::new();
    let mut any = false;
    for c in word.chars() {
        if c.is_ascii_digit() {
            number.push(c);
        } else {
            let n: u64 = number.parse().ok()?;
            number.clear();
            total_secs += match c {
                'h' => n * 3600,
                'm' => n * 60,
                's' => n,
                _ => return None,
            };
            any = true;
        }
    }
    if !number.is_empty() || !any {
        // Trailing digits without a unit, or no units at all.
        return None;
    }
    Some(std::time::Duration::from_secs(total_secs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn words(input: &str) -> Vec<String> {
        tokenize(input)
            .into_iter()
            .filter_map(|t| t.kind.word().map(str::to_string))
            .collect()
    }

    #[test]
    fn tokenizes_the_appendix_query() {
        let q = "run classification on training_data.txt having time 1h30m, epsilon 0.01, max iter 1000;";
        let toks = tokenize(q);
        assert_eq!(toks[0].kind, TokenKind::Word("run".into()));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Comma));
        assert_eq!(toks.last().unwrap().kind, TokenKind::Semi);
        assert!(words(q).contains(&"training_data.txt".into()));
        assert!(words(q).contains(&"1h30m".into()));
    }

    #[test]
    fn column_specs_stay_single_words() {
        let w = words("run classification on input_data.txt:2, input_data.txt:4-20;");
        assert!(w.contains(&"input_data.txt:2".into()));
        assert!(w.contains(&"input_data.txt:4-20".into()));
    }

    #[test]
    fn parens_and_equals_are_punctuation() {
        let toks = tokenize("Q3 = run classification using sampler my_sampler();");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Eq));
        assert!(toks.iter().any(|t| t.kind == TokenKind::LParen));
        assert!(toks.iter().any(|t| t.kind == TokenKind::RParen));
    }

    #[test]
    fn spans_point_into_source() {
        let src = "run  classification";
        let toks = tokenize(src);
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(5, 19));
        assert_eq!(&src[toks[1].span.start..toks[1].span.end], "classification");
    }

    #[test]
    fn punctuation_spans_cover_one_char() {
        let toks = tokenize("a;b");
        assert_eq!(toks[1].span, Span::new(1, 2));
        assert_eq!(toks[2].span, Span::new(2, 3));
    }

    #[test]
    fn durations_parse() {
        assert_eq!(parse_duration("1h30m"), Some(Duration::from_secs(5400)));
        assert_eq!(parse_duration("45m"), Some(Duration::from_secs(2700)));
        assert_eq!(parse_duration("90s"), Some(Duration::from_secs(90)));
        assert_eq!(parse_duration("2h"), Some(Duration::from_secs(7200)));
        assert_eq!(parse_duration("nope"), None);
        assert_eq!(parse_duration("90"), None);
        assert_eq!(parse_duration("1x"), None);
        assert_eq!(parse_duration(""), None);
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("   \n\t ").is_empty());
    }
}
