//! The planner: turn a parsed `run` query into an [`OptimizerConfig`]
//! (Section 3's "translate a declarative query into a GD plan").

use ml4all_dataflow::SamplingMethod;
use ml4all_gd::{GdVariant, GradientKind, StepSize};

use crate::chooser::OptimizerConfig;
use crate::lang::ast::{RunQuery, TaskSpec};
use crate::OptimizerError;

/// Default tolerance when the query gives none (Appendix A: "in case no
/// tolerance is specified, the system uses the value 10⁻³ as default").
pub const DEFAULT_TOLERANCE: f64 = 1e-3;

/// Map a `run` query to an optimizer configuration.
///
/// Task names map to Table 3 gradients: `classification` → hinge (SVM),
/// `regression` → squared loss; explicit gradient functions (`hinge()`,
/// `logistic()`, `squared()`) select directly. `using` directives pin the
/// algorithm, sampler, step β, and batch size.
pub fn plan_query(run: &RunQuery) -> Result<OptimizerConfig, OptimizerError> {
    let gradient = match &run.task {
        TaskSpec::Classification => GradientKind::Svm,
        TaskSpec::Regression => GradientKind::LinearRegression,
        TaskSpec::GradientFunction(name) => match name.as_str() {
            "hinge" => GradientKind::Svm,
            "logistic" => GradientKind::LogisticRegression,
            "squared" => GradientKind::LinearRegression,
            other => {
                return Err(OptimizerError::Language {
                    position: 0,
                    message: format!(
                        "unknown gradient function `{other}` (hinge, logistic, squared)"
                    ),
                })
            }
        },
    };

    let mut config = OptimizerConfig::new(gradient).with_tolerance(DEFAULT_TOLERANCE);

    if let Some(eps) = run.having.epsilon {
        if eps <= 0.0 {
            return Err(OptimizerError::UnsatisfiableConstraint(
                "epsilon must be positive".into(),
            ));
        }
        config.tolerance = eps;
    }
    if let Some(max_iter) = run.having.max_iter {
        if max_iter == 0 {
            return Err(OptimizerError::UnsatisfiableConstraint(
                "max iter must be positive".into(),
            ));
        }
        config.max_iter = max_iter;
        if run.having.epsilon.is_none() {
            // Pure iteration budget: no speculation needed (Section 8.3's
            // sub-100 ms optimization path).
            config = config.with_fixed_iterations(max_iter);
        }
    }
    if let Some(budget) = run.having.time {
        config.time_budget = Some(budget);
    }

    if let Some(step) = run.using.step {
        if step <= 0.0 {
            return Err(OptimizerError::UnsatisfiableConstraint(
                "step must be positive".into(),
            ));
        }
        config.step = StepSize::BetaOverSqrtI { beta: step };
    }
    if let Some(batch) = run.using.batch {
        config.batch_size = batch.max(1) as usize;
    }
    if let Some(alg) = &run.using.algorithm {
        config.pinned_variant = Some(match alg.to_ascii_uppercase().as_str() {
            "BGD" | "BATCH" => GdVariant::Batch,
            "SGD" | "STOCHASTIC" => GdVariant::Stochastic,
            "MGD" | "MINIBATCH" | "MINI-BATCH" => GdVariant::MiniBatch {
                batch: config.batch_size,
            },
            other => {
                return Err(OptimizerError::Language {
                    position: 0,
                    message: format!("unknown algorithm `{other}` (BGD, SGD, MGD)"),
                })
            }
        });
    }
    if let Some(sampler) = &run.using.sampler {
        config.pinned_sampling = Some(match sampler.to_ascii_lowercase().as_str() {
            "bernoulli" => SamplingMethod::Bernoulli,
            "random" | "random_partition" | "random-partition" => SamplingMethod::RandomPartition,
            "shuffled" | "shuffle" | "shuffled_partition" | "shuffled-partition" => {
                SamplingMethod::ShuffledPartition
            }
            other => {
                return Err(OptimizerError::Language {
                    position: 0,
                    message: format!("unknown sampler `{other}` (bernoulli, random, shuffled)"),
                })
            }
        });
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::IterationsSource;
    use crate::lang::parser::parse_query;
    use crate::lang::Query;

    fn run(q: &str) -> RunQuery {
        match parse_query(q).unwrap() {
            Query::Run(r) => r,
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn classification_defaults_to_hinge_and_1e3_tolerance() {
        let cfg = plan_query(&run("run classification on d.txt;")).unwrap();
        assert_eq!(cfg.gradient, GradientKind::Svm);
        assert_eq!(cfg.tolerance, DEFAULT_TOLERANCE);
        assert!(matches!(cfg.iterations, IterationsSource::Speculate(_)));
    }

    #[test]
    fn explicit_gradients_map_to_table3() {
        assert_eq!(
            plan_query(&run("run logistic() on d.txt;"))
                .unwrap()
                .gradient,
            GradientKind::LogisticRegression
        );
        assert_eq!(
            plan_query(&run("run squared() on d.txt;"))
                .unwrap()
                .gradient,
            GradientKind::LinearRegression
        );
        assert!(plan_query(&run("run mystery() on d.txt;")).is_err());
    }

    #[test]
    fn constraints_flow_into_config() {
        let cfg = plan_query(&run(
            "run classification on d.txt having time 1h30m, epsilon 0.01, max iter 500;",
        ))
        .unwrap();
        assert_eq!(cfg.tolerance, 0.01);
        assert_eq!(cfg.max_iter, 500);
        assert_eq!(cfg.time_budget, Some(std::time::Duration::from_secs(5400)));
        // Epsilon present → still speculative.
        assert!(matches!(cfg.iterations, IterationsSource::Speculate(_)));
    }

    #[test]
    fn max_iter_without_epsilon_fixes_iterations() {
        let cfg = plan_query(&run("run classification on d.txt having max iter 100;")).unwrap();
        assert!(matches!(cfg.iterations, IterationsSource::Fixed(100)));
    }

    #[test]
    fn using_directives_pin_choices() {
        let cfg = plan_query(&run(
            "run classification on d.txt using algorithm SGD, sampler shuffled, step 2, batch 64;",
        ))
        .unwrap();
        assert_eq!(cfg.pinned_variant, Some(GdVariant::Stochastic));
        assert_eq!(cfg.pinned_sampling, Some(SamplingMethod::ShuffledPartition));
        assert_eq!(cfg.step, StepSize::BetaOverSqrtI { beta: 2.0 });
        assert_eq!(cfg.batch_size, 64);
    }

    #[test]
    fn invalid_constraints_are_rejected() {
        assert!(plan_query(&run("run classification on d.txt having epsilon -1;")).is_err());
        assert!(plan_query(&run("run classification on d.txt having max iter 0;")).is_err());
        assert!(plan_query(&run("run classification on d.txt using step -1;")).is_err());
        assert!(plan_query(&run("run classification on d.txt using algorithm ADAM;")).is_err());
        assert!(plan_query(&run("run classification on d.txt using sampler sobol;")).is_err());
    }
}
