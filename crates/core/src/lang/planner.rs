//! The planner: turn a training specification into an [`OptimizerConfig`]
//! (Section 3's "translate a declarative query into a GD plan").
//!
//! The typed [`TrainSpec`] is the real planning input; [`plan_query`] is
//! the statement front-end that lowers a parsed `run` query onto it via
//! [`train_spec`]. Programs using the typed session API build a
//! `TrainSpec` directly and share every validation rule with the language
//! path.

use std::time::Duration;

use ml4all_dataflow::SamplingMethod;
use ml4all_gd::{GdVariant, GradientKind, StepSize};

use crate::chooser::OptimizerConfig;
use crate::lang::ast::{RunQuery, TaskSpec};
use crate::OptimizerError;

/// Default tolerance when the query gives none (Appendix A: "in case no
/// tolerance is specified, the system uses the value 10⁻³ as default").
pub const DEFAULT_TOLERANCE: f64 = 1e-3;

/// A GD algorithm restriction (`using algorithm …`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmPin {
    /// Batch GD only.
    Batch,
    /// Stochastic GD only.
    Stochastic,
    /// Mini-batch GD only. An explicit `batch` (the typed API's
    /// `GdVariant::MiniBatch { batch }`) is authoritative; `None` (the
    /// language's bare `algorithm MGD`) takes the size from
    /// [`TrainSpec::batch`] or the default — so the pin means the same
    /// thing regardless of builder-call order.
    MiniBatch {
        /// Explicit mini-batch size, overriding [`TrainSpec::batch`].
        batch: Option<u64>,
    },
}

/// The typed training specification every front-end lowers onto: the
/// Table 3 gradient plus the optional `having` constraints and `using`
/// directives of Appendix A, as values instead of strings.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSpec {
    /// Gradient function (Table 3 task).
    pub gradient: GradientKind,
    /// `having epsilon …` — tolerance ε.
    pub epsilon: Option<f64>,
    /// `having max iter …` — iteration cap. Without an epsilon this fixes
    /// the iteration count and skips speculation (Section 8.3).
    pub max_iter: Option<u64>,
    /// `having time …` — wall training-time budget.
    pub time_budget: Option<Duration>,
    /// `using step …` — β for the `β/√i` schedule.
    pub step: Option<f64>,
    /// `using batch …` — MGD mini-batch size.
    pub batch: Option<u64>,
    /// `using algorithm …` — restrict the search to one GD algorithm.
    pub algorithm: Option<AlgorithmPin>,
    /// `using sampler …` — restrict the search to one sampling strategy.
    pub sampler: Option<SamplingMethod>,
}

impl TrainSpec {
    /// An unconstrained specification for `gradient`.
    pub fn new(gradient: GradientKind) -> Self {
        Self {
            gradient,
            epsilon: None,
            max_iter: None,
            time_budget: None,
            step: None,
            batch: None,
            algorithm: None,
            sampler: None,
        }
    }

    /// Validate the specification and produce the optimizer configuration.
    ///
    /// This is the single source of planning semantics: positive-value
    /// checks, the default 10⁻³ tolerance, and the "`max iter` without
    /// `epsilon` fixes the iteration count" rule all live here.
    pub fn to_config(&self) -> Result<OptimizerConfig, OptimizerError> {
        let mut config = OptimizerConfig::new(self.gradient).with_tolerance(DEFAULT_TOLERANCE);

        if let Some(eps) = self.epsilon {
            if eps <= 0.0 {
                return Err(OptimizerError::UnsatisfiableConstraint(
                    "epsilon must be positive".into(),
                ));
            }
            config.tolerance = eps;
        }
        if let Some(max_iter) = self.max_iter {
            if max_iter == 0 {
                return Err(OptimizerError::UnsatisfiableConstraint(
                    "max iter must be positive".into(),
                ));
            }
            config.max_iter = max_iter;
            if self.epsilon.is_none() {
                // Pure iteration budget: no speculation needed (Section
                // 8.3's sub-100 ms optimization path).
                config = config.with_fixed_iterations(max_iter);
            }
        }
        if let Some(budget) = self.time_budget {
            config.time_budget = Some(budget);
        }

        if let Some(step) = self.step {
            if step <= 0.0 {
                return Err(OptimizerError::UnsatisfiableConstraint(
                    "step must be positive".into(),
                ));
            }
            config.step = StepSize::BetaOverSqrtI { beta: step };
        }
        if let Some(batch) = self.batch {
            config.batch_size = batch.max(1) as usize;
        }
        if let Some(alg) = self.algorithm {
            config.pinned_variant = Some(match alg {
                AlgorithmPin::Batch => GdVariant::Batch,
                AlgorithmPin::Stochastic => GdVariant::Stochastic,
                AlgorithmPin::MiniBatch { batch } => {
                    // An explicit pin size wins over `using batch …`; keep
                    // `batch_size` aligned so the enumerated MGD plans run
                    // at the pinned size.
                    let b = batch
                        .map(|b| b.max(1) as usize)
                        .unwrap_or(config.batch_size);
                    config.batch_size = b;
                    GdVariant::MiniBatch { batch: b }
                }
            });
        }
        if let Some(sampler) = self.sampler {
            config.pinned_sampling = Some(sampler);
        }
        Ok(config)
    }
}

/// Lower a parsed `run` query to the typed [`TrainSpec`].
///
/// Task names map to Table 3 gradients: `classification` → hinge (SVM),
/// `regression` → squared loss; explicit gradient functions (`hinge()`,
/// `logistic()`, `squared()`) select directly. Algorithm and sampler names
/// map to their enums.
pub fn train_spec(run: &RunQuery) -> Result<TrainSpec, OptimizerError> {
    let gradient = match &run.task {
        TaskSpec::Classification => GradientKind::Svm,
        TaskSpec::Regression => GradientKind::LinearRegression,
        TaskSpec::GradientFunction(name) => match name.as_str() {
            "hinge" => GradientKind::Svm,
            "logistic" => GradientKind::LogisticRegression,
            "squared" => GradientKind::LinearRegression,
            other => {
                return Err(OptimizerError::Language {
                    span: run.task_span,
                    message: format!(
                        "unknown gradient function `{other}` (hinge, logistic, squared)"
                    ),
                })
            }
        },
    };

    let algorithm = match &run.using.algorithm {
        None => None,
        Some(alg) => Some(match alg.text.to_ascii_uppercase().as_str() {
            "BGD" | "BATCH" => AlgorithmPin::Batch,
            "SGD" | "STOCHASTIC" => AlgorithmPin::Stochastic,
            "MGD" | "MINIBATCH" | "MINI-BATCH" => AlgorithmPin::MiniBatch { batch: None },
            other => {
                return Err(OptimizerError::Language {
                    span: alg.span,
                    message: format!("unknown algorithm `{other}` (BGD, SGD, MGD)"),
                })
            }
        }),
    };
    let sampler = match &run.using.sampler {
        None => None,
        Some(sampler) => Some(match sampler.text.to_ascii_lowercase().as_str() {
            "bernoulli" => SamplingMethod::Bernoulli,
            "random" | "random_partition" | "random-partition" => SamplingMethod::RandomPartition,
            "shuffled" | "shuffle" | "shuffled_partition" | "shuffled-partition" => {
                SamplingMethod::ShuffledPartition
            }
            other => {
                return Err(OptimizerError::Language {
                    span: sampler.span,
                    message: format!("unknown sampler `{other}` (bernoulli, random, shuffled)"),
                })
            }
        }),
    };

    Ok(TrainSpec {
        gradient,
        epsilon: run.having.epsilon,
        max_iter: run.having.max_iter,
        time_budget: run.having.time,
        step: run.using.step,
        batch: run.using.batch,
        algorithm,
        sampler,
    })
}

/// Map a `run` query to an optimizer configuration: the statement
/// front-end, lowering through [`train_spec`] and [`TrainSpec::to_config`].
pub fn plan_query(run: &RunQuery) -> Result<OptimizerConfig, OptimizerError> {
    train_spec(run)?.to_config()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::IterationsSource;
    use crate::lang::parser::parse_query;
    use crate::lang::Query;

    fn run(q: &str) -> RunQuery {
        match parse_query(q).unwrap() {
            Query::Run(r) => r,
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn classification_defaults_to_hinge_and_1e3_tolerance() {
        let cfg = plan_query(&run("run classification on d.txt;")).unwrap();
        assert_eq!(cfg.gradient, GradientKind::Svm);
        assert_eq!(cfg.tolerance, DEFAULT_TOLERANCE);
        assert!(matches!(cfg.iterations, IterationsSource::Speculate(_)));
    }

    #[test]
    fn explicit_gradients_map_to_table3() {
        assert_eq!(
            plan_query(&run("run logistic() on d.txt;"))
                .unwrap()
                .gradient,
            GradientKind::LogisticRegression
        );
        assert_eq!(
            plan_query(&run("run squared() on d.txt;"))
                .unwrap()
                .gradient,
            GradientKind::LinearRegression
        );
        assert!(plan_query(&run("run mystery() on d.txt;")).is_err());
    }

    #[test]
    fn constraints_flow_into_config() {
        let cfg = plan_query(&run(
            "run classification on d.txt having time 1h30m, epsilon 0.01, max iter 500;",
        ))
        .unwrap();
        assert_eq!(cfg.tolerance, 0.01);
        assert_eq!(cfg.max_iter, 500);
        assert_eq!(cfg.time_budget, Some(std::time::Duration::from_secs(5400)));
        // Epsilon present → still speculative.
        assert!(matches!(cfg.iterations, IterationsSource::Speculate(_)));
    }

    #[test]
    fn max_iter_without_epsilon_fixes_iterations() {
        let cfg = plan_query(&run("run classification on d.txt having max iter 100;")).unwrap();
        assert!(matches!(cfg.iterations, IterationsSource::Fixed(100)));
    }

    #[test]
    fn using_directives_pin_choices() {
        let cfg = plan_query(&run(
            "run classification on d.txt using algorithm SGD, sampler shuffled, step 2, batch 64;",
        ))
        .unwrap();
        assert_eq!(cfg.pinned_variant, Some(GdVariant::Stochastic));
        assert_eq!(cfg.pinned_sampling, Some(SamplingMethod::ShuffledPartition));
        assert_eq!(cfg.step, StepSize::BetaOverSqrtI { beta: 2.0 });
        assert_eq!(cfg.batch_size, 64);
    }

    #[test]
    fn typed_spec_and_parsed_query_agree() {
        let parsed = plan_query(&run(
            "run logistic() on d.txt having epsilon 0.01, max iter 500 \
             using algorithm MGD, batch 64, sampler random, step 2;",
        ))
        .unwrap();
        let mut spec = TrainSpec::new(GradientKind::LogisticRegression);
        spec.epsilon = Some(0.01);
        spec.max_iter = Some(500);
        spec.step = Some(2.0);
        spec.batch = Some(64);
        spec.algorithm = Some(AlgorithmPin::MiniBatch { batch: None });
        spec.sampler = Some(SamplingMethod::RandomPartition);
        let typed = spec.to_config().unwrap();
        assert_eq!(typed.gradient, parsed.gradient);
        assert_eq!(typed.tolerance, parsed.tolerance);
        assert_eq!(typed.max_iter, parsed.max_iter);
        assert_eq!(typed.step, parsed.step);
        assert_eq!(typed.batch_size, parsed.batch_size);
        assert_eq!(typed.pinned_variant, parsed.pinned_variant);
        assert_eq!(typed.pinned_sampling, parsed.pinned_sampling);
    }

    #[test]
    fn mgd_pin_expands_with_the_spec_batch_size() {
        let mut spec = TrainSpec::new(GradientKind::Svm);
        spec.algorithm = Some(AlgorithmPin::MiniBatch { batch: None });
        let cfg = spec.to_config().unwrap();
        assert_eq!(
            cfg.pinned_variant,
            Some(GdVariant::MiniBatch { batch: 1000 })
        );
        spec.batch = Some(64);
        let cfg = spec.to_config().unwrap();
        assert_eq!(cfg.pinned_variant, Some(GdVariant::MiniBatch { batch: 64 }));
    }

    #[test]
    fn explicit_mgd_pin_size_wins_regardless_of_spec_batch() {
        let mut spec = TrainSpec::new(GradientKind::Svm);
        spec.batch = Some(64);
        spec.algorithm = Some(AlgorithmPin::MiniBatch { batch: Some(1000) });
        let cfg = spec.to_config().unwrap();
        assert_eq!(
            cfg.pinned_variant,
            Some(GdVariant::MiniBatch { batch: 1000 })
        );
        assert_eq!(cfg.batch_size, 1000);
    }

    #[test]
    fn invalid_constraints_are_rejected() {
        assert!(plan_query(&run("run classification on d.txt having epsilon -1;")).is_err());
        assert!(plan_query(&run("run classification on d.txt having max iter 0;")).is_err());
        assert!(plan_query(&run("run classification on d.txt using step -1;")).is_err());
        assert!(plan_query(&run("run classification on d.txt using algorithm ADAM;")).is_err());
        assert!(plan_query(&run("run classification on d.txt using sampler sobol;")).is_err());
    }
}
