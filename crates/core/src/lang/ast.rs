//! Abstract syntax of the Appendix A language.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// The ML task named in a `run` query, or an explicit gradient function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskSpec {
    /// `run classification …` — SVM or logistic regression (the planner
    /// defaults to SVM's hinge unless a gradient function is given).
    Classification,
    /// `run regression …` — linear regression.
    Regression,
    /// An explicit gradient function: `hinge()`, `logistic()`,
    /// `squared()`, or a user-registered name.
    GradientFunction(String),
}

/// `having` constraints (all optional and independent).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Constraints {
    /// `time 1h30m` — wall training-time budget.
    pub time: Option<Duration>,
    /// `epsilon 0.01` — tolerance.
    pub epsilon: Option<f64>,
    /// `max iter 1000` — iteration cap.
    pub max_iter: Option<u64>,
}

/// `using` directives for advanced users (all optional).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UsingClause {
    /// `algorithm SGD|BGD|MGD` — pin the GD algorithm.
    pub algorithm: Option<String>,
    /// `step 1.0` — fixed β for the step schedule.
    pub step: Option<f64>,
    /// `sampler bernoulli|random|shuffled` — pin the sampling strategy.
    pub sampler: Option<String>,
    /// `convergence cnvg()` — named convergence UDF.
    pub convergence: Option<String>,
    /// `batch 1000` — MGD batch size.
    pub batch: Option<u64>,
}

/// Column selection on the input (`input.txt:2, input.txt:4-20`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnSpec {
    /// 1-based label column.
    pub label: u32,
    /// 1-based inclusive feature-column range.
    pub features: (u32, u32),
}

/// A `run` query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunQuery {
    /// What to learn.
    pub task: TaskSpec,
    /// Input dataset path or registered name.
    pub dataset: String,
    /// Optional label/feature column selection.
    pub columns: Option<ColumnSpec>,
    /// `having` constraints.
    pub having: Constraints,
    /// `using` directives.
    pub using: UsingClause,
}

/// A complete statement of the language.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// `run <task> on <dataset> [having …] [using …];`
    Run(RunQuery),
    /// `persist <name> on <path>;`
    Persist {
        /// The query result to persist.
        name: String,
        /// Destination path.
        path: String,
    },
    /// `[result =] predict on <dataset> with <model>;`
    Predict {
        /// Test dataset path.
        dataset: String,
        /// Stored model path.
        model: String,
    },
}
