//! Abstract syntax of the Appendix A language.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::lang::lexer::Span;

/// A word together with its byte span in the statement text, for names the
/// planner validates after parsing (algorithm, sampler) — lowering errors
/// can then point at the offending token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpannedWord {
    /// The word as written.
    pub text: String,
    /// Its byte span in the statement.
    pub span: Span,
}

impl SpannedWord {
    /// A spanned word.
    pub fn new(text: impl Into<String>, span: Span) -> Self {
        Self {
            text: text.into(),
            span,
        }
    }
}

/// The ML task named in a `run` query, or an explicit gradient function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskSpec {
    /// `run classification …` — SVM or logistic regression (the planner
    /// defaults to SVM's hinge unless a gradient function is given).
    Classification,
    /// `run regression …` — linear regression.
    Regression,
    /// An explicit gradient function: `hinge()`, `logistic()`,
    /// `squared()`, or a user-registered name.
    GradientFunction(String),
}

/// `having` constraints (all optional and independent).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Constraints {
    /// `time 1h30m` — wall training-time budget.
    pub time: Option<Duration>,
    /// `epsilon 0.01` — tolerance.
    pub epsilon: Option<f64>,
    /// `max iter 1000` — iteration cap.
    pub max_iter: Option<u64>,
}

/// `using` directives for advanced users (all optional).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UsingClause {
    /// `algorithm SGD|BGD|MGD` — pin the GD algorithm.
    pub algorithm: Option<SpannedWord>,
    /// `step 1.0` — fixed β for the step schedule.
    pub step: Option<f64>,
    /// `sampler bernoulli|random|shuffled` — pin the sampling strategy.
    pub sampler: Option<SpannedWord>,
    /// `convergence cnvg()` — named convergence UDF.
    pub convergence: Option<String>,
    /// `batch 1000` — MGD batch size.
    pub batch: Option<u64>,
}

/// Column selection on the input (`input.txt:2, input.txt:4-20`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnSpec {
    /// 1-based label column.
    pub label: u32,
    /// 1-based inclusive feature-column range.
    pub features: (u32, u32),
}

/// A `run` query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunQuery {
    /// What to learn.
    pub task: TaskSpec,
    /// Byte span of the task word (for unknown-gradient-function errors).
    pub task_span: Span,
    /// Input dataset path or registered name.
    pub dataset: String,
    /// Optional label/feature column selection.
    pub columns: Option<ColumnSpec>,
    /// `having` constraints.
    pub having: Constraints,
    /// `using` directives.
    pub using: UsingClause,
}

/// A complete statement of the language.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// `run <task> on <dataset> [having …] [using …];`
    Run(RunQuery),
    /// `explain [run] <task> on <dataset> [having …] [using …];` — report
    /// the optimizer's full costed plan table instead of executing the
    /// winning plan (the database `EXPLAIN` verb over Section 7's search).
    Explain(RunQuery),
    /// `persist <name> on <path>;`
    Persist {
        /// The query result to persist.
        name: String,
        /// Destination path.
        path: String,
    },
    /// `[result =] predict on <dataset> with <model>;`
    Predict {
        /// Test dataset path.
        dataset: String,
        /// Stored model path.
        model: String,
    },
}
