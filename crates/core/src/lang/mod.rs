//! The declarative GD language of Appendix A.
//!
//! ```text
//! run classification on training_data.txt
//! having time 1h30m, epsilon 0.01, max iter 1000
//! using algorithm SGD, step 1, sampler shuffled;
//!
//! persist Q1 on my_model.txt;
//! result = predict on test_data.txt with my_model.txt;
//! ```
//!
//! [`lexer`] tokenizes, [`parser`] builds the [`ast`], and [`planner`]
//! turns a `run` query into an optimizer invocation.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::{Constraints, Query, RunQuery, TaskSpec, UsingClause};
pub use lexer::Span;
pub use parser::{parse_query, parse_statement, Statement};
pub use planner::{plan_query, train_spec, AlgorithmPin, TrainSpec};
