//! Recursive-descent parser for the Appendix A language.

use crate::lang::ast::{
    ColumnSpec, Constraints, Query, RunQuery, SpannedWord, TaskSpec, UsingClause,
};
use crate::lang::lexer::{parse_duration, tokenize, Span, Token, TokenKind};
use crate::OptimizerError;

/// A parsed statement with its optional assignment name (`Q1 = run …`).
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// The name bound by `NAME = …`, if any.
    pub name: Option<String>,
    /// The statement body.
    pub query: Query,
}

/// Parse one statement (terminated by `;` or end of input), dropping any
/// assignment name. Use [`parse_statement`] to keep it.
pub fn parse_query(input: &str) -> Result<Query, OptimizerError> {
    parse_statement(input).map(|s| s.query)
}

/// Parse one statement, preserving the `NAME =` binding the session layer
/// uses for `persist`.
pub fn parse_statement(input: &str) -> Result<Statement, OptimizerError> {
    let mut parser = Parser::new(input);
    let name = parser.take_assignment_name();
    let query = parser.parse_statement()?;
    if let (Some((_, span)), Query::Explain(_)) = (&name, &query) {
        // An ignored binding would surprise the user at the next
        // `persist`; reject it while the name's span is still known.
        return Err(OptimizerError::Language {
            span: *span,
            message: "`explain` reports a plan table and does not bind a result name; \
                      drop the assignment"
                .into(),
        });
    }
    Ok(Statement {
        name: name.map(|(n, _)| n),
        query,
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn new(input: &str) -> Self {
        Self {
            tokens: tokenize(input),
            pos: 0,
            len: input.len(),
        }
    }

    fn span_at(&self, pos: usize) -> Span {
        self.tokens
            .get(pos)
            .map(|t| t.span)
            .unwrap_or_else(|| Span::empty(self.len))
    }

    /// The span of the most recently consumed token — for "this word is
    /// invalid" errors, which should point at the word itself.
    fn prev_span(&self) -> Span {
        self.span_at(self.pos.saturating_sub(1))
    }

    fn error_at(&self, span: Span, message: impl Into<String>) -> OptimizerError {
        OptimizerError::Language {
            span,
            message: message.into(),
        }
    }

    fn error(&self, message: impl Into<String>) -> OptimizerError {
        self.error_at(self.span_at(self.pos), message)
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<&TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| &t.kind);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_word(&mut self, expected: &str) -> Result<(), OptimizerError> {
        let found = self.next().cloned();
        match found {
            Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case(expected) => Ok(()),
            Some(other) => {
                self.pos -= 1;
                Err(self.error(format!("expected `{expected}`, found {other:?}")))
            }
            None => Err(self.error(format!("expected `{expected}`, found end of input"))),
        }
    }

    fn next_word(&mut self, what: &str) -> Result<String, OptimizerError> {
        let found = self.next().cloned();
        match found {
            Some(TokenKind::Word(w)) => Ok(w),
            Some(other) => {
                self.pos -= 1;
                Err(self.error(format!("expected {what}, found {other:?}")))
            }
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_word_is(&self, expected: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case(expected))
    }

    /// Consume an optional `NAME =` assignment prefix (Q1 = run …),
    /// keeping the name's span for diagnostics.
    fn take_assignment_name(&mut self) -> Option<(String, Span)> {
        if let (Some(TokenKind::Word(name)), Some(TokenKind::Eq)) =
            (self.peek(), self.tokens.get(self.pos + 1).map(|t| &t.kind))
        {
            let name = name.clone();
            let span = self.span_at(self.pos);
            self.pos += 2;
            Some((name, span))
        } else {
            None
        }
    }

    fn parse_statement(&mut self) -> Result<Query, OptimizerError> {
        // Tolerate (and drop) an assignment prefix when entered directly.
        self.take_assignment_name();
        let head = self.next_word("a statement keyword")?.to_ascii_lowercase();
        let query = match head.as_str() {
            "run" => self.parse_run().map(Query::Run),
            "explain" => {
                // The `run` keyword after `explain` is optional:
                // `explain logistic() on adult …` reads naturally.
                if self.peek_word_is("run") {
                    self.pos += 1;
                }
                self.parse_run().map(Query::Explain)
            }
            "persist" => self.parse_persist(),
            "predict" => self.parse_predict(),
            other => Err(self.error_at(
                self.prev_span(),
                format!("unknown statement `{other}` (expected run, explain, persist, or predict)"),
            )),
        }?;
        // Optional trailing semicolon; nothing may follow.
        self.eat(&TokenKind::Semi);
        if self.peek().is_some() {
            return Err(self.error("unexpected trailing input"));
        }
        Ok(query)
    }

    fn parse_run(&mut self) -> Result<RunQuery, OptimizerError> {
        let task_word =
            self.next_word("a task (classification/regression) or gradient function")?;
        let task_span = self.prev_span();
        let task = if self.eat(&TokenKind::LParen) {
            if !self.eat(&TokenKind::RParen) {
                return Err(self.error("expected `)` after gradient function name"));
            }
            TaskSpec::GradientFunction(task_word.to_ascii_lowercase())
        } else {
            match task_word.to_ascii_lowercase().as_str() {
                "classification" => TaskSpec::Classification,
                "regression" => TaskSpec::Regression,
                other => {
                    return Err(self.error_at(
                        self.prev_span(),
                        format!(
                            "unknown task `{other}` (classification, regression, or gradient())"
                        ),
                    ))
                }
            }
        };

        self.expect_word("on")?;
        let (dataset, columns) = self.parse_dataset_refs()?;

        let mut having = Constraints::default();
        if self.peek_word_is("having") {
            self.pos += 1;
            self.parse_having(&mut having)?;
        }
        let mut using = UsingClause::default();
        if self.peek_word_is("using") {
            self.pos += 1;
            self.parse_using(&mut using)?;
        }
        Ok(RunQuery {
            task,
            task_span,
            dataset,
            columns,
            having,
            using,
        })
    }

    /// `file.txt` or `file.txt:2, file.txt:4-20` (label column + feature
    /// range).
    fn parse_dataset_refs(&mut self) -> Result<(String, Option<ColumnSpec>), OptimizerError> {
        let first = self.next_word("a dataset path")?;
        let (path, label_col) = split_column_ref(&first);
        if !self.eat(&TokenKind::Comma) {
            return Ok((path, None));
        }
        // A trailing comma before a clause keyword is tolerated (the
        // paper's Q2 writes `…4-20,\n having …`).
        if self.peek_word_is("having") || self.peek_word_is("using") || self.peek().is_none() {
            return Ok((path, None));
        }
        let second = self.next_word("a feature-column reference")?;
        let (path2, feat_ref) = split_column_ref(&second);
        if path2 != path {
            return Err(self.error(format!(
                "column references must target the same file ({path} vs {path2})"
            )));
        }
        let label = label_col
            .as_deref()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| self.error("expected `file:<label-col>` before the comma"))?;
        let feat = feat_ref.ok_or_else(|| self.error("expected `file:<from>-<to>`"))?;
        let (from, to) = feat
            .split_once('-')
            .and_then(|(a, b)| Some((a.parse::<u32>().ok()?, b.parse::<u32>().ok()?)))
            .ok_or_else(|| self.error("feature columns must be a range like 4-20"))?;
        if from > to {
            return Err(self.error("feature column range is reversed"));
        }
        // Optional trailing comma before a clause keyword.
        if self.peek() == Some(&TokenKind::Comma)
            && matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.kind),
                Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case("having")
                    || w.eq_ignore_ascii_case("using")
            )
        {
            self.pos += 1;
        }
        Ok((
            path,
            Some(ColumnSpec {
                label,
                features: (from, to),
            }),
        ))
    }

    fn parse_having(&mut self, having: &mut Constraints) -> Result<(), OptimizerError> {
        loop {
            let key = self.next_word("a constraint (time, epsilon, max iter)")?;
            match key.to_ascii_lowercase().as_str() {
                "time" => {
                    let w = self.next_word("a duration like 1h30m")?;
                    having.time = Some(parse_duration(&w).ok_or_else(|| {
                        self.error_at(self.prev_span(), format!("bad duration `{w}`"))
                    })?);
                }
                "epsilon" => {
                    let w = self.next_word("a tolerance value")?;
                    having.epsilon = Some(w.parse().map_err(|_| {
                        self.error_at(self.prev_span(), format!("bad epsilon `{w}`"))
                    })?);
                }
                "max" => {
                    self.expect_word("iter")?;
                    let w = self.next_word("an iteration count")?;
                    having.max_iter = Some(w.parse().map_err(|_| {
                        self.error_at(self.prev_span(), format!("bad max iter `{w}`"))
                    })?);
                }
                other => {
                    return Err(
                        self.error_at(self.prev_span(), format!("unknown constraint `{other}`"))
                    )
                }
            }
            if !self.eat(&TokenKind::Comma) {
                return Ok(());
            }
        }
    }

    fn parse_using(&mut self, using: &mut UsingClause) -> Result<(), OptimizerError> {
        loop {
            let key =
                self.next_word("a directive (algorithm, step, sampler, convergence, batch)")?;
            match key.to_ascii_lowercase().as_str() {
                "algorithm" => {
                    let w = self.next_word("an algorithm name")?;
                    using.algorithm = Some(SpannedWord::new(w, self.prev_span()));
                }
                "step" => {
                    let w = self.next_word("a step value")?;
                    using.step =
                        Some(w.parse().map_err(|_| {
                            self.error_at(self.prev_span(), format!("bad step `{w}`"))
                        })?);
                }
                "sampler" => {
                    let name = self.next_word("a sampler name")?;
                    let span = self.prev_span();
                    if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
                        return Err(self.error("expected `()` after sampler name"));
                    }
                    using.sampler = Some(SpannedWord::new(name, span));
                }
                "convergence" => {
                    let name = self.next_word("a convergence function")?;
                    if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
                        return Err(self.error("expected `()` after convergence name"));
                    }
                    using.convergence = Some(name);
                }
                "batch" => {
                    let w = self.next_word("a batch size")?;
                    using.batch = Some(w.parse().map_err(|_| {
                        self.error_at(self.prev_span(), format!("bad batch `{w}`"))
                    })?);
                }
                other => {
                    return Err(
                        self.error_at(self.prev_span(), format!("unknown directive `{other}`"))
                    )
                }
            }
            if !self.eat(&TokenKind::Comma) {
                return Ok(());
            }
        }
    }

    fn parse_persist(&mut self) -> Result<Query, OptimizerError> {
        let name = self.next_word("a query name")?;
        self.expect_word("on")?;
        let path = self.next_word("a destination path")?;
        Ok(Query::Persist { name, path })
    }

    fn parse_predict(&mut self) -> Result<Query, OptimizerError> {
        self.expect_word("on")?;
        let dataset = self.next_word("a test dataset path")?;
        self.expect_word("with")?;
        let model = self.next_word("a model path")?;
        Ok(Query::Predict { dataset, model })
    }
}

fn split_column_ref(word: &str) -> (String, Option<String>) {
    match word.rsplit_once(':') {
        Some((path, cols)) if !cols.is_empty() && cols.chars().next().unwrap().is_ascii_digit() => {
            (path.to_string(), Some(cols.to_string()))
        }
        _ => (word.to_string(), None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn parses_q1_minimal_run() {
        let q = parse_query("run classification on training_data.txt;").unwrap();
        match q {
            Query::Run(r) => {
                assert_eq!(r.task, TaskSpec::Classification);
                assert_eq!(r.dataset, "training_data.txt");
                assert!(r.columns.is_none());
                assert_eq!(r.having, Constraints::default());
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn parses_q2_with_columns_and_constraints() {
        let q = parse_query(
            "Q2 = run classification on input_data.txt:2, input_data.txt:4-20, \
             having time 1h30m, epsilon 0.01, max iter 1000;",
        );
        // Note: the paper's Q2 has a comma after the column refs; our
        // grammar treats `having` as a keyword so the comma form also
        // parses when omitted. Use the canonical form:
        let q = match q {
            Ok(q) => q,
            Err(_) => parse_query(
                "Q2 = run classification on input_data.txt:2, input_data.txt:4-20 \
                 having time 1h30m, epsilon 0.01, max iter 1000;",
            )
            .unwrap(),
        };
        match q {
            Query::Run(r) => {
                let c = r.columns.unwrap();
                assert_eq!(c.label, 2);
                assert_eq!(c.features, (4, 20));
                assert_eq!(r.having.time, Some(Duration::from_secs(5400)));
                assert_eq!(r.having.epsilon, Some(0.01));
                assert_eq!(r.having.max_iter, Some(1000));
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn parses_q3_using_directives() {
        let q = parse_query(
            "Q3 = run classification on input_data.txt \
             using algorithm SGD, convergence cnvg(), step 1, sampler my_sampler();",
        )
        .unwrap();
        match q {
            Query::Run(r) => {
                assert_eq!(
                    r.using.algorithm.as_ref().map(|a| a.text.as_str()),
                    Some("SGD")
                );
                assert_eq!(r.using.convergence.as_deref(), Some("cnvg"));
                assert_eq!(r.using.step, Some(1.0));
                assert_eq!(
                    r.using.sampler.as_ref().map(|s| s.text.as_str()),
                    Some("my_sampler")
                );
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn parses_gradient_function_task() {
        let q = parse_query("run hinge() on data.txt;").unwrap();
        match q {
            Query::Run(r) => assert_eq!(r.task, TaskSpec::GradientFunction("hinge".into())),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_persist_and_predict() {
        assert_eq!(
            parse_query("persist Q1 on my_model.txt;").unwrap(),
            Query::Persist {
                name: "Q1".into(),
                path: "my_model.txt".into()
            }
        );
        assert_eq!(
            parse_query("result = predict on test_data.txt with my_model.txt;").unwrap(),
            Query::Predict {
                dataset: "test_data.txt".into(),
                model: "my_model.txt".into()
            }
        );
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("fetch data;").is_err());
        assert!(parse_query("run juggling on data.txt;").is_err());
        assert!(parse_query("run classification;").is_err());
        assert!(parse_query("run classification on d.txt having banana 3;").is_err());
        assert!(parse_query("run classification on d.txt having time nope;").is_err());
        assert!(parse_query("run classification on d.txt using step abc;").is_err());
        assert!(parse_query("run classification on d.txt; extra").is_err());
    }

    #[test]
    fn rejects_reversed_or_mismatched_columns() {
        assert!(parse_query("run classification on a.txt:2, b.txt:4-20;").is_err());
        assert!(parse_query("run classification on a.txt:2, a.txt:20-4;").is_err());
    }

    #[test]
    fn errors_carry_the_offending_token_span() {
        let src = "run classification on d.txt having zzz 1;";
        let err = parse_query(src).unwrap_err();
        match err {
            OptimizerError::Language { span, .. } => {
                assert_eq!(&src[span.start..span.end], "zzz");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn end_of_input_errors_point_past_the_statement() {
        let src = "run classification";
        let err = parse_query(src).unwrap_err();
        match err {
            OptimizerError::Language { span, .. } => {
                assert_eq!(span.start, src.len());
                assert_eq!(span.end, src.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn directive_words_carry_their_spans() {
        let src = "run classification on d.txt using algorithm SGD, sampler shuffled;";
        let Query::Run(r) = parse_query(src).unwrap() else {
            panic!("expected run")
        };
        let alg = r.using.algorithm.unwrap();
        assert_eq!(&src[alg.span.start..alg.span.end], "SGD");
        let sampler = r.using.sampler.unwrap();
        assert_eq!(&src[sampler.span.start..sampler.span.end], "shuffled");
        assert_eq!(&src[r.task_span.start..r.task_span.end], "classification");
    }

    #[test]
    fn assignment_to_explain_is_rejected_at_the_name() {
        let src = "R = explain logistic() on adult;";
        let err = parse_statement(src).unwrap_err();
        match err {
            OptimizerError::Language { span, message } => {
                assert_eq!(&src[span.start..span.end], "R");
                assert!(message.contains("does not bind"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_explain_with_and_without_the_run_keyword() {
        for src in [
            "explain logistic() on adult having epsilon 0.01;",
            "explain run logistic() on adult having epsilon 0.01;",
        ] {
            match parse_query(src).unwrap() {
                Query::Explain(r) => {
                    assert_eq!(r.task, TaskSpec::GradientFunction("logistic".into()));
                    assert_eq!(r.dataset, "adult");
                    assert_eq!(r.having.epsilon, Some(0.01));
                }
                other => panic!("expected explain, got {other:?}"),
            }
        }
    }

    #[test]
    fn explain_accepts_every_run_clause() {
        let q = parse_query(
            "explain classification on input.txt:2, input.txt:4-20 \
             having max iter 100 using algorithm MGD, batch 500;",
        )
        .unwrap();
        let Query::Explain(r) = q else {
            panic!("expected explain")
        };
        assert_eq!(r.columns.unwrap().features, (4, 20));
        assert_eq!(r.using.batch, Some(500));
    }
}
