//! The ML4all cost-based gradient-descent optimizer — the paper's primary
//! contribution (Sections 3, 5, 6, 7 and Appendix A).
//!
//! Given a declarative ML task ("run classification on data having epsilon
//! 0.01"), the optimizer:
//!
//! 1. **estimates the number of iterations** each GD algorithm needs to
//!    reach the requested tolerance, by *speculation*: run the algorithm on
//!    a small sample under a time budget, record the error sequence, fit
//!    `T(ε) = a/ε`, extrapolate ([`estimator`], Algorithm 1);
//! 2. **enumerates the plan space** of Figure 5 — {BGD} ∪ {SGD, MGD} ×
//!    {eager, lazy} × {Bernoulli, random-partition, shuffled-partition},
//!    pruned to 11 plans ([`planspace`]);
//! 3. **costs each plan** with the operator cost model of Equations 3–6
//!    composed into the per-plan formulas of Equations 7–9 ([`cost`]);
//! 4. **picks the cheapest plan** and reports the full cost table plus the
//!    speculation overhead ([`chooser`]);
//! 5. optionally parses the whole task from the declarative language of
//!    Appendix A ([`lang`]).
//!
//! # Quickstart
//!
//! ```no_run
//! use ml4all_core::chooser::{choose_plan, OptimizerConfig};
//! use ml4all_dataflow::{ClusterSpec, SimEnv};
//! use ml4all_gd::{execute_plan, GradientKind, TrainParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = ClusterSpec::paper_testbed();
//! let data = ml4all_datasets::registry::covtype().build(10_000, 7, &cluster)?;
//! let config = OptimizerConfig::new(GradientKind::LogisticRegression)
//!     .with_tolerance(0.001);
//! let report = choose_plan(&data, &config, &cluster)?;
//! println!("best plan: {}", report.best().plan);
//!
//! let mut env = SimEnv::new(cluster);
//! let params = config.train_params();
//! let result = execute_plan(&report.best().plan, &data, &params, &mut env)?;
//! println!("trained in {} iterations", result.iterations);
//! # Ok(())
//! # }
//! ```

pub mod calibration;
pub mod chooser;
pub mod cost;
pub mod curvefit;
pub mod estimator;
pub mod lang;
pub mod plancache;
pub mod planspace;
pub mod platform;

pub use calibration::{
    plan_feature_key, CalibrationSnapshot, CalibrationStamp, CostScales, ResidualEntry,
};
pub use chooser::{choose_plan, OptimizerConfig, OptimizerReport, PlanChoice};
pub use curvefit::CurveFit;
pub use estimator::{estimate_iterations, IterationsEstimate, SpeculationConfig};
pub use plancache::{PlanCache, PlanCacheEntry, PlanCacheKey};
pub use planspace::{enumerate_plans, enumerate_plans_for_variants};
pub use platform::{map_plan, Platform, PlatformMapping};

/// Errors raised by the optimizer.
#[derive(Debug)]
pub enum OptimizerError {
    /// The speculative run produced no usable error sequence (e.g. the
    /// algorithm diverged or emitted a single point).
    InsufficientSpeculation {
        /// Which plan was being speculated.
        plan: String,
        /// Number of usable `(iteration, error)` pairs observed.
        pairs: usize,
    },
    /// Underlying GD execution failed.
    Gd(ml4all_gd::GdError),
    /// Dataset-level failure.
    Dataflow(ml4all_dataflow::DataflowError),
    /// The declarative query is malformed.
    Language {
        /// Byte span of the offending token in the query text (empty for
        /// semantic errors raised after parsing).
        span: lang::lexer::Span,
        /// What went wrong.
        message: String,
    },
    /// The query's constraints cannot be satisfied (the paper: "if the
    /// system cannot satisfy any of these constraints, it informs the
    /// user which constraint she has to revisit").
    UnsatisfiableConstraint(String),
    /// A persisted plan-cache entry predates calibration-generation
    /// keying (or lost its generation to hand editing) and cannot be
    /// trusted to price plans correctly — refused on load, never replayed.
    StalePlanCache {
        /// The offending entry's cache key.
        key: String,
    },
}

impl std::fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InsufficientSpeculation { plan, pairs } => write!(
                f,
                "speculation for {plan} produced only {pairs} usable error points"
            ),
            Self::Gd(e) => write!(f, "gd error: {e}"),
            Self::Dataflow(e) => write!(f, "dataflow error: {e}"),
            Self::Language { span, message } => {
                write!(f, "query error at byte {}: {message}", span.start)
            }
            Self::UnsatisfiableConstraint(msg) => write!(f, "unsatisfiable constraint: {msg}"),
            Self::StalePlanCache { key } => write!(
                f,
                "stale plan-cache entry (no calibration generation): {key}"
            ),
        }
    }
}

impl std::error::Error for OptimizerError {}

impl From<ml4all_gd::GdError> for OptimizerError {
    fn from(e: ml4all_gd::GdError) -> Self {
        Self::Gd(e)
    }
}

impl From<ml4all_dataflow::DataflowError> for OptimizerError {
    fn from(e: ml4all_dataflow::DataflowError) -> Self {
        Self::Dataflow(e)
    }
}
