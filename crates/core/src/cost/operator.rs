//! Per-operator cost estimation (Section 7.1, Equations 3–6).
//!
//! Each helper builds a scratch [`SimEnv`], charges the operations the
//! operator would perform, and reads off the simulated seconds. `Transform`,
//! `Compute`, `Sample`, `Converge` and `Loop` involve IO and CPU only;
//! `Update` is the only operator with a network term (the aggregated
//! compute outputs travel to a single node); `Stage` is CPU-only.
//!
//! Every operator is costed twice over: the `*_s` methods return the total
//! simulated seconds (the quantity Equations 7–9 compose), and the `*_cost`
//! methods return the full per-category [`CostBreakdown`] the charge left
//! in the scratch ledger — the vector online calibration rescales. The two
//! views are the same ledger read (`elapsed_s()` *is* the snapshot total),
//! so the scalar path is bit-identical with calibration compiled in or out.

use ml4all_dataflow::{
    ClusterSpec, CostBreakdown, DatasetDescriptor, SamplingMethod, SimEnv, StorageMedium,
};

/// Cost calculator for one dataset on one cluster.
#[derive(Debug, Clone)]
pub struct OperatorCosts<'a> {
    spec: &'a ClusterSpec,
    desc: &'a DatasetDescriptor,
}

impl<'a> OperatorCosts<'a> {
    /// New calculator.
    pub fn new(spec: &'a ClusterSpec, desc: &'a DatasetDescriptor) -> Self {
        Self { spec, desc }
    }

    fn scratch(&self) -> SimEnv {
        SimEnv::new(self.spec.clone())
    }

    /// The dataset descriptor this calculator costs against.
    pub fn descriptor(&self) -> &DatasetDescriptor {
        self.desc
    }

    /// `true` when iterations over this dataset run distributed.
    pub fn distributed(&self) -> bool {
        !self.desc.fits_one_partition(self.spec)
    }

    /// One-time job initialization.
    pub fn job_init_s(&self) -> f64 {
        self.spec.job_init_s
    }

    /// One-time job initialization as a cost vector (pure overhead).
    pub fn job_init_cost(&self) -> CostBreakdown {
        CostBreakdown {
            overhead_s: self.spec.job_init_s,
            ..CostBreakdown::default()
        }
    }

    /// `Stage` (`cS`): CPU-only parameter initialization.
    pub fn stage_cost(&self) -> CostBreakdown {
        let mut env = self.scratch();
        env.charge_serial_cpu(1, env.spec.cpu_stage_s(self.desc.dims));
        env.ledger.snapshot()
    }

    /// `Stage` total seconds.
    pub fn stage_s(&self) -> f64 {
        self.stage_cost().total_s()
    }

    /// `Transform` over the full dataset (`cT(D)`): first read comes from
    /// disk, plus wave-parallel parse CPU.
    pub fn transform_full_cost(&self) -> CostBreakdown {
        let mut env = self.scratch();
        env.charge_full_scan_io(self.desc, StorageMedium::Disk);
        env.charge_wave_cpu(self.desc, env.spec.cpu_transform_s(self.desc.avg_nnz()));
        env.ledger.snapshot()
    }

    /// `Transform` over the full dataset, total seconds.
    pub fn transform_full_s(&self) -> f64 {
        self.transform_full_cost().total_s()
    }

    /// `Transform` over `m` sampled units (`cT(mᵢ)`), driver-side.
    pub fn transform_units_cost(&self, m: u64) -> CostBreakdown {
        let mut env = self.scratch();
        env.charge_serial_cpu(m, env.spec.cpu_transform_s(self.desc.avg_nnz()));
        env.ledger.snapshot()
    }

    /// `Transform` over `m` sampled units, total seconds.
    pub fn transform_units_s(&self, m: u64) -> f64 {
        self.transform_units_cost(m).total_s()
    }

    /// `Compute` over the full dataset (`cC(D)`): a cache-aware scan plus
    /// wave-parallel gradient CPU.
    pub fn compute_full_cost(&self) -> CostBreakdown {
        let mut env = self.scratch();
        env.charge_full_scan_io(self.desc, StorageMedium::Auto);
        env.charge_wave_cpu(self.desc, env.spec.cpu_gradient_s(self.desc.avg_nnz()));
        env.ledger.snapshot()
    }

    /// `Compute` over the full dataset, total seconds.
    pub fn compute_full_s(&self) -> f64 {
        self.compute_full_cost().total_s()
    }

    /// `Compute` over `m` sampled units (`cC(mᵢ)`): the sample is shipped
    /// to the driver (hybrid execution) and processed serially.
    pub fn compute_units_cost(&self, m: u64) -> CostBreakdown {
        let mut env = self.scratch();
        if self.distributed() {
            env.charge_network(self.desc.unit_bytes().ceil() as u64 * m);
        }
        env.charge_serial_cpu(m, env.spec.cpu_gradient_s(self.desc.avg_nnz()));
        env.ledger.snapshot()
    }

    /// `Compute` over `m` sampled units, total seconds.
    pub fn compute_units_s(&self, m: u64) -> f64 {
        self.compute_units_cost(m).total_s()
    }

    /// `Update` (`cU`): the only operator with a network term — every
    /// active partition ships its partial aggregate (a `d`-vector) to one
    /// node, which then applies the step.
    pub fn update_cost(&self, batch_aggregation: bool) -> CostBreakdown {
        let mut env = self.scratch();
        if batch_aggregation && self.distributed() {
            let active = self.desc.partitions(self.spec);
            env.charge_network(active * self.desc.dims as u64 * 8);
        }
        env.charge_serial_cpu(1, env.spec.cpu_update_s(self.desc.dims));
        env.ledger.snapshot()
    }

    /// `Update` total seconds.
    pub fn update_s(&self, batch_aggregation: bool) -> f64 {
        self.update_cost(batch_aggregation).total_s()
    }

    /// `Converge` + `Loop` (`cCV + cL`): single-node model-vector pass.
    pub fn converge_loop_cost(&self) -> CostBreakdown {
        let mut env = self.scratch();
        env.charge_serial_cpu(1, env.spec.cpu_converge_s(self.desc.dims));
        env.ledger.snapshot()
    }

    /// `Converge` + `Loop` total seconds.
    pub fn converge_loop_s(&self) -> f64 {
        self.converge_loop_cost().total_s()
    }

    /// `Sample` (`cSP`): expected per-iteration cost of drawing `m` units
    /// with the given strategy (Figure 4 semantics).
    pub fn sample_cost(&self, method: SamplingMethod, m: u64) -> CostBreakdown {
        let mut env = self.scratch();
        match method {
            SamplingMethod::Bernoulli => {
                // Scan everything, test every unit.
                env.charge_full_scan_io(self.desc, StorageMedium::Auto);
                env.charge_wave_cpu(self.desc, env.spec.cpu_sample_test_s());
            }
            SamplingMethod::RandomPartition => {
                for _ in 0..m {
                    env.charge_random_unit_read(self.desc, StorageMedium::Auto);
                }
                env.charge_serial_cpu(m, env.spec.cpu_sample_test_s());
            }
            SamplingMethod::ShuffledPartition => {
                // One partition shuffle (seek + sequential read +
                // Fisher–Yates over its k units) serves k sequential
                // draws; amortize it as m/k per iteration — identical to
                // the charge the sampler itself applies.
                let k = self.desc.units_per_partition(self.spec).max(1);
                let mut shuffle_env = self.scratch();
                shuffle_env.charge_seek(self.desc.bytes, StorageMedium::Auto);
                let partition_bytes = self
                    .desc
                    .bytes
                    .div_ceil(self.desc.partitions(self.spec))
                    .min(self.spec.partition_bytes);
                shuffle_env.charge_sequential_read(
                    partition_bytes,
                    self.desc.bytes,
                    StorageMedium::Auto,
                );
                shuffle_env.charge_serial_cpu(k, shuffle_env.spec.cpu_shuffle_unit_s());
                env.ledger
                    .charge_io(shuffle_env.elapsed_s() * m as f64 / k as f64);

                let unit_bytes = self.desc.unit_bytes().ceil() as u64;
                env.charge_sequential_read(unit_bytes * m, self.desc.bytes, StorageMedium::Auto);
                env.charge_serial_cpu(m, env.spec.cpu_sample_test_s());
            }
        }
        env.ledger.snapshot()
    }

    /// `Sample` total seconds.
    pub fn sample_s(&self, method: SamplingMethod, m: u64) -> f64 {
        self.sample_cost(method, m).total_s()
    }

    /// Per-iteration scheduling overhead: a stage launch on distributed
    /// data, the driver loop otherwise.
    pub fn iteration_overhead_cost(&self) -> CostBreakdown {
        let mut env = self.scratch();
        env.charge_iteration_overhead(self.distributed());
        env.ledger.snapshot()
    }

    /// Per-iteration scheduling overhead, total seconds.
    pub fn iteration_overhead_s(&self) -> f64 {
        self.iteration_overhead_cost().total_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::paper_testbed()
    }

    fn small() -> DatasetDescriptor {
        DatasetDescriptor::new("small", 100_000, 123, 7 * 1024 * 1024, 0.11)
    }

    fn large() -> DatasetDescriptor {
        DatasetDescriptor::new("large", 5_516_800, 100, 10 * 1024 * 1024 * 1024, 1.0)
    }

    #[test]
    fn transform_full_scales_with_dataset() {
        let s = spec();
        let (sd, ld) = (small(), large());
        let small_cost = OperatorCosts::new(&s, &sd).transform_full_s();
        let large_cost = OperatorCosts::new(&s, &ld).transform_full_s();
        assert!(large_cost > 10.0 * small_cost);
    }

    #[test]
    fn compute_units_is_independent_of_dataset_size() {
        // The SGD promise: per-iteration compute cost is O(1) in n.
        let s = spec();
        let (sd, ld) = (small(), large());
        let small_cost = OperatorCosts::new(&s, &sd).compute_units_s(1);
        let large_cost = OperatorCosts::new(&s, &ld).compute_units_s(1);
        // Not exactly equal (unit bytes differ → shipping cost) but within
        // two orders of magnitude of each other, vs ~1000× for full scans.
        assert!(large_cost < small_cost * 100.0);
    }

    #[test]
    fn breakdown_totals_match_the_scalar_view_bitwise() {
        let s = spec();
        let d = large();
        let costs = OperatorCosts::new(&s, &d);
        assert_eq!(
            costs.compute_full_cost().total_s().to_bits(),
            costs.compute_full_s().to_bits()
        );
        assert_eq!(
            costs
                .sample_cost(SamplingMethod::Bernoulli, 10)
                .total_s()
                .to_bits(),
            costs.sample_s(SamplingMethod::Bernoulli, 10).to_bits()
        );
        assert_eq!(
            costs.update_cost(true).total_s().to_bits(),
            costs.update_s(true).to_bits()
        );
        // The update network term lands in the net category.
        assert!(costs.update_cost(true).net_s > 0.0);
        assert_eq!(costs.update_cost(false).net_s, 0.0);
        // Job init is pure overhead.
        assert_eq!(costs.job_init_cost().total_s(), costs.job_init_s());
        assert_eq!(costs.job_init_cost().overhead_s, costs.job_init_s());
    }

    #[test]
    fn bernoulli_sampling_costs_like_a_scan() {
        let s = spec();
        let d = large();
        let costs = OperatorCosts::new(&s, &d);
        let bernoulli = costs.sample_s(SamplingMethod::Bernoulli, 1);
        let shuffle = costs.sample_s(SamplingMethod::ShuffledPartition, 1);
        assert!(
            bernoulli > 20.0 * shuffle,
            "bernoulli {bernoulli} vs shuffle {shuffle}"
        );
    }

    #[test]
    fn shuffle_beats_random_for_large_distributed_data() {
        let s = spec();
        let d = large();
        let costs = OperatorCosts::new(&s, &d);
        let random = costs.sample_s(SamplingMethod::RandomPartition, 1000);
        let shuffle = costs.sample_s(SamplingMethod::ShuffledPartition, 1000);
        assert!(shuffle < random, "shuffle {shuffle} vs random {random}");
    }

    #[test]
    fn update_network_term_only_for_distributed_batch() {
        let s = spec();
        let small_desc = small();
        let small_costs = OperatorCosts::new(&s, &small_desc);
        // Single-partition dataset → no network either way.
        assert!((small_costs.update_s(true) - small_costs.update_s(false)).abs() < 1e-12);
        let large_desc = large();
        let large_costs = OperatorCosts::new(&s, &large_desc);
        assert!(large_costs.update_s(true) > large_costs.update_s(false));
    }

    #[test]
    fn stage_and_converge_are_cheap_and_dimension_dependent() {
        let s = spec();
        let lo = DatasetDescriptor::new("lo", 1000, 10, 1024, 1.0);
        let hi = DatasetDescriptor::new("hi", 1000, 100_000, 1024, 1.0);
        assert!(
            OperatorCosts::new(&s, &hi).converge_loop_s()
                > OperatorCosts::new(&s, &lo).converge_loop_s()
        );
        assert!(OperatorCosts::new(&s, &lo).stage_s() < 1e-3);
    }
}
