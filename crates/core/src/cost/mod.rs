//! The GD cost model of Section 7: per-operator costs (Equations 3–6)
//! composed into per-plan costs (Equations 7–9).
//!
//! The estimates are built from the *same* charging primitives the
//! execution substrate uses (`ml4all_dataflow::SimEnv`), so the model and
//! the simulator cannot drift apart: estimation error comes only from the
//! estimated iteration count and sampling randomness — exactly the two
//! quantities the paper evaluates in Figures 6 and 7.

pub mod operator;
pub mod plan;

pub use operator::OperatorCosts;
pub use plan::PlanCostModel;
