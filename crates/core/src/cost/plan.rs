//! Per-plan cost composition (Section 7.2, Equations 7–9).
//!
//! - **BGD** (Eq. 7):  `C = cS + cT(D) + T × (cC(D) + cU(D) + cCV + cL)`
//! - **MGD/SGD eager** (Eq. 8): `C = cS + cT(D) + T × (cSP(D) + cC(mᵢ) +
//!   cU(mᵢ) + cCV + cL)`
//! - **MGD/SGD lazy** (Eq. 9): `C = cS + T × (cSP(D) + cT(mᵢ) + cC(mᵢ) +
//!   cU(mᵢ) + cCV + cL)`
//!
//! plus the fixed job-initialization overhead and the per-iteration
//! scheduling overhead the substrate charges.

use ml4all_dataflow::{ClusterSpec, CostBreakdown, DatasetDescriptor};
use ml4all_gd::{GdPlan, GdVariant, TransformPolicy};

use super::operator::OperatorCosts;

/// Cost model for all plans over one dataset on one cluster.
#[derive(Debug, Clone)]
pub struct PlanCostModel<'a> {
    costs: OperatorCosts<'a>,
}

impl<'a> PlanCostModel<'a> {
    /// New model.
    pub fn new(spec: &'a ClusterSpec, desc: &'a DatasetDescriptor) -> Self {
        Self {
            costs: OperatorCosts::new(spec, desc),
        }
    }

    /// Access the underlying operator costs.
    pub fn operators(&self) -> &OperatorCosts<'a> {
        &self.costs
    }

    /// One-time preparation cost: job init + `Stage` (+ eager `Transform`).
    pub fn preparation_s(&self, plan: &GdPlan) -> f64 {
        let mut total = self.costs.job_init_s() + self.costs.stage_s();
        if plan.transform == TransformPolicy::Eager {
            total += self.costs.transform_full_s();
        }
        total
    }

    /// Expected cost of one iteration of the plan.
    pub fn per_iteration_s(&self, plan: &GdPlan) -> f64 {
        let tail = self.costs.converge_loop_s();
        match plan.variant {
            GdVariant::Batch => {
                self.costs.iteration_overhead_s()
                    + self.costs.compute_full_s()
                    + self.costs.update_s(true)
                    + tail
            }
            GdVariant::Stochastic | GdVariant::MiniBatch { .. } => {
                let m = plan.variant.sample_size(self.costs_desc().n);
                let sampling = plan
                    .sampling
                    .expect("stochastic plans carry a sampling strategy");
                let mut iter = self.costs.iteration_overhead_s()
                    + self.costs.sample_s(sampling, m)
                    + self.costs.compute_units_s(m)
                    + self.costs.update_s(false)
                    + tail;
                if plan.transform == TransformPolicy::Lazy {
                    iter += self.costs.transform_units_s(m);
                }
                iter
            }
        }
    }

    /// Total plan cost for `iterations` iterations (Equations 7–9).
    pub fn total_s(&self, plan: &GdPlan, iterations: u64) -> f64 {
        self.preparation_s(plan) + iterations as f64 * self.per_iteration_s(plan)
    }

    /// One-time preparation cost as a per-category vector — the same
    /// composition as [`PlanCostModel::preparation_s`], kept category-wise
    /// so online calibration can rescale IO/CPU/net/overhead separately.
    pub fn preparation_cost(&self, plan: &GdPlan) -> CostBreakdown {
        let mut total = self.costs.job_init_cost().plus(&self.costs.stage_cost());
        if plan.transform == TransformPolicy::Eager {
            total = total.plus(&self.costs.transform_full_cost());
        }
        total
    }

    /// Expected cost of one iteration as a per-category vector.
    pub fn per_iteration_cost(&self, plan: &GdPlan) -> CostBreakdown {
        let tail = self.costs.converge_loop_cost();
        match plan.variant {
            GdVariant::Batch => self
                .costs
                .iteration_overhead_cost()
                .plus(&self.costs.compute_full_cost())
                .plus(&self.costs.update_cost(true))
                .plus(&tail),
            GdVariant::Stochastic | GdVariant::MiniBatch { .. } => {
                let m = plan.variant.sample_size(self.costs_desc().n);
                let sampling = plan
                    .sampling
                    .expect("stochastic plans carry a sampling strategy");
                let mut iter = self
                    .costs
                    .iteration_overhead_cost()
                    .plus(&self.costs.sample_cost(sampling, m))
                    .plus(&self.costs.compute_units_cost(m))
                    .plus(&self.costs.update_cost(false))
                    .plus(&tail);
                if plan.transform == TransformPolicy::Lazy {
                    iter = iter.plus(&self.costs.transform_units_cost(m));
                }
                iter
            }
        }
    }

    fn costs_desc(&self) -> &DatasetDescriptor {
        // OperatorCosts holds the descriptor; expose it for sample sizing.
        self.costs.descriptor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_dataflow::SamplingMethod;
    use ml4all_gd::GdError;

    fn spec() -> ClusterSpec {
        ClusterSpec::paper_testbed()
    }

    fn small() -> DatasetDescriptor {
        DatasetDescriptor::new("adult", 100_827, 123, 7 * 1024 * 1024, 0.11)
    }

    fn large() -> DatasetDescriptor {
        DatasetDescriptor::new("svm1", 5_516_800, 100, 10 * 1024 * 1024 * 1024, 1.0)
    }

    fn sgd(transform: TransformPolicy, sampling: SamplingMethod) -> Result<GdPlan, GdError> {
        GdPlan::sgd(transform, sampling)
    }

    #[test]
    fn bgd_total_grows_linearly_in_iterations() {
        let s = spec();
        let d = large();
        let model = PlanCostModel::new(&s, &d);
        let plan = GdPlan::bgd();
        let c100 = model.total_s(&plan, 100);
        let c200 = model.total_s(&plan, 200);
        let per_iter = model.per_iteration_s(&plan);
        assert!((c200 - c100 - 100.0 * per_iter).abs() < 1e-9);
    }

    #[test]
    fn cost_vectors_total_to_the_scalar_model() {
        let s = spec();
        let d = large();
        let model = PlanCostModel::new(&s, &d);
        for plan in [
            GdPlan::bgd(),
            sgd(TransformPolicy::Lazy, SamplingMethod::ShuffledPartition).unwrap(),
            GdPlan::mgd(1000, TransformPolicy::Eager, SamplingMethod::Bernoulli).unwrap(),
        ] {
            let prep = model.preparation_cost(&plan);
            let iter = model.per_iteration_cost(&plan);
            // The vectors are the same ledger charges; only float
            // association differs from the scalar composition.
            assert!(
                (prep.total_s() - model.preparation_s(&plan)).abs()
                    < 1e-9 * model.preparation_s(&plan).max(1.0),
                "{plan}: prep vector diverged"
            );
            assert!(
                (iter.total_s() - model.per_iteration_s(&plan)).abs()
                    < 1e-9 * model.per_iteration_s(&plan).max(1.0),
                "{plan}: per-iteration vector diverged"
            );
            assert!(iter.cpu_s > 0.0, "{plan}: every plan computes");
        }
    }

    #[test]
    fn lazy_sgd_skips_preparation_transform() {
        let s = spec();
        let d = large();
        let model = PlanCostModel::new(&s, &d);
        let eager = sgd(TransformPolicy::Eager, SamplingMethod::ShuffledPartition).unwrap();
        let lazy = sgd(TransformPolicy::Lazy, SamplingMethod::ShuffledPartition).unwrap();
        assert!(model.preparation_s(&eager) > model.preparation_s(&lazy) + 1.0);
        // Per-iteration, lazy pays the small per-unit transform instead.
        assert!(model.per_iteration_s(&lazy) >= model.per_iteration_s(&eager));
    }

    #[test]
    fn lazy_wins_for_few_iterations_eager_for_many() {
        // The crossover that motivates cost-based (not rule-based)
        // selection, Section 8.6.
        let s = spec();
        let d = large();
        let model = PlanCostModel::new(&s, &d);
        let eager = GdPlan::mgd(
            1000,
            TransformPolicy::Eager,
            SamplingMethod::ShuffledPartition,
        )
        .unwrap();
        let lazy = GdPlan::mgd(
            1000,
            TransformPolicy::Lazy,
            SamplingMethod::ShuffledPartition,
        )
        .unwrap();
        assert!(model.total_s(&lazy, 5) < model.total_s(&eager, 5));
        assert!(model.total_s(&eager, 1_000_000) < model.total_s(&lazy, 1_000_000));
    }

    #[test]
    fn sgd_iteration_is_far_cheaper_than_bgd_on_large_data() {
        let s = spec();
        let d = large();
        let model = PlanCostModel::new(&s, &d);
        let bgd = model.per_iteration_s(&GdPlan::bgd());
        let sgd_plan = sgd(TransformPolicy::Lazy, SamplingMethod::ShuffledPartition).unwrap();
        let sgd_cost = model.per_iteration_s(&sgd_plan);
        // The compute gap is O(n) vs O(1); the fixed per-iteration stage
        // launch compresses the end-to-end ratio (the paper's svm1 numbers
        // show ~7×: 1.4 s/iter BGD vs 0.2 s/iter MGD).
        assert!(
            bgd > 5.0 * sgd_cost,
            "bgd {bgd} vs sgd {sgd_cost}: the O(n) vs O(1) gap"
        );
    }

    #[test]
    fn bernoulli_sampling_costs_like_a_scan_on_large_data() {
        let s = spec();
        let d = large();
        let model = PlanCostModel::new(&s, &d);
        // The sampler component itself: Bernoulli pays a full scan while
        // shuffled-partition pays an amortized partition read. The fixed
        // per-iteration stage launch dilutes the end-to-end ratio, so the
        // comparison targets the Sample operator (cSP of Equation 8).
        let bernoulli = model.operators().sample_s(SamplingMethod::Bernoulli, 1);
        let shuffle = model
            .operators()
            .sample_s(SamplingMethod::ShuffledPartition, 1);
        assert!(
            bernoulli > 20.0 * shuffle,
            "bernoulli {bernoulli} vs shuffle {shuffle}"
        );
        // And it still shows through end to end.
        let b_plan = sgd(TransformPolicy::Eager, SamplingMethod::Bernoulli).unwrap();
        let s_plan = sgd(TransformPolicy::Eager, SamplingMethod::ShuffledPartition).unwrap();
        assert!(model.per_iteration_s(&b_plan) > 1.3 * model.per_iteration_s(&s_plan));
    }

    #[test]
    fn small_data_shrinks_the_gap_between_samplers() {
        // On one-partition datasets Bernoulli's scan is cheap — the reason
        // eager-bernoulli wins small datasets in Figure 13(a).
        let s = spec();
        let d = small();
        let model = PlanCostModel::new(&s, &d);
        let bernoulli =
            GdPlan::mgd(1000, TransformPolicy::Eager, SamplingMethod::Bernoulli).unwrap();
        let random = GdPlan::mgd(
            1000,
            TransformPolicy::Eager,
            SamplingMethod::RandomPartition,
        )
        .unwrap();
        let ratio = model.per_iteration_s(&bernoulli) / model.per_iteration_s(&random);
        assert!(ratio < 10.0, "ratio {ratio}");
    }
}
