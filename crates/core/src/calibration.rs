//! Calibration state the chooser consumes: per-category unit-cost scales
//! and a learned multiplicative residual table.
//!
//! The types here are **plain data** — the online learners that produce
//! them live in the `ml4all-calibrate` crate; the chooser only *applies* a
//! [`CalibrationSnapshot`] at choose time. The cold snapshot
//! ([`CalibrationSnapshot::identity`]) is constructed so that applying it
//! is bit-identical to not applying anything: identity scales go through
//! [`CostBreakdown::rescaled_total_s`]'s `+0.0` corrections and an absent
//! (or gate-failed) residual multiplies by exactly `1.0`. Calibration can
//! therefore be wired in unconditionally without perturbing any decision
//! until real observations arrive.

use ml4all_dataflow::{CostBreakdown, DatasetDescriptor};
use ml4all_gd::GdPlan;
use serde::{Deserialize, Serialize};

/// Multiplicative unit-cost scales per ledger category, learned from
/// measured/predicted ratios. `1.0` everywhere = the static paper model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostScales {
    /// Disk/memory IO scale.
    pub io: f64,
    /// Compute scale.
    pub cpu: f64,
    /// Interconnect scale.
    pub net: f64,
    /// Fixed-overhead scale.
    pub overhead: f64,
}

impl CostScales {
    /// The static model: every scale exactly 1.0.
    pub fn identity() -> Self {
        Self {
            io: 1.0,
            cpu: 1.0,
            net: 1.0,
            overhead: 1.0,
        }
    }

    /// `[io, cpu, net, overhead]` for [`CostBreakdown::rescaled_total_s`].
    pub fn as_array(&self) -> [f64; 4] {
        [self.io, self.cpu, self.net, self.overhead]
    }

    /// `true` when every scale is exactly 1.0.
    pub fn is_identity(&self) -> bool {
        self.as_array().iter().all(|&s| s == 1.0)
    }
}

impl Default for CostScales {
    fn default() -> Self {
        Self::identity()
    }
}

/// One learned residual: the EWMA of measured/rescaled-predicted total for
/// one plan-feature key, with the observation count that gates it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidualEntry {
    /// Plan-feature key ([`plan_feature_key`]).
    pub key: String,
    /// Multiplicative residual factor (measured / rescaled-predicted).
    pub factor: f64,
    /// Observations behind the factor.
    pub observations: u64,
}

/// An immutable view of calibration state at one generation, applied by
/// the chooser. Produced by `ml4all-calibrate`'s `Calibrator::snapshot()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationSnapshot {
    /// Monotone generation counter: bumped on every observed job, part of
    /// the plan-cache key so stale cached choices never replay.
    pub generation: u64,
    /// Per-category unit-cost scales.
    pub scales: CostScales,
    /// Residual table, sorted by key (binary-searchable, deterministic
    /// serialization order).
    pub residuals: Vec<ResidualEntry>,
    /// A residual is applied only once its key has at least this many
    /// observations — the cold-start confidence gate.
    pub min_observations: u64,
    /// Total jobs observed across all keys.
    pub observations: u64,
}

impl CalibrationSnapshot {
    /// The cold snapshot: generation 0, identity scales, empty residual
    /// table. Applying it is bit-identical to the static model.
    pub fn identity() -> Self {
        Self {
            generation: 0,
            scales: CostScales::identity(),
            residuals: Vec::new(),
            min_observations: 3,
            observations: 0,
        }
    }

    /// The residual factor for `key`, if present **and** past the
    /// confidence gate.
    pub fn residual_factor(&self, key: &str) -> Option<f64> {
        let idx = self
            .residuals
            .binary_search_by(|e| e.key.as_str().cmp(key))
            .ok()?;
        let entry = &self.residuals[idx];
        (entry.observations >= self.min_observations).then_some(entry.factor)
    }

    /// Calibrate a plan's total cost: rescale the predicted cost vector by
    /// the per-category unit-cost scales, then apply the residual factor
    /// for `key` when its gate passes.
    ///
    /// `total_s` is the scalar model's total (Equations 7–9); `prep` and
    /// `per_iter` are the same charges as category vectors. Identity
    /// scales + no residual return `total_s` bit for bit.
    pub fn calibrate_total(
        &self,
        total_s: f64,
        prep: &CostBreakdown,
        per_iter: &CostBreakdown,
        iterations: u64,
        key: &str,
    ) -> f64 {
        let combined = prep.plus(&per_iter.times(iterations as f64));
        let rescaled = total_s
            + combined.io_s * (self.scales.io - 1.0)
            + combined.cpu_s * (self.scales.cpu - 1.0)
            + combined.net_s * (self.scales.net - 1.0)
            + combined.overhead_s * (self.scales.overhead - 1.0);
        rescaled * self.residual_factor(key).unwrap_or(1.0)
    }

    /// Confidence of the residual table: the fraction of keys past the
    /// observation gate (0.0 when the table is empty — pure cold start).
    pub fn residual_confidence(&self) -> f64 {
        if self.residuals.is_empty() {
            return 0.0;
        }
        let confident = self
            .residuals
            .iter()
            .filter(|e| e.observations >= self.min_observations)
            .count();
        confident as f64 / self.residuals.len() as f64
    }

    /// `true` when applying this snapshot cannot change any decision.
    pub fn is_identity(&self) -> bool {
        self.scales.is_identity() && self.residuals.iter().all(|e| e.factor == 1.0)
    }
}

/// The calibration stamp a costed report carries so `explain` can render
/// its footer (`calibration gen N, residual conf X`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationStamp {
    /// Generation the report was costed under.
    pub generation: u64,
    /// [`CalibrationSnapshot::residual_confidence`] at choose time.
    pub residual_confidence: f64,
}

/// The deterministic residual-model feature key for one execution:
/// algorithm × plan (variant/transform/sampler) × backend × bucketed
/// dataset shape (log₂ size, log₂ dims, dense/sparse). Bucketing keeps the
/// table small and lets observations generalize across nearby sizes.
pub fn plan_feature_key(
    gradient: &str,
    plan: &GdPlan,
    backend: &str,
    desc: &DatasetDescriptor,
) -> String {
    let n_bucket = 63 - desc.n.max(1).leading_zeros();
    let d_bucket = 63 - (desc.dims.max(1) as u64).leading_zeros();
    let density = if desc.density < 0.5 {
        "sparse"
    } else {
        "dense"
    };
    format!(
        "{gradient}|{}|{backend}|n{n_bucket}|d{d_bucket}|{density}",
        plan.name()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdowns() -> (f64, CostBreakdown, CostBreakdown) {
        let prep = CostBreakdown {
            io_s: 1.5,
            cpu_s: 0.25,
            net_s: 0.0,
            overhead_s: 0.1,
        };
        let iter = CostBreakdown {
            io_s: 0.01,
            cpu_s: 0.02,
            net_s: 0.005,
            overhead_s: 0.001,
        };
        let total = prep.total_s() + 100.0 * iter.total_s();
        (total, prep, iter)
    }

    #[test]
    fn identity_snapshot_is_bitwise_invisible() {
        let (total, prep, iter) = breakdowns();
        let snap = CalibrationSnapshot::identity();
        assert!(snap.is_identity());
        assert_eq!(
            snap.calibrate_total(total, &prep, &iter, 100, "any|key")
                .to_bits(),
            total.to_bits()
        );
        assert_eq!(snap.residual_confidence(), 0.0);
    }

    #[test]
    fn scales_rescale_their_category_only() {
        let (total, prep, iter) = breakdowns();
        let mut snap = CalibrationSnapshot::identity();
        snap.scales.cpu = 2.0;
        let calibrated = snap.calibrate_total(total, &prep, &iter, 100, "k");
        let cpu_total = prep.cpu_s + 100.0 * iter.cpu_s;
        assert!((calibrated - (total + cpu_total)).abs() < 1e-12);
    }

    #[test]
    fn residuals_gate_on_observations() {
        let (total, prep, iter) = breakdowns();
        let mut snap = CalibrationSnapshot::identity();
        snap.residuals = vec![
            ResidualEntry {
                key: "cold".into(),
                factor: 3.0,
                observations: 1,
            },
            ResidualEntry {
                key: "warm".into(),
                factor: 1.5,
                observations: 5,
            },
        ];
        assert_eq!(snap.residual_factor("cold"), None, "below the gate");
        assert_eq!(snap.residual_factor("warm"), Some(1.5));
        assert_eq!(snap.residual_factor("absent"), None);
        let calibrated = snap.calibrate_total(total, &prep, &iter, 100, "warm");
        assert!((calibrated - total * 1.5).abs() < 1e-9);
        assert!((snap.residual_confidence() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn feature_keys_bucket_dataset_shape() {
        let plan = GdPlan::bgd();
        let small = DatasetDescriptor::new("a", 1000, 16, 1024, 0.1);
        let big = DatasetDescriptor::new("b", 1_000_000, 16, 1024, 1.0);
        let k_small = plan_feature_key("LogisticRegression", &plan, "local", &small);
        let k_big = plan_feature_key("LogisticRegression", &plan, "local", &big);
        assert_ne!(k_small, k_big, "size buckets differ");
        assert!(k_small.contains("|sparse"));
        assert!(k_big.contains("|dense"));
        assert!(k_small.starts_with("LogisticRegression|BGD|local|"));
        // Same shape → same key (stability across runs).
        assert_eq!(
            k_small,
            plan_feature_key("LogisticRegression", &plan, "local", &small)
        );
    }
}
