//! Fitting the convergence curve `T(ε) = a/ε` (Section 5).
//!
//! Gradient methods on convex objectives converge at `O(1/ε)` or better, so
//! the paper fits the observed speculation pairs `{(εᵢ, i)}` to `T(ε) =
//! a/ε` and extrapolates the iterations needed for the target tolerance.
//! The least-squares estimate has the closed form
//! `a = Σᵢ (i/εᵢ) / Σᵢ (1/εᵢ²)`.

use serde::{Deserialize, Serialize};

/// A fitted `T(ε) = a/ε` convergence curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurveFit {
    /// The fitted coefficient `a` (dataset- and loss-dependent).
    pub a: f64,
    /// Coefficient of determination of the fit in `T` space.
    pub r_squared: f64,
    /// Number of points used.
    pub points: usize,
}

impl CurveFit {
    /// Fit from `(iteration, error)` observations. Pairs with non-positive
    /// or non-finite error are ignored. Returns `None` if fewer than two
    /// usable pairs remain.
    pub fn fit(pairs: &[(u64, f64)]) -> Option<Self> {
        let usable: Vec<(f64, f64)> = pairs
            .iter()
            .filter(|(_, e)| e.is_finite() && *e > 0.0)
            .map(|(i, e)| (*i as f64, *e))
            .collect();
        if usable.len() < 2 {
            return None;
        }
        let num: f64 = usable.iter().map(|(i, e)| i / e).sum();
        let den: f64 = usable.iter().map(|(_, e)| 1.0 / (e * e)).sum();
        if den <= 0.0 || !num.is_finite() || !den.is_finite() {
            return None;
        }
        let a = num / den;

        // R² over the T(ε) predictions.
        let mean_i: f64 = usable.iter().map(|(i, _)| i).sum::<f64>() / usable.len() as f64;
        let ss_tot: f64 = usable.iter().map(|(i, _)| (i - mean_i).powi(2)).sum();
        let ss_res: f64 = usable.iter().map(|(i, e)| (i - a / e).powi(2)).sum();
        let r_squared = if ss_tot > 0.0 {
            (1.0 - ss_res / ss_tot).max(0.0)
        } else {
            1.0
        };
        Some(Self {
            a,
            r_squared,
            points: usable.len(),
        })
    }

    /// Predicted iterations to reach tolerance `epsilon` — `T(ε) = a/ε`,
    /// rounded up, at least 1.
    pub fn iterations_for(&self, epsilon: f64) -> u64 {
        if epsilon <= 0.0 || !self.a.is_finite() {
            return u64::MAX;
        }
        (self.a / epsilon).ceil().max(1.0) as u64
    }

    /// Predicted error after `iterations` — the inverse view `ε(i) = a/i`,
    /// used to draw the fitted curves of Figures 15–16.
    pub fn error_at(&self, iterations: u64) -> f64 {
        self.a / (iterations.max(1) as f64)
    }
}

/// Reduce a raw error sequence to its running minimum so that it maps each
/// iteration to the *best tolerance reached so far* — the monotone `T(ε)`
/// view Algorithm 1 fits. Stochastic plans produce noisy, non-monotone
/// deltas; without this the fit chases noise.
pub fn running_min_error_seq(raw: &[(u64, f64)]) -> Vec<(u64, f64)> {
    let mut out = Vec::with_capacity(raw.len());
    let mut best = f64::INFINITY;
    for &(i, e) in raw {
        if !e.is_finite() || e <= 0.0 {
            continue;
        }
        if e < best {
            best = e;
            out.push((i, best));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_inverse_law() {
        let a_true = 500.0;
        let pairs: Vec<(u64, f64)> = (1..100).map(|i| (i as u64, a_true / i as f64)).collect();
        let fit = CurveFit::fit(&pairs).unwrap();
        assert!((fit.a - a_true).abs() < 1e-6, "a = {}", fit.a);
        assert!(fit.r_squared > 0.999);
        assert_eq!(fit.iterations_for(0.5), 1000);
        assert!((fit.error_at(1000) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tolerates_noise() {
        let a_true = 120.0;
        let pairs: Vec<(u64, f64)> = (1..200)
            .map(|i| {
                let noise = 1.0 + 0.05 * ((i as f64).sin());
                (i as u64, a_true / i as f64 * noise)
            })
            .collect();
        let fit = CurveFit::fit(&pairs).unwrap();
        assert!((fit.a - a_true).abs() / a_true < 0.1, "a = {}", fit.a);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(CurveFit::fit(&[]).is_none());
        assert!(CurveFit::fit(&[(1, 0.5)]).is_none());
        assert!(CurveFit::fit(&[(1, 0.0), (2, -1.0), (3, f64::NAN)]).is_none());
    }

    #[test]
    fn ignores_nonpositive_errors_but_uses_the_rest() {
        let fit = CurveFit::fit(&[(1, 10.0), (2, 5.0), (3, 0.0), (4, 2.5)]).unwrap();
        assert_eq!(fit.points, 3);
        assert!((fit.a - 10.0).abs() < 1e-9);
    }

    #[test]
    fn iterations_for_handles_edge_tolerances() {
        let fit = CurveFit::fit(&[(1, 1.0), (2, 0.5)]).unwrap();
        assert_eq!(fit.iterations_for(0.0), u64::MAX);
        assert_eq!(fit.iterations_for(-1.0), u64::MAX);
        assert!(fit.iterations_for(1e9) >= 1);
    }

    #[test]
    fn running_min_is_monotone_decreasing() {
        let raw = vec![(1, 1.0), (2, 1.5), (3, 0.8), (4, 0.9), (5, 0.3)];
        let cleaned = running_min_error_seq(&raw);
        assert_eq!(cleaned, vec![(1, 1.0), (3, 0.8), (5, 0.3)]);
    }

    #[test]
    fn running_min_skips_invalid_entries() {
        let raw = vec![(1, f64::NAN), (2, 0.0), (3, 2.0), (4, 1.0)];
        assert_eq!(running_min_error_seq(&raw), vec![(3, 2.0), (4, 1.0)]);
    }
}
