//! The speculation-based iterations estimator — Section 5, Algorithm 1.
//!
//! To estimate how many iterations a GD algorithm needs to reach tolerance
//! `ε_d` on dataset `D`:
//!
//! 1. take a small sample `D′` of `D` (default 1 000 points);
//! 2. run the algorithm on `D′` until it reaches the (large) speculation
//!    tolerance `ε_s` (default 0.05) or the time budget `B` runs out;
//! 3. collect the error sequence `{(i, εᵢ)}`;
//! 4. fit `T(ε) = a/ε` and return `T(ε_d) = a/ε_d`.
//!
//! The sample size keeps the speculative runs fast, and — the paper's key
//! observation — the *shape* of the error sequence over a sample matches
//! the shape over the full data, so the fitted `a` transfers.

use std::time::Duration;

use ml4all_dataflow::{ClusterSpec, PartitionScheme, PartitionedDataset, SamplingMethod, SimEnv};
use ml4all_gd::{execute_plan, GdPlan, GdVariant, TrainParams, TransformPolicy};
use serde::{Deserialize, Serialize};

use crate::curvefit::{running_min_error_seq, CurveFit};
use crate::OptimizerError;

/// Configuration of the speculation stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeculationConfig {
    /// Sample size `|D′|` (paper default: 1 000).
    pub sample_size: usize,
    /// Speculation tolerance `ε_s` (paper default: 0.05; the experiments
    /// of Section 8.2 use 0.1).
    pub tolerance: f64,
    /// Wall-clock time budget `B` (paper default: 1 min; the experiments
    /// use 10 s).
    pub budget: Duration,
    /// Cap on speculative iterations, so unit tests stay bounded even when
    /// the budget is generous.
    pub max_iterations: u64,
    /// RNG seed for the sample draw and the speculative run.
    pub seed: u64,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        Self {
            sample_size: 1000,
            tolerance: 0.05,
            budget: Duration::from_secs(60),
            max_iterations: 100_000,
            seed: 0x5EED,
        }
    }
}

impl SpeculationConfig {
    /// The Section 8.2 experiment settings: tolerance 0.1, budget 10 s,
    /// sample 1 000.
    pub fn paper_experiments() -> Self {
        Self {
            tolerance: 0.1,
            budget: Duration::from_secs(10),
            ..Self::default()
        }
    }
}

/// Result of one speculative estimation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationsEstimate {
    /// Estimated iterations `T(ε_d)` to reach the requested tolerance.
    pub iterations: u64,
    /// The fitted curve.
    pub fit: CurveFit,
    /// Iterations actually executed during speculation.
    pub speculation_iterations: u64,
    /// Monotone `(iteration, error)` pairs the fit used.
    pub pairs: Vec<(u64, f64)>,
    /// Simulated cost of the speculative run (sample collection + local
    /// GD) — the optimizer overhead visible in Figure 8.
    pub speculation_sim_s: f64,
    /// Real wall-clock of the speculative run on this machine.
    pub speculation_wall: Duration,
}

/// Build the in-memory sample dataset `D′` (Algorithm 1, line 1).
///
/// The sample is a single-partition dataset whose descriptor reflects its
/// own (small) physical size: speculative runs execute at driver scale.
pub fn speculation_sample(
    data: &PartitionedDataset,
    config: &SpeculationConfig,
    cluster: &ClusterSpec,
) -> Result<PartitionedDataset, OptimizerError> {
    let points = data.sample_points(config.sample_size, config.seed);
    let name = format!("{}-speculation", data.descriptor().name);
    Ok(PartitionedDataset::from_points(
        name,
        points,
        PartitionScheme::RoundRobin,
        cluster,
    )?)
}

/// Estimate the iterations a GD variant needs to reach `target_tolerance`
/// on `data` (Algorithm 1). The speculative plan runs the variant with
/// eager transformation and random-partition sampling *within the sample*,
/// mirroring the paper (BGD runs over all of `D′`; MGD and SGD draw from
/// `D′`).
pub fn estimate_iterations(
    data: &PartitionedDataset,
    variant: GdVariant,
    params: &TrainParams,
    target_tolerance: f64,
    config: &SpeculationConfig,
    cluster: &ClusterSpec,
) -> Result<IterationsEstimate, OptimizerError> {
    let sample = speculation_sample(data, config, cluster)?;
    let plan = speculative_plan(variant);

    let mut spec_params = params.clone();
    spec_params.tolerance = config.tolerance;
    spec_params.max_iter = config.max_iterations;
    spec_params.record_error_seq = true;
    spec_params.wall_budget = Some(config.budget);
    spec_params.seed = config.seed;

    // Speculative runs execute locally on the already-collected sample:
    // no per-run Spark job (the chooser charges one collection job for all
    // three variants, matching the paper's ~4 s overhead in Section 8.3).
    let mut local_spec = cluster.clone();
    local_spec.job_init_s = 0.0;
    let mut env = SimEnv::new(local_spec);

    let result = execute_plan(&plan, &sample, &spec_params, &mut env)?;
    let pairs = running_min_error_seq(&result.error_seq);
    let fit = match CurveFit::fit(&pairs) {
        Some(fit) => fit,
        None if result.converged() || result.final_delta <= config.tolerance => {
            // The run hit the speculation tolerance almost immediately
            // (typical for SGD on hinge losses, where one in-margin sample
            // yields a zero delta — the effect behind the paper's 4–8
            // iteration SGD runs on dense SVM data, Table 4). Anchor the
            // inverse law on the last observed point: `a = i·εᵢ`.
            let a = pairs.last().map(|&(i, e)| i as f64 * e).unwrap_or(0.0);
            CurveFit {
                a,
                r_squared: 1.0,
                points: pairs.len(),
            }
        }
        None => {
            return Err(OptimizerError::InsufficientSpeculation {
                plan: plan.name(),
                pairs: pairs.len(),
            })
        }
    };

    Ok(IterationsEstimate {
        iterations: fit.iterations_for(target_tolerance),
        fit,
        speculation_iterations: result.iterations,
        pairs,
        speculation_sim_s: env.elapsed_s(),
        speculation_wall: result.wall_time,
    })
}

fn speculative_plan(variant: GdVariant) -> GdPlan {
    match variant {
        GdVariant::Batch => GdPlan::bgd(),
        GdVariant::Stochastic | GdVariant::MiniBatch { .. } => GdPlan {
            variant,
            transform: TransformPolicy::Eager,
            sampling: Some(SamplingMethod::RandomPartition),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml4all_gd::GradientKind;
    use ml4all_linalg::{FeatureVec, LabeledPoint};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize) -> PartitionedDataset {
        let mut rng = StdRng::seed_from_u64(3);
        let points: Vec<LabeledPoint> = (0..n)
            .map(|_| {
                let x0: f64 = rng.gen_range(-1.0..1.0);
                let x1: f64 = rng.gen_range(-1.0..1.0);
                let label = if x0 + x1 > 0.0 { 1.0 } else { -1.0 };
                LabeledPoint::new(label, FeatureVec::dense(vec![x0, x1]))
            })
            .collect();
        PartitionedDataset::from_points(
            "est",
            points,
            PartitionScheme::RoundRobin,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap()
    }

    fn params() -> TrainParams {
        TrainParams::paper_defaults(GradientKind::LogisticRegression)
    }

    #[test]
    fn speculation_sample_is_capped_and_single_scale() {
        let data = dataset(5000);
        let cfg = SpeculationConfig {
            sample_size: 200,
            ..Default::default()
        };
        let sample = speculation_sample(&data, &cfg, &ClusterSpec::paper_testbed()).unwrap();
        assert_eq!(sample.physical_n(), 200);
        assert_eq!(sample.descriptor().n, 200);
    }

    #[test]
    fn bgd_estimate_extrapolates_beyond_speculation() {
        let data = dataset(4000);
        let cfg = SpeculationConfig {
            sample_size: 500,
            tolerance: 0.05,
            budget: Duration::from_secs(5),
            max_iterations: 5_000,
            seed: 1,
        };
        let est = estimate_iterations(
            &data,
            GdVariant::Batch,
            &params(),
            0.001,
            &cfg,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap();
        // Tighter tolerance must need at least as many iterations as were
        // run to reach the speculation tolerance.
        assert!(est.iterations >= est.speculation_iterations);
        assert!(est.fit.a > 0.0);
        assert!(!est.pairs.is_empty());
        assert!(est.speculation_sim_s > 0.0);
    }

    #[test]
    fn estimates_scale_inversely_with_tolerance() {
        let data = dataset(4000);
        let cfg = SpeculationConfig {
            sample_size: 500,
            max_iterations: 5_000,
            ..Default::default()
        };
        let cluster = ClusterSpec::paper_testbed();
        let coarse =
            estimate_iterations(&data, GdVariant::Batch, &params(), 0.01, &cfg, &cluster).unwrap();
        let fine =
            estimate_iterations(&data, GdVariant::Batch, &params(), 0.001, &cfg, &cluster).unwrap();
        // T(ε) = a/ε ⇒ 10× tighter tolerance ⇒ 10× the iterations (up to
        // the per-estimate ceil of `a/ε`, which skews the ratio slightly).
        let ratio = fine.iterations as f64 / coarse.iterations as f64;
        assert!(
            (ratio - 10.0).abs() < 0.5,
            "fine {} vs coarse {} (ratio {ratio:.2})",
            fine.iterations,
            coarse.iterations
        );
    }

    #[test]
    fn stochastic_variants_produce_estimates_too() {
        let data = dataset(4000);
        let cfg = SpeculationConfig {
            sample_size: 500,
            max_iterations: 3_000,
            ..Default::default()
        };
        let cluster = ClusterSpec::paper_testbed();
        for variant in [GdVariant::Stochastic, GdVariant::MiniBatch { batch: 50 }] {
            let est =
                estimate_iterations(&data, variant, &params(), 0.001, &cfg, &cluster).unwrap();
            assert!(est.iterations >= 1, "{variant:?}");
        }
    }

    #[test]
    fn wall_budget_bounds_speculation() {
        let data = dataset(2000);
        let cfg = SpeculationConfig {
            sample_size: 500,
            tolerance: 1e-12, // unreachable → budget is the only stop
            budget: Duration::from_millis(100),
            max_iterations: u64::MAX / 2,
            seed: 5,
        };
        let est = estimate_iterations(
            &data,
            GdVariant::Batch,
            &params(),
            1e-3,
            &cfg,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap();
        assert!(est.speculation_wall < Duration::from_secs(10));
    }
}
