//! Platform mapping (Appendix D): ML4all maps each GD operator of a plan
//! to either the **local Java executor** (driver) or **Spark** (cluster),
//! producing "mix-based" plans — e.g. SGD typically transforms and samples
//! on Spark but computes and updates at the driver.
//!
//! The rule the paper describes: an operator runs distributed only when its
//! input spans more than one data partition; otherwise distributing it
//! "would just add a processing overhead". This module makes that mapping
//! explicit and reportable (the executor applies the same logic when it
//! charges costs).

use ml4all_dataflow::{ClusterSpec, DatasetDescriptor, SamplingMethod};
use ml4all_gd::{GdPlan, GdVariant, TransformPolicy};
use serde::{Deserialize, Serialize};

/// Where an operator executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Platform {
    /// Single-process execution at the driver (the paper's "Java").
    Java,
    /// Distributed execution on the cluster (the paper's "Spark").
    Spark,
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Java => f.write_str("Java"),
            Self::Spark => f.write_str("Spark"),
        }
    }
}

/// The per-operator platform assignment of one plan on one dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformMapping {
    /// `Transform` placement.
    pub transform: Platform,
    /// `Stage` placement (always driver-side parameter setup).
    pub stage: Platform,
    /// `Sample` placement (absent for BGD).
    pub sample: Option<Platform>,
    /// `Compute` placement.
    pub compute: Platform,
    /// `Update` placement (always a single node).
    pub update: Platform,
    /// `Converge` placement.
    pub converge: Platform,
    /// `Loop` placement.
    pub loop_op: Platform,
}

impl PlatformMapping {
    /// `true` when the mapping mixes both platforms (the paper: "ML4all
    /// can produce a GD plan as a mixture of Java and Spark").
    pub fn is_mixed(&self) -> bool {
        let anchor = self.transform;
        let rest = [
            self.stage,
            self.compute,
            self.update,
            self.converge,
            self.loop_op,
        ];
        rest.into_iter().any(|p| p != anchor) || self.sample.is_some_and(|p| p != anchor)
    }

    /// `true` when any operator of this mapping executes on the cluster —
    /// the routing predicate for the simulated-cluster backend: a plan
    /// whose mapping touches Spark anywhere executes (and is metered)
    /// through it, a pure-Java plan stays on the local runtime.
    pub fn uses_cluster(&self) -> bool {
        let ops = [
            self.transform,
            self.stage,
            self.compute,
            self.update,
            self.converge,
            self.loop_op,
        ];
        ops.into_iter()
            .chain(self.sample)
            .any(|p| p == Platform::Spark)
    }

    /// Short report string, e.g.
    /// `transform=Spark sample=Spark compute=Java update=Java`.
    pub fn describe(&self) -> String {
        let mut out = format!("transform={} stage={}", self.transform, self.stage);
        if let Some(s) = self.sample {
            out.push_str(&format!(" sample={s}"));
        }
        out.push_str(&format!(
            " compute={} update={} converge={} loop={}",
            self.compute, self.update, self.converge, self.loop_op
        ));
        out
    }
}

/// Compute the Appendix D mapping for a plan over a dataset.
pub fn map_plan(plan: &GdPlan, desc: &DatasetDescriptor, cluster: &ClusterSpec) -> PlatformMapping {
    let distributed = !desc.fits_one_partition(cluster);
    let data_side = if distributed {
        Platform::Spark
    } else {
        Platform::Java
    };
    // Sampled compute ships a small batch to the driver (hybrid mode);
    // batch compute runs where the data lives.
    let compute = match plan.variant {
        GdVariant::Batch => data_side,
        _ => Platform::Java,
    };
    // Transform placement follows the data it touches: eager transform
    // scans the whole dataset; lazy transform touches only the sampled
    // units, already at the driver.
    let transform = match plan.transform {
        TransformPolicy::Eager => data_side,
        TransformPolicy::Lazy => Platform::Java,
    };
    // Bernoulli sampling scans everything; the other samplers fetch
    // blocks/units and serve them locally.
    let sample = plan.sampling.map(|s| match s {
        SamplingMethod::Bernoulli => data_side,
        SamplingMethod::RandomPartition | SamplingMethod::ShuffledPartition => {
            if distributed {
                Platform::Spark
            } else {
                Platform::Java
            }
        }
    });
    PlatformMapping {
        transform,
        stage: Platform::Java,
        sample,
        compute,
        update: Platform::Java,
        converge: Platform::Java,
        loop_op: Platform::Java,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterSpec {
        ClusterSpec::paper_testbed()
    }

    fn small() -> DatasetDescriptor {
        DatasetDescriptor::new("adult", 100_827, 123, 7 * 1024 * 1024, 0.11)
    }

    fn large() -> DatasetDescriptor {
        DatasetDescriptor::new("svm1", 5_516_800, 100, 10 * 1024 * 1024 * 1024, 1.0)
    }

    #[test]
    fn small_datasets_run_entirely_in_java() {
        let plan = GdPlan::bgd();
        let m = map_plan(&plan, &small(), &cluster());
        assert!(!m.is_mixed());
        assert_eq!(m.compute, Platform::Java);
        assert!(!m.uses_cluster());
    }

    #[test]
    fn uses_cluster_detects_any_spark_operator() {
        // Every plan on a large dataset touches Spark somewhere; lazy
        // plans only through their sampler.
        for plan in [
            GdPlan::bgd(),
            GdPlan::sgd(TransformPolicy::Lazy, SamplingMethod::RandomPartition).unwrap(),
            GdPlan::mgd(1000, TransformPolicy::Eager, SamplingMethod::Bernoulli).unwrap(),
        ] {
            assert!(
                map_plan(&plan, &large(), &cluster()).uses_cluster(),
                "{plan} should map onto the cluster"
            );
            assert!(
                !map_plan(&plan, &small(), &cluster()).uses_cluster(),
                "{plan} should stay at the driver"
            );
        }
    }

    #[test]
    fn sgd_on_large_data_is_a_mix_based_plan() {
        // The paper: "ML4all indeed produces a mix-based plan for SGD".
        let plan = GdPlan::sgd(TransformPolicy::Eager, SamplingMethod::ShuffledPartition).unwrap();
        let m = map_plan(&plan, &large(), &cluster());
        assert!(m.is_mixed());
        assert_eq!(m.transform, Platform::Spark); // whole-dataset scan
        assert_eq!(m.sample, Some(Platform::Spark));
        assert_eq!(m.compute, Platform::Java); // 1-unit batch at driver
        assert_eq!(m.update, Platform::Java);
    }

    #[test]
    fn bgd_on_large_data_computes_on_spark() {
        let m = map_plan(&GdPlan::bgd(), &large(), &cluster());
        assert_eq!(m.compute, Platform::Spark);
        assert_eq!(m.update, Platform::Java); // aggregation lands at one node
        assert!(m.is_mixed());
    }

    #[test]
    fn lazy_transform_moves_to_the_driver() {
        let eager = GdPlan::sgd(TransformPolicy::Eager, SamplingMethod::RandomPartition).unwrap();
        let lazy = GdPlan::sgd(TransformPolicy::Lazy, SamplingMethod::RandomPartition).unwrap();
        let d = large();
        assert_eq!(map_plan(&eager, &d, &cluster()).transform, Platform::Spark);
        assert_eq!(map_plan(&lazy, &d, &cluster()).transform, Platform::Java);
    }

    #[test]
    fn is_mixed_handles_the_sample_absent_case() {
        // BGD has no Sample operator: a uniform mapping with `sample:
        // None` is pure, and mixing must still be detected through the
        // remaining six operators.
        let uniform = PlatformMapping {
            transform: Platform::Java,
            stage: Platform::Java,
            sample: None,
            compute: Platform::Java,
            update: Platform::Java,
            converge: Platform::Java,
            loop_op: Platform::Java,
        };
        assert!(!uniform.is_mixed());
        let mut compute_remote = uniform.clone();
        compute_remote.compute = Platform::Spark;
        assert!(compute_remote.is_mixed());
        // And a lone divergent Sample placement is still a mix.
        let mut sample_remote = uniform;
        sample_remote.sample = Some(Platform::Spark);
        assert!(sample_remote.is_mixed());
    }

    #[test]
    fn describe_mentions_every_operator() {
        let plan = GdPlan::mgd(1000, TransformPolicy::Eager, SamplingMethod::Bernoulli).unwrap();
        let s = map_plan(&plan, &large(), &cluster()).describe();
        for op in [
            "transform",
            "stage",
            "sample",
            "compute",
            "update",
            "converge",
            "loop",
        ] {
            assert!(s.contains(op), "{s} missing {op}");
        }
    }
}
