//! The plan cache: memoized cost-based plan decisions.
//!
//! The optimizer's output for a training request is a pure function of
//! the dataset contents, the lowered [`TrainSpec`], the seed, the
//! speculation settings, the cluster, and the RNG stream layout — so a
//! repeated request can skip the speculative runs of Algorithm 1 entirely
//! and reuse the costed plan table (the Section 8.3 optimization-time
//! argument, amortized across requests the way serving-side cost-based
//! optimizers cache repeated queries). A served report is byte-identical
//! to what a cold optimization would produce, with
//! [`OptimizerReport::cache_hit`] flipped so callers can observe the hit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ml4all_dataflow::{ClusterSpec, RNG_STREAM_VERSION};
use serde::{Deserialize, Serialize};

use crate::chooser::OptimizerReport;
use crate::estimator::SpeculationConfig;
use crate::lang::TrainSpec;

/// A fully qualified cache key: everything the optimizer's decision
/// depends on, rendered into one deterministic string.
///
/// The dataset enters via its content fingerprint
/// ([`ml4all_dataflow::PartitionedDataset::fingerprint`]), so two
/// independently resolved but identical datasets share cache entries; the
/// RNG stream version pins the key to the current sampler stream layout
/// (a stream change invalidates every cached speculation outcome).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanCacheKey(String);

impl PlanCacheKey {
    /// Build the key from the decision's inputs.
    pub fn new(
        dataset_fingerprint: u64,
        spec: &TrainSpec,
        seed: u64,
        speculation: &SpeculationConfig,
        cluster: &ClusterSpec,
    ) -> Self {
        // `Debug` of the constituent structs is deterministic (f64 renders
        // via shortest-roundtrip) and covers every field, so the key
        // cannot silently ignore a new knob.
        Self(format!(
            "v{RNG_STREAM_VERSION}|fp{dataset_fingerprint:016x}|seed{seed}|{spec:?}|{speculation:?}|{cluster:?}"
        ))
    }

    /// The rendered key string (stable across processes — the engine hashes
    /// it to name checkpoint files, and persisted cache entries carry it).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Rebuild a key from its rendered string (the inverse of
    /// [`PlanCacheKey::as_str`], used when importing persisted entries).
    pub fn from_string(key: String) -> Self {
        Self(key)
    }
}

/// One persisted cache entry: the rendered key plus its report. A
/// [`PlanCache`] exports to and imports from a list of these, giving the
/// cache a process-death-surviving on-disk form without tying this crate
/// to a storage location.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanCacheEntry {
    /// Rendered [`PlanCacheKey`] string.
    pub key: String,
    /// The cached optimizer decision.
    pub report: OptimizerReport,
}

/// A concurrent, unbounded memo of [`OptimizerReport`]s keyed by
/// [`PlanCacheKey`], with hit/miss counters for observability.
///
/// Reports are small (11 costed plans plus three estimates), so no
/// eviction is needed at realistic request diversity.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: Mutex<HashMap<PlanCacheKey, OptimizerReport>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look a decision up. On a hit, returns a clone of the cached report
    /// with [`OptimizerReport::cache_hit`] set.
    pub fn get(&self, key: &PlanCacheKey) -> Option<OptimizerReport> {
        let entries = self.entries.lock().expect("plan cache");
        match entries.get(key) {
            Some(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut report = report.clone();
                report.cache_hit = true;
                Some(report)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a freshly computed decision. The stored copy is normalized to
    /// `cache_hit: false` (the marker describes how a report was *served*,
    /// not how it is stored); concurrent duplicate computations insert the
    /// same value, so last-write-wins is safe.
    pub fn insert(&self, key: PlanCacheKey, report: &OptimizerReport) {
        let mut stored = report.clone();
        stored.cache_hit = false;
        self.entries.lock().expect("plan cache").insert(key, stored);
    }

    /// Number of cached decisions.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("plan cache").len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Export every entry, sorted by key so the persisted form is
    /// deterministic.
    pub fn export(&self) -> Vec<PlanCacheEntry> {
        let entries = self.entries.lock().expect("plan cache");
        let mut out: Vec<PlanCacheEntry> = entries
            .iter()
            .map(|(k, report)| PlanCacheEntry {
                key: k.0.clone(),
                report: report.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    /// Import previously exported entries (e.g. read back from disk).
    /// Stored reports are normalized to `cache_hit: false`, exactly as
    /// [`PlanCache::insert`] would; counters are untouched.
    pub fn import(&self, entries: Vec<PlanCacheEntry>) {
        let mut map = self.entries.lock().expect("plan cache");
        for mut e in entries {
            e.report.cache_hit = false;
            map.insert(PlanCacheKey(e.key), e.report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::{choose_plan, OptimizerConfig};
    use ml4all_dataflow::{PartitionScheme, PartitionedDataset};
    use ml4all_gd::GradientKind;
    use ml4all_linalg::{FeatureVec, LabeledPoint};

    fn dataset(n: usize) -> PartitionedDataset {
        let points: Vec<LabeledPoint> = (0..n)
            .map(|i| {
                let x = (i as f64 / n as f64) * 2.0 - 1.0;
                LabeledPoint::new(
                    if x > 0.0 { 1.0 } else { -1.0 },
                    FeatureVec::dense(vec![x, 1.0]),
                )
            })
            .collect();
        PartitionedDataset::from_points(
            "cache-test",
            points,
            PartitionScheme::RoundRobin,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap()
    }

    fn key_for(data: &PartitionedDataset, seed: u64, max_iter: Option<u64>) -> PlanCacheKey {
        let mut spec = TrainSpec::new(GradientKind::LogisticRegression);
        spec.max_iter = max_iter;
        PlanCacheKey::new(
            data.fingerprint(),
            &spec,
            seed,
            &SpeculationConfig::default(),
            &ClusterSpec::paper_testbed(),
        )
    }

    #[test]
    fn hit_returns_the_cold_report_with_the_marker_set() {
        let data = dataset(500);
        let config =
            OptimizerConfig::new(GradientKind::LogisticRegression).with_fixed_iterations(100);
        let cold = choose_plan(&data, &config, &ClusterSpec::paper_testbed()).unwrap();
        assert!(!cold.cache_hit);

        let cache = PlanCache::new();
        let key = key_for(&data, 0, Some(100));
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), &cold);
        let served = cache.get(&key).expect("cached");
        assert!(served.cache_hit);
        // Identical decision apart from the marker.
        assert_eq!(
            serde_json::to_string(&served.choices).unwrap(),
            serde_json::to_string(&cold.choices).unwrap()
        );
        assert_eq!(served.speculation_sim_s, cold.speculation_sim_s);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_separate_every_decision_input() {
        let data = dataset(500);
        let other = dataset(501);
        let base = key_for(&data, 0, Some(100));
        assert_eq!(base, key_for(&data, 0, Some(100)));
        assert_ne!(base, key_for(&other, 0, Some(100)), "dataset fingerprint");
        assert_ne!(base, key_for(&data, 1, Some(100)), "seed");
        assert_ne!(base, key_for(&data, 0, Some(200)), "spec");
        let mut spec = TrainSpec::new(GradientKind::LogisticRegression);
        spec.max_iter = Some(100);
        let looser = PlanCacheKey::new(
            data.fingerprint(),
            &spec,
            0,
            &SpeculationConfig {
                sample_size: 9,
                ..SpeculationConfig::default()
            },
            &ClusterSpec::paper_testbed(),
        );
        assert_ne!(base, looser, "speculation config");
    }

    #[test]
    fn export_import_round_trips_decisions_across_cache_instances() {
        let data = dataset(500);
        let config =
            OptimizerConfig::new(GradientKind::LogisticRegression).with_fixed_iterations(100);
        let cold = choose_plan(&data, &config, &ClusterSpec::paper_testbed()).unwrap();
        let cache = PlanCache::new();
        let key = key_for(&data, 0, Some(100));
        cache.insert(key.clone(), &cold);

        let exported = cache.export();
        assert_eq!(exported.len(), 1);
        assert_eq!(exported[0].key, key.as_str());
        // Through JSON and back into a fresh cache: the served report is
        // identical to what the original cache would serve.
        let json = serde_json::to_string(&exported).unwrap();
        let parsed: Vec<PlanCacheEntry> = serde_json::from_str(&json).unwrap();
        let warmed = PlanCache::new();
        warmed.import(parsed);
        assert_eq!(warmed.len(), 1);
        let served = warmed.get(&key).expect("imported entry");
        assert!(served.cache_hit);
        assert_eq!(
            serde_json::to_string(&served.choices).unwrap(),
            serde_json::to_string(&cold.choices).unwrap()
        );
    }

    #[test]
    fn identical_content_shares_entries_across_instances() {
        // Two independently built but identical datasets: same fingerprint,
        // same key — a warmed cache serves both.
        let a = dataset(400);
        let b = dataset(400);
        assert_ne!(a.storage_id(), b.storage_id());
        assert_eq!(key_for(&a, 0, Some(50)), key_for(&b, 0, Some(50)));
    }
}
