//! The plan cache: memoized cost-based plan decisions.
//!
//! The optimizer's output for a training request is a pure function of
//! the dataset contents, the lowered [`TrainSpec`], the seed, the
//! speculation settings, the cluster, and the RNG stream layout — so a
//! repeated request can skip the speculative runs of Algorithm 1 entirely
//! and reuse the costed plan table (the Section 8.3 optimization-time
//! argument, amortized across requests the way serving-side cost-based
//! optimizers cache repeated queries). A served report is byte-identical
//! to what a cold optimization would produce, with
//! [`OptimizerReport::cache_hit`] flipped so callers can observe the hit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ml4all_dataflow::{ClusterSpec, RNG_STREAM_VERSION};
use serde::{Deserialize, Serialize};

use crate::chooser::OptimizerReport;
use crate::estimator::SpeculationConfig;
use crate::lang::TrainSpec;
use crate::OptimizerError;

/// A fully qualified cache key: everything the optimizer's decision
/// depends on, rendered into one deterministic string.
///
/// The dataset enters via its content fingerprint
/// ([`ml4all_dataflow::PartitionedDataset::fingerprint`]), so two
/// independently resolved but identical datasets share cache entries; the
/// RNG stream version pins the key to the current sampler stream layout
/// (a stream change invalidates every cached speculation outcome).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanCacheKey {
    rendered: String,
    /// Length of the generation-independent prefix of `rendered` (the
    /// [`PlanCacheKey::durable_identity`]).
    base_len: usize,
    generation: u64,
}

impl PlanCacheKey {
    /// Build the key from the decision's inputs. `calibration_generation`
    /// is the engine's monotone calibration counter (0 with calibration
    /// off): every observed job bumps it, so cached choices priced under
    /// older unit costs can never replay.
    pub fn new(
        dataset_fingerprint: u64,
        spec: &TrainSpec,
        seed: u64,
        speculation: &SpeculationConfig,
        cluster: &ClusterSpec,
        calibration_generation: u64,
    ) -> Self {
        // `Debug` of the constituent structs is deterministic (f64 renders
        // via shortest-roundtrip) and covers every field, so the key
        // cannot silently ignore a new knob.
        let base = format!(
            "v{RNG_STREAM_VERSION}|fp{dataset_fingerprint:016x}|seed{seed}|{spec:?}|{speculation:?}|{cluster:?}"
        );
        let base_len = base.len();
        Self {
            rendered: format!("{base}|gen{calibration_generation}"),
            base_len,
            generation: calibration_generation,
        }
    }

    /// The rendered key string (stable across processes — persisted cache
    /// entries carry it).
    pub fn as_str(&self) -> &str {
        &self.rendered
    }

    /// The generation-independent prefix of the key: everything a *job's*
    /// identity depends on, minus the calibration generation. Checkpoints
    /// are named by this — a calibration bump must invalidate cached plan
    /// *decisions*, but never orphan an in-flight job's resume state.
    pub fn durable_identity(&self) -> &str {
        &self.rendered[..self.base_len]
    }

    /// The calibration generation baked into this key.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Rebuild a key from its rendered string plus the generation the
    /// persisted entry recorded (the inverse of [`PlanCacheKey::as_str`],
    /// used when importing persisted entries).
    pub fn from_string(key: String, generation: u64) -> Self {
        let suffix = format!("|gen{generation}");
        let base_len = if key.ends_with(&suffix) {
            key.len() - suffix.len()
        } else {
            key.len()
        };
        Self {
            rendered: key,
            base_len,
            generation,
        }
    }
}

/// One persisted cache entry: the rendered key plus its report. A
/// [`PlanCache`] exports to and imports from a list of these, giving the
/// cache a process-death-surviving on-disk form without tying this crate
/// to a storage location.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanCacheEntry {
    /// Rendered [`PlanCacheKey`] string.
    pub key: String,
    /// Calibration generation the decision was priced under. `None` marks
    /// an entry persisted before calibration-generation keying (or hand
    /// edited); [`PlanCache::import`] refuses such entries with a typed
    /// error instead of replaying a potentially mispriced plan.
    pub calibration_generation: Option<u64>,
    /// The cached optimizer decision.
    pub report: OptimizerReport,
}

/// A concurrent, unbounded memo of [`OptimizerReport`]s keyed by
/// [`PlanCacheKey`], with hit/miss counters for observability.
///
/// Reports are small (11 costed plans plus three estimates), so no
/// eviction is needed at realistic request diversity.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: Mutex<HashMap<PlanCacheKey, OptimizerReport>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look a decision up. On a hit, returns a clone of the cached report
    /// with [`OptimizerReport::cache_hit`] set.
    pub fn get(&self, key: &PlanCacheKey) -> Option<OptimizerReport> {
        let entries = self.entries.lock().expect("plan cache");
        match entries.get(key) {
            Some(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut report = report.clone();
                report.cache_hit = true;
                Some(report)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a freshly computed decision. The stored copy is normalized to
    /// `cache_hit: false` (the marker describes how a report was *served*,
    /// not how it is stored); concurrent duplicate computations insert the
    /// same value, so last-write-wins is safe.
    pub fn insert(&self, key: PlanCacheKey, report: &OptimizerReport) {
        let mut stored = report.clone();
        stored.cache_hit = false;
        self.entries.lock().expect("plan cache").insert(key, stored);
    }

    /// Number of cached decisions.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("plan cache").len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Export every entry, sorted by key so the persisted form is
    /// deterministic.
    pub fn export(&self) -> Vec<PlanCacheEntry> {
        let entries = self.entries.lock().expect("plan cache");
        let mut out: Vec<PlanCacheEntry> = entries
            .iter()
            .map(|(k, report)| PlanCacheEntry {
                key: k.rendered.clone(),
                calibration_generation: Some(k.generation),
                report: report.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    /// Import previously exported entries (e.g. read back from disk).
    /// Stored reports are normalized to `cache_hit: false`, exactly as
    /// [`PlanCache::insert`] would; counters are untouched.
    ///
    /// An entry without a calibration generation is **refused** with
    /// [`OptimizerError::StalePlanCache`] — it predates generation keying
    /// (or was hand edited) and replaying it could serve a plan priced
    /// under unit costs that no longer exist. Nothing is imported when any
    /// entry is stale, so a damaged file never partially warms the cache.
    pub fn import(&self, entries: Vec<PlanCacheEntry>) -> Result<(), OptimizerError> {
        if let Some(stale) = entries.iter().find(|e| e.calibration_generation.is_none()) {
            return Err(OptimizerError::StalePlanCache {
                key: stale.key.clone(),
            });
        }
        let mut map = self.entries.lock().expect("plan cache");
        for mut e in entries {
            e.report.cache_hit = false;
            let generation = e.calibration_generation.expect("checked above");
            map.insert(PlanCacheKey::from_string(e.key, generation), e.report);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::{choose_plan, OptimizerConfig};
    use ml4all_dataflow::{PartitionScheme, PartitionedDataset};
    use ml4all_gd::GradientKind;
    use ml4all_linalg::{FeatureVec, LabeledPoint};

    fn dataset(n: usize) -> PartitionedDataset {
        let points: Vec<LabeledPoint> = (0..n)
            .map(|i| {
                let x = (i as f64 / n as f64) * 2.0 - 1.0;
                LabeledPoint::new(
                    if x > 0.0 { 1.0 } else { -1.0 },
                    FeatureVec::dense(vec![x, 1.0]),
                )
            })
            .collect();
        PartitionedDataset::from_points(
            "cache-test",
            points,
            PartitionScheme::RoundRobin,
            &ClusterSpec::paper_testbed(),
        )
        .unwrap()
    }

    fn key_for(data: &PartitionedDataset, seed: u64, max_iter: Option<u64>) -> PlanCacheKey {
        let mut spec = TrainSpec::new(GradientKind::LogisticRegression);
        spec.max_iter = max_iter;
        PlanCacheKey::new(
            data.fingerprint(),
            &spec,
            seed,
            &SpeculationConfig::default(),
            &ClusterSpec::paper_testbed(),
            0,
        )
    }

    #[test]
    fn hit_returns_the_cold_report_with_the_marker_set() {
        let data = dataset(500);
        let config =
            OptimizerConfig::new(GradientKind::LogisticRegression).with_fixed_iterations(100);
        let cold = choose_plan(&data, &config, &ClusterSpec::paper_testbed()).unwrap();
        assert!(!cold.cache_hit);

        let cache = PlanCache::new();
        let key = key_for(&data, 0, Some(100));
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), &cold);
        let served = cache.get(&key).expect("cached");
        assert!(served.cache_hit);
        // Identical decision apart from the marker.
        assert_eq!(
            serde_json::to_string(&served.choices).unwrap(),
            serde_json::to_string(&cold.choices).unwrap()
        );
        assert_eq!(served.speculation_sim_s, cold.speculation_sim_s);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_separate_every_decision_input() {
        let data = dataset(500);
        let other = dataset(501);
        let base = key_for(&data, 0, Some(100));
        assert_eq!(base, key_for(&data, 0, Some(100)));
        assert_ne!(base, key_for(&other, 0, Some(100)), "dataset fingerprint");
        assert_ne!(base, key_for(&data, 1, Some(100)), "seed");
        assert_ne!(base, key_for(&data, 0, Some(200)), "spec");
        let mut spec = TrainSpec::new(GradientKind::LogisticRegression);
        spec.max_iter = Some(100);
        let looser = PlanCacheKey::new(
            data.fingerprint(),
            &spec,
            0,
            &SpeculationConfig {
                sample_size: 9,
                ..SpeculationConfig::default()
            },
            &ClusterSpec::paper_testbed(),
            0,
        );
        assert_ne!(base, looser, "speculation config");
        // A calibration-generation bump invalidates every prior decision.
        let recalibrated = PlanCacheKey::new(
            data.fingerprint(),
            &spec,
            0,
            &SpeculationConfig::default(),
            &ClusterSpec::paper_testbed(),
            1,
        );
        assert_ne!(base, recalibrated, "calibration generation");
        assert_eq!(recalibrated.generation(), 1);
        assert!(recalibrated.as_str().ends_with("|gen1"));
        // The durable identity ignores the generation: a recalibration
        // invalidates cached decisions without orphaning checkpoints.
        assert_eq!(base.durable_identity(), recalibrated.durable_identity());
        assert_ne!(base.durable_identity(), base.as_str());
        // And it survives the persisted-string round trip.
        let round = PlanCacheKey::from_string(recalibrated.as_str().to_string(), 1);
        assert_eq!(round.durable_identity(), recalibrated.durable_identity());
    }

    #[test]
    fn export_import_round_trips_decisions_across_cache_instances() {
        let data = dataset(500);
        let config =
            OptimizerConfig::new(GradientKind::LogisticRegression).with_fixed_iterations(100);
        let cold = choose_plan(&data, &config, &ClusterSpec::paper_testbed()).unwrap();
        let cache = PlanCache::new();
        let key = key_for(&data, 0, Some(100));
        cache.insert(key.clone(), &cold);

        let exported = cache.export();
        assert_eq!(exported.len(), 1);
        assert_eq!(exported[0].key, key.as_str());
        // Through JSON and back into a fresh cache: the served report is
        // identical to what the original cache would serve.
        let json = serde_json::to_string(&exported).unwrap();
        let parsed: Vec<PlanCacheEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed[0].calibration_generation, Some(0));
        let warmed = PlanCache::new();
        warmed
            .import(parsed)
            .expect("entries carry their generation");
        assert_eq!(warmed.len(), 1);
        let served = warmed.get(&key).expect("imported entry");
        assert!(served.cache_hit);
        assert_eq!(
            serde_json::to_string(&served.choices).unwrap(),
            serde_json::to_string(&cold.choices).unwrap()
        );
    }

    #[test]
    fn entries_without_a_generation_are_refused_typed() {
        let data = dataset(500);
        let config =
            OptimizerConfig::new(GradientKind::LogisticRegression).with_fixed_iterations(100);
        let cold = choose_plan(&data, &config, &ClusterSpec::paper_testbed()).unwrap();
        let cache = PlanCache::new();
        let key = key_for(&data, 0, Some(100));
        cache.insert(key.clone(), &cold);
        let mut exported = cache.export();
        exported[0].calibration_generation = None;

        let warmed = PlanCache::new();
        let err = warmed.import(exported).unwrap_err();
        assert!(
            matches!(&err, OptimizerError::StalePlanCache { key: k } if k == key.as_str()),
            "expected StalePlanCache, got {err:?}"
        );
        // Nothing was imported: the damaged file cannot partially warm.
        assert!(warmed.is_empty());
        assert!(warmed.get(&key).is_none());
    }

    #[test]
    fn identical_content_shares_entries_across_instances() {
        // Two independently built but identical datasets: same fingerprint,
        // same key — a warmed cache serves both.
        let a = dataset(400);
        let b = dataset(400);
        assert_ne!(a.storage_id(), b.storage_id());
        assert_eq!(key_for(&a, 0, Some(50)), key_for(&b, 0, Some(50)));
    }
}
