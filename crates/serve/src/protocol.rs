//! The serving wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one **frame**: a 4-byte
//! big-endian `u32` payload length followed by exactly that many bytes of
//! UTF-8 JSON. Requests are the externally-tagged [`Request`] enum;
//! responses are [`Response`], either `{"Ok": …}` or `{"Err": {code,
//! message, retry_after_ms}}`. A connection is a strict
//! request/response sequence, except `Observe`, which streams one
//! `{"Ok":{"Event":…}}` frame per job event and terminates with
//! `{"Ok":{"ObserveEnd":…}}`.
//!
//! Two framing rules keep malformed clients from hurting anyone else:
//!
//! - an **oversized** frame (length above the server's `max_frame`) is
//!   drained from the socket without buffering and answered with a typed
//!   `oversized_frame` error — the connection survives;
//! - a frame whose payload is not valid JSON for [`Request`] is answered
//!   with `bad_frame` — the connection survives, because the framing
//!   layer already knows where the next frame starts.
//!
//! Floats cross the wire twice: as plain JSON numbers (readable, and
//! round-trip-exact under Rust's shortest-representation formatting) and
//! as 16-hex-digit IEEE-754 bit patterns (`*_bits` fields), which are the
//! authoritative values for bit-exactness checks.

use std::io::{self, Read, Write};
use std::time::Duration;

use ml4all::{
    AlgorithmPin, DataSource, GdVariant, GradientKind, JobEvent, SamplingMethod, TrainRequest,
};
use serde::{Deserialize, Serialize};

/// Version of this wire protocol. `Hello` reports it; a client asking for
/// a different version is refused with `unsupported_protocol`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default cap on a single frame's payload bytes (1 MiB).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Typed error codes a server can answer with ([`WireError::code`]).
pub mod code {
    /// The payload was not valid JSON for the expected type, or the
    /// frame length was zero.
    pub const BAD_FRAME: &str = "bad_frame";
    /// The frame length exceeded the server's `max_frame`; the payload
    /// was drained and ignored.
    pub const OVERSIZED_FRAME: &str = "oversized_frame";
    /// A verb other than `Hello` arrived before `Hello` on this
    /// connection.
    pub const HELLO_REQUIRED: &str = "hello_required";
    /// The client asked for a protocol version this server does not
    /// speak.
    pub const UNSUPPORTED_PROTOCOL: &str = "unsupported_protocol";
    /// The request was well-formed JSON but semantically invalid
    /// (unknown gradient, non-positive epsilon, …).
    pub const INVALID_REQUEST: &str = "invalid_request";
    /// Admission refused the job: the tenant's queue-byte quota is full.
    /// [`super::WireError::retry_after_ms`] carries a backoff hint —
    /// never a silent drop.
    pub const BUSY: &str = "busy";
    /// The job id is not known to this server.
    pub const UNKNOWN_JOB: &str = "unknown_job";
    /// The job belongs to a different tenant.
    pub const FORBIDDEN: &str = "forbidden";
    /// The verb itself failed (train/explain/predict error); the message
    /// carries the rendered error.
    pub const FAILED: &str = "failed";
    /// The connection's outbound buffer hit the server's per-connection
    /// write cap (the peer stopped reading while the server kept
    /// producing). The server sends this as a final frame — preceded
    /// only by frames that were already fully buffered — and closes the
    /// connection once it drains.
    pub const SLOW_CONSUMER: &str = "slow_consumer";
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// One framing-layer read outcome.
#[derive(Debug)]
pub enum FrameIn {
    /// A complete payload within the size cap.
    Frame(Vec<u8>),
    /// The announced length exceeded the cap; the payload has already
    /// been drained off the socket, so the stream is still in sync.
    Oversized {
        /// The announced payload length.
        len: u32,
    },
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Eof,
}

/// Read one frame. EOF mid-frame (after any header byte) is an
/// `UnexpectedEof` error; EOF exactly at a frame boundary is
/// [`FrameIn::Eof`].
pub fn read_frame(reader: &mut impl Read, max_frame: usize) -> io::Result<FrameIn> {
    let mut header = [0u8; 4];
    // Distinguish clean EOF (zero bytes) from a truncated header.
    let mut filled = 0;
    while filled < header.len() {
        match reader.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(FrameIn::Eof),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(header);
    if len as usize > max_frame {
        // Drain without buffering so the connection stays usable.
        let drained = io::copy(&mut reader.take(len as u64), &mut io::sink())?;
        if drained < len as u64 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof inside oversized frame",
            ));
        }
        return Ok(FrameIn::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(FrameIn::Frame(payload))
}

/// Write one frame (length header + payload). The caller flushes.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large for u32"))?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)
}

/// Serialize a value and write it as one frame. The caller flushes.
pub fn write_message(writer: &mut impl Write, message: &impl Serialize) -> io::Result<()> {
    let text = serde_json::to_string(message)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(writer, text.as_bytes())
}

/// Serialize a value into a complete frame (header + payload) as owned
/// bytes. This is what the reactor shares between observers: one event
/// serialized once, the identical bytes fanned out to every stream.
pub fn encode_frame(message: &impl Serialize) -> io::Result<Vec<u8>> {
    let text = serde_json::to_string(message)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut frame = Vec::with_capacity(4 + text.len());
    write_frame(&mut frame, text.as_bytes())?;
    Ok(frame)
}

// ---------------------------------------------------------------------
// Incremental decoding (nonblocking sockets)
// ---------------------------------------------------------------------

/// One complete item out of the [`FrameDecoder`].
#[derive(Debug)]
pub enum Decoded {
    /// A complete payload within the size cap.
    Frame(Vec<u8>),
    /// A frame whose announced length exceeded the cap. Emitted once the
    /// payload has been fully consumed (and discarded), so the stream is
    /// back in sync at the next frame boundary.
    Oversized {
        /// The announced payload length.
        len: u32,
    },
}

enum DecodeState {
    /// Accumulating the 4-byte big-endian length header.
    Header { buf: [u8; 4], filled: usize },
    /// Accumulating `buf.capacity()` payload bytes.
    Body { buf: Vec<u8> },
    /// Discarding an oversized payload without buffering it.
    Drain { len: u32, remaining: u64 },
}

/// The nonblocking analog of [`read_frame`]: a push-driven state machine
/// that accepts bytes in whatever slices the socket yields — one byte at
/// a time, or several frames at once — and emits complete items.
///
/// The oversized rule matches the blocking path: the payload is counted
/// off and discarded without allocation, and [`Decoded::Oversized`] is
/// emitted at the next frame boundary.
pub struct FrameDecoder {
    max_frame: usize,
    state: DecodeState,
}

impl FrameDecoder {
    /// A decoder enforcing `max_frame` payload bytes.
    pub fn new(max_frame: usize) -> Self {
        Self {
            max_frame,
            state: DecodeState::Header {
                buf: [0; 4],
                filled: 0,
            },
        }
    }

    /// Consume a prefix of `input`, returning how many bytes were used
    /// and at most one completed item. Call in a loop until it reports
    /// `(input.len(), None)` — everything consumed, mid-item, needs more
    /// bytes from the socket.
    pub fn advance(&mut self, input: &[u8]) -> (usize, Option<Decoded>) {
        match &mut self.state {
            DecodeState::Header { buf, filled } => {
                let take = (4 - *filled).min(input.len());
                buf[*filled..*filled + take].copy_from_slice(&input[..take]);
                *filled += take;
                if *filled < 4 {
                    return (take, None);
                }
                let len = u32::from_be_bytes(*buf);
                if len as usize > self.max_frame {
                    self.state = DecodeState::Drain {
                        len,
                        remaining: u64::from(len),
                    };
                } else if len == 0 {
                    self.reset();
                    return (take, Some(Decoded::Frame(Vec::new())));
                } else {
                    self.state = DecodeState::Body {
                        buf: Vec::with_capacity(len as usize),
                    };
                }
                (take, None)
            }
            DecodeState::Body { buf } => {
                let want = buf.capacity() - buf.len();
                let take = want.min(input.len());
                buf.extend_from_slice(&input[..take]);
                if buf.len() < buf.capacity() {
                    return (take, None);
                }
                let frame = std::mem::take(buf);
                self.reset();
                (take, Some(Decoded::Frame(frame)))
            }
            DecodeState::Drain { len, remaining } => {
                let take = (*remaining).min(input.len() as u64) as usize;
                *remaining -= take as u64;
                if *remaining > 0 {
                    return (take, None);
                }
                let len = *len;
                self.reset();
                (take, Some(Decoded::Oversized { len }))
            }
        }
    }

    /// `true` when the decoder is mid-item — a clean EOF here means the
    /// peer died inside a frame rather than at a boundary.
    pub fn mid_frame(&self) -> bool {
        !matches!(self.state, DecodeState::Header { filled: 0, .. })
    }

    fn reset(&mut self) {
        self.state = DecodeState::Header {
            buf: [0; 4],
            filled: 0,
        };
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// A client request, externally tagged: `{"Submit": {"train": …}}`,
/// `"Stats"`, ….
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Open the conversation: authenticate as `tenant` and negotiate the
    /// protocol. Required before any other verb.
    Hello {
        /// Tenant id this connection acts as.
        tenant: String,
        /// Protocol version the client speaks; `null` accepts the
        /// server's.
        protocol: Option<u32>,
    },
    /// Enqueue a training job; answers `Submitted` with the job id
    /// immediately (admission permitting).
    Submit {
        /// The training request.
        train: WireTrain,
    },
    /// Stream the job's events from sequence number `from` (default 0)
    /// until the job finishes. Replayable: a reconnecting observer gets
    /// the full buffered prefix.
    Observe {
        /// Job id from `Submitted`.
        job: u64,
        /// First event sequence number to deliver (resume point).
        from: Option<u64>,
    },
    /// Request cooperative cancellation of a job this tenant owns.
    Cancel {
        /// Job id from `Submitted`.
        job: u64,
    },
    /// Block until the job finishes and return its outcome (with
    /// bit-exact weights on success).
    Join {
        /// Job id from `Submitted`.
        job: u64,
    },
    /// Run the cost-based optimizer and return the costed plan table
    /// without executing the winner.
    Explain {
        /// The training request to explain.
        train: WireTrain,
        /// Also profile every plan for the conformance column.
        measured: Option<bool>,
    },
    /// Score a dataset with one of this tenant's bound models.
    Predict {
        /// Model name as given at submit time.
        model: String,
        /// Test data.
        source: WireSource,
    },
    /// This tenant's admission counters, quotas, and job table.
    Stats,
    /// The reactor's transport-level counters (connections, wake-ups,
    /// bytes, slow-consumer disconnects). Unlike `Stats`, these are
    /// server-wide, not per-tenant.
    ServerStats,
}

/// Where a wire request's data comes from (the catalog-resolvable subset
/// of [`DataSource`]; in-memory handover cannot cross a socket).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireSource {
    /// Resolve by name: registered dataset, then registry analog, then
    /// file — `{"Named": "adult"}`.
    Named(String),
    /// A Table 2 registry analog only.
    Registry(String),
    /// A data file under the server's data dir.
    File(String),
}

impl From<&WireSource> for DataSource {
    fn from(source: &WireSource) -> Self {
        match source {
            WireSource::Named(name) => DataSource::Named {
                name: name.clone(),
                columns: None,
            },
            WireSource::Registry(name) => DataSource::Registry(name.clone()),
            WireSource::File(path) => DataSource::File {
                path: path.into(),
                format: ml4all::FileFormat::Auto,
                columns: None,
            },
        }
    }
}

/// A training request as JSON: the wire analog of [`TrainRequest`].
/// Only `gradient` and `source` are required.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireTrain {
    /// Gradient function: `"logistic"`, `"squared"`, or `"hinge"`.
    pub gradient: String,
    /// Training data.
    pub source: WireSource,
    /// Convergence tolerance ε.
    pub epsilon: Option<f64>,
    /// Iteration cap (fixed iterations when no epsilon).
    pub max_iter: Option<u64>,
    /// Step size β for the `β/√i` schedule.
    pub step: Option<f64>,
    /// MGD mini-batch size.
    pub batch: Option<u64>,
    /// Pin the GD algorithm: `"bgd"`, `"sgd"`, or `"mgd"`.
    pub algorithm: Option<String>,
    /// Pin the sampler: `"bernoulli"`, `"random"`, or `"shuffle"`.
    pub sampler: Option<String>,
    /// RNG seed (default 0; part of the plan-cache key).
    pub seed: Option<u64>,
    /// Result name to bind (namespaced per tenant by the server).
    pub name: Option<String>,
    /// Progress-tick cadence in iterations.
    pub progress_every: Option<u64>,
    /// Real wall-clock execution limit in milliseconds.
    pub wall_limit_ms: Option<u64>,
    /// Simulated-cost budget in milliseconds (`having time …`).
    pub time_budget_ms: Option<u64>,
    /// Write a durability checkpoint every this many iterations (servers
    /// started with `--state-dir` only; absent or 0 disables).
    pub checkpoint_every: Option<u64>,
    /// Resume from this request's persisted checkpoint when one exists
    /// (servers started with `--state-dir` only; a missing checkpoint
    /// starts cold).
    pub resume: Option<bool>,
}

impl WireTrain {
    /// A minimal wire request: `gradient` on `source`, everything else
    /// at the defaults.
    pub fn new(gradient: &str, source: WireSource) -> Self {
        Self {
            gradient: gradient.to_string(),
            source,
            epsilon: None,
            max_iter: None,
            step: None,
            batch: None,
            algorithm: None,
            sampler: None,
            seed: None,
            name: None,
            progress_every: None,
            wall_limit_ms: None,
            time_budget_ms: None,
            checkpoint_every: None,
            resume: None,
        }
    }

    /// Lower onto a typed [`TrainRequest`], validating eagerly so a bad
    /// request is refused at the door instead of failing inside a job.
    pub fn to_request(&self) -> Result<TrainRequest, WireError> {
        let invalid = |message: String| WireError {
            code: code::INVALID_REQUEST.to_string(),
            message,
            retry_after_ms: None,
        };
        let gradient = match self.gradient.as_str() {
            "squared" | "linear" => GradientKind::LinearRegression,
            "logistic" | "classification" => GradientKind::LogisticRegression,
            "hinge" | "svm" => GradientKind::Svm,
            other => {
                return Err(invalid(format!(
                    "unknown gradient `{other}` (expected `logistic`, `squared`, or `hinge`)"
                )))
            }
        };
        let mut request = TrainRequest::new(gradient, DataSource::from(&self.source));
        if let Some(epsilon) = self.epsilon {
            request = request.epsilon(epsilon);
        }
        if let Some(max_iter) = self.max_iter {
            request = request.max_iter(max_iter);
        }
        if let Some(step) = self.step {
            request = request.step(step);
        }
        if let Some(batch) = self.batch {
            request = request.batch(batch);
        }
        if let Some(algorithm) = &self.algorithm {
            match algorithm.as_str() {
                "bgd" | "batch" => request = request.algorithm(GdVariant::Batch),
                "sgd" | "stochastic" => request = request.algorithm(GdVariant::Stochastic),
                // Pin MGD while letting the planner default the batch
                // size when the request leaves it out.
                "mgd" | "minibatch" => {
                    request.spec.algorithm = Some(AlgorithmPin::MiniBatch { batch: self.batch })
                }
                other => {
                    return Err(invalid(format!(
                        "unknown algorithm `{other}` (expected `bgd`, `sgd`, or `mgd`)"
                    )))
                }
            }
        }
        if let Some(sampler) = &self.sampler {
            let sampler = match sampler.as_str() {
                "bernoulli" => SamplingMethod::Bernoulli,
                "random" | "random-partition" => SamplingMethod::RandomPartition,
                "shuffle" | "shuffled-partition" => SamplingMethod::ShuffledPartition,
                other => {
                    return Err(invalid(format!(
                        "unknown sampler `{other}` (expected `bernoulli`, `random`, or `shuffle`)"
                    )))
                }
            };
            request = request.sampler(sampler);
        }
        if let Some(seed) = self.seed {
            request = request.seed(seed);
        }
        if let Some(name) = &self.name {
            request = request.named(name.clone());
        }
        if let Some(every) = self.progress_every {
            request = request.progress_every(every);
        }
        if let Some(ms) = self.wall_limit_ms {
            request = request.wall_limit(Duration::from_millis(ms));
        }
        if let Some(ms) = self.time_budget_ms {
            request = request.time_budget(Duration::from_millis(ms));
        }
        if let Some(every) = self.checkpoint_every {
            request = request.checkpoint_every(every);
        }
        if let Some(resume) = self.resume {
            request = request.resume(resume);
        }
        request.config().map_err(|e| invalid(e.to_string()))?;
        Ok(request)
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// A server response: `{"Ok": <payload>}` or `{"Err": <error>}`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// The verb succeeded.
    Ok(Payload),
    /// The verb was refused or failed; typed, never a silent drop.
    Err(WireError),
}

/// A typed server-side refusal or failure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireError {
    /// One of the [`code`] constants.
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// For `busy`: suggested client backoff before retrying.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// Build an error with no backoff hint.
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        Self {
            code: code.to_string(),
            message: message.into(),
            retry_after_ms: None,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)?;
        if let Some(ms) = self.retry_after_ms {
            write!(f, " (retry after {ms}ms)")?;
        }
        Ok(())
    }
}

/// Success payloads, one variant per verb (plus the observe stream).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Payload {
    /// Answer to `Hello`.
    Hello {
        /// Server name and version (`ml4all-serve x.y.z`).
        server: String,
        /// Wire protocol version in effect.
        protocol: u32,
        /// The deterministic RNG stream version — two servers reporting
        /// the same value produce bit-identical results for the same
        /// request.
        rng_stream_version: u32,
        /// The server's frame payload cap in bytes.
        max_frame: u64,
    },
    /// Answer to `Submit`: the job was admitted (queued or dispatched).
    Submitted {
        /// Server-assigned job id; the handle for
        /// observe/cancel/join/stats.
        job: u64,
    },
    /// One observe-stream element.
    Event {
        /// Sequence number (0-based, dense) — the resume cursor for
        /// `Observe.from`.
        seq: u64,
        /// The event.
        event: WireEvent,
    },
    /// Observe-stream terminator: no more events will ever come.
    ObserveEnd {
        /// The job observed.
        job: u64,
        /// Terminal status: `completed` / `cancelled` / `failed`.
        status: String,
    },
    /// Answer to `Cancel`: the cancellation request was delivered (the
    /// job still stops only at its next wave boundary).
    Cancelled {
        /// The job.
        job: u64,
    },
    /// Answer to `Join`.
    Joined(WireTrained),
    /// Answer to `Explain`.
    Explained(WireReport),
    /// Answer to `Predict`.
    Predicted {
        /// Number of points scored.
        n: u64,
        /// Mean squared error against the source labels.
        mse: f64,
        /// Sign accuracy (classification models only).
        accuracy: Option<f64>,
    },
    /// Answer to `Stats`.
    Stats(WireStats),
    /// Answer to `ServerStats`.
    ServerStats(WireServerStats),
}

/// A job event as JSON (the wire analog of [`JobEvent`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireEvent {
    /// The optimizer started speculative runs.
    SpeculationStarted,
    /// The optimizer committed to a plan.
    PlanChosen {
        /// Rendered plan (`mgd(1000)/shuffle/…`).
        plan: String,
        /// Iterations the optimizer expects.
        estimated_iterations: u64,
        /// One-time preparation cost (simulated seconds).
        preparation_s: f64,
        /// Per-iteration cost (simulated seconds).
        per_iteration_s: f64,
        /// Total estimated cost (simulated seconds).
        total_s: f64,
        /// Served from the plan cache.
        cache_hit: bool,
        /// Backend the plan executes on.
        backend: String,
    },
    /// The job restored a persisted durability checkpoint and continues
    /// from it (bit-identically to the interrupted run).
    Resumed {
        /// Iteration the checkpoint was taken at; execution continues at
        /// the next one.
        iteration: u64,
    },
    /// The job switched plans mid-flight: observed convergence diverged
    /// from the estimate and the chooser re-ran with calibrated costs.
    Replanned {
        /// Iteration the switch took effect at (a wave boundary).
        iteration: u64,
        /// Rendered plan the job was executing.
        from: String,
        /// Rendered plan the job continues under.
        to: String,
        /// Revised cost of the new plan minus the old (simulated
        /// seconds; negative = the switch is predicted cheaper).
        cost_delta: f64,
    },
    /// A convergence checkpoint.
    Progress {
        /// Iteration just completed (1-based).
        iteration: u64,
        /// Convergence delta.
        delta: f64,
        /// IEEE-754 bits of `delta` (authoritative).
        delta_bits: String,
        /// Simulated seconds elapsed.
        sim_time_s: f64,
        /// IEEE-754 bits of `sim_time_s` (authoritative).
        sim_time_bits: String,
    },
    /// The job finished and its model was bound.
    Completed {
        /// Bound result name (tenant-visible, unprefixed).
        name: String,
        /// Iterations executed.
        iterations: u64,
        /// Why the run stopped (`Converged`, `MaxIterations`, …).
        stop: String,
        /// Whether the tolerance was reached.
        converged: bool,
        /// Simulated training seconds.
        sim_time_s: f64,
    },
    /// The job stopped at its cancellation token.
    Cancelled {
        /// Iterations completed before the stop.
        iterations: u64,
    },
    /// The job failed.
    Failed {
        /// Rendered error.
        message: String,
    },
}

impl WireEvent {
    /// Lower an engine [`JobEvent`], stripping `prefix` from bound names
    /// so tenants see their own namespace.
    pub fn from_job_event(event: &JobEvent, prefix: &str) -> Self {
        match event {
            JobEvent::SpeculationStarted => Self::SpeculationStarted,
            JobEvent::PlanChosen {
                plan,
                estimated_iterations,
                preparation_s,
                per_iteration_s,
                total_s,
                cache_hit,
                backend,
            } => Self::PlanChosen {
                plan: plan.to_string(),
                estimated_iterations: *estimated_iterations,
                preparation_s: *preparation_s,
                per_iteration_s: *per_iteration_s,
                total_s: *total_s,
                cache_hit: *cache_hit,
                backend: (*backend).to_string(),
            },
            JobEvent::Resumed { iteration } => Self::Resumed {
                iteration: *iteration,
            },
            JobEvent::Replanned {
                iteration,
                from,
                to,
                cost_delta,
            } => Self::Replanned {
                iteration: *iteration,
                from: from.to_string(),
                to: to.to_string(),
                cost_delta: *cost_delta,
            },
            JobEvent::Progress {
                iteration,
                delta,
                sim_time_s,
                ..
            } => Self::Progress {
                iteration: *iteration,
                delta: *delta,
                delta_bits: f64_to_bits_hex(*delta),
                sim_time_s: *sim_time_s,
                sim_time_bits: f64_to_bits_hex(*sim_time_s),
            },
            JobEvent::Completed {
                name,
                iterations,
                stop,
                converged,
                sim_time_s,
            } => Self::Completed {
                name: name.strip_prefix(prefix).unwrap_or(name).to_string(),
                iterations: *iterations,
                stop: format!("{stop:?}"),
                converged: *converged,
                sim_time_s: *sim_time_s,
            },
            JobEvent::Cancelled { iterations } => Self::Cancelled {
                iterations: *iterations,
            },
            JobEvent::Failed { message } => Self::Failed {
                message: message.clone(),
            },
        }
    }
}

/// A finished job's outcome (the wire analog of
/// [`Trained`](ml4all::Trained) plus the bound weights).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireTrained {
    /// The job.
    pub job: u64,
    /// Terminal status: `completed` / `cancelled` / `failed`.
    pub status: String,
    /// Bound result name (tenant-visible), on success.
    pub name: Option<String>,
    /// Rendered winning plan, on success.
    pub plan: Option<String>,
    /// Iterations executed (success or cancellation).
    pub iterations: Option<u64>,
    /// Whether the tolerance was reached, on success.
    pub converged: Option<bool>,
    /// Simulated training seconds, on success.
    pub sim_time_s: Option<f64>,
    /// Model weights as JSON numbers (round-trip-exact), on success.
    pub weights: Option<Vec<f64>>,
    /// Model weights as IEEE-754 bit patterns (authoritative), on
    /// success.
    pub weights_bits: Option<Vec<String>>,
    /// Rendered error, on failure.
    pub error: Option<String>,
}

/// The optimizer's costed plan table (the wire analog of
/// [`OptimizerReport`](ml4all::OptimizerReport)).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireReport {
    /// Served from the plan cache.
    pub cache_hit: bool,
    /// Rendered winning (cheapest) plan.
    pub best: String,
    /// Simulated optimizer overhead (speculation runs).
    pub speculation_sim_s: f64,
    /// Every enumerated plan, cheapest first.
    pub choices: Vec<WireChoice>,
}

/// One row of the plan table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireChoice {
    /// Rendered plan.
    pub plan: String,
    /// Iterations the optimizer expects.
    pub estimated_iterations: u64,
    /// One-time preparation cost (simulated seconds).
    pub preparation_s: f64,
    /// Per-iteration cost (simulated seconds).
    pub per_iteration_s: f64,
    /// Total estimated cost (simulated seconds).
    pub total_s: f64,
    /// Ledger-measured cost, when profiled (`Explain.measured`).
    pub measured_s: Option<f64>,
}

/// Answer to `Stats`: this tenant's admission state and jobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireStats {
    /// The tenant these stats are for.
    pub tenant: String,
    /// This tenant's jobs currently dispatched and unfinished.
    pub in_flight: u64,
    /// This tenant's jobs waiting in the admission queue.
    pub queued: u64,
    /// Bytes of queued request frames counted against the byte quota.
    pub queued_bytes: u64,
    /// Quota: max dispatched-and-unfinished jobs.
    pub quota_max_in_flight: u64,
    /// Quota: max queued request bytes before `busy`.
    pub quota_max_queued_bytes: u64,
    /// Dispatched-and-unfinished jobs across all tenants.
    pub global_in_flight: u64,
    /// The server's global in-flight cap.
    pub global_capacity: u64,
    /// Engine plan-cache hits since boot (shared across tenants).
    pub plan_cache_hits: u64,
    /// Engine plan-cache misses since boot.
    pub plan_cache_misses: u64,
    /// Engine plan-cache entries.
    pub plan_cache_len: u64,
    /// Durability checkpoints written by the engine since boot (0 when
    /// the server runs without `--state-dir`).
    pub checkpoints_written: u64,
    /// Jobs the engine restored from a persisted checkpoint since boot.
    pub jobs_resumed: u64,
    /// Current cost-model calibration generation (`None` when the server
    /// runs with calibration off).
    pub calibration_generation: Option<u64>,
    /// Residual-model confidence in `[0, 1]` at the current generation
    /// (`None` when calibration is off).
    pub calibration_confidence: Option<f64>,
    /// Mid-flight plan switches performed by the engine since boot.
    pub replans: u64,
    /// This tenant's jobs, submission order.
    pub jobs: Vec<WireJob>,
}

/// Answer to `ServerStats`: the reactor's transport counters since boot.
/// All counters are monotone except `active_connections`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireServerStats {
    /// The readiness backend compiled in: `epoll` / `kqueue` / `poll` /
    /// `tick`.
    pub backend: String,
    /// Connections currently registered with the reactor (including the
    /// one asking).
    pub active_connections: u64,
    /// Connections ever accepted.
    pub total_connections: u64,
    /// Times the event loop woke from its poller (readiness, wake-up
    /// pipe, or timeout).
    pub wakeups: u64,
    /// Payload + header bytes read off sockets.
    pub bytes_in: u64,
    /// Payload + header bytes written to sockets.
    pub bytes_out: u64,
    /// Writes that could not flush a connection's full buffer in one
    /// syscall (backpressure events, not errors).
    pub partial_writes: u64,
    /// Connections dropped for exceeding the per-connection write-buffer
    /// cap (`slow_consumer`).
    pub slow_consumer_disconnects: u64,
}

/// One row of a tenant's job table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireJob {
    /// Server-assigned job id.
    pub job: u64,
    /// Engine-assigned id once dispatched (`null` while queued).
    pub engine_id: Option<u64>,
    /// Requested result name (tenant-visible).
    pub name: Option<String>,
    /// `queued` / `running` / `completed` / `cancelled` / `failed`.
    pub status: String,
}

// ---------------------------------------------------------------------
// Bit-exact float transport
// ---------------------------------------------------------------------

/// The authoritative wire form of an `f64`: its IEEE-754 bit pattern as
/// 16 lowercase hex digits.
pub fn f64_to_bits_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Parse [`f64_to_bits_hex`]'s output back to the identical float.
pub fn f64_from_bits_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Encode a weight vector in both wire forms (numbers + bit patterns).
pub fn encode_weights(weights: &[f64]) -> (Vec<f64>, Vec<String>) {
    (
        weights.to_vec(),
        weights.iter().copied().map(f64_to_bits_hex).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"a\":1}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut reader = io::Cursor::new(buf);
        let FrameIn::Frame(first) = read_frame(&mut reader, 64).unwrap() else {
            panic!("expected frame");
        };
        assert_eq!(first, b"{\"a\":1}");
        let FrameIn::Frame(second) = read_frame(&mut reader, 64).unwrap() else {
            panic!("expected frame");
        };
        assert!(second.is_empty());
        assert!(matches!(read_frame(&mut reader, 64).unwrap(), FrameIn::Eof));
    }

    #[test]
    fn oversized_frames_are_drained_and_the_stream_stays_in_sync() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[b'x'; 100]).unwrap();
        write_frame(&mut buf, b"ok").unwrap();
        let mut reader = io::Cursor::new(buf);
        let FrameIn::Oversized { len } = read_frame(&mut reader, 10).unwrap() else {
            panic!("expected oversized");
        };
        assert_eq!(len, 100);
        // The next frame is intact: the oversized payload was drained.
        let FrameIn::Frame(next) = read_frame(&mut reader, 10).unwrap() else {
            panic!("expected frame");
        };
        assert_eq!(next, b"ok");
    }

    #[test]
    fn truncated_frames_error_instead_of_hanging_state() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6); // header + 2 of 5 payload bytes
        let mut reader = io::Cursor::new(buf);
        let err = read_frame(&mut reader, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    /// Feed `input` to `decoder` in `chunk`-byte slices, collecting
    /// every completed item.
    fn drive(decoder: &mut FrameDecoder, input: &[u8], chunk: usize) -> Vec<Decoded> {
        let mut out = Vec::new();
        for piece in input.chunks(chunk) {
            let mut offset = 0;
            while offset < piece.len() {
                let (used, item) = decoder.advance(&piece[offset..]);
                assert!(used > 0, "decoder must always make progress");
                offset += used;
                out.extend(item);
            }
        }
        out
    }

    #[test]
    fn decoder_matches_blocking_reads_at_every_chunk_size() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"{\"a\":1}").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, &[b'x'; 100]).unwrap(); // oversized at cap 64
        write_frame(&mut stream, b"after").unwrap();
        for chunk in [1, 2, 3, 5, 7, stream.len()] {
            let mut decoder = FrameDecoder::new(64);
            let items = drive(&mut decoder, &stream, chunk);
            assert_eq!(items.len(), 4, "chunk={chunk}");
            assert!(matches!(&items[0], Decoded::Frame(f) if f == b"{\"a\":1}"));
            assert!(matches!(&items[1], Decoded::Frame(f) if f.is_empty()));
            assert!(matches!(items[2], Decoded::Oversized { len: 100 }));
            assert!(matches!(&items[3], Decoded::Frame(f) if f == b"after"));
            assert!(!decoder.mid_frame(), "chunk={chunk}");
        }
    }

    #[test]
    fn decoder_reports_mid_frame_for_half_open_peers() {
        let mut decoder = FrameDecoder::new(64);
        assert!(!decoder.mid_frame());
        // Two header bytes, then silence: mid-frame.
        decoder.advance(&[0, 0]);
        assert!(decoder.mid_frame());
        // The rest of the header announcing 5 bytes, 2 of 5 delivered:
        // still mid-frame.
        decoder.advance(&[0, 5]);
        decoder.advance(b"he");
        assert!(decoder.mid_frame());
        let (_, item) = decoder.advance(b"llo");
        assert!(matches!(item, Some(Decoded::Frame(f)) if f == b"hello"));
        assert!(!decoder.mid_frame());
    }

    #[test]
    fn decoder_never_buffers_oversized_payloads() {
        let mut decoder = FrameDecoder::new(16);
        let huge = u32::MAX;
        let (used, item) = decoder.advance(&huge.to_be_bytes());
        assert_eq!(used, 4);
        assert!(item.is_none());
        // 4 GiB announced, fed in 1 KiB slices: constant memory, and the
        // item surfaces exactly when the count runs out.
        let junk = [0u8; 1024];
        let mut remaining = u64::from(huge);
        loop {
            let (used, item) = decoder.advance(&junk[..junk.len().min(remaining as usize)]);
            remaining -= used as u64;
            if let Some(item) = item {
                assert!(matches!(item, Decoded::Oversized { len } if len == huge));
                break;
            }
        }
        assert_eq!(remaining, 0);
        assert!(!decoder.mid_frame());
    }

    #[test]
    fn encode_frame_bytes_equal_write_message_bytes() {
        let message = Response::Ok(Payload::Submitted { job: 9 });
        let mut written = Vec::new();
        write_message(&mut written, &message).unwrap();
        assert_eq!(encode_frame(&message).unwrap(), written);
    }

    #[test]
    fn requests_round_trip_through_json() {
        let requests = [
            Request::Hello {
                tenant: "acme".into(),
                protocol: Some(PROTOCOL_VERSION),
            },
            Request::Submit {
                train: WireTrain::new("logistic", WireSource::Registry("adult".into())),
            },
            Request::Observe { job: 7, from: None },
            Request::Cancel { job: 7 },
            Request::Stats,
        ];
        for request in &requests {
            let text = serde_json::to_string(request).unwrap();
            let back: Request = serde_json::from_str(&text).unwrap();
            // Round-trip sameness via re-serialization (no PartialEq on
            // the wire types).
            assert_eq!(text, serde_json::to_string(&back).unwrap());
        }
    }

    #[test]
    fn unit_verbs_serialize_as_plain_strings() {
        assert_eq!(serde_json::to_string(&Request::Stats).unwrap(), "\"Stats\"");
    }

    #[test]
    fn bits_hex_is_exact_for_awkward_floats() {
        for x in [
            0.1f64,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.5e-300,
            -0.0,
            6.02214076e23,
        ] {
            let hex = f64_to_bits_hex(x);
            assert_eq!(hex.len(), 16);
            let back = f64_from_bits_hex(&hex).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
        assert_eq!(f64_from_bits_hex("xyz"), None);
        assert_eq!(f64_from_bits_hex("3ff"), None);
    }

    #[test]
    fn wire_train_lowers_onto_a_validated_request() {
        let mut wire = WireTrain::new("logistic", WireSource::Registry("adult".into()));
        wire.max_iter = Some(25);
        wire.algorithm = Some("mgd".into());
        wire.sampler = Some("shuffle".into());
        wire.seed = Some(42);
        let request = wire.to_request().unwrap();
        assert_eq!(request.seed, 42);
        assert!(matches!(
            request.spec.algorithm,
            Some(AlgorithmPin::MiniBatch { batch: None })
        ));

        // Bad values are refused at the door with a typed code.
        let mut bad = WireTrain::new("logistic", WireSource::Registry("adult".into()));
        bad.epsilon = Some(-1.0);
        assert_eq!(bad.to_request().unwrap_err().code, code::INVALID_REQUEST);
        let unknown = WireTrain::new("quadratic", WireSource::Registry("adult".into()));
        assert_eq!(
            unknown.to_request().unwrap_err().code,
            code::INVALID_REQUEST
        );
    }
}
