//! CI durability drill: the client half of the kill-and-resume check.
//!
//! `durability_drill start --addr A` submits a per-iteration-checkpointed
//! training job to a `--state-dir` server and exits as soon as the event
//! stream proves the loop is deep in flight — the harness then SIGKILLs
//! the server mid-job. `durability_drill finish --addr A` submits the
//! identical spec with resume on, requires the resumed path (or forbids
//! it with `--cold`, the uninterrupted reference), streams the job to
//! completion, and prints the final weights as IEEE-754 bit patterns —
//! one line the harness diffs between the restarted server and a fresh
//! reference server.

use ml4all_serve::{Client, Payload, Request, WireEvent, WireSource, WireTrain};

/// Tolerance far out of reach + a deep iteration cap: the job runs long
/// enough to be killed mid-flight, yet finishes in seconds once resumed.
const MAX_ITER: u64 = 20_000;
/// The `start` phase exits once the stream reaches this iteration.
const KILL_DEPTH: u64 = 100;

fn die(msg: &str) -> ! {
    eprintln!("durability_drill: {msg}");
    std::process::exit(1);
}

/// The one logical job every phase speaks about: identical spec, so the
/// plan-cache key — and therefore the checkpoint identity — matches
/// across server restarts.
fn spec() -> WireTrain {
    let mut train = WireTrain::new("logistic", WireSource::Registry("adult".into()));
    train.epsilon = Some(1e-12);
    train.max_iter = Some(MAX_ITER);
    train.seed = Some(11);
    train.name = Some("drill".into());
    train.progress_every = Some(50);
    train.resume = Some(true);
    train
}

fn connect(addr: &str) -> Client {
    let mut client = Client::connect(addr).unwrap_or_else(|e| die(&format!("connect {addr}: {e}")));
    client
        .hello("drill")
        .unwrap_or_else(|e| die(&format!("hello: {e}")));
    client
}

/// Submit the checkpointed job and return once it is provably mid-flight,
/// leaving it running server-side for the harness to kill.
fn start(addr: &str) {
    let mut client = connect(addr);
    let mut train = spec();
    // A checkpoint at every boundary: wherever the SIGKILL lands, the
    // last completed iteration survives.
    train.checkpoint_every = Some(1);
    let job = client
        .submit(&train)
        .unwrap_or_else(|e| die(&format!("submit: {e}")));
    let mut next = client
        .call(&Request::Observe { job, from: Some(0) })
        .unwrap_or_else(|e| die(&format!("observe: {e}")));
    loop {
        match next {
            Payload::Event {
                event: WireEvent::Progress { iteration, .. },
                ..
            } if iteration >= KILL_DEPTH => {
                println!("job {job} mid-flight at iteration {iteration}: ready for the kill");
                return; // the dropped connection leaves the job running
            }
            Payload::Event { .. } => {}
            Payload::ObserveEnd { status, .. } => die(&format!(
                "job finished ({status}) before it could be killed"
            )),
            other => die(&format!("unexpected observe payload {other:?}")),
        }
        next = match client.read_response() {
            Ok(ml4all_serve::Response::Ok(payload)) => payload,
            Ok(ml4all_serve::Response::Err(e)) => die(&format!("observe: {}", e.message)),
            Err(e) => die(&format!("observe: {e}")),
        };
    }
}

/// Run the job to completion and print the final weights bit-exactly.
/// `cold` flips the resume expectation: the reference server has no
/// checkpoint and must start at iteration 0.
fn finish(addr: &str, cold: bool) {
    let mut client = connect(addr);
    let mut train = spec();
    // Checkpoint cadence is not part of the job's identity; keep the
    // finishing segment light on fsync.
    train.checkpoint_every = Some(200);
    let job = client
        .submit(&train)
        .unwrap_or_else(|e| die(&format!("submit: {e}")));
    let mut resumed_at = None;
    let status = client
        .observe(job, 0, |_seq, event| {
            if let WireEvent::Resumed { iteration } = event {
                resumed_at = Some(*iteration);
            }
        })
        .unwrap_or_else(|e| die(&format!("observe: {e}")));
    if status != "completed" {
        die(&format!("job ended {status}, expected completed"));
    }
    match (cold, resumed_at) {
        (false, None) => die("expected the job to resume from the killed run's checkpoint"),
        (true, Some(at)) => die(&format!("reference run unexpectedly resumed at {at}")),
        (false, Some(at)) => println!("resumed at iteration {at}"),
        (true, None) => println!("cold run, no checkpoint"),
    }
    let outcome = client
        .join(job)
        .unwrap_or_else(|e| die(&format!("join: {e}")));
    if outcome.iterations != Some(MAX_ITER) {
        die(&format!(
            "expected {MAX_ITER} iterations, got {:?}",
            outcome.iterations
        ));
    }
    let bits = outcome
        .weights_bits
        .unwrap_or_else(|| die("completed job carried no weights"));
    println!("weights {}", bits.join(" "));
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_default();
    let mut addr = String::from("127.0.0.1:7878");
    let mut cold = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => die("--addr requires host:port"),
            },
            "--cold" => cold = true,
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    match mode.as_str() {
        "start" => start(&addr),
        "finish" => finish(&addr, cold),
        _ => die("usage: durability_drill <start|finish> [--addr host:port] [--cold]"),
    }
}
