//! The `ml4all` command line: the paper's declarative interface as an
//! interactive REPL (or one-shot `-e` executor), plus the `serve`
//! subcommand that exposes an engine over TCP.
//!
//! ```text
//! $ ml4all
//! ml4all> Q1 = run logistic() on train.csv having epsilon 0.01;
//! [Q1] trained with SGD-lazy-shuffle: 2062 iterations, 7.2 simulated s
//! ml4all> explain logistic() on train.csv having epsilon 0.01;
//! #   plan                 est.iter  prep(s)  iter(s)   total(s)  platforms
//! 1   SGD-lazy-shuffle     2062      ...
//! ml4all> persist Q1 on model.txt;
//! [persisted model.txt]
//! ml4all> predict on test.csv with model.txt;
//! [predictions: 600 points, mse 0.583, accuracy 85.3%]
//!
//! $ ml4all serve --addr 127.0.0.1:7878 --workers 4
//! ml4all-serve listening on 127.0.0.1:7878 (protocol 1, rng stream 3)
//! ```
//!
//! Options: `-e "<stmt>"` (execute and exit, repeatable),
//! `--data-dir <dir>` (base for relative paths), `--help`; see
//! `ml4all serve --help` for the server flags.

use std::io::{BufRead, Write};
use std::sync::Arc;

use ml4all::{render_report, Engine, Runtime, Session, SessionOutput, RNG_STREAM_VERSION};
use ml4all_serve::{Client, ServeConfig, Server, TenantQuota, PROTOCOL_VERSION};

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("serve") {
        args.next();
        serve_main(args);
        return;
    }
    if args.peek().map(String::as_str) == Some("stats") {
        args.next();
        stats_main(args);
        return;
    }
    let mut statements: Vec<String> = Vec::new();
    let mut data_dir = String::from(".");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-e" | "--execute" => match args.next() {
                Some(stmt) => statements.push(stmt),
                None => {
                    eprintln!("-e requires a statement");
                    std::process::exit(2);
                }
            },
            "--data-dir" => match args.next() {
                Some(dir) => data_dir = dir,
                None => {
                    eprintln!("--data-dir requires a path");
                    std::process::exit(2);
                }
            },
            "-h" | "--help" => {
                print_help();
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                std::process::exit(2);
            }
        }
    }

    let session = Session::new().with_data_dir(&data_dir);

    if !statements.is_empty() {
        for stmt in statements {
            if !run_statement(&session, &stmt) {
                std::process::exit(1);
            }
        }
        return;
    }

    // Interactive REPL.
    println!("ml4all — cost-based gradient-descent optimizer");
    println!("statements: run / explain / persist / predict  (\\q to quit, \\h for help)");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        print!("ml4all> ");
        std::io::stdout().flush().ok();
        buffer.clear();
        match stdin.lock().read_line(&mut buffer) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = buffer.trim();
        match line {
            "" => continue,
            "\\q" | "quit" | "exit" => break,
            "\\h" | "help" => {
                print_help();
                continue;
            }
            _ => {
                run_statement(&session, line);
            }
        }
    }
}

/// `ml4all serve`: boot a serving front end and block until killed.
fn serve_main(mut args: std::iter::Peekable<impl Iterator<Item = String>>) {
    let mut config = ServeConfig::default();
    let mut workers: Option<usize> = None;
    let mut data_dir = String::from(".");
    let mut state_dir: Option<String> = None;
    let mut calibrate = false;
    let mut replan = false;
    let bad = |flag: &str, what: &str| -> ! {
        eprintln!("{flag} requires {what}");
        std::process::exit(2);
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => bad("--addr", "host:port"),
            },
            "--workers" => match args.next().and_then(|w| w.parse().ok()) {
                Some(w) => workers = Some(w),
                None => bad("--workers", "a thread count"),
            },
            "--data-dir" => match args.next() {
                Some(dir) => data_dir = dir,
                None => bad("--data-dir", "a path"),
            },
            "--state-dir" => match args.next() {
                Some(dir) => state_dir = Some(dir),
                None => bad("--state-dir", "a path"),
            },
            "--calibrate" => calibrate = true,
            "--replan" => replan = true,
            "--max-frame" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.max_frame = v,
                None => bad("--max-frame", "a byte count"),
            },
            "--global-in-flight" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.global_in_flight = v,
                None => bad("--global-in-flight", "a job count"),
            },
            "--max-in-flight" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.default_quota.max_in_flight = v,
                None => bad("--max-in-flight", "a job count"),
            },
            "--max-queued-bytes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.default_quota.max_queued_bytes = v,
                None => bad("--max-queued-bytes", "a byte count"),
            },
            // --quota TENANT=IN_FLIGHT:QUEUED_BYTES, repeatable.
            "--quota" => match args.next().as_deref().and_then(parse_quota) {
                Some((tenant, quota)) => config.tenant_quotas.push((tenant, quota)),
                None => bad("--quota", "TENANT=IN_FLIGHT:QUEUED_BYTES"),
            },
            "--max-write-buffer" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.max_write_buffer = v,
                None => bad("--max-write-buffer", "a byte count"),
            },
            "--verb-workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.verb_workers = v,
                None => bad("--verb-workers", "a thread count"),
            },
            "-h" | "--help" => {
                print_serve_help();
                return;
            }
            other => {
                eprintln!("unknown serve argument {other:?}; try `ml4all serve --help`");
                std::process::exit(2);
            }
        }
    }
    let mut engine = Engine::new().with_data_dir(&data_dir);
    if calibrate {
        engine = engine.with_calibration();
    }
    if replan {
        engine = engine.with_replanning(ml4all::ReplanPolicy::default());
    }
    if let Some(dir) = &state_dir {
        engine = engine.with_state_dir(dir);
    }
    if let Some(workers) = workers {
        engine = engine.with_runtime(Arc::new(Runtime::new(workers)));
    }
    match Server::start(engine, config) {
        Ok(server) => {
            println!(
                "ml4all-serve listening on {} (protocol {PROTOCOL_VERSION}, \
                 rng stream {RNG_STREAM_VERSION})",
                server.local_addr()
            );
            // Serve until the process is killed.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("failed to bind: {e}");
            std::process::exit(1);
        }
    }
}

/// `ml4all stats`: connect to a running server and print the tenant's
/// admission/job table plus the process-wide reactor counters.
fn stats_main(mut args: std::iter::Peekable<impl Iterator<Item = String>>) {
    let mut addr = String::from("127.0.0.1:7878");
    let mut tenant = String::from("default");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("--addr requires host:port");
                    std::process::exit(2);
                }
            },
            "--tenant" => match args.next() {
                Some(t) => tenant = t,
                None => {
                    eprintln!("--tenant requires a name");
                    std::process::exit(2);
                }
            },
            "-h" | "--help" => {
                println!(
                    "usage: ml4all stats [--addr HOST:PORT] [--tenant NAME]\n\n\
                     prints the tenant's admission counters and job table, then\n\
                     the server-wide reactor counters (ServerStats verb)."
                );
                return;
            }
            other => {
                eprintln!("unknown stats argument {other:?}; try `ml4all stats --help`");
                std::process::exit(2);
            }
        }
    }
    let run = || -> Result<(), Box<dyn std::error::Error>> {
        let mut client = Client::connect(&addr)?;
        client.hello(&tenant)?;
        let stats = client.stats()?;
        println!("tenant {tenant:?} @ {addr}");
        println!(
            "  admission: {} in flight (quota {}), {} queued ({} of {} queued bytes); \
             global {} of {}",
            stats.in_flight,
            stats.quota_max_in_flight,
            stats.queued,
            stats.queued_bytes,
            stats.quota_max_queued_bytes,
            stats.global_in_flight,
            stats.global_capacity
        );
        println!(
            "  plan cache: {} hits, {} misses, {} entries",
            stats.plan_cache_hits, stats.plan_cache_misses, stats.plan_cache_len
        );
        if let Some(generation) = stats.calibration_generation {
            println!(
                "  calibration: gen {}, residual conf {:.2}, {} replans",
                generation,
                stats.calibration_confidence.unwrap_or(0.0),
                stats.replans
            );
        }
        if stats.jobs.is_empty() {
            println!("  jobs: none");
        } else {
            println!("  jobs:");
            for job in &stats.jobs {
                println!(
                    "    #{:<6} {:<10} {}",
                    job.job,
                    job.status,
                    job.name.as_deref().unwrap_or("-")
                );
            }
        }
        let server = client.server_stats()?;
        println!("server ({} backend)", server.backend);
        println!(
            "  connections: {} active / {} total; {} slow-consumer disconnects",
            server.active_connections, server.total_connections, server.slow_consumer_disconnects
        );
        println!(
            "  reactor: {} wakeups, {} partial writes, {} bytes in, {} bytes out",
            server.wakeups, server.partial_writes, server.bytes_in, server.bytes_out
        );
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("stats failed: {e}");
        std::process::exit(1);
    }
}

fn parse_quota(spec: &str) -> Option<(String, TenantQuota)> {
    let (tenant, rest) = spec.split_once('=')?;
    let (in_flight, queued_bytes) = rest.split_once(':')?;
    Some((
        tenant.to_string(),
        TenantQuota {
            max_in_flight: in_flight.parse().ok()?,
            max_queued_bytes: queued_bytes.parse().ok()?,
        },
    ))
}

fn run_statement(session: &Session, stmt: &str) -> bool {
    match session.execute(stmt) {
        Ok(SessionOutput::Trained { name, summary }) => {
            println!(
                "[{name}] trained with {}: {} iterations, {:.1} simulated s \
                 (converged: {}; optimizer overhead {:.1} s)",
                summary.plan,
                summary.iterations,
                summary.sim_time_s,
                summary.converged,
                summary.speculation_s
            );
            true
        }
        Ok(SessionOutput::Persisted { path }) => {
            println!("[persisted {}]", path.display());
            true
        }
        Ok(SessionOutput::Predicted(p)) => {
            match p.accuracy {
                Some(acc) => println!(
                    "[predictions: {} points, mse {:.3}, accuracy {:.1}%]",
                    p.predictions.len(),
                    p.mse,
                    acc * 100.0
                ),
                None => println!(
                    "[predictions: {} points, mse {:.3}]",
                    p.predictions.len(),
                    p.mse
                ),
            }
            true
        }
        Ok(SessionOutput::Explained { report }) => {
            print!("{}", render_report(&report));
            println!(
                "[optimizer would run {} at {:.3} estimated s]",
                report.best().plan,
                report.best().total_s
            );
            true
        }
        Err(e) => {
            eprintln!("error: {e}");
            false
        }
    }
}

fn print_help() {
    println!(
        "\
usage: ml4all [--data-dir DIR] [-e STATEMENT]...
       ml4all serve [--addr HOST:PORT] [--workers N] ...
       ml4all stats [--addr HOST:PORT] [--tenant NAME]

statements (Appendix A of the paper, plus the explain verb):
  [NAME =] run <task> on <dataset> [having ...] [using ...];
      task: classification | regression | hinge() | logistic() | squared()
      dataset: a LIBSVM/CSV file, optionally with columns (file:2, file:4-20),
               or a Table 2 analog by name (adult, covtype, rcv1, ...)
      having: time 1h30m, epsilon 0.01, max iter 1000
      using:  algorithm SGD|BGD|MGD, step 1, sampler shuffled, batch 1000
  explain [run] <task> on <dataset> [having ...] [using ...];
      print the optimizer's full costed plan table (cost, estimated
      iterations, Java/Spark platform mapping) instead of executing
  persist NAME on <path>;
  [NAME =] predict on <dataset> with <model-file-or-result-name>;
"
    );
}

fn print_serve_help() {
    println!(
        "\
usage: ml4all serve [options]

options:
  --addr HOST:PORT       bind address (default 127.0.0.1:0, ephemeral)
  --workers N            engine worker threads (default: process-wide pool)
  --data-dir DIR         base directory for dataset/model paths
  --state-dir DIR        durability root: plan cache, bound models, and job
                         checkpoints persist here and survive restarts
  --calibrate            online cost-model calibration: refit unit costs and
                         residuals from measured jobs (profile persists under
                         --state-dir; ML4ALL_NO_CALIBRATION=1 pins it off)
  --replan               deterministic mid-flight replanning when observed
                         convergence diverges from the estimate
  --max-frame BYTES      frame payload cap (default 1 MiB)
  --global-in-flight N   max concurrent jobs across tenants (default 8)
  --max-in-flight N      default per-tenant in-flight quota (default 4)
  --max-queued-bytes N   default per-tenant queued-byte quota (default 256 KiB)
  --quota T=N:BYTES      per-tenant override, repeatable
  --max-write-buffer N   per-connection outbound buffer cap before the peer
                         is dropped as a slow consumer (default 4 MiB)
  --verb-workers N       threads for synchronous verbs (explain/predict)
                         so they never stall the event loop (default 2)
"
    );
}
