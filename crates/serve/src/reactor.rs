//! Readiness polling for the serving reactor, with zero crate
//! dependencies (the same no-crate syscall precedent as the slab
//! `mmap` wrapper in `ml4all-dataflow`).
//!
//! One [`Poller`] instance backs the whole server. The backend is
//! chosen at compile time:
//!
//! - **Linux** — raw `epoll` (level-triggered), the production path;
//! - **macOS / iOS / FreeBSD / NetBSD / OpenBSD** — raw `kqueue`;
//! - **other Unix** — a `poll(2)` loop rebuilt from the registration
//!   table per wait;
//! - **non-Unix** — a tick loop that reports every registered source
//!   ready on a short cadence; correctness then rests entirely on the
//!   sockets being nonblocking (reads return `WouldBlock` when idle).
//!
//! Cross-thread wake-ups use the classic self-pipe trick (an atomic
//! flag plus short sleeps on the tick backend): [`Waker::wake`] is
//! safe from any thread, including the engine's worker threads pushing
//! job events at the reactor.

use std::io;
use std::time::Duration;

/// What a registered source is currently interested in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the source is readable.
    pub read: bool,
    /// Wake when the source is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Self = Self {
        read: true,
        write: false,
    };
    /// Read-and-write interest.
    pub const BOTH: Self = Self {
        read: true,
        write: true,
    };
    /// Write-only interest (a paused reader still draining its
    /// responses).
    pub const WRITE: Self = Self {
        read: false,
        write: true,
    };
    /// No interest (parked; kept registered for cheap re-arming).
    pub const NONE: Self = Self {
        read: false,
        write: false,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the source was registered under.
    pub token: u64,
    /// Reading will make progress (data, EOF, or an error to observe).
    pub readable: bool,
    /// Writing will make progress.
    pub writable: bool,
    /// The peer hung up or the source errored; the owner should read to
    /// observe the failure and close.
    pub hangup: bool,
}

/// The reactor's readiness source. See the module docs for backends.
pub struct Poller {
    inner: imp::Poller,
}

/// A cheap, cloneable cross-thread handle that interrupts
/// [`Poller::wait`].
#[derive(Clone)]
pub struct Waker {
    inner: imp::Waker,
}

impl Waker {
    /// Interrupt the poller's current (or next) wait. Safe from any
    /// thread; coalesces — a thousand wakes cost one wake-up.
    pub fn wake(&self) {
        self.inner.wake();
    }
}

impl Poller {
    /// Open a poller (and its internal wake-up channel).
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            inner: imp::Poller::new()?,
        })
    }

    /// The compile-time backend name, surfaced in server stats:
    /// `"epoll"`, `"kqueue"`, `"poll"`, or `"tick"`.
    pub fn backend(&self) -> &'static str {
        imp::BACKEND
    }

    /// A handle other threads use to interrupt [`Poller::wait`].
    pub fn waker(&self) -> Waker {
        Waker {
            inner: self.inner.waker(),
        }
    }

    /// Start watching `source` under `token`.
    pub fn register(&mut self, source: Source, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(source, token, interest)
    }

    /// Change what an already-registered source is interested in.
    pub fn update(&mut self, source: Source, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.update(source, token, interest)
    }

    /// Stop watching `source` (call before closing it).
    pub fn deregister(&mut self, source: Source) -> io::Result<()> {
        self.inner.deregister(source)
    }

    /// Block until at least one source is ready, a waker fires, or
    /// `timeout` passes; readiness lands in `events` (cleared first).
    /// Returns the number of readiness events (0 on timeout or wake).
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        self.inner.wait(events, timeout)
    }
}

/// The platform handle a source is registered by: a raw file
/// descriptor on Unix, the token itself on the tick backend.
#[cfg(unix)]
pub type Source = std::os::unix::io::RawFd;
#[cfg(not(unix))]
pub type Source = u64;

/// The poller source of a TCP stream.
#[cfg(unix)]
pub fn source_of(stream: &std::net::TcpStream, _token: u64) -> Source {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

/// On the tick backend every registered token is reported ready each
/// cadence, so the token doubles as the source.
#[cfg(not(unix))]
pub fn source_of(_stream: &std::net::TcpStream, token: u64) -> Source {
    token
}

/// The poller source of a TCP listener.
#[cfg(unix)]
pub fn source_of_listener(listener: &std::net::TcpListener, _token: u64) -> Source {
    use std::os::unix::io::AsRawFd;
    listener.as_raw_fd()
}

#[cfg(not(unix))]
pub fn source_of_listener(_listener: &std::net::TcpListener, token: u64) -> Source {
    token
}

// ---------------------------------------------------------------------
// Self-pipe plumbing shared by the Unix backends
// ---------------------------------------------------------------------

#[cfg(unix)]
mod pipe {
    use std::io;
    use std::sync::Arc;

    extern "C" {
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: i32 = 0x4;

    /// A nonblocking self-pipe: `notify` writes one byte, `drain` empties
    /// the read side. Both ends close on drop.
    pub struct SelfPipe {
        read_fd: i32,
        write_fd: Arc<WriteEnd>,
    }

    struct WriteEnd(i32);

    impl Drop for WriteEnd {
        fn drop(&mut self) {
            unsafe { close(self.0) };
        }
    }

    impl SelfPipe {
        pub fn new() -> io::Result<Self> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                let flags = unsafe { fcntl(fd, F_GETFL, 0) };
                if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                    let err = io::Error::last_os_error();
                    unsafe {
                        close(fds[0]);
                        close(fds[1]);
                    }
                    return Err(err);
                }
            }
            Ok(Self {
                read_fd: fds[0],
                write_fd: Arc::new(WriteEnd(fds[1])),
            })
        }

        pub fn read_fd(&self) -> i32 {
            self.read_fd
        }

        pub fn notifier(&self) -> Notifier {
            Notifier(Arc::clone(&self.write_fd))
        }

        /// Empty the pipe (the wake-ups coalesce into one loop turn).
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 {
                    // EAGAIN (empty) or error either way: drained enough.
                    return;
                }
            }
        }
    }

    impl Drop for SelfPipe {
        fn drop(&mut self) {
            unsafe { close(self.read_fd) };
        }
    }

    /// The write end, cloneable across threads.
    #[derive(Clone)]
    pub struct Notifier(Arc<WriteEnd>);

    impl Notifier {
        pub fn notify(&self) {
            let byte = 1u8;
            // A full pipe (EAGAIN) already guarantees a pending wake-up.
            let _ = unsafe { write(self.0 .0, &byte, 1) };
        }
    }
}

// ---------------------------------------------------------------------
// Linux: epoll
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod imp {
    use super::pipe::{Notifier, SelfPipe};
    use super::{Event, Interest, Source};
    use std::io;
    use std::time::Duration;

    pub const BACKEND: &str = "epoll";

    // The kernel ABI packs epoll_event on x86-64 only.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The waker's reserved token; never surfaced to the caller.
    const WAKER_TOKEN: u64 = u64::MAX;

    pub struct Poller {
        epfd: i32,
        pipe: SelfPipe,
        buf: Vec<EpollEvent>,
    }

    #[derive(Clone)]
    pub struct Waker(Notifier);

    impl Waker {
        pub fn wake(&self) {
            self.0.notify();
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut events = EPOLLRDHUP;
        if interest.read {
            events |= EPOLLIN;
        }
        if interest.write {
            events |= EPOLLOUT;
        }
        events
    }

    fn ctl(epfd: i32, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        if unsafe { epoll_ctl(epfd, op, fd, &mut event) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let pipe = match SelfPipe::new() {
                Ok(pipe) => pipe,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Self {
                epfd,
                buf: Vec::with_capacity(256),
                pipe,
            };
            ctl(
                poller.epfd,
                EPOLL_CTL_ADD,
                poller.pipe.read_fd(),
                EPOLLIN,
                WAKER_TOKEN,
            )?;
            Ok(poller)
        }

        pub fn waker(&self) -> Waker {
            Waker(self.pipe.notifier())
        }

        pub fn register(&mut self, fd: Source, token: u64, interest: Interest) -> io::Result<()> {
            ctl(self.epfd, EPOLL_CTL_ADD, fd, mask(interest), token)
        }

        pub fn update(&mut self, fd: Source, token: u64, interest: Interest) -> io::Result<()> {
            ctl(self.epfd, EPOLL_CTL_MOD, fd, mask(interest), token)
        }

        pub fn deregister(&mut self, fd: Source) -> io::Result<()> {
            ctl(self.epfd, EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms = timeout
                .map(|t| i32::try_from(t.as_millis().max(1)).unwrap_or(i32::MAX))
                .unwrap_or(-1);
            self.buf.resize(256, EpollEvent { events: 0, data: 0 });
            let n = loop {
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        timeout_ms,
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for raw in &self.buf[..n] {
                let (events, data) = (raw.events, raw.data);
                if data == WAKER_TOKEN {
                    self.pipe.drain();
                    continue;
                }
                out.push(Event {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: events & (EPOLLOUT | EPOLLERR) != 0,
                    hangup: events & (EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(out.len())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

// ---------------------------------------------------------------------
// macOS / BSDs: kqueue
// ---------------------------------------------------------------------

#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd"
))]
mod imp {
    use super::pipe::{Notifier, SelfPipe};
    use super::{Event, Interest, Source};
    use std::io;
    use std::time::Duration;

    pub const BACKEND: &str = "kqueue";

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: u64,
    }

    extern "C" {
        fn kqueue() -> i32;
        fn kevent(
            kq: i32,
            changelist: *const KEvent,
            nchanges: i32,
            eventlist: *mut KEvent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x1;
    const EV_DELETE: u16 = 0x2;
    const EV_ERROR: u16 = 0x4000;
    const EV_EOF: u16 = 0x8000;

    const WAKER_TOKEN: u64 = u64::MAX;

    pub struct Poller {
        kq: i32,
        pipe: SelfPipe,
        buf: Vec<KEvent>,
        /// fd → (token, interest), to diff on update/deregister.
        registered: std::collections::HashMap<i32, (u64, Interest)>,
    }

    #[derive(Clone)]
    pub struct Waker(Notifier);

    impl Waker {
        pub fn wake(&self) {
            self.0.notify();
        }
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            let kq = unsafe { kqueue() };
            if kq < 0 {
                return Err(io::Error::last_os_error());
            }
            let pipe = match SelfPipe::new() {
                Ok(pipe) => pipe,
                Err(e) => {
                    unsafe { close(kq) };
                    return Err(e);
                }
            };
            let mut poller = Self {
                kq,
                buf: Vec::with_capacity(256),
                registered: std::collections::HashMap::new(),
                pipe,
            };
            poller.filter(poller.pipe.read_fd(), EVFILT_READ, EV_ADD, WAKER_TOKEN)?;
            Ok(poller)
        }

        pub fn waker(&self) -> Waker {
            Waker(self.pipe.notifier())
        }

        fn filter(&mut self, fd: i32, filter: i16, flags: u16, token: u64) -> io::Result<()> {
            let change = KEvent {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: token,
            };
            let rc = unsafe {
                kevent(
                    self.kq,
                    &change,
                    1,
                    std::ptr::null_mut(),
                    0,
                    std::ptr::null(),
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                // Deleting an absent filter is the common no-op.
                if flags & EV_DELETE != 0 && err.raw_os_error() == Some(2) {
                    return Ok(());
                }
                return Err(err);
            }
            Ok(())
        }

        fn apply(&mut self, fd: i32, token: u64, old: Interest, new: Interest) -> io::Result<()> {
            if new.read && !old.read {
                self.filter(fd, EVFILT_READ, EV_ADD, token)?;
            } else if !new.read && old.read {
                self.filter(fd, EVFILT_READ, EV_DELETE, token)?;
            }
            if new.write && !old.write {
                self.filter(fd, EVFILT_WRITE, EV_ADD, token)?;
            } else if !new.write && old.write {
                self.filter(fd, EVFILT_WRITE, EV_DELETE, token)?;
            }
            Ok(())
        }

        pub fn register(&mut self, fd: Source, token: u64, interest: Interest) -> io::Result<()> {
            self.apply(fd, token, Interest::NONE, interest)?;
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn update(&mut self, fd: Source, token: u64, interest: Interest) -> io::Result<()> {
            let old = self
                .registered
                .get(&fd)
                .map(|(_, i)| *i)
                .unwrap_or(Interest::NONE);
            self.apply(fd, token, old, interest)?;
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: Source) -> io::Result<()> {
            if let Some((token, old)) = self.registered.remove(&fd) {
                self.apply(fd, token, old, Interest::NONE)?;
            }
            Ok(())
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let spec = timeout.map(|t| Timespec {
                tv_sec: t.as_secs() as i64,
                tv_nsec: i64::from(t.subsec_nanos()),
            });
            self.buf.resize(
                256,
                KEvent {
                    ident: 0,
                    filter: 0,
                    flags: 0,
                    fflags: 0,
                    data: 0,
                    udata: 0,
                },
            );
            let n = loop {
                let n = unsafe {
                    kevent(
                        self.kq,
                        std::ptr::null(),
                        0,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        spec.as_ref()
                            .map(|s| s as *const Timespec)
                            .unwrap_or(std::ptr::null()),
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for raw in &self.buf[..n] {
                if raw.udata == WAKER_TOKEN {
                    self.pipe.drain();
                    continue;
                }
                let hangup = raw.flags & (EV_EOF | EV_ERROR) != 0;
                out.push(Event {
                    token: raw.udata,
                    readable: raw.filter == EVFILT_READ || hangup,
                    writable: raw.filter == EVFILT_WRITE,
                    hangup,
                });
            }
            Ok(out.len())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.kq) };
        }
    }
}

// ---------------------------------------------------------------------
// Other Unix: poll(2) loop
// ---------------------------------------------------------------------

#[cfg(all(
    unix,
    not(any(
        target_os = "linux",
        target_os = "macos",
        target_os = "ios",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd"
    ))
))]
mod imp {
    use super::pipe::{Notifier, SelfPipe};
    use super::{Event, Interest, Source};
    use std::collections::HashMap;
    use std::io;
    use std::time::Duration;

    pub const BACKEND: &str = "poll";

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    pub struct Poller {
        pipe: SelfPipe,
        registered: HashMap<i32, (u64, Interest)>,
        buf: Vec<PollFd>,
    }

    #[derive(Clone)]
    pub struct Waker(Notifier);

    impl Waker {
        pub fn wake(&self) {
            self.0.notify();
        }
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                pipe: SelfPipe::new()?,
                registered: HashMap::new(),
                buf: Vec::new(),
            })
        }

        pub fn waker(&self) -> Waker {
            Waker(self.pipe.notifier())
        }

        pub fn register(&mut self, fd: Source, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn update(&mut self, fd: Source, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: Source) -> io::Result<()> {
            self.registered.remove(&fd);
            Ok(())
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            self.buf.clear();
            self.buf.push(PollFd {
                fd: self.pipe.read_fd(),
                events: POLLIN,
                revents: 0,
            });
            for (fd, (_, interest)) in &self.registered {
                let mut events = 0;
                if interest.read {
                    events |= POLLIN;
                }
                if interest.write {
                    events |= POLLOUT;
                }
                self.buf.push(PollFd {
                    fd: *fd,
                    events,
                    revents: 0,
                });
            }
            let timeout_ms = timeout
                .map(|t| i32::try_from(t.as_millis().max(1)).unwrap_or(i32::MAX))
                .unwrap_or(-1);
            let rc = loop {
                let rc = unsafe { poll(self.buf.as_mut_ptr(), self.buf.len() as u64, timeout_ms) };
                if rc >= 0 {
                    break rc;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if rc == 0 {
                return Ok(0);
            }
            if self.buf[0].revents != 0 {
                self.pipe.drain();
            }
            for raw in &self.buf[1..] {
                if raw.revents == 0 {
                    continue;
                }
                let (token, _) = self.registered[&raw.fd];
                let hangup = raw.revents & (POLLHUP | POLLERR) != 0;
                out.push(Event {
                    token,
                    readable: raw.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: raw.revents & (POLLOUT | POLLERR) != 0,
                    hangup,
                });
            }
            Ok(out.len())
        }
    }
}

// ---------------------------------------------------------------------
// Non-Unix: tick loop
// ---------------------------------------------------------------------

#[cfg(not(unix))]
mod imp {
    use super::{Event, Interest, Source};
    use std::collections::HashMap;
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    pub const BACKEND: &str = "tick";

    /// Reported readiness cadence while blocked.
    const TICK: Duration = Duration::from_millis(2);

    pub struct Poller {
        registered: HashMap<Source, (u64, Interest)>,
        woken: Arc<AtomicBool>,
    }

    #[derive(Clone)]
    pub struct Waker(Arc<AtomicBool>);

    impl Waker {
        pub fn wake(&self) {
            self.0.store(true, Ordering::Release);
        }
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                registered: HashMap::new(),
                woken: Arc::new(AtomicBool::new(false)),
            })
        }

        pub fn waker(&self) -> Waker {
            Waker(Arc::clone(&self.woken))
        }

        pub fn register(&mut self, s: Source, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(s, (token, interest));
            Ok(())
        }

        pub fn update(&mut self, s: Source, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(s, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, s: Source) -> io::Result<()> {
            self.registered.remove(&s);
            Ok(())
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            // One short sleep keeps the loop from spinning; nonblocking
            // sockets make the "everything is ready" report harmless.
            if !self.woken.swap(false, Ordering::Acquire) {
                std::thread::sleep(timeout.map(|t| t.min(TICK)).unwrap_or(TICK));
                self.woken.store(false, Ordering::Release);
            }
            for (_, (token, interest)) in &self.registered {
                if interest.read || interest.write {
                    out.push(Event {
                        token: *token,
                        readable: interest.read,
                        writable: interest.write,
                        hangup: false,
                    });
                }
            }
            Ok(out.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn poller_sees_listener_and_stream_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(source_of_listener(&listener, 1), 1, Interest::READ)
            .unwrap();

        // No client yet: a short wait returns no events (tick backend may
        // report readiness, but accept would WouldBlock — skip there).
        let mut events = Vec::new();
        if poller.backend() != "tick" {
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(events.iter().all(|e| e.token != 1 || !e.readable));
        }

        // A connecting client makes the listener readable.
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let ready = loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events.iter().any(|e| e.token == 1 && e.readable) {
                break true;
            }
            if std::time::Instant::now() > deadline {
                break false;
            }
        };
        assert!(ready, "listener never became readable");
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .register(source_of(&server_side, 2), 2, Interest::READ)
            .unwrap();

        // Data from the client makes the accepted stream readable.
        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events.iter().any(|e| e.token == 2 && e.readable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "stream never readable"
            );
        }
        let mut buf = [0u8; 8];
        let mut stream = &server_side;
        assert_eq!(stream.read(&mut buf).unwrap(), 4);

        // Write interest on an idle socket fires immediately (buffer has
        // room).
        poller
            .update(source_of(&server_side, 2), 2, Interest::BOTH)
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events.iter().any(|e| e.token == 2 && e.writable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "stream never writable"
            );
        }
        poller.deregister(source_of(&server_side, 2)).unwrap();

        // EOF after deregistration must not resurface token 2.
        drop(client);
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 2));
    }

    #[test]
    fn waker_interrupts_a_blocked_wait_from_another_thread() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let started = std::time::Instant::now();
        let mut events = Vec::new();
        // Block "forever": only the waker can end this before the outer
        // timeout would fail the test.
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "wake-up never arrived"
        );
        handle.join().unwrap();
    }

    #[test]
    fn wakes_coalesce_and_do_not_leave_stale_readiness() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        for _ in 0..1000 {
            waker.wake();
        }
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        // All 1000 wakes drained in one turn: the next wait times out
        // instead of spinning on a stale pipe byte.
        let started = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(started.elapsed() >= Duration::from_millis(25));
    }
}
