//! The TCP serving front end: connection handling, verb dispatch, and
//! the admission → engine pipeline.
//!
//! One thread per connection (requests are small and jobs run on the
//! engine's worker pool, so connection threads only parse, route, and
//! stream), plus one dispatcher thread draining the admission
//! controller into [`Engine::submit_tagged`] and one short-lived pump
//! thread per dispatched job mirroring its [`ml4all::JobEvent`] stream
//! into a replayable per-job buffer.
//!
//! Determinism: the server adds no randomness and no wall-clock values
//! to any response — a wire-submitted job runs the exact
//! [`Engine::submit`] code path (same plan-cache key, same RNG
//! streams), so its weights are bit-identical to the same request
//! submitted in process.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ml4all::{CancelToken, Engine, JobStatus, ModelRef, PredictRequest, TrainRequest};
use ml4all::{ExplainRequest, SessionError, RNG_STREAM_VERSION};

use crate::admission::{Admission, TenantQuota};
use crate::protocol::{
    self, code, read_frame, write_message, FrameIn, Payload, Request, Response, WireError,
    WireEvent, WireJob, WireReport, WireStats, WireTrained, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};

/// Server configuration: address, framing cap, and admission policy.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Frame payload cap in bytes; larger frames are drained and
    /// refused with `oversized_frame`.
    pub max_frame: usize,
    /// Max jobs dispatched-and-unfinished across all tenants.
    pub global_in_flight: usize,
    /// Deficit-round-robin credit per lane visit, in bytes.
    pub drr_quantum: usize,
    /// Quota for tenants without an explicit entry.
    pub default_quota: TenantQuota,
    /// Per-tenant quota overrides.
    pub tenant_quotas: Vec<(String, TenantQuota)>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_frame: DEFAULT_MAX_FRAME,
            global_in_flight: 8,
            drr_quantum: 4096,
            default_quota: TenantQuota::default(),
            tenant_quotas: Vec::new(),
        }
    }
}

/// A job's server-side progress record: the replayable event buffer and
/// terminal outcome, shared by the pump thread and any observers.
struct JobProgress {
    engine_id: Option<u64>,
    cancel: Option<CancelToken>,
    cancel_requested: bool,
    events: Vec<WireEvent>,
    outcome: Option<WireTrained>,
}

/// One wire-submitted job.
struct ServedJob {
    id: u64,
    tenant: String,
    /// Tenant-visible result name (always set; the engine sees it
    /// prefixed with `tenant:`).
    name: String,
    state: Mutex<JobProgress>,
    changed: Condvar,
}

impl ServedJob {
    /// Finalize with `outcome`, waking observers and joiners. The
    /// outcome is set *after* the last event, so `outcome.is_some()`
    /// implies the event buffer is complete.
    fn finish(&self, outcome: WireTrained) {
        let mut state = self.state.lock().expect("job state");
        state.outcome = Some(outcome);
        drop(state);
        self.changed.notify_all();
    }
}

/// A queued, admitted job waiting for the dispatcher.
struct Pending {
    job: Arc<ServedJob>,
    request: TrainRequest,
}

struct Shared {
    engine: Engine,
    config: ServeConfig,
    admission: Admission<Pending>,
    jobs: Mutex<HashMap<u64, Arc<ServedJob>>>,
    next_job: AtomicU64,
    protocol_errors: AtomicU64,
    shutdown: AtomicBool,
}

/// A running serving front end. Dropping it shuts the listener and the
/// dispatcher down (connection threads exit as their clients hang up).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `config.addr` and serve `engine` until
    /// [`Server::shutdown`] or drop.
    pub fn start(engine: Engine, config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let admission = Admission::new(
            config.drr_quantum,
            config.global_in_flight,
            config.default_quota,
        );
        for (tenant, quota) in &config.tenant_quotas {
            admission.set_quota(tenant, *quota);
        }
        let shared = Arc::new(Shared {
            engine,
            config,
            admission,
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || dispatcher_loop(&shared))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, listener))
        };
        Ok(Self {
            shared,
            local_addr,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound address (with the resolved port for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Framing-layer violations seen so far (bad or oversized frames) —
    /// each was answered with a typed error, never a dropped
    /// connection.
    pub fn protocol_errors(&self) -> u64 {
        self.shared.protocol_errors.load(Ordering::Relaxed)
    }

    /// Stop accepting and dispatching. Idempotent; also runs on drop.
    /// Jobs already handed to the engine run to completion.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.admission.shutdown();
        // Unblock the accept loop with a wake-up connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Connection threads are detached: they exit on client EOF or
        // write failure.
        std::thread::spawn(move || {
            let _ = handle_connection(&shared, stream);
        });
    }
}

/// Drain the admission controller into the engine until shutdown.
fn dispatcher_loop(shared: &Arc<Shared>) {
    while let Some(dispatch) = shared.admission.next() {
        let Pending { job, request } = dispatch.item;
        dispatch_job(shared, job, request);
    }
}

/// Hand one admitted job to the engine and start its event pump, or
/// finalize it immediately if it was cancelled while queued.
fn dispatch_job(shared: &Arc<Shared>, job: Arc<ServedJob>, request: TrainRequest) {
    let mut state = job.state.lock().expect("job state");
    if state.cancel_requested {
        state.events.push(WireEvent::Cancelled { iterations: 0 });
        drop(state);
        job.finish(WireTrained {
            job: job.id,
            status: "cancelled".to_string(),
            name: None,
            plan: None,
            iterations: Some(0),
            converged: None,
            sim_time_s: None,
            weights: None,
            weights_bits: None,
            error: None,
        });
        shared.admission.complete(&job.tenant);
        return;
    }
    // Submit under the job lock so a concurrent `Cancel` either sets
    // `cancel_requested` before this check or finds the token after.
    let handle = shared.engine.submit_tagged(request, &job.tenant);
    state.engine_id = Some(handle.id());
    state.cancel = Some(handle.cancel_token());
    drop(state);

    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        let prefix = format!("{}:", job.tenant);
        for event in handle.progress() {
            let wire = WireEvent::from_job_event(&event, &prefix);
            job.state.lock().expect("job state").events.push(wire);
            job.changed.notify_all();
        }
        let outcome = match handle.join() {
            Ok(trained) => {
                let (weights, weights_bits) = shared
                    .engine
                    .model(&trained.name)
                    .map(|model| protocol::encode_weights(model.weights.as_slice()))
                    .map(|(w, b)| (Some(w), Some(b)))
                    .unwrap_or((None, None));
                WireTrained {
                    job: job.id,
                    status: "completed".to_string(),
                    name: Some(job.name.clone()),
                    plan: Some(trained.summary.plan.to_string()),
                    iterations: Some(trained.summary.iterations),
                    converged: Some(trained.summary.converged),
                    sim_time_s: Some(trained.summary.sim_time_s),
                    weights,
                    weights_bits,
                    error: None,
                }
            }
            Err(SessionError::Cancelled { iterations }) => WireTrained {
                job: job.id,
                status: "cancelled".to_string(),
                name: None,
                plan: None,
                iterations: Some(iterations),
                converged: None,
                sim_time_s: None,
                weights: None,
                weights_bits: None,
                error: None,
            },
            Err(other) => WireTrained {
                job: job.id,
                status: "failed".to_string(),
                name: None,
                plan: None,
                iterations: None,
                converged: None,
                sim_time_s: None,
                weights: None,
                weights_bits: None,
                error: Some(other.to_string()),
            },
        };
        job.finish(outcome);
        shared.admission.complete(&job.tenant);
    });
}

/// Serve one connection: a strict request/response loop (observe
/// streams multiple response frames) that survives malformed and
/// oversized frames with typed errors.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut tenant: Option<String> = None;
    loop {
        let frame = match read_frame(&mut reader, shared.config.max_frame) {
            Ok(FrameIn::Eof) | Err(_) => return Ok(()),
            Ok(FrameIn::Oversized { len }) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                send(
                    &mut writer,
                    &Response::Err(WireError::new(
                        code::OVERSIZED_FRAME,
                        format!(
                            "frame of {len} bytes exceeds the {} byte cap",
                            shared.config.max_frame
                        ),
                    )),
                )?;
                continue;
            }
            Ok(FrameIn::Frame(payload)) => payload,
        };
        let request: Request = match serde_json::from_slice(&frame) {
            Ok(request) => request,
            Err(e) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                send(
                    &mut writer,
                    &Response::Err(WireError::new(code::BAD_FRAME, e.to_string())),
                )?;
                continue;
            }
        };
        // The admission byte cost of this request: its frame, header
        // included.
        let cost = frame.len() + 4;
        match request {
            Request::Hello {
                tenant: who,
                protocol,
            } => {
                if let Some(asked) = protocol {
                    if asked != PROTOCOL_VERSION {
                        send(
                            &mut writer,
                            &Response::Err(WireError::new(
                                code::UNSUPPORTED_PROTOCOL,
                                format!("server speaks protocol {PROTOCOL_VERSION}, not {asked}"),
                            )),
                        )?;
                        continue;
                    }
                }
                tenant = Some(who);
                send(
                    &mut writer,
                    &Response::Ok(Payload::Hello {
                        server: concat!("ml4all-serve ", env!("CARGO_PKG_VERSION")).to_string(),
                        protocol: PROTOCOL_VERSION,
                        rng_stream_version: RNG_STREAM_VERSION,
                        max_frame: shared.config.max_frame as u64,
                    }),
                )?;
            }
            other => {
                let Some(tenant) = tenant.clone() else {
                    send(
                        &mut writer,
                        &Response::Err(WireError::new(
                            code::HELLO_REQUIRED,
                            "send Hello with your tenant id first",
                        )),
                    )?;
                    continue;
                };
                handle_verb(shared, &mut writer, &tenant, other, cost)?;
            }
        }
    }
}

/// Dispatch one authenticated verb.
fn handle_verb(
    shared: &Arc<Shared>,
    writer: &mut BufWriter<TcpStream>,
    tenant: &str,
    request: Request,
    cost: usize,
) -> io::Result<()> {
    match request {
        Request::Hello { .. } => unreachable!("handled by the connection loop"),
        Request::Submit { train } => {
            let response = submit(shared, tenant, &train, cost);
            send(writer, &response)
        }
        Request::Observe { job, from } => {
            let job = match owned_job(shared, tenant, job) {
                Ok(job) => job,
                Err(e) => return send(writer, &Response::Err(e)),
            };
            observe(writer, &job, from.unwrap_or(0))
        }
        Request::Cancel { job } => {
            let job = match owned_job(shared, tenant, job) {
                Ok(job) => job,
                Err(e) => return send(writer, &Response::Err(e)),
            };
            let mut state = job.state.lock().expect("job state");
            if state.outcome.is_none() {
                match &state.cancel {
                    Some(token) => token.cancel(),
                    // Still queued: the dispatcher finalizes it as
                    // cancelled when its turn comes.
                    None => state.cancel_requested = true,
                }
            }
            drop(state);
            send(writer, &Response::Ok(Payload::Cancelled { job: job.id }))
        }
        Request::Join { job } => {
            let job = match owned_job(shared, tenant, job) {
                Ok(job) => job,
                Err(e) => return send(writer, &Response::Err(e)),
            };
            let mut state = job.state.lock().expect("job state");
            while state.outcome.is_none() {
                state = job.changed.wait(state).expect("job wait");
            }
            let outcome = state.outcome.clone().expect("outcome present");
            drop(state);
            send(writer, &Response::Ok(Payload::Joined(outcome)))
        }
        Request::Explain { train, measured } => {
            let response = match train.to_request() {
                Err(e) => Response::Err(e),
                Ok(request) => {
                    match shared
                        .engine
                        .explain(ExplainRequest::new(request).measured(measured.unwrap_or(false)))
                    {
                        Err(e) => Response::Err(WireError::new(code::FAILED, e.to_string())),
                        Ok(report) => Response::Ok(Payload::Explained(WireReport {
                            cache_hit: report.cache_hit,
                            best: report.best().plan.to_string(),
                            speculation_sim_s: report.speculation_sim_s,
                            choices: report
                                .choices
                                .iter()
                                .map(|c| protocol::WireChoice {
                                    plan: c.plan.to_string(),
                                    estimated_iterations: c.estimated_iterations,
                                    preparation_s: c.preparation_s,
                                    per_iteration_s: c.per_iteration_s,
                                    total_s: c.total_s,
                                    measured_s: c.measured_s,
                                })
                                .collect(),
                        })),
                    }
                }
            };
            send(writer, &response)
        }
        Request::Predict { model, source } => {
            // Model names resolve inside the tenant's namespace only.
            let namespaced = format!("{tenant}:{model}");
            let request = PredictRequest::new(
                ml4all::DataSource::from(&source),
                ModelRef::Named(namespaced),
            );
            let response = match shared.engine.predict(request) {
                Err(e) => Response::Err(WireError::new(code::FAILED, e.to_string())),
                Ok(p) => Response::Ok(Payload::Predicted {
                    n: p.predictions.len() as u64,
                    mse: p.mse,
                    accuracy: p.accuracy,
                }),
            };
            send(writer, &response)
        }
        Request::Stats => send(writer, &Response::Ok(Payload::Stats(stats(shared, tenant)))),
    }
}

/// Admit one training job: namespace its name, register it, and queue
/// it (or refuse with typed `busy` backpressure).
fn submit(
    shared: &Arc<Shared>,
    tenant: &str,
    train: &protocol::WireTrain,
    cost: usize,
) -> Response {
    let mut request = match train.to_request() {
        Ok(request) => request,
        Err(e) => return Response::Err(e),
    };
    let id = shared.next_job.fetch_add(1, Ordering::Relaxed) + 1;
    // Every wire job gets an explicit, tenant-prefixed result name so
    // tenants cannot observe (or shadow) each other's models.
    let visible = request.name.clone().unwrap_or_else(|| format!("j{id}"));
    request = request.named(format!("{tenant}:{visible}"));
    let job = Arc::new(ServedJob {
        id,
        tenant: tenant.to_string(),
        name: visible,
        state: Mutex::new(JobProgress {
            engine_id: None,
            cancel: None,
            cancel_requested: false,
            events: Vec::new(),
            outcome: None,
        }),
        changed: Condvar::new(),
    });
    shared
        .jobs
        .lock()
        .expect("job table")
        .insert(id, Arc::clone(&job));
    let pending = Pending {
        job: Arc::clone(&job),
        request,
    };
    match shared.admission.offer(tenant, cost, pending) {
        Ok(()) => Response::Ok(Payload::Submitted { job: id }),
        Err(busy) => {
            // Refused at the door: forget the job id again.
            shared.jobs.lock().expect("job table").remove(&id);
            Response::Err(WireError {
                code: code::BUSY.to_string(),
                message: format!("tenant `{tenant}` queued-byte quota is full"),
                retry_after_ms: Some(busy.retry_after_ms),
            })
        }
    }
}

/// Stream a job's events from `from` until its terminal outcome.
fn observe(writer: &mut BufWriter<TcpStream>, job: &ServedJob, from: u64) -> io::Result<()> {
    let mut seq = from;
    loop {
        let (batch, done) = {
            let mut state = job.state.lock().expect("job state");
            loop {
                if (state.events.len() as u64) > seq || state.outcome.is_some() {
                    let start = (seq as usize).min(state.events.len());
                    // The outcome is recorded only after the final
                    // event, so `done` means the batch is the rest.
                    break (state.events[start..].to_vec(), state.outcome.is_some());
                }
                state = job.changed.wait(state).expect("observe wait");
            }
        };
        for event in batch {
            send(writer, &Response::Ok(Payload::Event { seq, event }))?;
            seq += 1;
        }
        if done {
            let state = job.state.lock().expect("job state");
            let status = state
                .outcome
                .as_ref()
                .map(|o| o.status.clone())
                .expect("done implies outcome");
            drop(state);
            return send(
                writer,
                &Response::Ok(Payload::ObserveEnd {
                    job: job.id,
                    status,
                }),
            );
        }
    }
}

/// This tenant's stats: admission counters plus its job table. Job
/// statuses come from the [`Engine::jobs`] snapshot — the engine is the
/// single source of truth for dispatched jobs.
fn stats(shared: &Arc<Shared>, tenant: &str) -> WireStats {
    let lane = shared.admission.stats(tenant);
    let engine_status: HashMap<u64, JobStatus> = shared
        .engine
        .jobs()
        .into_iter()
        .map(|info| (info.id, info.status))
        .collect();
    let mut jobs: Vec<WireJob> = shared
        .jobs
        .lock()
        .expect("job table")
        .values()
        .filter(|job| job.tenant == tenant)
        .map(|job| {
            let state = job.state.lock().expect("job state");
            let status = match (&state.outcome, state.engine_id) {
                (Some(outcome), _) => outcome.status.clone(),
                (None, Some(engine_id)) => engine_status
                    .get(&engine_id)
                    .map(|status| status_name(*status).to_string())
                    .unwrap_or_else(|| "running".to_string()),
                (None, None) => "queued".to_string(),
            };
            WireJob {
                job: job.id,
                engine_id: state.engine_id,
                name: Some(job.name.clone()),
                status,
            }
        })
        .collect();
    jobs.sort_by_key(|j| j.job);
    let cache = shared.engine.plan_cache();
    WireStats {
        tenant: tenant.to_string(),
        in_flight: lane.in_flight as u64,
        queued: lane.queued as u64,
        queued_bytes: lane.queued_bytes as u64,
        quota_max_in_flight: lane.quota.max_in_flight as u64,
        quota_max_queued_bytes: lane.quota.max_queued_bytes as u64,
        global_in_flight: lane.global_in_flight as u64,
        global_capacity: lane.global_capacity as u64,
        plan_cache_hits: cache.hits(),
        plan_cache_misses: cache.misses(),
        plan_cache_len: cache.len() as u64,
        jobs,
    }
}

fn status_name(status: JobStatus) -> &'static str {
    match status {
        JobStatus::Queued => "queued",
        JobStatus::Running => "running",
        JobStatus::Completed => "completed",
        JobStatus::Cancelled => "cancelled",
        JobStatus::Failed => "failed",
    }
}

/// Look a job up and enforce tenant ownership.
fn owned_job(shared: &Arc<Shared>, tenant: &str, id: u64) -> Result<Arc<ServedJob>, WireError> {
    let jobs = shared.jobs.lock().expect("job table");
    let job = jobs
        .get(&id)
        .ok_or_else(|| WireError::new(code::UNKNOWN_JOB, format!("no job {id}")))?;
    if job.tenant != tenant {
        // Jobs are tenant-private: existence is not confirmed either.
        return Err(WireError::new(
            code::FORBIDDEN,
            format!("job {id} is not owned by tenant `{tenant}`"),
        ));
    }
    Ok(Arc::clone(job))
}

/// Write one response frame and flush it (responses must not sit in the
/// buffer while the connection loop blocks on the next read).
fn send(writer: &mut BufWriter<TcpStream>, response: &Response) -> io::Result<()> {
    write_message(writer, response)?;
    writer.flush()
}
